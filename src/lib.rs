//! # dragonfly
//!
//! Umbrella crate for the reproduction of *"Efficient Routing Mechanisms for Dragonfly
//! Networks"* (García, Vallejo, Beivide, Odriozola, Valero — ICPP 2013).
//!
//! The workspace implements, from scratch:
//!
//! * the balanced maximum-size Dragonfly topology ([`topology`]),
//! * a cycle-accurate phit-level network simulator with Virtual Cut-Through and
//!   Wormhole flow control ([`sim`]),
//! * the six routing mechanisms evaluated in the paper — Minimal, Valiant,
//!   Piggybacking, PAR-6/2, Restricted Local Misrouting (RLM) and Opportunistic Local
//!   Misrouting (OLM) ([`routing`]),
//! * the synthetic traffic patterns of the evaluation ([`traffic`]),
//! * and a high-level experiment harness that regenerates every figure and table of
//!   the paper ([`core`]).
//!
//! Most users should start from [`core::ExperimentBuilder`] or from the examples in
//! `examples/`.
//!
//! ```
//! use dragonfly::core::{ExperimentBuilder, RoutingKind, TrafficKind};
//!
//! let report = ExperimentBuilder::new(2)          // h = 2: a tiny 72-node Dragonfly
//!     .routing(RoutingKind::Olm)
//!     .traffic(TrafficKind::Uniform)
//!     .offered_load(0.2)
//!     .warmup_cycles(2_000)
//!     .measure_cycles(3_000)
//!     .run();
//! assert!(report.accepted_load > 0.1);
//! assert!(report.avg_latency_cycles > 0.0);
//! ```

pub use dragonfly_core as core;
pub use dragonfly_probe as probe;
pub use dragonfly_rng as rng;
pub use dragonfly_routing as routing;
pub use dragonfly_sched as sched;
pub use dragonfly_shard as shard;
pub use dragonfly_sim as sim;
pub use dragonfly_stats as stats;
pub use dragonfly_topology as topology;
pub use dragonfly_traffic as traffic;
pub use dragonfly_workload as workload;

/// Workspace version, mirrored from Cargo metadata.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
