//! Sharded single-simulation engine: per-group partitions stepping under a
//! per-cycle barrier, with message-passing global links.
//!
//! Every prior scaling layer parallelized *across* experiment points; this
//! crate parallelizes *inside* one simulation.  The dragonfly topology is
//! naturally partitionable: local links and ejection links never leave a
//! group, so partitioning whole groups across shards means the **only** state
//! crossing a shard boundary is (a) phits and credits on inter-group global
//! links and (b) the dynamic scheduler's delivery feedback.  Both are
//! exchanged once per cycle at a barrier, stamped with their absolute delivery
//! cycles, so the receiving shard observes exactly the timing the sequential
//! engine would have produced.
//!
//! # How a sharded cycle works
//!
//! Each shard owns a contiguous range of groups inside a full
//! [`Network`] replica (buffers outside the owned range stay empty, so the
//! replicas are cheap) and runs on its own scoped thread:
//!
//! 1. **Compute** — run the sequential engine's five phases
//!    ([`Network::advance_hooks`] + [`Network::step_phases`]) over the owned
//!    routers, links and nodes.
//! 2. **Export** — drain phits launched on transmit-side boundary links (and
//!    credits launched on receive-side boundary links) into per-pair
//!    mailboxes, shipping the full [`Packet`] state alongside each head phit;
//!    publish the shard's activity/liveness/drain flags and packet counters.
//! 3. **Barrier** — every shard's exports and flags are now visible.
//! 4. **Import** — append the incoming phits/credits (original arrival stamps)
//!    to the local copies of the boundary links, adopt head packets into the
//!    local arena, and apply remote delivery feedback to the local
//!    [`ScheduleRuntime`] replica.  Then
//!    derive the *global* activity/liveness view from the published flags and
//!    advance the deadlock watchdog and memory-telemetry peaks with it
//!    ([`Network::apply_watchdog`]), so every shard reaches the sequential
//!    engine's verdicts at the same cycle.
//!
//! # Why the result is byte-identical to the sequential engine
//!
//! * **RNG** — the engine draws randomness from per-router streams derived
//!   from the master seed, so no draw depends on how routers are partitioned
//!   or visited (see `Network`'s `rngs`).
//! * **Phase order-independence** — within a cycle, each phase's per-router /
//!   per-link work touches disjoint state, so the partition cannot reorder
//!   anything observable.
//! * **Boundary timing** — a phit sent at cycle `t` on a link of latency `L`
//!   is imported at the cycle-`t` barrier carrying its `t + L` arrival stamp;
//!   since `L ≥ 1`, it is in the receiving link copy strictly before the
//!   receiver's cycle-`t + L` arrival phase pops it — exactly like the
//!   sequential engine's in-link queue.
//! * **Piggybacking board** — a router only ever *reads* the congestion flags
//!   of its own group, and the flags of a group are computed solely from the
//!   global-output occupancies of that group's routers.  Groups are never
//!   split, so the sharded board needs no exchange at all: each shard's dirty
//!   list updates exactly the entries its own routers would have updated
//!   sequentially.
//! * **Statistics** — per-shard collectors use exact integer accumulators
//!   ([`dragonfly_stats::ExactStats`], histograms, counters), so merging them
//!   is associative and reproduces the sequential collector bit-for-bit.
//!
//! `tests/shard_equivalence.rs` pins sharded ≡ sequential byte-identity for
//! every routing mechanism × flow control combination and across shard counts.

#![warn(missing_docs)]

use dragonfly_probe::{ProbeConfig, ProbeRecorder};
use dragonfly_sched::{ScheduleRuntime, Trace};
use dragonfly_sim::{
    job_report, phase_report, sim_report, span_overlap, CreditInFlight, LinkEnd, Network, Packet,
    PacketId, PhaseIdentity, PhitInFlight, RoutingAlgorithm, SimConfig, SimRunIdentity,
    StatsCollector,
};
use dragonfly_stats::{BatchReport, JobLifecycleReport, SimReport, WorkloadReport};
use dragonfly_topology::DragonflyParams;
use dragonfly_traffic::{BernoulliInjection, BurstSpec, TrafficPattern};
use dragonfly_workload::WorkloadSpec;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// How to partition one simulation across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of shards (each steps on its own thread).
    pub shards: usize,
}

impl ShardPlan {
    /// Plan a run with `shards` partitions (`1` = the partitioned engine with
    /// a single worker, still byte-identical to the sequential engine).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a sharded run needs at least one shard");
        Self { shards }
    }

    /// Split the topology's groups into `shards` contiguous, balanced ranges.
    ///
    /// # Panics
    ///
    /// Panics when there are more shards than groups (a shard must own at
    /// least one whole group — groups are the unit that keeps local links and
    /// the piggybacking board shard-internal).
    pub fn group_ranges(&self, params: &DragonflyParams) -> Vec<Range<usize>> {
        let groups = params.groups();
        assert!(
            self.shards <= groups,
            "cannot split {groups} groups into {} shards (one whole group per shard minimum)",
            self.shards
        );
        (0..self.shards)
            .map(|s| (s * groups / self.shards)..((s + 1) * groups / self.shards))
            .collect()
    }
}

/// One boundary message batch between an ordered pair of shards, exchanged at
/// the per-cycle barrier.
#[derive(Default)]
struct BoundaryBatch {
    /// Phits crossing a boundary link: `(flat link index, phit, full packet
    /// state when the phit is the head)`.  Arrival stamps are absolute cycles.
    phits: Vec<(u32, PhitInFlight, Option<Packet>)>,
    /// Credits returning to the transmitting shard of a boundary link.
    credits: Vec<(u32, CreditInFlight)>,
    /// Job ids of packets delivered on the sending shard this cycle (volume
    /// feedback for every schedule replica).
    deliveries: Vec<u16>,
}

/// Per-shard flags and counters published each cycle (read by every worker for
/// the global watchdog/telemetry view and by the orchestrator for the run
/// protocols).
#[derive(Default)]
struct ShardSlot {
    /// Any phit moved on this shard this cycle.
    activity: AtomicBool,
    /// Any packet live on this shard (or exported this cycle, which covers the
    /// barrier-transit window).
    live: AtomicBool,
    /// No packet exists anywhere on this shard (sources, buffers, links).
    drained: AtomicBool,
    /// The shard's watchdog fired (identical on every shard by construction).
    deadlock: AtomicBool,
    /// Every job of the shard's schedule replica completed (`true` without a
    /// schedule).
    all_complete: AtomicBool,
    /// Packets generated on this shard so far.
    generated: AtomicU64,
    /// Packets delivered on this shard so far.
    delivered: AtomicU64,
    /// Phits stored in this shard's router buffers right now.
    buffered: AtomicU64,
}

/// Control messages broadcast from the orchestrator to every worker.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// Advance one cycle (compute → export → barrier → import).
    Step,
    /// Install/clear the global Bernoulli injection process.
    SetInjection(Option<BernoulliInjection>),
    /// Set whether newly generated packets are latency-tagged.
    TagMeasured(bool),
    /// Open the measurement window at the given cycle.
    BeginMeasurement(u64),
    /// Close the measurement window at the given cycle.
    EndMeasurement(u64),
    /// Preload every owned source queue with a burst.
    PreloadBurst(u64),
    /// Halt the schedule replicas (drain phase of the trace protocol).
    HaltSched,
    /// Remove the workload runtime and stop injection (burst protocol).
    DropWorkload,
    /// Leave the worker loop.
    Exit,
}

/// Shared synchronization state of one sharded run.
struct Conductor {
    /// Outer barrier (workers + orchestrator): frames each command.
    outer: Barrier,
    /// Inner barrier (workers only): separates export from import in a step.
    inner: Barrier,
    /// The current command (valid between the outer barrier pair around it).
    cmd: Mutex<Cmd>,
    /// Mailboxes: `mail[from][to]` carries `from`'s boundary traffic to `to`.
    mail: Vec<Vec<Mutex<BoundaryBatch>>>,
    /// Per-shard published flags and counters.
    slots: Vec<ShardSlot>,
}

impl Conductor {
    fn new(shards: usize) -> Self {
        Self {
            outer: Barrier::new(shards + 1),
            inner: Barrier::new(shards),
            cmd: Mutex::new(Cmd::Step),
            mail: (0..shards)
                .map(|_| {
                    (0..shards)
                        .map(|_| Mutex::new(BoundaryBatch::default()))
                        .collect()
                })
                .collect(),
            slots: (0..shards).map(|_| ShardSlot::default()).collect(),
        }
    }
}

/// Orchestrator-side handle over a running worker set.
struct Driver<'a> {
    c: &'a Conductor,
    shards: usize,
}

impl Driver<'_> {
    /// Broadcast one command and wait for every worker to finish it.
    fn dispatch(&self, cmd: Cmd) {
        *self.c.cmd.lock().unwrap() = cmd;
        self.c.outer.wait();
        self.c.outer.wait();
    }

    fn step(&self) {
        self.dispatch(Cmd::Step);
    }

    fn run(&self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    fn total_generated(&self) -> u64 {
        self.c
            .slots
            .iter()
            .map(|s| s.generated.load(Ordering::Relaxed))
            .sum()
    }

    fn total_delivered(&self) -> u64 {
        self.c
            .slots
            .iter()
            .map(|s| s.delivered.load(Ordering::Relaxed))
            .sum()
    }

    fn deadlock(&self) -> bool {
        // The watchdog verdict is identical on every shard by construction.
        self.c.slots[0].deadlock.load(Ordering::Relaxed)
    }

    fn all_drained(&self) -> bool {
        self.c
            .slots
            .iter()
            .take(self.shards)
            .all(|s| s.drained.load(Ordering::Relaxed))
    }

    fn all_complete(&self) -> bool {
        // Schedule replicas are in lockstep; shard 0 speaks for all of them.
        self.c.slots[0].all_complete.load(Ordering::Relaxed)
    }
}

/// One partition of the simulation: a full network replica plus its boundary
/// wiring.
struct Shard<R: RoutingAlgorithm> {
    id: usize,
    net: Network<R>,
    /// Boundary links this shard transmits on: `(flat link index, receiver)`.
    tx_links: Vec<(usize, usize)>,
    /// Boundary links this shard receives on: `(flat link index, transmitter)`.
    rx_links: Vec<(usize, usize)>,
    /// In-transit packet-id translation: `(flat link, vc)` → local arena id,
    /// installed at head import and removed at tail import.
    xlat: HashMap<(u32, u8), PacketId>,
    /// Reused export scratch buffers.
    phit_buf: Vec<PhitInFlight>,
    credit_buf: Vec<CreditInFlight>,
    /// Wall-clock nanoseconds this shard spent waiting at the inner
    /// (export → import) barrier — the load-imbalance component of a sharded
    /// run's wall time, read together with the per-phase profile.
    #[cfg(feature = "profile")]
    barrier_wait_nanos: u64,
}

impl<R: RoutingAlgorithm> Shard<R> {
    /// One full simulation cycle of this shard (see the module docs).
    fn step(&mut self, c: &Conductor) {
        let shards = c.slots.len();
        let net = &mut self.net;
        net.advance_hooks();
        let activity = net.step_phases();

        // Export: boundary phits (with packet payloads on heads) and credits.
        let mut exported = 0usize;
        for &(li, dst) in &self.tx_links {
            net.take_link_phits(li, &mut self.phit_buf);
            if self.phit_buf.is_empty() {
                continue;
            }
            let mut batch = c.mail[self.id][dst].lock().unwrap();
            for phit in self.phit_buf.drain(..) {
                exported += 1;
                let payload = phit.is_head().then(|| net.export_packet(phit.packet));
                if phit.is_tail() {
                    // The receiver owns the authoritative copy from its head
                    // import on; nothing on this shard references it any more.
                    net.release_exported_packet(phit.packet);
                }
                batch.phits.push((li as u32, phit, payload));
            }
        }
        for &(li, src) in &self.rx_links {
            net.take_link_credits(li, &mut self.credit_buf);
            if self.credit_buf.is_empty() {
                continue;
            }
            let mut batch = c.mail[self.id][src].lock().unwrap();
            for credit in self.credit_buf.drain(..) {
                batch.credits.push((li as u32, credit));
            }
        }
        let deliveries = net.take_sched_deliveries();
        if !deliveries.is_empty() {
            for dst in 0..shards {
                if dst != self.id {
                    c.mail[self.id][dst]
                        .lock()
                        .unwrap()
                        .deliveries
                        .extend_from_slice(&deliveries);
                }
            }
        }

        // Publish this shard's flags for the global views below.  A packet
        // whose only copy is sitting in a mailbox right now is covered by
        // `exported > 0` on the sending side.
        let slot = &c.slots[self.id];
        slot.activity.store(activity, Ordering::Relaxed);
        slot.live
            .store(net.packets.live() > 0 || exported > 0, Ordering::Relaxed);
        slot.drained
            .store(net.is_drained() && exported == 0, Ordering::Relaxed);
        slot.generated
            .store(net.stats.total_generated, Ordering::Relaxed);
        slot.delivered
            .store(net.stats.total_delivered, Ordering::Relaxed);
        slot.buffered
            .store(net.buffered_phits_total(), Ordering::Relaxed);
        slot.all_complete.store(
            net.schedule().is_none_or(ScheduleRuntime::all_complete),
            Ordering::Relaxed,
        );

        // Everyone has exported and published.
        #[cfg(feature = "profile")]
        let wait_start = std::time::Instant::now();
        c.inner.wait();
        #[cfg(feature = "profile")]
        {
            self.barrier_wait_nanos += wait_start.elapsed().as_nanos() as u64;
        }

        // Import, in deterministic transmitter order.
        for src in 0..shards {
            if src == self.id {
                continue;
            }
            let mut batch = c.mail[src][self.id].lock().unwrap();
            for (li, mut phit, payload) in batch.phits.drain(..) {
                let key = (li, phit.vc);
                let local = match payload {
                    Some(packet) => {
                        let id = net.adopt_packet(&packet);
                        self.xlat.insert(key, id);
                        id
                    }
                    None => *self
                        .xlat
                        .get(&key)
                        .expect("boundary body phit without a translated head"),
                };
                if phit.is_tail() {
                    self.xlat.remove(&key);
                }
                phit.packet = local;
                net.import_link_phit(li as usize, phit);
            }
            for (li, credit) in batch.credits.drain(..) {
                net.import_link_credit(li as usize, credit);
            }
            if !batch.deliveries.is_empty() {
                net.apply_remote_deliveries(&batch.deliveries);
                batch.deliveries.clear();
            }
        }

        // Global watchdog + telemetry view (identical on every shard).
        let mut global_activity = false;
        let mut global_live = false;
        let mut generated = 0u64;
        let mut delivered = 0u64;
        let mut buffered = 0u64;
        for slot in &c.slots {
            global_activity |= slot.activity.load(Ordering::Relaxed);
            global_live |= slot.live.load(Ordering::Relaxed);
            generated += slot.generated.load(Ordering::Relaxed);
            delivered += slot.delivered.load(Ordering::Relaxed);
            buffered += slot.buffered.load(Ordering::Relaxed);
        }
        net.apply_watchdog(global_activity, global_live);
        c.slots[self.id]
            .deadlock
            .store(net.deadlock_detected, Ordering::Relaxed);
        net.note_cycle_peaks(generated - delivered, buffered);
        net.finish_cycle();
    }

    /// The worker loop: execute broadcast commands until [`Cmd::Exit`].
    fn worker(&mut self, c: &Conductor) {
        loop {
            c.outer.wait();
            let cmd = *c.cmd.lock().unwrap();
            match cmd {
                Cmd::Step => self.step(c),
                Cmd::SetInjection(injection) => self.net.set_injection(injection),
                Cmd::TagMeasured(tag) => self.net.tag_measured = tag,
                Cmd::BeginMeasurement(cycle) => self.net.stats.begin_measurement(cycle),
                Cmd::EndMeasurement(cycle) => self.net.stats.end_measurement(cycle),
                Cmd::PreloadBurst(packets) => self.net.preload_burst(packets),
                Cmd::HaltSched => {
                    if let Some(sched) = self.net.schedule_mut() {
                        sched.halt();
                    }
                }
                Cmd::DropWorkload => {
                    let _ = self.net.take_workload();
                    self.net.set_injection(None);
                }
                Cmd::Exit => {
                    c.outer.wait();
                    return;
                }
            }
            // Keep the published counters and state flags current even for
            // control commands that change them outside a step (burst
            // preloads in particular), and so the protocol loops never read a
            // stale default from before the first step.
            let slot = &c.slots[self.id];
            slot.drained.store(self.net.is_drained(), Ordering::Relaxed);
            slot.live
                .store(self.net.packets.live() > 0, Ordering::Relaxed);
            slot.all_complete.store(
                self.net
                    .schedule()
                    .is_none_or(ScheduleRuntime::all_complete),
                Ordering::Relaxed,
            );
            slot.generated
                .store(self.net.stats.total_generated, Ordering::Relaxed);
            slot.delivered
                .store(self.net.stats.total_delivered, Ordering::Relaxed);
            c.outer.wait();
        }
    }
}

/// A [`Simulation`](dragonfly_sim::Simulation) partitioned into per-group
/// shards that step concurrently, producing byte-identical reports.
///
/// The run protocols mirror the sequential engine's exactly —
/// `run_steady_state`, `run_steady_state_workload`, `run_trace` and
/// `run_batch` — and for the same configuration and seed return the very same
/// bytes.  The routing mechanism must be `Clone` so that every shard can hold
/// its own (stateless) instance.
pub struct ShardedSimulation<R: RoutingAlgorithm + Clone> {
    shards: Vec<Shard<R>>,
    params: DragonflyParams,
    packet_size: usize,
    cycle: u64,
}

impl<R: RoutingAlgorithm + Clone> ShardedSimulation<R> {
    /// Build a sharded simulation: `plan.shards` full network replicas, each
    /// owning a contiguous range of groups, wired up through their boundary
    /// global links.  `traffic` is called once per shard and must produce
    /// identical pattern instances (it always does for the deterministic
    /// pattern constructors used throughout the workspace).
    pub fn new(
        config: SimConfig,
        plan: ShardPlan,
        routing: R,
        traffic: impl Fn() -> Box<dyn TrafficPattern>,
    ) -> Self {
        let params = config.params;
        let packet_size = config.packet_size;
        let group_ranges = plan.group_ranges(&params);
        let rpg = params.routers_per_group();
        let npr = params.nodes_per_router();
        let ports = params.ports_per_router();
        let router_ranges: Vec<Range<usize>> = group_ranges
            .iter()
            .map(|g| g.start * rpg..g.end * rpg)
            .collect();
        // Group index → owning shard, for the boundary wiring below.
        let mut shard_of_router = vec![0usize; params.num_routers()];
        for (s, rr) in router_ranges.iter().enumerate() {
            for r in rr.clone() {
                shard_of_router[r] = s;
            }
        }

        let shards = router_ranges
            .iter()
            .enumerate()
            .map(|(id, rr)| {
                let mut net = Network::with_routing(config.clone(), routing.clone(), traffic());
                net.set_owned_nodes(rr.start * npr..rr.end * npr);
                let mut tx_links = Vec::new();
                let mut rx_links = Vec::new();
                for li in 0..net.num_links() {
                    let transmitter = li / ports;
                    if let LinkEnd::Router { router, .. } = net.link_end(li) {
                        let tx = shard_of_router[transmitter];
                        let rx = shard_of_router[router];
                        if tx == rx {
                            continue;
                        }
                        if tx == id {
                            tx_links.push((li, rx));
                        } else if rx == id {
                            rx_links.push((li, tx));
                        }
                    }
                }
                Shard {
                    id,
                    net,
                    tx_links,
                    rx_links,
                    xlat: HashMap::new(),
                    phit_buf: Vec::new(),
                    credit_buf: Vec::new(),
                    #[cfg(feature = "profile")]
                    barrier_wait_nanos: 0,
                }
            })
            .collect();
        Self {
            shards,
            params,
            packet_size,
            cycle: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's network replica (tests, diagnostics).
    pub fn network(&self, shard: usize) -> &Network<R> {
        &self.shards[shard].net
    }

    /// Install `workload` into every shard replica (each compiles the same
    /// placement and pattern deterministically).
    pub fn install_workload(&mut self, workload: &WorkloadSpec) {
        for shard in &mut self.shards {
            let params = *shard.net.params();
            let (runtime, pattern) = workload.compile(&params, self.packet_size);
            shard.net.install_workload(runtime, Box::new(pattern));
        }
    }

    /// Install a dynamic job schedule into every shard replica and enable the
    /// delivery-feedback broadcast that keeps the replicas in lockstep.
    pub fn install_schedule(&mut self, trace: &Trace) {
        for shard in &mut self.shards {
            let params = *shard.net.params();
            let runtime = ScheduleRuntime::new(trace, params, self.packet_size);
            shard.net.install_schedule(runtime);
            shard.net.enable_sched_delivery_log();
        }
    }

    /// Spawn one scoped worker thread per shard, hand the orchestration
    /// protocol `f` a [`Driver`], and tear the workers down when it returns.
    fn with_workers<T>(&mut self, f: impl FnOnce(&Driver<'_>) -> T) -> T {
        let shards = self.shards.len();
        let conductor = Conductor::new(shards);
        let out = std::thread::scope(|scope| {
            for shard in self.shards.iter_mut() {
                let c = &conductor;
                scope.spawn(move || shard.worker(c));
            }
            let driver = Driver {
                c: &conductor,
                shards,
            };
            let out = f(&driver);
            driver.dispatch(Cmd::Exit);
            out
        });
        self.cycle = self.shards[0].net.cycle;
        out
    }

    /// Install observability probes into every shard replica.
    ///
    /// Each replica's probe hooks only ever fire for state the shard owns
    /// (packets are generated at owned nodes, delivered at owned destination
    /// routers, and only owned routers hold buffered phits), so every counter
    /// is accumulated by exactly one shard and [`Self::merged_probe`]
    /// reproduces the sequential recorder by plain element-wise merging.
    ///
    /// Online detector stepping is deferred on every replica: the detectors
    /// are machines over the *network-wide* counter stream, which no single
    /// shard sees, so their verdicts are recomputed by replaying the merged
    /// series inside [`ProbeRecorder::merge`] instead.
    pub fn install_probes(&mut self, cfg: ProbeConfig) {
        for shard in &mut self.shards {
            shard.net.install_probes(cfg.clone());
            if let Some(probe) = shard.net.probe_mut() {
                probe.defer_detection();
            }
        }
    }

    /// Read access to one shard's probe recorder (tests, diagnostics).
    pub fn probe(&self, shard: usize) -> Option<&ProbeRecorder> {
        self.shards[shard].net.probe()
    }

    /// Merge the per-shard probe recorders into the run-wide recorder, exactly
    /// like `merged_stats` merges the statistics collectors.  Returns
    /// `None` when probes were never installed.
    ///
    /// Detector verdicts are recomputed here by replaying the detector bank
    /// over the merged series (which the passive shard-invariance makes
    /// byte-identical to a sequential run's), so the merged recorder's trips
    /// equal the sequential engine's online trips.
    pub fn merged_probe(&self) -> Option<ProbeRecorder> {
        let mut merged = self.shards[0].net.probe()?.clone();
        for shard in &self.shards[1..] {
            merged.merge(
                shard
                    .net
                    .probe()
                    .expect("probes are installed on every shard"),
            );
        }
        // `merge` replays the detectors itself, but a single-shard plan never
        // merges — replay explicitly (idempotent) so deferral is always
        // resolved.
        merged.replay_detectors();
        Some(merged)
    }

    /// Per-phase wall-clock profile of one shard's replica network.
    #[cfg(feature = "profile")]
    pub fn phase_profile(&self, shard: usize) -> &dragonfly_sim::PhaseProfile {
        self.shards[shard].net.phase_profile()
    }

    /// Nanoseconds `shard` spent waiting at the inner export → import barrier.
    #[cfg(feature = "profile")]
    pub fn barrier_wait_nanos(&self, shard: usize) -> u64 {
        self.shards[shard].barrier_wait_nanos
    }

    /// Merge the per-shard collectors into the run-wide collector the reports
    /// are built from (exact — see the module docs).
    fn merged_stats(&self) -> StatsCollector {
        let mut merged = self.shards[0].net.stats.clone();
        for shard in &self.shards[1..] {
            merged.merge(&shard.net.stats);
        }
        merged
    }

    /// Run the paper's steady-state protocol across all shards; byte-identical
    /// to [`Simulation::run_steady_state`](dragonfly_sim::Simulation::run_steady_state).
    pub fn run_steady_state(
        &mut self,
        offered_load: f64,
        warmup: u64,
        measure: u64,
        drain: u64,
    ) -> SimReport {
        let packet_size = self.packet_size;
        let nodes = self.params.num_nodes();
        let has_workload = self.shards[0].net.workload().is_some();
        let start_cycle = self.cycle;
        self.with_workers(|driver| {
            if !has_workload {
                driver.dispatch(Cmd::SetInjection(Some(BernoulliInjection::new(
                    offered_load,
                    packet_size,
                ))));
            }
            driver.dispatch(Cmd::TagMeasured(false));
            driver.run(warmup);
            let start = start_cycle + warmup;
            driver.dispatch(Cmd::BeginMeasurement(start));
            driver.dispatch(Cmd::TagMeasured(true));
            driver.run(measure);
            driver.dispatch(Cmd::EndMeasurement(start + measure));
            driver.dispatch(Cmd::TagMeasured(false));

            let measured_goal = driver.total_generated();
            let mut drained = 0;
            while drained < drain && driver.total_delivered() < measured_goal && !driver.deadlock()
            {
                driver.step();
                drained += 1;
            }
        });

        sim_report(
            &self.merged_stats(),
            SimRunIdentity {
                routing: self.shards[0].net.routing_name().to_string(),
                traffic: self.shards[0].net.traffic_name(),
                offered_load,
                nodes,
                warmup_cycles: warmup,
                measure_cycles: measure,
                deadlock_detected: self.shards[0].net.deadlock_detected,
            },
        )
    }

    /// Run an installed workload's steady-state protocol; byte-identical to
    /// [`Simulation::run_steady_state_workload`](dragonfly_sim::Simulation::run_steady_state_workload).
    pub fn run_steady_state_workload(
        &mut self,
        warmup: u64,
        measure: u64,
        drain: u64,
    ) -> WorkloadReport {
        let nodes = self.params.num_nodes();
        let nominal = self.shards[0]
            .net
            .workload()
            .expect("run_steady_state_workload requires an installed workload")
            .nominal_offered_load(nodes);
        let aggregate = self.run_steady_state(nominal, warmup, measure, drain);

        let stats = self.merged_stats();
        let meas_start = stats.meter.window_start;
        let meas_end = stats.meter.window_end;
        let meas_cycles = meas_end.saturating_sub(meas_start);
        let runtime = self.shards[0].net.workload().unwrap();
        let scoped = stats
            .scoped
            .as_ref()
            .expect("scoped statistics are enabled when a workload is installed");

        let jobs = (0..runtime.num_jobs())
            .map(|j| {
                let job = runtime.job(j as u16);
                let phases = (0..job.phases())
                    .map(|ph| {
                        let overlap = span_overlap(
                            (job.phase_start(ph), job.phase_end(ph)),
                            (meas_start, meas_end),
                        );
                        phase_report(
                            PhaseIdentity {
                                job: job.name().to_string(),
                                phase: ph,
                                pattern: job.phase_pattern(ph).to_string(),
                                offered_load: job.phase_load(ph),
                                start_cycle: job.phase_start(ph),
                                end_cycle: job.phase_end(ph),
                            },
                            &scoped.per_phase[j][ph],
                            job.nodes(),
                            overlap,
                        )
                    })
                    .collect();
                job_report(
                    job.name().to_string(),
                    &scoped.per_job[j],
                    job.nodes(),
                    meas_cycles,
                    None,
                    phases,
                )
            })
            .collect();
        WorkloadReport { aggregate, jobs }
    }

    /// Run an installed job schedule to completion or `horizon`; byte-identical
    /// to [`Simulation::run_trace`](dragonfly_sim::Simulation::run_trace).
    ///
    /// # Panics
    ///
    /// Panics without an installed schedule, or if the simulation has already
    /// stepped.
    pub fn run_trace(&mut self, horizon: u64, drain: u64) -> WorkloadReport {
        assert!(
            self.shards[0].net.schedule().is_some(),
            "run_trace requires an installed schedule"
        );
        assert_eq!(self.cycle, 0, "run_trace requires a fresh simulation");
        let nodes = self.params.num_nodes();
        let packet_size = self.packet_size;

        let end = self.with_workers(|driver| {
            driver.dispatch(Cmd::BeginMeasurement(0));
            driver.dispatch(Cmd::TagMeasured(true));
            let mut cycle = 0;
            while cycle < horizon && !driver.deadlock() {
                driver.step();
                cycle += 1;
                if driver.all_complete() && driver.all_drained() {
                    break;
                }
            }
            let end = cycle;
            driver.dispatch(Cmd::EndMeasurement(end));
            driver.dispatch(Cmd::TagMeasured(false));
            driver.dispatch(Cmd::HaltSched);
            let mut drained = 0;
            while drained < drain && !driver.all_drained() && !driver.deadlock() {
                driver.step();
                drained += 1;
            }
            end
        });

        let stats = self.merged_stats();
        let runtime = self.shards[0].net.schedule().unwrap();
        let aggregate = sim_report(
            &stats,
            SimRunIdentity {
                routing: self.shards[0].net.routing_name().to_string(),
                traffic: runtime.label().to_string(),
                offered_load: runtime.nominal_offered_load(nodes),
                nodes,
                warmup_cycles: 0,
                measure_cycles: end,
                deadlock_detected: self.shards[0].net.deadlock_detected,
            },
        );
        let scoped = stats
            .scoped
            .as_ref()
            .expect("scoped statistics are enabled when a schedule is installed");

        let jobs = (0..runtime.num_jobs() as u16)
            .map(|j| {
                let spec = runtime.job_spec(j);
                let lifetime = runtime.lifetime(j);
                let start = lifetime.placed.unwrap_or(end);
                let stop = lifetime.completed.unwrap_or(end);
                let resident = span_overlap((start, stop), (0, end));
                let slowdown = match (lifetime.wait_cycles(), lifetime.service_cycles()) {
                    (Some(wait), Some(service)) => {
                        let ideal = runtime.ideal_service_cycles(j, packet_size);
                        Some((wait + service) as f64 / ideal.max(1) as f64)
                    }
                    _ => None,
                };
                let phase = phase_report(
                    PhaseIdentity {
                        job: spec.name.clone(),
                        phase: 0,
                        pattern: spec.pattern.name(),
                        offered_load: spec.offered_load,
                        start_cycle: start,
                        end_cycle: stop,
                    },
                    &scoped.per_phase[j as usize][0],
                    spec.size,
                    resident,
                );
                job_report(
                    spec.name.clone(),
                    &scoped.per_job[j as usize],
                    spec.size,
                    resident,
                    Some(JobLifecycleReport {
                        arrival_cycle: lifetime.arrival,
                        placed_cycle: lifetime.placed,
                        completion_cycle: lifetime.completed,
                        wait_cycles: lifetime.wait_cycles(),
                        slowdown,
                    }),
                    vec![phase],
                )
            })
            .collect();
        WorkloadReport { aggregate, jobs }
    }

    /// Run the burst-consumption protocol; byte-identical to
    /// [`Simulation::run_batch`](dragonfly_sim::Simulation::run_batch).
    pub fn run_batch(&mut self, burst: BurstSpec, max_cycles: u64) -> BatchReport {
        assert_eq!(
            burst.packet_size(),
            self.packet_size,
            "burst packet size must match the configured packet size"
        );
        assert!(
            self.shards[0].net.schedule().is_none(),
            "burst runs do not support dynamic schedules"
        );
        let start = self.cycle;
        let (total, consumption) = self.with_workers(|driver| {
            driver.dispatch(Cmd::DropWorkload);
            driver.dispatch(Cmd::BeginMeasurement(start));
            driver.dispatch(Cmd::PreloadBurst(burst.packets_per_node()));
            let total = driver.total_generated();
            let mut cycle = start;
            while !driver.all_drained() && cycle - start < max_cycles && !driver.deadlock() {
                driver.step();
                cycle += 1;
            }
            driver.dispatch(Cmd::EndMeasurement(cycle));
            (total, cycle - start)
        });

        let stats = self.merged_stats();
        let drained = self.shards.iter().all(|s| s.net.is_drained());
        let deadlock = self.shards[0].net.deadlock_detected;
        BatchReport {
            routing: self.shards[0].net.routing_name().to_string(),
            traffic: self.shards[0].net.traffic_name(),
            packets_per_node: burst.packets_per_node(),
            packets_total: total,
            packets_delivered: stats.total_delivered,
            consumption_cycles: consumption,
            avg_latency_cycles: stats.latency.mean(),
            timed_out: !drained && !deadlock,
            deadlock_detected: deadlock,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_sim::{BaselineMinimal, Simulation};
    use dragonfly_traffic::Uniform;

    fn config(seed: u64) -> SimConfig {
        SimConfig::paper_vct(2).with_seed(seed)
    }

    #[test]
    fn plan_splits_groups_contiguously_and_covers_everything() {
        let params = DragonflyParams::new(2); // 9 groups
        for shards in [1, 2, 3, 4, 9] {
            let ranges = ShardPlan::new(shards).group_ranges(&params);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, 9);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
                assert!(!pair[0].is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "one whole group per shard")]
    fn plan_rejects_more_shards_than_groups() {
        let params = DragonflyParams::new(2);
        let _ = ShardPlan::new(10).group_ranges(&params);
    }

    #[test]
    fn boundary_wiring_is_symmetric_and_global_only() {
        let sim =
            ShardedSimulation::new(config(1), ShardPlan::new(3), BaselineMinimal::new(), || {
                Box::new(Uniform::new())
            });
        let params = DragonflyParams::new(2);
        let ports = params.ports_per_router();
        let mut tx_total = 0;
        let mut rx_total = 0;
        for s in 0..sim.shards() {
            let shard = &sim.shards[s];
            tx_total += shard.tx_links.len();
            rx_total += shard.rx_links.len();
            for &(li, peer) in &shard.tx_links {
                assert_ne!(peer, s);
                // The transmitting router must be owned by this shard...
                let tx_router = li / ports;
                assert!(sim.shards[s]
                    .net
                    .owned_nodes()
                    .contains(&(tx_router * params.nodes_per_router())));
                // ...and the link must appear in the peer's receive list.
                assert!(sim.shards[peer]
                    .rx_links
                    .iter()
                    .any(|&(l, p)| l == li && p == s));
            }
        }
        assert_eq!(tx_total, rx_total);
        assert!(
            tx_total > 0,
            "3 shards of a 9-group machine must share links"
        );
    }

    #[test]
    fn single_shard_steady_state_matches_sequential() {
        let mut sequential = Simulation::new(
            config(7),
            Box::new(BaselineMinimal::new()),
            Box::new(Uniform::new()),
        );
        let expected = sequential.run_steady_state(0.15, 400, 800, 1_200);

        let mut sharded =
            ShardedSimulation::new(config(7), ShardPlan::new(1), BaselineMinimal::new(), || {
                Box::new(Uniform::new())
            });
        let got = sharded.run_steady_state(0.15, 400, 800, 1_200);
        assert_eq!(got, expected);
    }

    #[test]
    fn merged_probe_matches_sequential_recorder() {
        let mut sequential = Simulation::new(
            config(11),
            Box::new(BaselineMinimal::new()),
            Box::new(Uniform::new()),
        );
        sequential.install_probes(ProbeConfig::full(32));
        let expected_report = sequential.run_steady_state(0.2, 300, 600, 900);
        let expected = sequential.take_probe().unwrap();

        for shards in [2, 3] {
            let mut sharded = ShardedSimulation::new(
                config(11),
                ShardPlan::new(shards),
                BaselineMinimal::new(),
                || Box::new(Uniform::new()),
            );
            sharded.install_probes(ProbeConfig::full(32));
            let report = sharded.run_steady_state(0.2, 300, 600, 900);
            assert_eq!(report, expected_report, "{shards} shards diverged");

            let merged = sharded.merged_probe().unwrap();
            assert_eq!(merged.samples(), expected.samples());
            // Every time-series column is accumulated by exactly one shard, so
            // the element-wise merge reproduces the sequential samples.
            assert_eq!(
                merged.series().injected.samples(),
                expected.series().injected.samples(),
                "{shards} shards: injected series diverged"
            );
            assert_eq!(
                merged.series().delivered.samples(),
                expected.series().delivered.samples()
            );
            assert_eq!(
                merged.series().buffered_phits.samples(),
                expected.series().buffered_phits.samples()
            );
            assert_eq!(
                merged.series().pb_congested.samples(),
                expected.series().pb_congested.samples()
            );
            assert_eq!(
                merged.series().link_global_phits.samples(),
                expected.series().link_global_phits.samples()
            );
            // The deterministic packet sample is a pure hash of
            // (source, generation cycle), so both engines pick the same
            // packets; sorting recovers a canonical order.
            assert_eq!(merged.sorted_flight(), expected.sorted_flight());
            assert_eq!(merged.heat_windows(), expected.heat_windows());
        }
    }

    #[test]
    fn multi_shard_steady_state_matches_sequential() {
        let mut sequential = Simulation::new(
            config(9),
            Box::new(BaselineMinimal::new()),
            Box::new(Uniform::new()),
        );
        let expected = sequential.run_steady_state(0.2, 500, 1_000, 1_500);

        for shards in [2, 3] {
            let mut sharded = ShardedSimulation::new(
                config(9),
                ShardPlan::new(shards),
                BaselineMinimal::new(),
                || Box::new(Uniform::new()),
            );
            let got = sharded.run_steady_state(0.2, 500, 1_000, 1_500);
            assert_eq!(got, expected, "{shards} shards diverged");
        }
    }
}
