//! Statistics primitives for network simulation.
//!
//! The simulator produces two kinds of measurements:
//!
//! * *per-packet* observations (latency, hop counts, misroute counts) which are
//!   aggregated with [`RunningStats`] and [`Histogram`],
//! * *per-cycle* throughput counters, aggregated over a measurement window by
//!   [`ThroughputMeter`] and optionally sampled over time by [`TimeSeries`].
//!
//! The end product of a steady-state run is a [`SimReport`]; a batch ("burst
//! consumption") run produces a [`BatchReport`].  Both serialize with `serde` and can
//! be written as CSV rows by the experiment harness.

#![warn(missing_docs)]

mod exact;
mod histogram;
#[cfg(feature = "json")]
mod json;
mod report;
mod running;
mod scoped;
mod timeseries;
mod workload_report;

pub use exact::ExactStats;
pub use histogram::Histogram;
#[cfg(feature = "json")]
pub use json::{time_series_from_json, validate_json};
pub use report::{BatchReport, SimReport};
pub use running::RunningStats;
pub use scoped::ScopedStats;
pub use timeseries::TimeSeries;
pub use workload_report::{JobLifecycleReport, JobReport, PhaseReport, WorkloadReport};

use serde::{Deserialize, Serialize};

/// Accumulates delivered traffic over a measurement window to compute accepted load.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ThroughputMeter {
    /// Phits delivered to destination nodes inside the window.
    pub phits_delivered: u64,
    /// Packets delivered inside the window.
    pub packets_delivered: u64,
    /// Phits injected by sources inside the window.
    pub phits_injected: u64,
    /// Packets injected inside the window.
    pub packets_injected: u64,
    /// First cycle of the window (inclusive).
    pub window_start: u64,
    /// Last cycle of the window seen so far (exclusive).
    pub window_end: u64,
}

impl ThroughputMeter {
    /// Create a meter whose window starts at `start`.
    pub fn new(start: u64) -> Self {
        Self {
            window_start: start,
            window_end: start,
            ..Self::default()
        }
    }

    /// Record the delivery of a whole packet of `phits` phits at cycle `cycle`.
    pub fn record_delivery(&mut self, phits: u64, cycle: u64) {
        self.phits_delivered += phits;
        self.packets_delivered += 1;
        self.window_end = self.window_end.max(cycle + 1);
    }

    /// Record the injection of a whole packet of `phits` phits at cycle `cycle`.
    pub fn record_injection(&mut self, phits: u64, cycle: u64) {
        self.phits_injected += phits;
        self.packets_injected += 1;
        self.window_end = self.window_end.max(cycle + 1);
    }

    /// Advance the window end (call once per simulated cycle).
    pub fn tick(&mut self, cycle: u64) {
        self.window_end = self.window_end.max(cycle + 1);
    }

    /// Length of the measurement window in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_end.saturating_sub(self.window_start)
    }

    /// Accepted load in phits per node per cycle.
    pub fn accepted_load(&self, nodes: usize) -> f64 {
        let cycles = self.window_cycles();
        if cycles == 0 || nodes == 0 {
            return 0.0;
        }
        self.phits_delivered as f64 / (nodes as f64 * cycles as f64)
    }

    /// Offered (injected) load in phits per node per cycle.
    pub fn injected_load(&self, nodes: usize) -> f64 {
        let cycles = self.window_cycles();
        if cycles == 0 || nodes == 0 {
            return 0.0;
        }
        self.phits_injected as f64 / (nodes as f64 * cycles as f64)
    }

    /// Merge another meter covering the *same* measurement window into this one
    /// (per-shard meters of one sharded run).  Counters add exactly; the window
    /// end is the maximum seen by either side.
    ///
    /// # Panics
    ///
    /// Panics when the two meters disagree about the window start — merging
    /// meters of different windows is always a bug.
    pub fn merge(&mut self, other: &ThroughputMeter) {
        assert_eq!(
            self.window_start, other.window_start,
            "cannot merge throughput meters with different window starts"
        );
        self.phits_delivered += other.phits_delivered;
        self.packets_delivered += other.packets_delivered;
        self.phits_injected += other.phits_injected;
        self.packets_injected += other.packets_injected;
        self.window_end = self.window_end.max(other.window_end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_meter_accepted_load() {
        let mut m = ThroughputMeter::new(100);
        for cycle in 100..200 {
            m.tick(cycle);
            if cycle % 2 == 0 {
                m.record_delivery(8, cycle);
            }
        }
        assert_eq!(m.window_cycles(), 100);
        assert_eq!(m.packets_delivered, 50);
        // 50 packets * 8 phits / (4 nodes * 100 cycles) = 1.0
        assert!((m.accepted_load(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_meter_injected_load() {
        let mut m = ThroughputMeter::new(0);
        for cycle in 0..10 {
            m.record_injection(4, cycle);
        }
        assert!((m.injected_load(2) - 2.0).abs() < 1e-12);
        assert_eq!(m.packets_injected, 10);
    }

    #[test]
    fn empty_meter_is_zero() {
        let m = ThroughputMeter::new(5);
        assert_eq!(m.accepted_load(16), 0.0);
        assert_eq!(m.injected_load(16), 0.0);
        assert_eq!(m.window_cycles(), 0);
    }

    #[test]
    fn zero_nodes_does_not_divide_by_zero() {
        let mut m = ThroughputMeter::new(0);
        m.record_delivery(8, 3);
        assert_eq!(m.accepted_load(0), 0.0);
    }
}
