//! Periodic sampling of a scalar quantity over simulated time.

use serde::{Deserialize, Serialize};

/// A time series sampled every `period` cycles.
///
/// Used by the harness to track e.g. accepted load over time, which lets tests verify
/// that a run has actually reached steady state before the measurement window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    period: u64,
    samples: Vec<f64>,
}

impl TimeSeries {
    /// Create a series sampled every `period` cycles (`period ≥ 1`).
    pub fn new(period: u64) -> Self {
        assert!(period >= 1, "sampling period must be at least 1 cycle");
        Self {
            period,
            samples: Vec::new(),
        }
    }

    /// Sampling period in cycles.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Append a sample.
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// All samples in order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the most recent `n` samples (or all of them if fewer exist).
    pub fn recent_mean(&self, n: usize) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let start = self.samples.len().saturating_sub(n);
        let slice = &self.samples[start..];
        slice.iter().sum::<f64>() / slice.len() as f64
    }

    /// Relative change between the mean of the first and second half of the most
    /// recent `window` samples.  Values close to zero indicate steady state.
    pub fn drift(&self, window: usize) -> f64 {
        let n = window.min(self.samples.len());
        if n < 4 {
            return f64::INFINITY;
        }
        let start = self.samples.len() - n;
        let half = n / 2;
        let first: f64 = self.samples[start..start + half].iter().sum::<f64>() / half as f64;
        let second: f64 = self.samples[start + half..].iter().sum::<f64>() / (n - half) as f64;
        if first.abs() < 1e-12 && second.abs() < 1e-12 {
            return 0.0;
        }
        let base = first.abs().max(second.abs());
        (second - first).abs() / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut ts = TimeSeries::new(100);
        assert!(ts.is_empty());
        ts.push(1.0);
        ts.push(2.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.samples(), &[1.0, 2.0]);
        assert_eq!(ts.period(), 100);
    }

    #[test]
    fn recent_mean_uses_tail() {
        let mut ts = TimeSeries::new(1);
        for x in [10.0, 10.0, 2.0, 4.0] {
            ts.push(x);
        }
        assert!((ts.recent_mean(2) - 3.0).abs() < 1e-12);
        assert!((ts.recent_mean(100) - 6.5).abs() < 1e-12);
        assert_eq!(TimeSeries::new(1).recent_mean(10), 0.0);
    }

    #[test]
    fn drift_detects_steady_state() {
        let mut steady = TimeSeries::new(1);
        let mut ramping = TimeSeries::new(1);
        for i in 0..100 {
            steady.push(5.0 + (i % 2) as f64 * 0.01);
            ramping.push(i as f64);
        }
        assert!(steady.drift(50) < 0.01);
        assert!(ramping.drift(50) > 0.1);
    }

    #[test]
    fn drift_on_short_series_is_infinite() {
        let mut ts = TimeSeries::new(1);
        ts.push(1.0);
        assert!(ts.drift(10).is_infinite());
    }

    #[test]
    fn drift_all_zero_is_zero() {
        let mut ts = TimeSeries::new(1);
        for _ in 0..20 {
            ts.push(0.0);
        }
        assert_eq!(ts.drift(20), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_period_rejected() {
        TimeSeries::new(0);
    }
}
