//! Periodic sampling of a scalar quantity over simulated time.

use serde::{Deserialize, Serialize};

/// A time series sampled every `period` cycles.
///
/// Used by the harness to track e.g. accepted load over time, which lets tests verify
/// that a run has actually reached steady state before the measurement window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeSeries {
    period: u64,
    samples: Vec<f64>,
}

impl TimeSeries {
    /// Create a series sampled every `period` cycles (`period ≥ 1`).
    pub fn new(period: u64) -> Self {
        assert!(period >= 1, "sampling period must be at least 1 cycle");
        Self {
            period,
            samples: Vec::new(),
        }
    }

    /// Create a series with its backing storage reserved up front, so the
    /// first `capacity` pushes perform no heap allocation (the probe layer
    /// relies on this to keep the cycle loop allocation-free).
    pub fn with_capacity(period: u64, capacity: usize) -> Self {
        let mut ts = Self::new(period);
        ts.samples.reserve_exact(capacity);
        ts
    }

    /// Sampling period in cycles.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Samples the backing store can hold before it must grow.
    pub fn capacity(&self) -> usize {
        self.samples.capacity()
    }

    /// The simulated cycle sample `index` was taken at.  Sampling happens at
    /// every multiple of the period, so at a horizon that is not a multiple of
    /// the period the last sample's cycle is simply the largest multiple not
    /// exceeding the horizon — there is no partial final sample.
    pub fn cycle_of(&self, index: usize) -> u64 {
        index as u64 * self.period
    }

    /// Number of samples a run of `horizon` cycles produces when cycle 0 is
    /// sampled and the run ends *before* cycle `horizon`.
    pub fn samples_for_horizon(period: u64, horizon: u64) -> usize {
        assert!(period >= 1, "sampling period must be at least 1 cycle");
        if horizon == 0 {
            0
        } else {
            ((horizon - 1) / period + 1) as usize
        }
    }

    /// Append a sample.
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Element-wise sum of another series into this one.
    ///
    /// This is the per-shard merge of one logical series recorded by several
    /// engine partitions: every sample index corresponds to the same simulated
    /// cycle on both sides, each shard contributes only what it observed
    /// locally, and addition makes the result independent of merge order
    /// (commutative and associative, like [`crate::ExactStats`]).  A shorter
    /// side is treated as zero-padded, so merging series of unequal length is
    /// well defined and still order-independent.
    ///
    /// # Panics
    ///
    /// Panics when the two series disagree about the sampling period.
    pub fn merge(&mut self, other: &TimeSeries) {
        assert_eq!(
            self.period, other.period,
            "cannot merge time series with different sampling periods"
        );
        if other.samples.len() > self.samples.len() {
            self.samples.resize(other.samples.len(), 0.0);
        }
        for (dst, src) in self.samples.iter_mut().zip(other.samples.iter()) {
            *dst += *src;
        }
    }

    /// All samples in order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean of the most recent `n` samples (or all of them if fewer exist).
    pub fn recent_mean(&self, n: usize) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let start = self.samples.len().saturating_sub(n);
        let slice = &self.samples[start..];
        slice.iter().sum::<f64>() / slice.len() as f64
    }

    /// Relative change between the mean of the first and second half of the most
    /// recent `window` samples.  Values close to zero indicate steady state.
    pub fn drift(&self, window: usize) -> f64 {
        let n = window.min(self.samples.len());
        if n < 4 {
            return f64::INFINITY;
        }
        let start = self.samples.len() - n;
        let half = n / 2;
        let first: f64 = self.samples[start..start + half].iter().sum::<f64>() / half as f64;
        let second: f64 = self.samples[start + half..].iter().sum::<f64>() / (n - half) as f64;
        if first.abs() < 1e-12 && second.abs() < 1e-12 {
            return 0.0;
        }
        let base = first.abs().max(second.abs());
        (second - first).abs() / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut ts = TimeSeries::new(100);
        assert!(ts.is_empty());
        ts.push(1.0);
        ts.push(2.0);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.samples(), &[1.0, 2.0]);
        assert_eq!(ts.period(), 100);
    }

    #[test]
    fn recent_mean_uses_tail() {
        let mut ts = TimeSeries::new(1);
        for x in [10.0, 10.0, 2.0, 4.0] {
            ts.push(x);
        }
        assert!((ts.recent_mean(2) - 3.0).abs() < 1e-12);
        assert!((ts.recent_mean(100) - 6.5).abs() < 1e-12);
        assert_eq!(TimeSeries::new(1).recent_mean(10), 0.0);
    }

    #[test]
    fn drift_detects_steady_state() {
        let mut steady = TimeSeries::new(1);
        let mut ramping = TimeSeries::new(1);
        for i in 0..100 {
            steady.push(5.0 + (i % 2) as f64 * 0.01);
            ramping.push(i as f64);
        }
        assert!(steady.drift(50) < 0.01);
        assert!(ramping.drift(50) > 0.1);
    }

    #[test]
    fn drift_on_short_series_is_infinite() {
        let mut ts = TimeSeries::new(1);
        ts.push(1.0);
        assert!(ts.drift(10).is_infinite());
    }

    #[test]
    fn drift_all_zero_is_zero() {
        let mut ts = TimeSeries::new(1);
        for _ in 0..20 {
            ts.push(0.0);
        }
        assert_eq!(ts.drift(20), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_period_rejected() {
        TimeSeries::new(0);
    }

    #[test]
    fn with_capacity_preallocates_and_pushes_do_not_grow() {
        let mut ts = TimeSeries::with_capacity(64, 40);
        let cap = ts.capacity();
        assert!(cap >= 40);
        for i in 0..40 {
            ts.push(i as f64);
        }
        assert_eq!(ts.capacity(), cap, "pushes within capacity must not grow");
        assert_eq!(ts.len(), 40);
    }

    fn series_of(period: u64, values: &[f64]) -> TimeSeries {
        let mut ts = TimeSeries::new(period);
        for &v in values {
            ts.push(v);
        }
        ts
    }

    #[test]
    fn merge_is_order_independent_and_associative() {
        // Three per-shard fragments of one logical series, deliberately of
        // unequal length (a shard that stopped sampling early pads with zero).
        let a = series_of(64, &[1.0, 2.0, 3.0]);
        let b = series_of(64, &[10.0, 20.0]);
        let c = series_of(64, &[100.0, 200.0, 300.0, 400.0]);

        let merged = |order: &[&TimeSeries]| {
            let mut acc = order[0].clone();
            for s in &order[1..] {
                acc.merge(s);
            }
            acc.samples().to_vec()
        };

        let abc = merged(&[&a, &b, &c]);
        assert_eq!(abc, vec![111.0, 222.0, 303.0, 400.0]);
        assert_eq!(abc, merged(&[&c, &a, &b]), "merge must be commutative");
        assert_eq!(abc, merged(&[&b, &c, &a]), "merge must be commutative");

        // Associativity: (a + b) + c == a + (b + c).
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left.samples(), right.samples());
    }

    #[test]
    #[should_panic(expected = "different sampling periods")]
    fn merge_rejects_mismatched_periods() {
        let mut a = TimeSeries::new(32);
        a.merge(&TimeSeries::new(64));
    }

    #[test]
    fn stride_alignment_at_non_divisor_horizons() {
        // A 1000-cycle run sampled every 64 cycles: cycle 0 plus every later
        // multiple of 64 below 1000 — 16 samples, the last at cycle 960.
        assert_eq!(TimeSeries::samples_for_horizon(64, 1000), 16);
        let ts = TimeSeries::new(64);
        assert_eq!(ts.cycle_of(0), 0);
        assert_eq!(ts.cycle_of(15), 960);
        // Exact-divisor horizon: the boundary cycle itself is never sampled
        // (runs end before it), so 1024 cycles also yield 16 samples.
        assert_eq!(TimeSeries::samples_for_horizon(64, 1024), 16);
        assert_eq!(TimeSeries::samples_for_horizon(64, 1025), 17);
        // Degenerate cases.
        assert_eq!(TimeSeries::samples_for_horizon(64, 0), 0);
        assert_eq!(TimeSeries::samples_for_horizon(64, 1), 1);
        assert_eq!(TimeSeries::samples_for_horizon(1, 5), 5);
    }
}
