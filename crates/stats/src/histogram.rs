//! Fixed-bin-width histogram with overflow bin, used for latency distributions.

use serde::{Deserialize, Serialize};

/// Histogram over non-negative values with uniform bin width.
///
/// Values above `bin_width * bins` fall into an overflow bin so that tail packets
/// (e.g. latencies during congestion collapse) are still counted.  Percentiles are
/// computed from the bin boundaries, which is accurate to one bin width — plenty for
/// cycle-count latencies binned at 1 cycle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram of `bins` bins of width `bin_width`.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
        }
    }

    /// Histogram suited to latency measurements in cycles: 1-cycle bins up to `max`.
    pub fn for_latency(max_cycles: usize) -> Self {
        Self::new(1.0, max_cycles.max(1))
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: f64) {
        debug_assert!(value >= 0.0, "histogram values must be non-negative");
        let bin = (value / self.bin_width) as usize;
        if bin < self.counts.len() {
            self.counts[bin] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Total number of observations (including overflow).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of observations in the overflow bin.
    #[inline]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Count in a specific bin.
    pub fn bin_count(&self, bin: usize) -> u64 {
        self.counts.get(bin).copied().unwrap_or(0)
    }

    /// Number of regular bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Approximate percentile (`0.0 ..= 1.0`) using the upper edge of the bin that
    /// contains the requested rank.  Returns `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((i + 1) as f64 * self.bin_width);
            }
        }
        // Requested rank lies in the overflow region; report the histogram range.
        Some(self.counts.len() as f64 * self.bin_width)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(0.5)
    }

    /// Merge another histogram with identical geometry into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width, "bin widths differ");
        assert_eq!(self.counts.len(), other.counts.len(), "bin counts differ");
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(10.0, 5);
        h.record(0.0);
        h.record(9.9);
        h.record(10.0);
        h.record(49.9);
        h.record(50.0); // overflow
        assert_eq!(h.bin_count(0), 2);
        assert_eq!(h.bin_count(1), 1);
        assert_eq!(h.bin_count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn percentile_of_uniform_data() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let p50 = h.percentile(0.5).unwrap();
        assert!((p50 - 50.0).abs() <= 1.0, "p50 {p50}");
        let p99 = h.percentile(0.99).unwrap();
        assert!((p99 - 99.0).abs() <= 1.0, "p99 {p99}");
        assert_eq!(h.percentile(0.0).unwrap(), 1.0);
    }

    #[test]
    fn percentile_empty_is_none() {
        let h = Histogram::new(1.0, 10);
        assert!(h.percentile(0.5).is_none());
        assert!(h.median().is_none());
    }

    #[test]
    fn percentile_in_overflow() {
        let mut h = Histogram::new(1.0, 10);
        for _ in 0..10 {
            h.record(100.0);
        }
        assert_eq!(h.percentile(0.5), Some(10.0));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(2.0, 4);
        let mut b = Histogram::new(2.0, 4);
        a.record(1.0);
        b.record(1.5);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.bin_count(0), 2);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bin widths differ")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(1.0, 4);
        let b = Histogram::new(2.0, 4);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bin_width_rejected() {
        Histogram::new(0.0, 4);
    }

    #[test]
    fn latency_constructor() {
        let h = Histogram::for_latency(500);
        assert_eq!(h.bins(), 500);
    }
}
