//! Exact, order-independent statistics over integer-valued observations.

use serde::{Deserialize, Serialize};

/// Mean/variance/min/max accumulator for *integer-valued* observations (cycle
/// counts, hop counts) with exact integer internals.
///
/// Unlike [`crate::RunningStats`] (Welford's algorithm, whose floating-point
/// state depends on the order observations arrive in), this accumulator keeps
/// exact `u128` sums, so
///
/// * accumulation is **order-independent**: any permutation of the same
///   observations produces bit-identical state, and
/// * [`ExactStats::merge`] is **exact**: merging per-shard accumulators yields
///   bit-identical results to accumulating the union sequentially.
///
/// Both properties are what lets the sharded simulation engine produce
/// byte-identical reports to the sequential engine (see `dragonfly_shard`).
/// The derived quantities ([`ExactStats::mean`], [`ExactStats::variance`]) are
/// computed from the integer sums in one final floating-point step, which is a
/// pure function of the accumulated state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExactStats {
    count: u64,
    sum: u128,
    sum_sq: u128,
    min: u64,
    max: u64,
}

impl Default for ExactStats {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: u64) {
        self.count += 1;
        self.sum += x as u128;
        self.sum_sq += (x as u128) * (x as u128);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum as f64 / n;
        // E[x²] − E[x]²; clamp tiny negative rounding residue.
        (self.sum_sq as f64 / n - mean * mean).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[inline]
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min as f64)
        }
    }

    /// Largest observation (`None` when empty).
    #[inline]
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max as f64)
        }
    }

    /// Merge another accumulator into this one.  Exact: the result is
    /// bit-identical to having pushed both observation sets into one
    /// accumulator, in any order.
    pub fn merge(&mut self, other: &ExactStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = ExactStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn known_values() {
        let mut s = ExactStats::new();
        for x in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_is_bit_identical_to_sequential() {
        let xs: Vec<u64> = (0..10_000).map(|i| (i * i * 2654435761u64) >> 40).collect();
        let mut all = ExactStats::new();
        for &x in &xs {
            all.push(x);
        }
        // Split into three parts, accumulate separately, merge in a different order.
        let mut parts = [ExactStats::new(), ExactStats::new(), ExactStats::new()];
        for (i, &x) in xs.iter().enumerate() {
            parts[i % 3].push(x);
        }
        let mut merged = ExactStats::new();
        merged.merge(&parts[2]);
        merged.merge(&parts[0]);
        merged.merge(&parts[1]);
        assert_eq!(merged.count(), all.count());
        // Bit-identical, not just approximately equal.
        assert_eq!(merged.mean().to_bits(), all.mean().to_bits());
        assert_eq!(merged.variance().to_bits(), all.variance().to_bits());
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn push_order_does_not_matter() {
        let mut fwd = ExactStats::new();
        let mut rev = ExactStats::new();
        let xs: Vec<u64> = (0..1000).map(|i| i * 37 % 101).collect();
        for &x in &xs {
            fwd.push(x);
        }
        for &x in xs.iter().rev() {
            rev.push(x);
        }
        assert_eq!(fwd.mean().to_bits(), rev.mean().to_bits());
        assert_eq!(fwd.variance().to_bits(), rev.variance().to_bits());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = ExactStats::new();
        a.push(3);
        a.push(5);
        let before = a.clone();
        a.merge(&ExactStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = ExactStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn large_values_do_not_overflow() {
        let mut s = ExactStats::new();
        for _ in 0..1_000 {
            s.push(u32::MAX as u64);
        }
        assert!((s.mean() - u32::MAX as f64).abs() < 1.0);
        assert!(s.variance() < 1e-6);
    }
}
