//! Numerically-stable running statistics (Welford's online algorithm).

use serde::{Deserialize, Serialize};

/// Online mean/variance/min/max accumulator.
///
/// Uses Welford's algorithm so that millions of latency samples can be accumulated
/// without loss of precision and without storing the samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two observations).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    #[inline]
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation (`None` when empty).
    #[inline]
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn known_values() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-6);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(3.0);
        a.push(5.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 2);
        assert!((empty.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn large_offset_numerical_stability() {
        let mut s = RunningStats::new();
        let offset = 1e9;
        for i in 0..10_000 {
            s.push(offset + (i % 7) as f64);
        }
        // Variance of (i % 7) over many samples is 4.0.
        assert!(
            (s.variance() - 4.0).abs() < 0.01,
            "variance {}",
            s.variance()
        );
    }
}
