//! Structured JSON emission of the report types (behind the `json` feature).
//!
//! The workspace's default build uses the no-op `vendor/serde` stand-in, so the
//! `#[derive(Serialize)]` annotations generate nothing and reports can only leave
//! the process as hand-formatted CSV.  With the `json` feature enabled, these
//! hand-written [`ToJson`] impls emit the same structures as real machine-readable
//! JSON (correct escaping, `null` for absent values) through the functional
//! vendored `serde_json` stand-in — and swap transparently for the real
//! `serde_json` when building with network access.

use crate::{
    BatchReport, JobLifecycleReport, JobReport, PhaseReport, SimReport, TimeSeries, WorkloadReport,
};
use serde_json::{ToJson, Value};

impl ToJson for TimeSeries {
    fn to_json(&self) -> Value {
        Value::object([
            ("period", self.period().to_json()),
            ("samples", self.samples().to_json()),
        ])
    }
}

/// Parse a [`TimeSeries`] back out of the JSON emitted by its [`ToJson`] impl.
///
/// The vendored `serde_json` stand-in is emission-only, so the read side of the
/// round-trip lives here: a deliberately narrow parser for the exact
/// `{"period":N,"samples":[..]}` shape — enough for tooling that post-processes
/// probe output and for pinning the round-trip in tests.  Returns `None` on any
/// shape mismatch.
pub fn time_series_from_json(text: &str) -> Option<TimeSeries> {
    let body = text.trim().strip_prefix('{')?.strip_suffix('}')?;
    let rest = body.trim().strip_prefix("\"period\":")?;
    let (period_text, rest) = rest.split_once(',')?;
    let period: u64 = period_text.trim().parse().ok().filter(|&p| p >= 1)?;
    let list = rest
        .trim()
        .strip_prefix("\"samples\":")?
        .trim()
        .strip_prefix('[')?
        .strip_suffix(']')?;
    let mut ts = TimeSeries::new(period);
    for item in list.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        ts.push(item.parse().ok()?);
    }
    Some(ts)
}

impl ToJson for SimReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("routing", self.routing.to_json()),
            ("traffic", self.traffic.to_json()),
            ("offered_load", self.offered_load.to_json()),
            ("injected_load", self.injected_load.to_json()),
            ("accepted_load", self.accepted_load.to_json()),
            ("avg_latency_cycles", self.avg_latency_cycles.to_json()),
            ("p99_latency_cycles", self.p99_latency_cycles.to_json()),
            ("max_latency_cycles", self.max_latency_cycles.to_json()),
            ("avg_hops", self.avg_hops.to_json()),
            (
                "global_misroute_fraction",
                self.global_misroute_fraction.to_json(),
            ),
            (
                "local_misroute_fraction",
                self.local_misroute_fraction.to_json(),
            ),
            ("packets_delivered", self.packets_delivered.to_json()),
            ("packets_measured", self.packets_measured.to_json()),
            ("warmup_cycles", self.warmup_cycles.to_json()),
            ("measure_cycles", self.measure_cycles.to_json()),
            ("deadlock_detected", self.deadlock_detected.to_json()),
            (
                "peak_in_flight_packets",
                self.peak_in_flight_packets.to_json(),
            ),
            ("peak_buffered_phits", self.peak_buffered_phits.to_json()),
            ("peak_vc_occupancy", self.peak_vc_occupancy.to_json()),
        ])
    }
}

impl ToJson for BatchReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("routing", self.routing.to_json()),
            ("traffic", self.traffic.to_json()),
            ("packets_per_node", self.packets_per_node.to_json()),
            ("packets_total", self.packets_total.to_json()),
            ("packets_delivered", self.packets_delivered.to_json()),
            ("consumption_cycles", self.consumption_cycles.to_json()),
            ("avg_latency_cycles", self.avg_latency_cycles.to_json()),
            ("timed_out", self.timed_out.to_json()),
            ("deadlock_detected", self.deadlock_detected.to_json()),
        ])
    }
}

impl ToJson for PhaseReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("job", self.job.to_json()),
            ("phase", self.phase.to_json()),
            ("pattern", self.pattern.to_json()),
            ("offered_load", self.offered_load.to_json()),
            ("start_cycle", self.start_cycle.to_json()),
            // u64::MAX means "runs to the end of the simulation".
            (
                "end_cycle",
                if self.end_cycle == u64::MAX {
                    Value::Null
                } else {
                    self.end_cycle.to_json()
                },
            ),
            ("measured_cycles", self.measured_cycles.to_json()),
            ("injected_load", self.injected_load.to_json()),
            ("accepted_load", self.accepted_load.to_json()),
            ("avg_latency_cycles", self.avg_latency_cycles.to_json()),
            ("p99_latency_cycles", self.p99_latency_cycles.to_json()),
            ("max_latency_cycles", self.max_latency_cycles.to_json()),
            ("avg_hops", self.avg_hops.to_json()),
            (
                "global_misroute_fraction",
                self.global_misroute_fraction.to_json(),
            ),
            (
                "local_misroute_fraction",
                self.local_misroute_fraction.to_json(),
            ),
            ("packets_generated", self.packets_generated.to_json()),
            ("packets_delivered", self.packets_delivered.to_json()),
            ("packets_measured", self.packets_measured.to_json()),
        ])
    }
}

impl ToJson for JobLifecycleReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("arrival_cycle", self.arrival_cycle.to_json()),
            ("placed_cycle", self.placed_cycle.to_json()),
            ("completion_cycle", self.completion_cycle.to_json()),
            ("wait_cycles", self.wait_cycles.to_json()),
            ("slowdown", self.slowdown.to_json()),
        ])
    }
}

impl ToJson for JobReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("name", self.name.to_json()),
            ("nodes", self.nodes.to_json()),
            ("injected_load", self.injected_load.to_json()),
            ("accepted_load", self.accepted_load.to_json()),
            ("avg_latency_cycles", self.avg_latency_cycles.to_json()),
            ("p99_latency_cycles", self.p99_latency_cycles.to_json()),
            ("max_latency_cycles", self.max_latency_cycles.to_json()),
            ("avg_hops", self.avg_hops.to_json()),
            (
                "global_misroute_fraction",
                self.global_misroute_fraction.to_json(),
            ),
            (
                "local_misroute_fraction",
                self.local_misroute_fraction.to_json(),
            ),
            ("packets_generated", self.packets_generated.to_json()),
            ("packets_delivered", self.packets_delivered.to_json()),
            ("packets_measured", self.packets_measured.to_json()),
            ("lifecycle", self.lifecycle.to_json()),
            ("phases", self.phases.to_json()),
        ])
    }
}

impl ToJson for WorkloadReport {
    fn to_json(&self) -> Value {
        Value::object([
            ("aggregate", self.aggregate.to_json()),
            ("jobs", self.jobs.to_json()),
        ])
    }
}

/// Validate that `text` is one syntactically well-formed JSON document
/// (RFC 8259 grammar), returning the error position on failure.
///
/// The vendored `serde_json` stand-in is emission-only, so this
/// recursive-descent checker is the read-side complement: CI uses it to prove
/// the hand-rolled emitters (probe manifests, Perfetto traces, report JSON)
/// produce output a real JSON parser would accept.  It checks syntax only —
/// no value tree is built, so arbitrarily large documents validate in one
/// pass with O(depth) stack.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    validate_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

const MAX_JSON_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn validate_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_JSON_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_JSON_DEPTH} at byte {pos}"
        ));
    }
    match bytes.get(*pos) {
        Some(b'{') => validate_object(bytes, pos, depth),
        Some(b'[') => validate_array(bytes, pos, depth),
        Some(b'"') => validate_string(bytes, pos),
        Some(b't') => validate_literal(bytes, pos, b"true"),
        Some(b'f') => validate_literal(bytes, pos, b"false"),
        Some(b'n') => validate_literal(bytes, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => validate_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}")),
        None => Err("unexpected end of document".to_string()),
    }
}

fn validate_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key string at byte {pos}"));
        }
        validate_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        validate_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn validate_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        validate_value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn validate_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening '"'
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for k in 1..=4 {
                            if !bytes.get(*pos + k).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            0x00..=0x1f => return Err(format!("unescaped control byte at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn validate_literal(bytes: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn validate_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: a single 0, or a nonzero digit followed by digits.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err(format!("bad number at byte {start}")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad fraction at byte {pos}"));
        }
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("bad exponent at byte {pos}"));
        }
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_json_accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-0.5e+10",
            "\"esc \\u00e9 \\n\"",
            "{\"a\": [1, 2.5, true, false, null], \"b\": {\"c\": \"d\"}}",
            " { \"nested\" : [ { } , [ ] ] } \n",
        ] {
            assert!(validate_json(ok).is_ok(), "{ok}");
        }
    }

    #[test]
    fn validate_json_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{'a': 1}",
            "nul",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad escape \\q\"",
            "{} trailing",
            "\"\u{1}\"",
        ] {
            assert!(validate_json(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn validate_json_accepts_the_report_emitters() {
        let mut ts = TimeSeries::new(64);
        ts.push(1.0);
        ts.push(2.0);
        assert_eq!(validate_json(&ts.to_json().dump()), Ok(()));
    }

    #[test]
    fn time_series_round_trips_through_json() {
        let mut ts = TimeSeries::new(64);
        for v in [0.0, 1.5, 123456789.0, 0.1 + 0.2] {
            ts.push(v);
        }
        let text = serde_json::to_string(&ts);
        assert!(text.starts_with("{\"period\":64,\"samples\":["), "{text}");
        let back = time_series_from_json(&text).expect("emitted JSON must parse");
        assert_eq!(back.period(), ts.period());
        // Bit-exact: the emitter prints shortest-round-trip floats.
        assert_eq!(back.samples(), ts.samples());

        let empty = serde_json::to_string(&TimeSeries::new(8));
        let back = time_series_from_json(&empty).expect("empty series parses");
        assert!(back.is_empty());
        assert_eq!(back.period(), 8);

        assert!(time_series_from_json("{\"period\":0,\"samples\":[]}").is_none());
        assert!(time_series_from_json("not json").is_none());
    }

    fn sim_report() -> SimReport {
        SimReport {
            routing: "OLM".into(),
            traffic: "WL[\"x\"]".into(),
            offered_load: 0.3,
            injected_load: 0.29,
            accepted_load: 0.28,
            avg_latency_cycles: 200.0,
            p99_latency_cycles: 400.0,
            max_latency_cycles: 500.0,
            avg_hops: 2.0,
            global_misroute_fraction: 0.2,
            local_misroute_fraction: 0.1,
            packets_delivered: 1000,
            packets_measured: 900,
            warmup_cycles: 1000,
            measure_cycles: 2000,
            deadlock_detected: false,
            peak_in_flight_packets: 64,
            peak_buffered_phits: 512,
            peak_vc_occupancy: 8,
        }
    }

    #[test]
    fn sim_report_emits_every_field_with_escaping() {
        let text = serde_json::to_string(&sim_report());
        assert!(text.starts_with("{\"routing\":\"OLM\""));
        // The quote inside the traffic label is escaped.
        assert!(text.contains(r#""traffic":"WL[\"x\"]""#), "{text}");
        assert!(text.contains("\"deadlock_detected\":false"));
        assert!(text.contains("\"accepted_load\":0.28"));
        // Memory-footprint telemetry is part of the structured output.
        assert!(text.contains("\"peak_in_flight_packets\":64"));
        assert!(text.contains("\"peak_buffered_phits\":512"));
        assert!(text.contains("\"peak_vc_occupancy\":8"));
        assert_eq!(
            text.matches(['{', '[']).count(),
            text.matches(['}', ']']).count()
        );
    }

    #[test]
    fn workload_report_nests_jobs_phases_and_lifecycle() {
        let report = WorkloadReport {
            aggregate: sim_report(),
            jobs: vec![JobReport {
                name: "victim".into(),
                nodes: 16,
                injected_load: 0.1,
                accepted_load: 0.1,
                avg_latency_cycles: 150.0,
                p99_latency_cycles: 300.0,
                max_latency_cycles: 350.0,
                avg_hops: 2.0,
                global_misroute_fraction: 0.0,
                local_misroute_fraction: 0.0,
                packets_generated: 100,
                packets_delivered: 100,
                packets_measured: 90,
                lifecycle: Some(JobLifecycleReport {
                    arrival_cycle: 500,
                    placed_cycle: Some(700),
                    completion_cycle: None,
                    wait_cycles: Some(200),
                    slowdown: None,
                }),
                phases: vec![PhaseReport {
                    job: "victim".into(),
                    phase: 0,
                    pattern: "UN".into(),
                    offered_load: 0.1,
                    start_cycle: 700,
                    end_cycle: u64::MAX,
                    measured_cycles: 4_000,
                    injected_load: 0.1,
                    accepted_load: 0.1,
                    avg_latency_cycles: 150.0,
                    p99_latency_cycles: 300.0,
                    max_latency_cycles: 350.0,
                    avg_hops: 2.0,
                    global_misroute_fraction: 0.0,
                    local_misroute_fraction: 0.0,
                    packets_generated: 100,
                    packets_delivered: 100,
                    packets_measured: 90,
                }],
            }],
        };
        let text = serde_json::to_string(&report);
        assert!(text.contains("\"jobs\":[{\"name\":\"victim\""));
        // Absent lifecycle values and the open-ended phase print as null.
        assert!(text.contains("\"completion_cycle\":null"));
        assert!(text.contains("\"end_cycle\":null"));
        assert!(text.contains("\"placed_cycle\":700"));
        // Pretty output is the same tree, indented.
        let pretty = serde_json::to_string_pretty(&report);
        assert!(pretty.contains("\n  \"aggregate\": {"));
        assert_eq!(
            pretty.matches(['{', '[']).count(),
            pretty.matches(['}', ']']).count()
        );
    }
}
