//! Per-scope (job or job-phase) statistics accumulator.

use crate::{ExactStats, Histogram};
use serde::{Deserialize, Serialize};

/// Accumulates the statistics of one *scope* — one job, or one (job, phase) pair —
/// during a simulation run.
///
/// The recording rules mirror the aggregate collector: latency/hop/misroute
/// observations come only from *measured* packets (generated inside the measurement
/// window); the phit counters for throughput count every event that happens while
/// the window is open.  Deliveries are attributed to the scope of the packet's
/// *generation*, so a packet generated in phase `k` counts toward phase `k` even if
/// it arrives after the phase boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScopedStats {
    /// Latency of measured packets, in cycles.
    pub latency: ExactStats,
    /// Latency histogram (1-cycle bins) of measured packets.
    pub latency_hist: Histogram,
    /// Router-to-router hop count of measured packets.
    pub hops: ExactStats,
    /// Measured packets that took a global misroute.
    pub global_misrouted: u64,
    /// Measured packets that took at least one local misroute.
    pub local_misrouted: u64,
    /// Measured packets delivered.
    pub measured_delivered: u64,
    /// All packets ever generated in this scope.
    pub total_generated: u64,
    /// All packets of this scope ever delivered.
    pub total_delivered: u64,
    /// Phits generated while the measurement window was open.
    pub phits_injected_in_window: u64,
    /// Phits delivered while the measurement window was open.
    pub phits_delivered_in_window: u64,
}

impl ScopedStats {
    /// Create an empty accumulator with a latency histogram of `latency_bins` bins.
    pub fn new(latency_bins: usize) -> Self {
        Self {
            latency: ExactStats::new(),
            latency_hist: Histogram::for_latency(latency_bins),
            hops: ExactStats::new(),
            global_misrouted: 0,
            local_misrouted: 0,
            measured_delivered: 0,
            total_generated: 0,
            total_delivered: 0,
            phits_injected_in_window: 0,
            phits_delivered_in_window: 0,
        }
    }

    /// Record the generation of a packet of `phits` phits.
    pub fn record_generated(&mut self, phits: usize, measuring: bool) {
        self.total_generated += 1;
        if measuring {
            self.phits_injected_in_window += phits as u64;
        }
    }

    /// Record a delivery.  `measured` carries `(latency, hops, global
    /// misrouted, local misrouted)` for measured packets and `None` otherwise.
    pub fn record_delivered(
        &mut self,
        phits: usize,
        measuring: bool,
        measured: Option<(u64, u64, bool, bool)>,
    ) {
        self.total_delivered += 1;
        if measuring {
            self.phits_delivered_in_window += phits as u64;
        }
        if let Some((latency, hops, global_mis, local_mis)) = measured {
            self.measured_delivered += 1;
            self.latency.push(latency);
            self.latency_hist.record(latency as f64);
            self.hops.push(hops);
            if global_mis {
                self.global_misrouted += 1;
            }
            if local_mis {
                self.local_misrouted += 1;
            }
        }
    }

    /// Merge another scope's accumulated state into this one (exact: the result
    /// is identical to having recorded both scopes' events into one accumulator).
    pub fn merge(&mut self, other: &ScopedStats) {
        self.latency.merge(&other.latency);
        self.latency_hist.merge(&other.latency_hist);
        self.hops.merge(&other.hops);
        self.global_misrouted += other.global_misrouted;
        self.local_misrouted += other.local_misrouted;
        self.measured_delivered += other.measured_delivered;
        self.total_generated += other.total_generated;
        self.total_delivered += other.total_delivered;
        self.phits_injected_in_window += other.phits_injected_in_window;
        self.phits_delivered_in_window += other.phits_delivered_in_window;
    }

    /// Fraction of measured packets that took a global misroute.
    pub fn global_misroute_fraction(&self) -> f64 {
        if self.measured_delivered == 0 {
            0.0
        } else {
            self.global_misrouted as f64 / self.measured_delivered as f64
        }
    }

    /// Fraction of measured packets that took at least one local misroute.
    pub fn local_misroute_fraction(&self) -> f64 {
        if self.measured_delivered == 0 {
            0.0
        } else {
            self.local_misrouted as f64 / self.measured_delivered as f64
        }
    }

    /// Load in phits/(node·cycle) from a phit counter over a window.
    pub fn load_over(phits: u64, nodes: usize, cycles: u64) -> f64 {
        if nodes == 0 || cycles == 0 {
            0.0
        } else {
            phits as f64 / (nodes as f64 * cycles as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_split_by_measurement_state() {
        let mut s = ScopedStats::new(1_000);
        s.record_generated(8, false);
        s.record_generated(8, true);
        assert_eq!(s.total_generated, 2);
        assert_eq!(s.phits_injected_in_window, 8);

        s.record_delivered(8, false, None);
        s.record_delivered(8, true, Some((120, 3, true, false)));
        s.record_delivered(8, true, Some((180, 5, false, true)));
        assert_eq!(s.total_delivered, 3);
        assert_eq!(s.measured_delivered, 2);
        assert_eq!(s.phits_delivered_in_window, 16);
        assert!((s.latency.mean() - 150.0).abs() < 1e-9);
        assert!((s.hops.mean() - 4.0).abs() < 1e-9);
        assert!((s.global_misroute_fraction() - 0.5).abs() < 1e-9);
        assert!((s.local_misroute_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(s.latency_hist.total(), 2);
    }

    #[test]
    fn empty_scope_has_zero_fractions() {
        let s = ScopedStats::new(10);
        assert_eq!(s.global_misroute_fraction(), 0.0);
        assert_eq!(s.local_misroute_fraction(), 0.0);
    }

    #[test]
    fn load_over_window() {
        assert!((ScopedStats::load_over(800, 4, 100) - 2.0).abs() < 1e-12);
        assert_eq!(ScopedStats::load_over(800, 0, 100), 0.0);
        assert_eq!(ScopedStats::load_over(800, 4, 0), 0.0);
    }
}
