//! Per-job and per-phase reports of a workload run.

use crate::SimReport;
use serde::{Deserialize, Serialize};

/// Statistics of one phase of one job, attributed by packet generation time.
///
/// Throughput-style quantities (`injected_load`, `accepted_load`) are normalized by
/// the job's node count and by the overlap of the phase's span with the measurement
/// window (`measured_cycles`), so a phase that was only half inside the window still
/// reports loads in phits/(node·cycle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Job display name.
    pub job: String,
    /// Phase index within the job.
    pub phase: usize,
    /// Pattern display name of the phase (e.g. `"ADVG+1"`).
    pub pattern: String,
    /// Offered load configured for the phase, in phits/(node·cycle).
    pub offered_load: f64,
    /// Absolute cycle at which the phase starts.
    pub start_cycle: u64,
    /// Absolute cycle at which the phase ends (`u64::MAX` = end of run).
    pub end_cycle: u64,
    /// Cycles of the phase inside the measurement window.
    pub measured_cycles: u64,
    /// Injected load during the measured span, in phits/(node·cycle).
    pub injected_load: f64,
    /// Accepted (delivered) load during the measured span, in phits/(node·cycle).
    pub accepted_load: f64,
    /// Mean latency of measured packets generated in this phase, in cycles.
    pub avg_latency_cycles: f64,
    /// 99th-percentile latency in cycles.
    pub p99_latency_cycles: f64,
    /// Maximum observed latency in cycles.
    pub max_latency_cycles: f64,
    /// Mean router-to-router hops.
    pub avg_hops: f64,
    /// Fraction of measured packets that took a global misroute.
    pub global_misroute_fraction: f64,
    /// Fraction of measured packets that took at least one local misroute.
    pub local_misroute_fraction: f64,
    /// Packets generated in this phase (whole run).
    pub packets_generated: u64,
    /// Packets of this phase delivered (whole run).
    pub packets_delivered: u64,
    /// Measured packets (generated inside the window and delivered).
    pub packets_measured: u64,
}

impl PhaseReport {
    /// CSV header matching [`PhaseReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "job,phase,pattern,offered_load,start_cycle,end_cycle,measured_cycles,\
         injected_load,accepted_load,avg_latency,p99_latency,max_latency,avg_hops,\
         global_misroute_frac,local_misroute_frac,packets_generated,packets_delivered,\
         packets_measured"
    }

    /// One CSV row (no trailing newline).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.4},{},{},{},{:.4},{:.4},{:.2},{:.2},{:.2},{:.3},{:.4},{:.4},{},{},{}",
            self.job,
            self.phase,
            self.pattern,
            self.offered_load,
            self.start_cycle,
            if self.end_cycle == u64::MAX {
                "end".to_string()
            } else {
                self.end_cycle.to_string()
            },
            self.measured_cycles,
            self.injected_load,
            self.accepted_load,
            self.avg_latency_cycles,
            self.p99_latency_cycles,
            self.max_latency_cycles,
            self.avg_hops,
            self.global_misroute_fraction,
            self.local_misroute_fraction,
            self.packets_generated,
            self.packets_delivered,
            self.packets_measured
        )
    }
}

/// Lifecycle of one dynamically scheduled job: when it arrived, when the scheduler
/// could place it, and when it finished.
///
/// Produced only by trace-driven (churn) runs; jobs of a static workload have no
/// lifecycle (they occupy their nodes for the whole run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobLifecycleReport {
    /// Absolute cycle at which the job arrived (entered the wait queue).
    pub arrival_cycle: u64,
    /// Cycle at which the job was placed onto free nodes (`None` = never placed).
    pub placed_cycle: Option<u64>,
    /// Cycle at which the job completed (`None` = still running at the horizon).
    pub completion_cycle: Option<u64>,
    /// Cycles spent waiting for nodes (`placed - arrival`; `None` = never placed).
    pub wait_cycles: Option<u64>,
    /// (wait + service) / ideal service time, where the ideal is the configured
    /// duration for duration-bound jobs and the injection-limited time
    /// `volume_phits / (nodes · offered_load)` for volume-bound jobs.  1.0 means
    /// the job neither waited nor was slowed by congestion; `None` = incomplete.
    pub slowdown: Option<f64>,
}

impl JobLifecycleReport {
    /// CSV fragment matching [`JobReport::csv_row`]'s lifecycle columns
    /// (`arrival,placed,completion,wait,slowdown`; `na` for absent values).
    fn csv_fragment(&self) -> String {
        let opt = |v: Option<u64>| v.map_or("na".to_string(), |c| c.to_string());
        format!(
            "{},{},{},{},{}",
            self.arrival_cycle,
            opt(self.placed_cycle),
            opt(self.completion_cycle),
            opt(self.wait_cycles),
            self.slowdown
                .map_or("na".to_string(), |s| format!("{s:.3}"))
        )
    }
}

/// Statistics of one job over the whole measurement window, plus its phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Job display name.
    pub name: String,
    /// Number of nodes the job occupies.
    pub nodes: usize,
    /// Injected load over the measurement window, in phits/(node·cycle).
    pub injected_load: f64,
    /// Accepted load over the measurement window, in phits/(node·cycle).
    pub accepted_load: f64,
    /// Mean latency of the job's measured packets, in cycles.
    pub avg_latency_cycles: f64,
    /// 99th-percentile latency in cycles.
    pub p99_latency_cycles: f64,
    /// Maximum observed latency in cycles.
    pub max_latency_cycles: f64,
    /// Mean router-to-router hops.
    pub avg_hops: f64,
    /// Fraction of measured packets that took a global misroute.
    pub global_misroute_fraction: f64,
    /// Fraction of measured packets that took at least one local misroute.
    pub local_misroute_fraction: f64,
    /// Packets the job generated (whole run).
    pub packets_generated: u64,
    /// Packets of the job delivered (whole run).
    pub packets_delivered: u64,
    /// Measured packets of the job.
    pub packets_measured: u64,
    /// Arrival/placement/completion lifecycle (trace-driven runs only).
    pub lifecycle: Option<JobLifecycleReport>,
    /// Per-phase breakdown, in phase order.
    pub phases: Vec<PhaseReport>,
}

impl JobReport {
    /// CSV header matching [`JobReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "job,nodes,injected_load,accepted_load,avg_latency,p99_latency,max_latency,\
         avg_hops,global_misroute_frac,local_misroute_frac,packets_generated,\
         packets_delivered,packets_measured,arrival,placed,completion,wait,slowdown"
    }

    /// One job-level CSV row (no trailing newline); the lifecycle columns print
    /// `na` for static-workload jobs.
    pub fn csv_row(&self) -> String {
        let lifecycle = self
            .lifecycle
            .map_or_else(|| "na,na,na,na,na".to_string(), |l| l.csv_fragment());
        format!(
            "{},{},{:.4},{:.4},{:.2},{:.2},{:.2},{:.3},{:.4},{:.4},{},{},{},{lifecycle}",
            self.name,
            self.nodes,
            self.injected_load,
            self.accepted_load,
            self.avg_latency_cycles,
            self.p99_latency_cycles,
            self.max_latency_cycles,
            self.avg_hops,
            self.global_misroute_fraction,
            self.local_misroute_fraction,
            self.packets_generated,
            self.packets_delivered,
            self.packets_measured
        )
    }
}

/// The full result of a workload run: the aggregate steady-state report plus the
/// per-job (and nested per-phase) breakdowns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadReport {
    /// The machine-wide steady-state report (same semantics as a plain run).
    pub aggregate: SimReport,
    /// Per-job breakdowns, in job order.
    pub jobs: Vec<JobReport>,
}

impl WorkloadReport {
    /// Look a job up by name.
    pub fn job(&self, name: &str) -> Option<&JobReport> {
        self.jobs.iter().find(|j| j.name == name)
    }

    /// All phase rows (CSV body matching [`PhaseReport::csv_header`]).
    pub fn phase_csv_rows(&self) -> Vec<String> {
        self.jobs
            .iter()
            .flat_map(|j| j.phases.iter().map(PhaseReport::csv_row))
            .collect()
    }

    /// All job-level rows (CSV body matching [`JobReport::csv_header`]), including
    /// the lifecycle columns of trace-driven runs.
    pub fn job_csv_rows(&self) -> Vec<String> {
        self.jobs.iter().map(JobReport::csv_row).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase() -> PhaseReport {
        PhaseReport {
            job: "aggressor".into(),
            phase: 0,
            pattern: "ADVG+1".into(),
            offered_load: 0.6,
            start_cycle: 0,
            end_cycle: u64::MAX,
            measured_cycles: 8_000,
            injected_load: 0.58,
            accepted_load: 0.11,
            avg_latency_cycles: 900.0,
            p99_latency_cycles: 4_000.0,
            max_latency_cycles: 6_000.0,
            avg_hops: 2.5,
            global_misroute_fraction: 0.0,
            local_misroute_fraction: 0.0,
            packets_generated: 30_000,
            packets_delivered: 9_000,
            packets_measured: 8_000,
        }
    }

    #[test]
    fn phase_csv_arity_matches_header() {
        let row = phase().csv_row();
        assert_eq!(
            row.split(',').count(),
            PhaseReport::csv_header().split(',').count()
        );
        assert!(row.starts_with("aggressor,0,ADVG+1,"));
        assert!(
            row.contains(",end,"),
            "open-ended phase prints 'end': {row}"
        );
    }

    #[test]
    fn workload_report_job_lookup_and_rows() {
        let report = WorkloadReport {
            aggregate: crate::SimReport {
                routing: "OLM".into(),
                traffic: "WL[x]".into(),
                offered_load: 0.3,
                injected_load: 0.3,
                accepted_load: 0.28,
                avg_latency_cycles: 200.0,
                p99_latency_cycles: 400.0,
                max_latency_cycles: 500.0,
                avg_hops: 2.0,
                global_misroute_fraction: 0.2,
                local_misroute_fraction: 0.1,
                packets_delivered: 1000,
                packets_measured: 900,
                warmup_cycles: 1000,
                measure_cycles: 2000,
                deadlock_detected: false,
                peak_in_flight_packets: 0,
                peak_buffered_phits: 0,
                peak_vc_occupancy: 0,
            },
            jobs: vec![JobReport {
                name: "aggressor".into(),
                nodes: 36,
                injected_load: 0.58,
                accepted_load: 0.11,
                avg_latency_cycles: 900.0,
                p99_latency_cycles: 4_000.0,
                max_latency_cycles: 6_000.0,
                avg_hops: 2.5,
                global_misroute_fraction: 0.0,
                local_misroute_fraction: 0.0,
                packets_generated: 30_000,
                packets_delivered: 9_000,
                packets_measured: 8_000,
                lifecycle: None,
                phases: vec![phase()],
            }],
        };
        assert!(report.job("aggressor").is_some());
        assert!(report.job("victim").is_none());
        assert_eq!(report.phase_csv_rows().len(), 1);
        assert_eq!(report.job_csv_rows().len(), 1);
        // Static workloads print `na` lifecycle columns with the right arity.
        let row = &report.job_csv_rows()[0];
        assert_eq!(
            row.split(',').count(),
            JobReport::csv_header().split(',').count()
        );
        assert!(row.ends_with("na,na,na,na,na"), "{row}");
    }

    #[test]
    fn lifecycle_csv_fragment_formats_absent_values() {
        let complete = JobLifecycleReport {
            arrival_cycle: 100,
            placed_cycle: Some(250),
            completion_cycle: Some(1_250),
            wait_cycles: Some(150),
            slowdown: Some(1.15),
        };
        assert_eq!(complete.csv_fragment(), "100,250,1250,150,1.150");
        let unplaced = JobLifecycleReport {
            arrival_cycle: 100,
            placed_cycle: None,
            completion_cycle: None,
            wait_cycles: None,
            slowdown: None,
        };
        assert_eq!(unplaced.csv_fragment(), "100,na,na,na,na");
    }
}
