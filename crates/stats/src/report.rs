//! End-of-run reports produced by the simulator and consumed by the harness.

use serde::{Deserialize, Serialize};

/// Result of a steady-state simulation (warm-up + measurement window).
///
/// This is the unit of data behind every latency/throughput point of the paper's
/// Figures 4, 5, 7, 8, 10 and 11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Human-readable routing mechanism name (e.g. `"OLM"`).
    pub routing: String,
    /// Human-readable traffic pattern name (e.g. `"ADVG+1"`).
    pub traffic: String,
    /// Offered load requested, in phits/(node·cycle).
    pub offered_load: f64,
    /// Injected load actually generated during the window, in phits/(node·cycle).
    pub injected_load: f64,
    /// Accepted (delivered) load during the window, in phits/(node·cycle).
    pub accepted_load: f64,
    /// Mean packet latency in cycles (generation to full delivery), measured packets only.
    pub avg_latency_cycles: f64,
    /// 99th-percentile latency in cycles.
    pub p99_latency_cycles: f64,
    /// Maximum observed latency in cycles.
    pub max_latency_cycles: f64,
    /// Mean number of router-to-router hops per delivered packet.
    pub avg_hops: f64,
    /// Fraction of delivered packets that took at least one global misroute.
    pub global_misroute_fraction: f64,
    /// Fraction of delivered packets that took at least one local misroute.
    pub local_misroute_fraction: f64,
    /// Packets delivered inside the measurement window.
    pub packets_delivered: u64,
    /// Packets counted for latency (generated inside the window and delivered).
    pub packets_measured: u64,
    /// Number of warm-up cycles simulated before measurement.
    pub warmup_cycles: u64,
    /// Number of measured cycles.
    pub measure_cycles: u64,
    /// Whether the deadlock watchdog fired during the run.
    pub deadlock_detected: bool,
    /// Peak packets simultaneously in flight (generated but not yet delivered),
    /// sampled once per cycle over the whole run.  Memory-footprint telemetry
    /// toward larger topologies: each in-flight packet occupies one arena slot.
    pub peak_in_flight_packets: u64,
    /// Peak phits simultaneously stored across all router input buffers,
    /// sampled once per cycle over the whole run.
    pub peak_buffered_phits: u64,
    /// Peak occupancy (phits) reached by any single input-VC buffer.
    pub peak_vc_occupancy: u64,
}

impl SimReport {
    /// CSV header matching [`SimReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "routing,traffic,offered_load,injected_load,accepted_load,avg_latency,p99_latency,\
         max_latency,avg_hops,global_misroute_frac,local_misroute_frac,packets_delivered,\
         packets_measured,warmup_cycles,measure_cycles,deadlock,peak_in_flight_packets,\
         peak_buffered_phits,peak_vc_occupancy"
    }

    /// One CSV row (no trailing newline).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.4},{:.4},{:.4},{:.2},{:.2},{:.2},{:.3},{:.4},{:.4},{},{},{},{},{},{},{},{}",
            self.routing,
            self.traffic,
            self.offered_load,
            self.injected_load,
            self.accepted_load,
            self.avg_latency_cycles,
            self.p99_latency_cycles,
            self.max_latency_cycles,
            self.avg_hops,
            self.global_misroute_fraction,
            self.local_misroute_fraction,
            self.packets_delivered,
            self.packets_measured,
            self.warmup_cycles,
            self.measure_cycles,
            self.deadlock_detected,
            self.peak_in_flight_packets,
            self.peak_buffered_phits,
            self.peak_vc_occupancy
        )
    }
}

/// Result of a burst-consumption (batch) simulation: every node sends a fixed number
/// of packets and the network runs until all of them are delivered.
///
/// This is the unit of data behind Figures 6b and 9b.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Routing mechanism name.
    pub routing: String,
    /// Traffic pattern name.
    pub traffic: String,
    /// Packets generated per node.
    pub packets_per_node: u64,
    /// Total packets generated.
    pub packets_total: u64,
    /// Packets actually delivered (equals `packets_total` unless the run hit the
    /// cycle limit).
    pub packets_delivered: u64,
    /// Cycles needed to consume the whole burst.
    pub consumption_cycles: u64,
    /// Mean packet latency over the batch.
    pub avg_latency_cycles: f64,
    /// Whether the run stopped at the cycle limit before delivering everything.
    pub timed_out: bool,
    /// Whether the deadlock watchdog fired.
    pub deadlock_detected: bool,
}

impl BatchReport {
    /// CSV header matching [`BatchReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "routing,traffic,packets_per_node,packets_total,packets_delivered,\
         consumption_cycles,avg_latency,timed_out,deadlock"
    }

    /// One CSV row (no trailing newline).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{:.2},{},{}",
            self.routing,
            self.traffic,
            self.packets_per_node,
            self.packets_total,
            self.packets_delivered,
            self.consumption_cycles,
            self.avg_latency_cycles,
            self.timed_out,
            self.deadlock_detected
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SimReport {
        SimReport {
            routing: "OLM".into(),
            traffic: "UN".into(),
            offered_load: 0.5,
            injected_load: 0.49,
            accepted_load: 0.48,
            avg_latency_cycles: 130.5,
            p99_latency_cycles: 300.0,
            max_latency_cycles: 512.0,
            avg_hops: 2.4,
            global_misroute_fraction: 0.1,
            local_misroute_fraction: 0.05,
            packets_delivered: 10_000,
            packets_measured: 9_500,
            warmup_cycles: 5_000,
            measure_cycles: 10_000,
            deadlock_detected: false,
            peak_in_flight_packets: 420,
            peak_buffered_phits: 900,
            peak_vc_occupancy: 32,
        }
    }

    #[test]
    fn csv_row_has_header_arity() {
        let report = sample_report();
        let header_cols = SimReport::csv_header().split(',').count();
        let row_cols = report.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    fn csv_row_contains_key_values() {
        let row = sample_report().csv_row();
        assert!(row.starts_with("OLM,UN,"));
        assert!(row.contains("0.4800"));
        assert!(row.ends_with("false,420,900,32"));
    }

    #[test]
    fn batch_csv_row_has_header_arity() {
        let report = BatchReport {
            routing: "RLM".into(),
            traffic: "ADVG+8/ADVL+1".into(),
            packets_per_node: 1000,
            packets_total: 16_512_000,
            packets_delivered: 16_512_000,
            consumption_cycles: 42_000,
            avg_latency_cycles: 900.0,
            timed_out: false,
            deadlock_detected: false,
        };
        assert_eq!(
            BatchReport::csv_header().split(',').count(),
            report.csv_row().split(',').count()
        );
        assert!(report.csv_row().contains("42000"));
    }

    #[test]
    fn serde_round_trip() {
        let report = sample_report();
        let json = serde_json_like(&report);
        assert!(json.contains("OLM"));
    }

    // serde_json is intentionally not a dependency; a smoke check that Serialize is
    // derived is enough (compile-time), so just format with Debug here.
    fn serde_json_like(r: &SimReport) -> String {
        format!("{r:?}")
    }
}
