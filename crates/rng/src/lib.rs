//! Deterministic pseudo-random number generation for reproducible simulations.
//!
//! The simulator needs a fast, deterministic RNG whose sequence is identical across
//! platforms and library versions, so the whole generator is implemented here rather
//! than relying on an external crate.  The algorithm is xoshiro256** (Blackman &
//! Vigna), seeded through SplitMix64, which is the standard recommendation for
//! seeding xoshiro state from a single 64-bit value.
//!
//! The crate also provides the handful of distribution helpers the simulator and the
//! traffic generators need: unbiased integer ranges, Bernoulli trials, floating point
//! in `[0, 1)`, choosing an element of a slice and Fisher–Yates shuffling.

mod splitmix;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256;

/// Convenience alias used throughout the workspace.
pub type Rng = Xoshiro256;

/// Derive a child seed from a parent seed and a stream index.
///
/// Every router, injector and traffic source gets its own RNG stream so that the
/// simulation outcome does not depend on iteration order.  The mixing uses
/// SplitMix64 over the concatenation of the two values, which is enough to
/// decorrelate neighbouring streams.
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut sm = SplitMix64::new(parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // Burn a couple of outputs so that low-entropy parents still spread.
    sm.next_u64();
    sm.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn derive_seed_differs_per_stream() {
        let seeds: Vec<u64> = (0..100).map(|s| derive_seed(1, s)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "stream seeds must be distinct");
    }

    #[test]
    fn derive_seed_differs_per_parent() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn rng_alias_is_usable() {
        let mut rng = Rng::seed_from(123);
        let x = rng.next_u64();
        let y = rng.next_u64();
        assert_ne!(x, y);
    }
}
