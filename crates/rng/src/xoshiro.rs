//! xoshiro256**: the workhorse generator used by every stochastic component.
//!
//! The generator is small (4×u64 of state), extremely fast, passes all known
//! statistical test batteries and — crucially for a simulator — its sequence is fully
//! determined by the seed, independent of platform or crate versions.

use crate::splitmix::SplitMix64;

/// xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

#[inline(always)]
fn rotl(x: u64, k: u32) -> u64 {
    x.rotate_left(k)
}

impl Xoshiro256 {
    /// Seed the generator from a single 64-bit value through SplitMix64.
    pub fn seed_from(seed: u64) -> Self {
        let s = SplitMix64::new(seed).next_state4();
        Self { s }
    }

    /// Construct from a full 256-bit state.  The state must not be all zero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "xoshiro state must not be all zero"
        );
        Self { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = rotl(self.s[3], 45);
        result
    }

    /// Next 32-bit output (upper bits of the 64-bit output).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's unbiased multiply-shift method.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range(bound as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn gen_range_between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.gen_range(hi - lo)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Choose a uniformly random element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.gen_index(items.len())]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }

    /// Split off a decorrelated child generator (for per-component streams).
    pub fn split(&mut self) -> Self {
        let seed = self.next_u64() ^ 0xA076_1D64_78BD_642F;
        Self::seed_from(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256::seed_from(99);
        let mut b = Xoshiro256::seed_from(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256::from_state([0; 4]);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Xoshiro256::seed_from(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_within_bounds_and_covers() {
        let mut rng = Xoshiro256::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = rng.gen_range(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from(17);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_index(8)] += 1;
        }
        for &c in &counts {
            let expected = n / 8;
            assert!(
                (c as i64 - expected as i64).abs() < (expected / 10) as i64,
                "count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn gen_range_between_respects_bounds() {
        let mut rng = Xoshiro256::seed_from(5);
        for _ in 0..1000 {
            let v = rng.gen_range_between(100, 110);
            assert!((100..110).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn gen_range_zero_bound_panics() {
        Xoshiro256::seed_from(0).gen_range(0);
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = Xoshiro256::seed_from(9);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(!rng.bernoulli(-1.0));
        assert!(rng.bernoulli(2.0));
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut rng = Xoshiro256::seed_from(13);
        let p = 0.3;
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(p)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - p).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from(21);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = Xoshiro256::seed_from(23);
        let items = [5, 9, 12, 42];
        for _ in 0..100 {
            assert!(items.contains(rng.choose(&items)));
        }
    }

    #[test]
    fn split_streams_are_decorrelated() {
        let mut parent = Xoshiro256::seed_from(77);
        let mut a = parent.split();
        let mut b = parent.split();
        let matches = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }
}
