//! SplitMix64: a tiny, fast 64-bit generator used to expand seeds.
//!
//! SplitMix64 passes BigCrush and is the canonical way to initialise the state of
//! xoshiro/xoroshiro generators from a single word.  It is also useful on its own for
//! cheap hashing-style mixing (see [`crate::derive_seed`]).

/// SplitMix64 generator state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from an arbitrary 64-bit seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Fill a 4-word state array, as used to seed xoshiro256**.
    #[inline]
    pub fn next_state4(&mut self) -> [u64; 4] {
        [
            self.next_u64(),
            self.next_u64(),
            self.next_u64(),
            self.next_u64(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values computed from the canonical C implementation
    /// (Sebastiano Vigna, public domain) with seed 0.
    #[test]
    fn matches_reference_sequence_seed0() {
        let mut sm = SplitMix64::new(0);
        let expected = [
            0xE220_A839_7B1D_CDAFu64,
            0x6E78_9E6A_A1B9_65F4,
            0x06C4_5D18_8009_454F,
            0xF88B_B8A8_724C_81EC,
            0x1B39_896A_51A8_749B,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn matches_reference_sequence_seed1234567() {
        // First three outputs for seed 1234567 from the reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: a fresh generator reproduces the same values.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn state4_is_nonzero() {
        // xoshiro must never be seeded with the all-zero state.
        for seed in 0..64u64 {
            let st = SplitMix64::new(seed).next_state4();
            assert!(
                st.iter().any(|&w| w != 0),
                "seed {seed} produced zero state"
            );
        }
    }
}
