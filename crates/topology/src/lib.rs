//! Dragonfly topology mathematics.
//!
//! This crate models the *maximum-size well-balanced* Dragonfly of Kim et al. (ISCA
//! 2008), the configuration used by the paper under reproduction: an integer parameter
//! `h` fully determines the network.
//!
//! * every router has `h` terminal (injection/ejection) ports, `h` global ports and
//!   `2h − 1` local ports (radix `4h − 1`),
//! * a group ("supernode") contains `2h` routers connected as a complete graph
//!   `K_{2h}`,
//! * the system contains `2h² + 1` groups connected as a complete graph `K_{2h²+1}`
//!   (exactly one global link between every pair of groups).
//!
//! Everything the simulator and the routing mechanisms need is provided as pure
//! functions of `h`: identifier arithmetic, local port maps, the global link
//! arrangement, generic neighbour lookup and minimal-path computation.
//!
//! # Example
//!
//! ```
//! use dragonfly_topology::{DragonflyParams, NodeId};
//!
//! let p = DragonflyParams::new(4);
//! assert_eq!(p.groups(), 33);
//! assert_eq!(p.num_routers(), 264);
//! assert_eq!(p.num_nodes(), 1056);
//!
//! // Minimal paths never exceed three hops: local - global - local.
//! let hops = p.minimal_hop_count(NodeId(0), NodeId(p.num_nodes() as u32 - 1));
//! assert!(hops <= 3);
//! ```

mod analysis;
mod ids;
mod params;
mod ports;
mod routes;

pub use analysis::ThroughputBounds;
pub use ids::{GroupId, NodeId, RouterId};
pub use params::DragonflyParams;
pub use ports::{Port, PortKind};
pub use routes::MinimalHop;

#[cfg(test)]
mod proptests;
