//! Strongly-typed identifiers for nodes, routers and groups.
//!
//! All identifiers are global (network-wide) indices wrapped in newtypes so that the
//! compiler catches accidental mix-ups between e.g. a router index and a node index.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a computing node (server) attached to a router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of a router (switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// Identifier of a group (supernode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

macro_rules! impl_id {
    ($t:ty, $name:literal) => {
        impl $t {
            /// The raw index as `usize`, for indexing into arrays.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($name, "{}"), self.0)
            }
        }

        impl From<usize> for $t {
            fn from(v: usize) -> Self {
                Self(v as u32)
            }
        }
    };
}

impl_id!(NodeId, "n");
impl_id!(RouterId, "r");
impl_id!(GroupId, "g");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(RouterId(12).to_string(), "r12");
        assert_eq!(GroupId(0).to_string(), "g0");
    }

    #[test]
    fn index_round_trip() {
        assert_eq!(NodeId::from(17usize).index(), 17);
        assert_eq!(RouterId::from(5usize).index(), 5);
        assert_eq!(GroupId::from(2usize).index(), 2);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(RouterId(1) < RouterId(2));
        assert!(NodeId(9) > NodeId(3));
    }
}
