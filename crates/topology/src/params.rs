//! The balanced maximum-size Dragonfly and all of its index arithmetic.

use crate::ids::{GroupId, NodeId, RouterId};
use crate::ports::{ports_per_router, Port};
use serde::{Deserialize, Serialize};

/// Parameters of a balanced, maximum-size Dragonfly network.
///
/// The single integer `h` determines the whole system (see the crate docs).  All
/// methods are cheap, branch-light integer arithmetic so routing code can call them on
/// every hop of every packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DragonflyParams {
    h: usize,
}

impl DragonflyParams {
    /// Create the parameters for a given `h ≥ 1`.
    pub fn new(h: usize) -> Self {
        assert!(h >= 1, "dragonfly parameter h must be at least 1");
        Self { h }
    }

    /// The balancing parameter `h`.
    #[inline]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Routers per group: `2h`.
    #[inline]
    pub fn routers_per_group(&self) -> usize {
        2 * self.h
    }

    /// Nodes attached to each router: `h`.
    #[inline]
    pub fn nodes_per_router(&self) -> usize {
        self.h
    }

    /// Nodes per group: `2h²`.
    #[inline]
    pub fn nodes_per_group(&self) -> usize {
        2 * self.h * self.h
    }

    /// Number of groups: `2h² + 1`.
    #[inline]
    pub fn groups(&self) -> usize {
        2 * self.h * self.h + 1
    }

    /// Total number of routers: `2h · (2h² + 1)`.
    #[inline]
    pub fn num_routers(&self) -> usize {
        self.routers_per_group() * self.groups()
    }

    /// Total number of nodes: `h · 2h · (2h² + 1)`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes_per_router() * self.num_routers()
    }

    /// Local ports per router: `2h − 1`.
    #[inline]
    pub fn local_ports(&self) -> usize {
        2 * self.h - 1
    }

    /// Global ports per router: `h`.
    #[inline]
    pub fn global_ports(&self) -> usize {
        self.h
    }

    /// Terminal ports per router: `h`.
    #[inline]
    pub fn terminal_ports(&self) -> usize {
        self.h
    }

    /// Total flat ports per router (`4h − 1`).
    #[inline]
    pub fn ports_per_router(&self) -> usize {
        ports_per_router(self.h)
    }

    /// Global channels leaving each group: `2h²` (one per other group).
    #[inline]
    pub fn global_channels_per_group(&self) -> usize {
        2 * self.h * self.h
    }

    // ------------------------------------------------------------------
    // Identifier arithmetic
    // ------------------------------------------------------------------

    /// Group containing a router.
    #[inline]
    pub fn group_of_router(&self, r: RouterId) -> GroupId {
        GroupId((r.index() / self.routers_per_group()) as u32)
    }

    /// Index of a router within its group (`0 ..= 2h−1`).
    #[inline]
    pub fn router_index_in_group(&self, r: RouterId) -> usize {
        r.index() % self.routers_per_group()
    }

    /// Router with a given in-group index inside a group.
    #[inline]
    pub fn router_in_group(&self, g: GroupId, idx: usize) -> RouterId {
        debug_assert!(idx < self.routers_per_group());
        RouterId((g.index() * self.routers_per_group() + idx) as u32)
    }

    /// Router to which a node is attached.
    #[inline]
    pub fn router_of_node(&self, n: NodeId) -> RouterId {
        RouterId((n.index() / self.nodes_per_router()) as u32)
    }

    /// Index of a node within its router (`0 ..= h−1`), i.e. its terminal port.
    #[inline]
    pub fn node_index_in_router(&self, n: NodeId) -> usize {
        n.index() % self.nodes_per_router()
    }

    /// Node attached to terminal port `idx` of a router.
    #[inline]
    pub fn node_of_router(&self, r: RouterId, idx: usize) -> NodeId {
        debug_assert!(idx < self.nodes_per_router());
        NodeId((r.index() * self.nodes_per_router() + idx) as u32)
    }

    /// Group containing a node.
    #[inline]
    pub fn group_of_node(&self, n: NodeId) -> GroupId {
        self.group_of_router(self.router_of_node(n))
    }

    // ------------------------------------------------------------------
    // Local (intra-group) connectivity: complete graph K_{2h}
    // ------------------------------------------------------------------

    /// Local port of router `from_idx` that connects to router `to_idx` (both in-group
    /// indices).  Panics if `from_idx == to_idx` since routers have no self link.
    #[inline]
    pub fn local_port_to(&self, from_idx: usize, to_idx: usize) -> usize {
        assert_ne!(from_idx, to_idx, "a router has no local link to itself");
        debug_assert!(from_idx < self.routers_per_group() && to_idx < self.routers_per_group());
        if to_idx < from_idx {
            to_idx
        } else {
            to_idx - 1
        }
    }

    /// In-group index of the router reached through local port `port` of router
    /// `from_idx`.
    #[inline]
    pub fn local_neighbor_index(&self, from_idx: usize, port: usize) -> usize {
        debug_assert!(port < self.local_ports());
        if port < from_idx {
            port
        } else {
            port + 1
        }
    }

    /// The router reached from `r` through local port `port`.
    #[inline]
    pub fn local_neighbor(&self, r: RouterId, port: usize) -> RouterId {
        let g = self.group_of_router(r);
        let idx = self.router_index_in_group(r);
        self.router_in_group(g, self.local_neighbor_index(idx, port))
    }

    // ------------------------------------------------------------------
    // Global (inter-group) connectivity: complete graph K_{2h²+1}
    //
    // Channel `d ∈ [0, 2h²)` of group `g` connects to group `(g + d + 1) mod G`.  On
    // the remote side the same physical link is channel `2h² − 1 − d`.  Channel `d`
    // belongs to router `⌊d / h⌋` of the group, on its global port `d mod h`.  This is
    // the "consecutive" arrangement and yields the intermediate-group local-link
    // pathology for ADVG+h described in the paper.
    // ------------------------------------------------------------------

    /// Global channel index owned by global port `gport` of the router with in-group
    /// index `ridx`.
    #[inline]
    pub fn global_channel_of(&self, ridx: usize, gport: usize) -> usize {
        debug_assert!(ridx < self.routers_per_group() && gport < self.global_ports());
        ridx * self.h + gport
    }

    /// Owner of a global channel: `(in-group router index, global port)`.
    #[inline]
    pub fn global_channel_owner(&self, channel: usize) -> (usize, usize) {
        debug_assert!(channel < self.global_channels_per_group());
        (channel / self.h, channel % self.h)
    }

    /// The group reached through global channel `channel` of group `g`.
    #[inline]
    pub fn global_channel_target(&self, g: GroupId, channel: usize) -> GroupId {
        debug_assert!(channel < self.global_channels_per_group());
        GroupId(((g.index() + channel + 1) % self.groups()) as u32)
    }

    /// The global channel of `src` that reaches `dst` (the unique inter-group link).
    #[inline]
    pub fn channel_to_group(&self, src: GroupId, dst: GroupId) -> usize {
        assert_ne!(src, dst, "no global channel from a group to itself");
        let groups = self.groups();
        (dst.index() + groups - src.index() - 1) % groups
    }

    /// The router (global id) and global port of group `src` that own the link to
    /// group `dst`.
    #[inline]
    pub fn global_exit(&self, src: GroupId, dst: GroupId) -> (RouterId, usize) {
        let channel = self.channel_to_group(src, dst);
        let (ridx, gport) = self.global_channel_owner(channel);
        (self.router_in_group(src, ridx), gport)
    }

    /// The far end of global port `gport` of router `r`: the remote router and the
    /// remote global port.
    #[inline]
    pub fn global_neighbor(&self, r: RouterId, gport: usize) -> (RouterId, usize) {
        let g = self.group_of_router(r);
        let ridx = self.router_index_in_group(r);
        let channel = self.global_channel_of(ridx, gport);
        let remote_group = self.global_channel_target(g, channel);
        let remote_channel = self.global_channels_per_group() - 1 - channel;
        let (remote_ridx, remote_gport) = self.global_channel_owner(remote_channel);
        (
            self.router_in_group(remote_group, remote_ridx),
            remote_gport,
        )
    }

    /// Generic neighbour lookup: the router (or node) on the other side of `port` of
    /// router `r`, together with the port it arrives on.
    ///
    /// Terminal ports return the attached node encoded as a router-less endpoint: the
    /// caller is expected to treat `Port::Terminal` separately, so this method panics
    /// for terminals.
    #[inline]
    pub fn neighbor(&self, r: RouterId, port: Port) -> (RouterId, Port) {
        match port {
            Port::Local(p) => {
                let n = self.local_neighbor(r, p);
                let back = self
                    .local_port_to(self.router_index_in_group(n), self.router_index_in_group(r));
                (n, Port::Local(back))
            }
            Port::Global(p) => {
                let (n, back) = self.global_neighbor(r, p);
                (n, Port::Global(back))
            }
            Port::Terminal(_) => panic!("terminal ports have no router neighbour"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_counts_h8() {
        // The paper: h = 8 gives 129 supernodes of 16 routers, 2064 routers, 16512 nodes,
        // routers of 31 ports.
        let p = DragonflyParams::new(8);
        assert_eq!(p.groups(), 129);
        assert_eq!(p.routers_per_group(), 16);
        assert_eq!(p.num_routers(), 2064);
        assert_eq!(p.num_nodes(), 16512);
        assert_eq!(p.ports_per_router(), 31);
    }

    #[test]
    fn small_scale_counts() {
        let p = DragonflyParams::new(2);
        assert_eq!(p.groups(), 9);
        assert_eq!(p.routers_per_group(), 4);
        assert_eq!(p.num_routers(), 36);
        assert_eq!(p.num_nodes(), 72);
        assert_eq!(p.local_ports(), 3);
        assert_eq!(p.global_ports(), 2);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_h_rejected() {
        DragonflyParams::new(0);
    }

    #[test]
    fn node_router_group_round_trip() {
        let p = DragonflyParams::new(3);
        for n in 0..p.num_nodes() {
            let node = NodeId(n as u32);
            let r = p.router_of_node(node);
            let idx = p.node_index_in_router(node);
            assert_eq!(p.node_of_router(r, idx), node);
            let g = p.group_of_router(r);
            let ridx = p.router_index_in_group(r);
            assert_eq!(p.router_in_group(g, ridx), r);
            assert_eq!(p.group_of_node(node), g);
        }
    }

    #[test]
    fn local_ports_form_complete_graph() {
        let p = DragonflyParams::new(4);
        let a = p.routers_per_group();
        for i in 0..a {
            let mut reached = vec![false; a];
            for port in 0..p.local_ports() {
                let j = p.local_neighbor_index(i, port);
                assert_ne!(i, j);
                assert!(!reached[j], "duplicate neighbour");
                reached[j] = true;
                // And the inverse map agrees.
                assert_eq!(p.local_port_to(i, j), port);
            }
            assert_eq!(reached.iter().filter(|&&x| x).count(), a - 1);
        }
    }

    #[test]
    fn local_links_are_symmetric() {
        let p = DragonflyParams::new(4);
        let g = GroupId(5);
        for i in 0..p.routers_per_group() {
            for j in 0..p.routers_per_group() {
                if i == j {
                    continue;
                }
                let ri = p.router_in_group(g, i);
                let (nbr, back) = p.neighbor(ri, Port::Local(p.local_port_to(i, j)));
                assert_eq!(p.router_index_in_group(nbr), j);
                // Following the back port returns to ri.
                let (again, _) = p.neighbor(nbr, back);
                assert_eq!(again, ri);
            }
        }
    }

    #[test]
    fn every_group_pair_has_exactly_one_channel() {
        let p = DragonflyParams::new(3);
        let groups = p.groups();
        for src in 0..groups {
            let mut seen = vec![0usize; groups];
            for d in 0..p.global_channels_per_group() {
                let t = p.global_channel_target(GroupId(src as u32), d);
                seen[t.index()] += 1;
            }
            for (dst, count) in seen.iter().enumerate() {
                if dst == src {
                    assert_eq!(*count, 0, "group must not link to itself");
                } else {
                    assert_eq!(
                        *count, 1,
                        "groups {src}->{dst} must have exactly one channel"
                    );
                }
            }
        }
    }

    #[test]
    fn global_links_are_symmetric() {
        let p = DragonflyParams::new(3);
        for r in 0..p.num_routers() {
            let router = RouterId(r as u32);
            for gp in 0..p.global_ports() {
                let (remote, remote_port) = p.global_neighbor(router, gp);
                let (back, back_port) = p.global_neighbor(remote, remote_port);
                assert_eq!(back, router);
                assert_eq!(back_port, gp);
                assert_ne!(p.group_of_router(remote), p.group_of_router(router));
            }
        }
    }

    #[test]
    fn global_exit_agrees_with_channel_math() {
        let p = DragonflyParams::new(4);
        let src = GroupId(3);
        let dst = GroupId(20);
        let (router, gport) = p.global_exit(src, dst);
        assert_eq!(p.group_of_router(router), src);
        let (remote, _) = p.global_neighbor(router, gport);
        assert_eq!(p.group_of_router(remote), dst);
    }

    #[test]
    fn channel_to_group_inverse_of_target() {
        let p = DragonflyParams::new(4);
        for src in 0..p.groups() {
            for d in 0..p.global_channels_per_group() {
                let dst = p.global_channel_target(GroupId(src as u32), d);
                assert_eq!(p.channel_to_group(GroupId(src as u32), dst), d);
            }
        }
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn channel_to_self_rejected() {
        let p = DragonflyParams::new(2);
        p.channel_to_group(GroupId(1), GroupId(1));
    }

    #[test]
    #[should_panic(expected = "no local link to itself")]
    fn local_self_link_rejected() {
        let p = DragonflyParams::new(2);
        p.local_port_to(1, 1);
    }

    #[test]
    fn advg_plus_h_intermediate_hop_is_pathological() {
        // Recreate the analysis from the OFAR paper cited by the reproduction target:
        // under ADVG+h with Valiant routing, in almost every intermediate group the
        // packet must take one specific local hop of the form (e, e+1), concentrating
        // traffic on the "+1 ring" links.  Under ADVG+1 the entry and exit routers
        // coincide for most intermediate groups so no local hop is needed.
        let p = DragonflyParams::new(8);
        let h = p.h();
        let src = GroupId(0);
        let mut needs_hop_advg1 = 0usize;
        let mut needs_hop_advgh = 0usize;
        let mut total = 0usize;
        for (offset, counter) in [(1usize, &mut needs_hop_advg1), (h, &mut needs_hop_advgh)] {
            let dst = GroupId(offset as u32);
            for inter in 0..p.groups() {
                let ig = GroupId(inter as u32);
                if ig == src || ig == dst {
                    continue;
                }
                if offset == 1 {
                    total += 1;
                }
                // Entry router in the intermediate group (far end of src->inter channel).
                let (exit_router, gport) = p.global_exit(src, ig);
                let (entry, _) = p.global_neighbor(exit_router, gport);
                let entry_idx = p.router_index_in_group(entry);
                // Exit router of the intermediate group toward dst.
                let (exit, _) = p.global_exit(ig, dst);
                let exit_idx = p.router_index_in_group(exit);
                if entry_idx != exit_idx {
                    *counter += 1;
                }
            }
        }
        // ADVG+1: only a small fraction of intermediate groups require a local hop.
        assert!(
            needs_hop_advg1 * 4 < total,
            "ADVG+1 should rarely need intermediate local hops ({needs_hop_advg1}/{total})"
        );
        // ADVG+h: almost every intermediate group requires a local hop.
        assert!(
            needs_hop_advgh * 4 > 3 * total,
            "ADVG+h should almost always need an intermediate local hop ({needs_hop_advgh}/{total})"
        );
    }
}
