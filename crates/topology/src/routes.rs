//! Minimal-path helpers shared by every routing mechanism.
//!
//! Minimal routing in a Dragonfly needs at most three hops, `local – global – local`:
//! reach the router of the source group owning the global channel to the destination
//! group, cross it, then one local hop inside the destination group.  These helpers
//! compute, from any *current* router, the next minimal port toward a destination node
//! or toward a target group, plus hop-count utilities used by tests and statistics.

use crate::ids::{GroupId, NodeId, RouterId};
use crate::params::DragonflyParams;
use crate::ports::Port;

/// One hop of a minimal route, for route enumeration and validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinimalHop {
    /// Router at which the hop is taken.
    pub at: RouterId,
    /// Output port used.
    pub port: Port,
}

impl DragonflyParams {
    /// The next port on a minimal route from `current` toward `dest` (a node).
    ///
    /// Returns a terminal port when the destination node is attached to `current`.
    pub fn minimal_port(&self, current: RouterId, dest: NodeId) -> Port {
        let dest_router = self.router_of_node(dest);
        if dest_router == current {
            return Port::Terminal(self.node_index_in_router(dest));
        }
        let cur_group = self.group_of_router(current);
        let dest_group = self.group_of_router(dest_router);
        if cur_group == dest_group {
            let from = self.router_index_in_group(current);
            let to = self.router_index_in_group(dest_router);
            return Port::Local(self.local_port_to(from, to));
        }
        self.port_toward_group(current, dest_group)
    }

    /// The next port on a minimal route from `current` toward any router of `target`
    /// group.  `target` must differ from the current group.
    pub fn port_toward_group(&self, current: RouterId, target: GroupId) -> Port {
        let cur_group = self.group_of_router(current);
        assert_ne!(cur_group, target, "already in the target group");
        let (exit_router, gport) = self.global_exit(cur_group, target);
        if exit_router == current {
            Port::Global(gport)
        } else {
            let from = self.router_index_in_group(current);
            let to = self.router_index_in_group(exit_router);
            Port::Local(self.local_port_to(from, to))
        }
    }

    /// Number of router-to-router hops of the minimal path between the routers of two
    /// nodes (0 if both nodes share a router; at most 3).
    pub fn minimal_hop_count(&self, src: NodeId, dst: NodeId) -> usize {
        self.minimal_route(src, dst).len()
    }

    /// Enumerate the full minimal route (router-to-router hops only, the final
    /// ejection hop is not included) from `src` to `dst`.
    pub fn minimal_route(&self, src: NodeId, dst: NodeId) -> Vec<MinimalHop> {
        let mut hops = Vec::with_capacity(3);
        let mut current = self.router_of_node(src);
        let dest_router = self.router_of_node(dst);
        while current != dest_router {
            let port = self.minimal_port(current, dst);
            debug_assert!(!port.is_terminal());
            hops.push(MinimalHop { at: current, port });
            let (next, _) = self.neighbor(current, port);
            current = next;
            assert!(hops.len() <= 3, "minimal route longer than the diameter");
        }
        hops
    }

    /// Length (in router hops) of a Valiant route through `intermediate` group:
    /// minimal to the intermediate group plus minimal from the entry router to the
    /// destination.  Used by tests and by analytical latency estimates.
    pub fn valiant_hop_count(&self, src: NodeId, dst: NodeId, intermediate: GroupId) -> usize {
        let src_router = self.router_of_node(src);
        let src_group = self.group_of_router(src_router);
        assert_ne!(
            intermediate, src_group,
            "intermediate group must differ from source"
        );
        assert_ne!(
            intermediate,
            self.group_of_node(dst),
            "intermediate group must differ from destination"
        );
        // Phase 1: reach the intermediate group.
        let mut hops = 0usize;
        let mut current = src_router;
        while self.group_of_router(current) != intermediate {
            let port = self.port_toward_group(current, intermediate);
            let (next, _) = self.neighbor(current, port);
            current = next;
            hops += 1;
            assert!(
                hops <= 2,
                "reaching the intermediate group takes at most 2 hops"
            );
        }
        // Phase 2: minimal to the destination router.
        let dest_router = self.router_of_node(dst);
        while current != dest_router {
            let port = self.minimal_port(current, dst);
            let (next, _) = self.neighbor(current, port);
            current = next;
            hops += 1;
            assert!(hops <= 5, "valiant route longer than 5 hops");
        }
        hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_router_is_terminal() {
        let p = DragonflyParams::new(4);
        let src = NodeId(1);
        let dst = NodeId(2); // nodes 0..3 share router 0 when h = 4
        assert_eq!(p.router_of_node(src), p.router_of_node(dst));
        let port = p.minimal_port(p.router_of_node(src), dst);
        assert_eq!(port, Port::Terminal(2));
    }

    #[test]
    fn same_group_is_single_local_hop() {
        let p = DragonflyParams::new(4);
        // Router 0 and router 3 are in group 0.
        let dst = p.node_of_router(RouterId(3), 0);
        let port = p.minimal_port(RouterId(0), dst);
        assert!(port.is_local());
        let (next, _) = p.neighbor(RouterId(0), port);
        assert_eq!(next, RouterId(3));
    }

    #[test]
    fn minimal_route_at_most_three_hops_everywhere() {
        let p = DragonflyParams::new(2);
        for s in 0..p.num_nodes() {
            for d in 0..p.num_nodes() {
                let hops = p.minimal_hop_count(NodeId(s as u32), NodeId(d as u32));
                assert!(hops <= 3, "minimal route {s}->{d} took {hops} hops");
            }
        }
    }

    #[test]
    fn minimal_route_structure_is_lgl() {
        let p = DragonflyParams::new(4);
        // Pick nodes in different groups with different routers at both ends.
        let src = NodeId(0);
        let dst = NodeId((p.num_nodes() - 1) as u32);
        let route = p.minimal_route(src, dst);
        assert!(!route.is_empty());
        // Exactly one global hop on any inter-group minimal route.
        let globals = route.iter().filter(|hop| hop.port.is_global()).count();
        assert_eq!(globals, 1);
        // Local hops never follow the global hop by more than one.
        assert!(route.len() <= 3);
    }

    #[test]
    fn minimal_route_ends_at_destination_router() {
        let p = DragonflyParams::new(3);
        let src = NodeId(5);
        let dst = NodeId((p.num_nodes() / 2) as u32);
        let route = p.minimal_route(src, dst);
        let mut current = p.router_of_node(src);
        for hop in &route {
            assert_eq!(hop.at, current);
            let (next, _) = p.neighbor(current, hop.port);
            current = next;
        }
        assert_eq!(current, p.router_of_node(dst));
    }

    #[test]
    fn valiant_route_at_most_five_hops() {
        let p = DragonflyParams::new(3);
        let src = NodeId(0);
        let dst = NodeId((p.num_nodes() - 1) as u32);
        let src_g = p.group_of_node(src);
        let dst_g = p.group_of_node(dst);
        for inter in 0..p.groups() {
            let ig = GroupId(inter as u32);
            if ig == src_g || ig == dst_g {
                continue;
            }
            let hops = p.valiant_hop_count(src, dst, ig);
            assert!(hops <= 5, "valiant via {ig} took {hops} hops");
            assert!(hops >= 2);
        }
    }

    #[test]
    fn port_toward_group_reaches_group_within_two_hops() {
        let p = DragonflyParams::new(3);
        for r in 0..p.routers_per_group() {
            let router = p.router_in_group(GroupId(0), r);
            for g in 1..p.groups() {
                let target = GroupId(g as u32);
                let mut current = router;
                let mut hops = 0;
                while p.group_of_router(current) != target {
                    let port = p.port_toward_group(current, target);
                    let (next, _) = p.neighbor(current, port);
                    current = next;
                    hops += 1;
                    assert!(hops <= 2);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "already in the target group")]
    fn port_toward_own_group_rejected() {
        let p = DragonflyParams::new(2);
        p.port_toward_group(RouterId(0), GroupId(0));
    }
}
