//! Property-based tests over the topology invariants.

use crate::{DragonflyParams, GroupId, NodeId, Port, RouterId};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = DragonflyParams> {
    (1usize..=6).prop_map(DragonflyParams::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Node -> (router, terminal index) -> node is the identity.
    #[test]
    fn node_round_trip(h in 1usize..=6, raw in 0u32..1_000_000) {
        let p = DragonflyParams::new(h);
        let node = NodeId(raw % p.num_nodes() as u32);
        let router = p.router_of_node(node);
        let idx = p.node_index_in_router(node);
        prop_assert_eq!(p.node_of_router(router, idx), node);
    }

    /// Every local link is bidirectional and the back-port maps back to the origin.
    #[test]
    fn local_neighbor_symmetry(p in params_strategy(), seed in 0u32..10_000) {
        let r = RouterId(seed % p.num_routers() as u32);
        for port in 0..p.local_ports() {
            let (nbr, back) = p.neighbor(r, Port::Local(port));
            let (orig, orig_port) = p.neighbor(nbr, back);
            prop_assert_eq!(orig, r);
            prop_assert_eq!(orig_port, Port::Local(port));
            prop_assert_eq!(p.group_of_router(nbr), p.group_of_router(r));
        }
    }

    /// Every global link is bidirectional and crosses to a different group.
    #[test]
    fn global_neighbor_symmetry(p in params_strategy(), seed in 0u32..10_000) {
        let r = RouterId(seed % p.num_routers() as u32);
        for port in 0..p.global_ports() {
            let (nbr, back) = p.global_neighbor(r, port);
            let (orig, orig_port) = p.global_neighbor(nbr, back);
            prop_assert_eq!(orig, r);
            prop_assert_eq!(orig_port, port);
            prop_assert_ne!(p.group_of_router(nbr), p.group_of_router(r));
        }
    }

    /// Minimal routes respect the Dragonfly diameter of three and terminate at the
    /// destination router.
    #[test]
    fn minimal_route_valid(p in params_strategy(), a in 0u32..1_000_000, b in 0u32..1_000_000) {
        let src = NodeId(a % p.num_nodes() as u32);
        let dst = NodeId(b % p.num_nodes() as u32);
        let route = p.minimal_route(src, dst);
        prop_assert!(route.len() <= 3);
        let globals = route.iter().filter(|hop| hop.port.is_global()).count();
        if p.group_of_node(src) == p.group_of_node(dst) {
            prop_assert_eq!(globals, 0);
            prop_assert!(route.len() <= 1);
        } else {
            prop_assert_eq!(globals, 1);
        }
        let mut current = p.router_of_node(src);
        for hop in &route {
            prop_assert_eq!(hop.at, current);
            let (next, _) = p.neighbor(current, hop.port);
            current = next;
        }
        prop_assert_eq!(current, p.router_of_node(dst));
    }

    /// The exit router toward a destination group is unique and owns a channel that
    /// really lands in that group.
    #[test]
    fn global_exit_consistency(p in params_strategy(), a in 0u32..10_000, b in 0u32..10_000) {
        let src = GroupId(a % p.groups() as u32);
        let dst = GroupId(b % p.groups() as u32);
        if src == dst {
            return Ok(());
        }
        let (router, gport) = p.global_exit(src, dst);
        prop_assert_eq!(p.group_of_router(router), src);
        let (remote, _) = p.global_neighbor(router, gport);
        prop_assert_eq!(p.group_of_router(remote), dst);
    }

    /// Flat port indices round trip through the typed representation.
    #[test]
    fn flat_port_round_trip(h in 1usize..=8, flat in 0usize..64) {
        let ports = 4 * h - 1;
        let flat = flat % ports;
        let typed = Port::from_flat(flat, h);
        prop_assert_eq!(typed.flat(h), flat);
    }
}
