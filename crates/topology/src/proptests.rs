//! Randomized tests over the topology invariants.
//!
//! These were originally `proptest` properties; the build environment has no
//! registry access, so they are driven by the workspace's own deterministic RNG
//! instead: every property is checked over a fixed number of seeded random cases
//! covering the same input domains.

use crate::{DragonflyParams, GroupId, NodeId, Port, RouterId};
use dragonfly_rng::Rng;

const CASES: u64 = 64;

/// Node -> (router, terminal index) -> node is the identity.
#[test]
fn node_round_trip() {
    let mut rng = Rng::seed_from(0xA11CE);
    for _ in 0..CASES {
        let h = 1 + (rng.next_u64() % 6) as usize;
        let p = DragonflyParams::new(h);
        let node = NodeId((rng.next_u64() % p.num_nodes() as u64) as u32);
        let router = p.router_of_node(node);
        let idx = p.node_index_in_router(node);
        assert_eq!(p.node_of_router(router, idx), node);
    }
}

/// Every local link is bidirectional and the back-port maps back to the origin.
#[test]
fn local_neighbor_symmetry() {
    let mut rng = Rng::seed_from(0xB0B);
    for _ in 0..CASES {
        let h = 1 + (rng.next_u64() % 6) as usize;
        let p = DragonflyParams::new(h);
        let r = RouterId((rng.next_u64() % p.num_routers() as u64) as u32);
        for port in 0..p.local_ports() {
            let (nbr, back) = p.neighbor(r, Port::Local(port));
            let (orig, orig_port) = p.neighbor(nbr, back);
            assert_eq!(orig, r);
            assert_eq!(orig_port, Port::Local(port));
            assert_eq!(p.group_of_router(nbr), p.group_of_router(r));
        }
    }
}

/// Every global link is bidirectional and crosses to a different group.
#[test]
fn global_neighbor_symmetry() {
    let mut rng = Rng::seed_from(0xC0FFEE);
    for _ in 0..CASES {
        let h = 1 + (rng.next_u64() % 6) as usize;
        let p = DragonflyParams::new(h);
        let r = RouterId((rng.next_u64() % p.num_routers() as u64) as u32);
        for port in 0..p.global_ports() {
            let (nbr, back) = p.global_neighbor(r, port);
            let (orig, orig_port) = p.global_neighbor(nbr, back);
            assert_eq!(orig, r);
            assert_eq!(orig_port, port);
            assert_ne!(p.group_of_router(nbr), p.group_of_router(r));
        }
    }
}

/// Minimal routes respect the Dragonfly diameter of three and terminate at the
/// destination router.
#[test]
fn minimal_route_valid() {
    let mut rng = Rng::seed_from(0xD1CE);
    for _ in 0..CASES {
        let h = 1 + (rng.next_u64() % 6) as usize;
        let p = DragonflyParams::new(h);
        let src = NodeId((rng.next_u64() % p.num_nodes() as u64) as u32);
        let dst = NodeId((rng.next_u64() % p.num_nodes() as u64) as u32);
        let route = p.minimal_route(src, dst);
        assert!(route.len() <= 3);
        let globals = route.iter().filter(|hop| hop.port.is_global()).count();
        if p.group_of_node(src) == p.group_of_node(dst) {
            assert_eq!(globals, 0);
            assert!(route.len() <= 1);
        } else {
            assert_eq!(globals, 1);
        }
        let mut current = p.router_of_node(src);
        for hop in &route {
            assert_eq!(hop.at, current);
            let (next, _) = p.neighbor(current, hop.port);
            current = next;
        }
        assert_eq!(current, p.router_of_node(dst));
    }
}

/// The exit router toward a destination group is unique and owns a channel that
/// really lands in that group.
#[test]
fn global_exit_consistency() {
    let mut rng = Rng::seed_from(0xE51);
    for _ in 0..CASES {
        let h = 1 + (rng.next_u64() % 6) as usize;
        let p = DragonflyParams::new(h);
        let src = GroupId((rng.next_u64() % p.groups() as u64) as u32);
        let dst = GroupId((rng.next_u64() % p.groups() as u64) as u32);
        if src == dst {
            continue;
        }
        let (router, gport) = p.global_exit(src, dst);
        assert_eq!(p.group_of_router(router), src);
        let (remote, _) = p.global_neighbor(router, gport);
        assert_eq!(p.group_of_router(remote), dst);
    }
}

/// Flat port indices round trip through the typed representation — exhaustive.
#[test]
fn flat_port_round_trip() {
    for h in 1usize..=8 {
        let ports = 4 * h - 1;
        for flat in 0..ports {
            let typed = Port::from_flat(flat, h);
            assert_eq!(typed.flat(h), flat);
        }
    }
}
