//! Analytical throughput bounds and link-load analysis.
//!
//! The paper (and its predecessors) reason about three hard limits of a balanced
//! Dragonfly under adversarial traffic:
//!
//! * **ADVG+N with minimal routing** — all `2h²` nodes of a group share the single
//!   global channel toward the target group, so accepted load is capped at
//!   `1/(2h²+1)` ≈ `1/(nodes per group)` phits/(node·cycle) (Section II),
//! * **ADVL+N with minimal routing** — all `h` nodes of a router share one local
//!   link, capping accepted load at `1/h`,
//! * **ADVG+h with Valiant/global misrouting** — in (almost) every intermediate group
//!   the relayed traffic needs one specific local hop, concentrating on the "+1 ring"
//!   local links and capping accepted load at `1/h` (the pathology that motivates
//!   local misrouting).
//!
//! This module computes those bounds exactly from the topology, plus a static
//! link-load analysis that counts, for a given traffic pattern's group-level flows,
//! how many Valiant flows would cross each local link of an intermediate group.  The
//! simulator tests cross-check measured saturation throughput against these numbers.

use crate::ids::GroupId;
use crate::params::DragonflyParams;

/// Analytical saturation bounds for the paper's traffic patterns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputBounds {
    /// Minimal routing under ADVG+N: `1/(2h²+1)` phits/(node·cycle).
    pub advg_minimal: f64,
    /// Minimal routing under ADVL+N: `1/h` phits/(node·cycle).
    pub advl_minimal: f64,
    /// Valiant (global misrouting only) under ADVG+h: `1/h` phits/(node·cycle),
    /// caused by the intermediate-group local-link pathology.
    pub advg_h_valiant: f64,
    /// Valiant routing upper bound under any admissible traffic: `1/2` (every packet
    /// consumes two global channel traversals).
    pub valiant_global: f64,
}

impl DragonflyParams {
    /// The analytical throughput bounds for this network size.
    pub fn throughput_bounds(&self) -> ThroughputBounds {
        ThroughputBounds {
            advg_minimal: 1.0 / self.groups() as f64,
            advl_minimal: 1.0 / self.h() as f64,
            advg_h_valiant: 1.0 / self.h() as f64,
            valiant_global: 0.5,
        }
    }

    /// For ADVG+`offset` traffic routed through Valiant paths, count how many
    /// source-group flows need a local hop inside intermediate group `group`, broken
    /// down per local link `(entry router, exit router)`.
    ///
    /// Returns a matrix `loads[entry][exit]` of flow counts (diagonal entries are
    /// flows that need no local hop).  For `offset = h` the mass concentrates on the
    /// `exit = entry + 1` links, which is the pathology that caps Valiant at `1/h`.
    pub fn valiant_intermediate_link_loads(&self, group: GroupId, offset: usize) -> Vec<Vec<u32>> {
        let routers = self.routers_per_group();
        let groups = self.groups();
        let mut loads = vec![vec![0u32; routers]; routers];
        for src in 0..groups {
            let src_group = GroupId(src as u32);
            let dst_group = GroupId(((src + offset) % groups) as u32);
            if src_group == group || dst_group == group || src_group == dst_group {
                continue;
            }
            // Entry router: far end of the src -> group channel.
            let (src_exit, gport) = self.global_exit(src_group, group);
            let (entry, _) = self.global_neighbor(src_exit, gport);
            let entry_idx = self.router_index_in_group(entry);
            // Exit router: owner of the group -> dst channel.
            let (exit, _) = self.global_exit(group, dst_group);
            let exit_idx = self.router_index_in_group(exit);
            loads[entry_idx][exit_idx] += 1;
        }
        loads
    }

    /// The maximum number of Valiant flows sharing one intra-group local link in any
    /// intermediate group, for ADVG+`offset`.  A value close to the number of source
    /// groups divided by `2h` signals the ADVG+h pathology; a value close to zero
    /// signals the benign ADVG+1 case.
    pub fn valiant_intermediate_max_link_load(&self, offset: usize) -> u32 {
        let mut max = 0;
        for g in 0..self.groups() {
            let loads = self.valiant_intermediate_link_loads(GroupId(g as u32), offset);
            for (entry, row) in loads.iter().enumerate() {
                for (exit, &count) in row.iter().enumerate() {
                    if entry != exit {
                        max = max.max(count);
                    }
                }
            }
        }
        max
    }

    /// Fraction of intermediate groups (averaged over all source groups) in which an
    /// ADVG+`offset` Valiant path needs **no** local hop (entry router == exit
    /// router).  Close to 1 for ADVG+1, close to 0 for ADVG+h.
    pub fn valiant_no_local_hop_fraction(&self, offset: usize) -> f64 {
        let groups = self.groups();
        let mut total = 0u64;
        let mut no_hop = 0u64;
        for src in 0..groups {
            let src_group = GroupId(src as u32);
            let dst_group = GroupId(((src + offset) % groups) as u32);
            if src_group == dst_group {
                continue;
            }
            for inter in 0..groups {
                let ig = GroupId(inter as u32);
                if ig == src_group || ig == dst_group {
                    continue;
                }
                total += 1;
                let (src_exit, gport) = self.global_exit(src_group, ig);
                let (entry, _) = self.global_neighbor(src_exit, gport);
                let (exit, _) = self.global_exit(ig, dst_group);
                if entry == exit {
                    no_hop += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            no_hop as f64 / total as f64
        }
    }

    /// Number of distinct paths of length at most 2 between two routers of the same
    /// group (1 direct + `2h − 2` two-hop detours) — the path diversity local
    /// misrouting can exploit.
    pub fn local_path_diversity(&self) -> usize {
        1 + (self.routers_per_group() - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_match_paper_formulas() {
        let p = DragonflyParams::new(8);
        let b = p.throughput_bounds();
        assert!((b.advg_minimal - 1.0 / 129.0).abs() < 1e-12);
        assert!((b.advl_minimal - 0.125).abs() < 1e-12);
        assert!((b.advg_h_valiant - 0.125).abs() < 1e-12);
        assert!((b.valiant_global - 0.5).abs() < 1e-12);
    }

    #[test]
    fn advg1_rarely_needs_intermediate_local_hops() {
        for h in [4usize, 8] {
            let p = DragonflyParams::new(h);
            let frac = p.valiant_no_local_hop_fraction(1);
            assert!(
                frac > 0.7,
                "h={h}: ADVG+1 should mostly skip the intermediate local hop, got {frac}"
            );
        }
    }

    #[test]
    fn advg_h_almost_always_needs_intermediate_local_hops() {
        for h in [4usize, 8] {
            let p = DragonflyParams::new(h);
            let frac = p.valiant_no_local_hop_fraction(h);
            assert!(
                frac < 0.25,
                "h={h}: ADVG+h should almost always need the intermediate local hop, got {frac}"
            );
        }
    }

    #[test]
    fn advg_h_concentrates_load_on_few_links() {
        let h = 8;
        let p = DragonflyParams::new(h);
        let pathological = p.valiant_intermediate_max_link_load(h);
        let benign = p.valiant_intermediate_max_link_load(1);
        // Under ADVG+h roughly `h` source groups share each (r, r+1) link of an
        // intermediate group; under ADVG+1 local links are barely used.
        assert!(
            pathological >= (h as u32) - 2,
            "ADVG+h max link load {pathological} should be near h={h}"
        );
        assert!(
            pathological >= benign * 2,
            "ADVG+h ({pathological}) should be far more concentrated than ADVG+1 ({benign})"
        );
    }

    #[test]
    fn intermediate_link_load_conserves_flows() {
        let h = 4;
        let p = DragonflyParams::new(h);
        let group = GroupId(5);
        let loads = p.valiant_intermediate_link_loads(group, h);
        let total: u32 = loads.iter().flatten().sum();
        // Every source group except `group` itself and the one whose destination is
        // `group` contributes exactly one flow.
        let expected = p.groups() as u32 - 2;
        assert_eq!(total, expected);
    }

    #[test]
    fn local_path_diversity_matches_h() {
        let p = DragonflyParams::new(8);
        // 1 direct + 14 detours = 15; the parity-sign restriction keeps at least h-1=7
        // of the detours, still enough for the h=8 injectors.
        assert_eq!(p.local_path_diversity(), 15);
        assert_eq!(DragonflyParams::new(2).local_path_diversity(), 3);
    }
}
