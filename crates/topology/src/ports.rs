//! Router port naming and the flat port numbering used by the simulator.
//!
//! A router of a balanced Dragonfly with parameter `h` has three classes of ports:
//!
//! * `2h − 1` **local** ports, one per other router of the same group,
//! * `h` **global** ports, each owning one global channel of the group,
//! * `h` **terminal** ports, one per attached computing node (used both for injection
//!   and ejection).
//!
//! The simulator indexes ports of a router with a single flat `usize` in the order
//! `local | global | terminal`; [`Port`] is the typed view of that index.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Class of a router port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// Link to another router of the same group.
    Local,
    /// Link to a router of another group.
    Global,
    /// Link to an attached computing node.
    Terminal,
}

/// Typed router port: the class plus the index *within* that class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Port {
    /// Local port `0 ..= 2h-2`.
    Local(usize),
    /// Global port `0 ..= h-1`.
    Global(usize),
    /// Terminal port `0 ..= h-1`.
    Terminal(usize),
}

impl Port {
    /// The class of this port.
    #[inline]
    pub fn kind(self) -> PortKind {
        match self {
            Port::Local(_) => PortKind::Local,
            Port::Global(_) => PortKind::Global,
            Port::Terminal(_) => PortKind::Terminal,
        }
    }

    /// The index within the class.
    #[inline]
    pub fn class_index(self) -> usize {
        match self {
            Port::Local(i) | Port::Global(i) | Port::Terminal(i) => i,
        }
    }

    /// Flatten to the simulator's single port index for a router with parameter `h`.
    #[inline]
    pub fn flat(self, h: usize) -> usize {
        match self {
            Port::Local(i) => {
                debug_assert!(i < 2 * h - 1);
                i
            }
            Port::Global(i) => {
                debug_assert!(i < h);
                (2 * h - 1) + i
            }
            Port::Terminal(i) => {
                debug_assert!(i < h);
                (2 * h - 1) + h + i
            }
        }
    }

    /// Recover the typed port from a flat index.
    #[inline]
    pub fn from_flat(flat: usize, h: usize) -> Port {
        let locals = 2 * h - 1;
        if flat < locals {
            Port::Local(flat)
        } else if flat < locals + h {
            Port::Global(flat - locals)
        } else {
            debug_assert!(
                flat < locals + 2 * h,
                "flat port {flat} out of range for h={h}"
            );
            Port::Terminal(flat - locals - h)
        }
    }

    /// Is this a local port?
    #[inline]
    pub fn is_local(self) -> bool {
        matches!(self, Port::Local(_))
    }

    /// Is this a global port?
    #[inline]
    pub fn is_global(self) -> bool {
        matches!(self, Port::Global(_))
    }

    /// Is this a terminal port?
    #[inline]
    pub fn is_terminal(self) -> bool {
        matches!(self, Port::Terminal(_))
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Port::Local(i) => write!(f, "L{i}"),
            Port::Global(i) => write!(f, "G{i}"),
            Port::Terminal(i) => write!(f, "T{i}"),
        }
    }
}

/// Total number of ports of a router (flat indexing range) for parameter `h`.
#[inline]
pub fn ports_per_router(h: usize) -> usize {
    (2 * h - 1) + h + h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_round_trip_h4() {
        let h = 4;
        for flat in 0..ports_per_router(h) {
            let port = Port::from_flat(flat, h);
            assert_eq!(port.flat(h), flat);
        }
    }

    #[test]
    fn flat_round_trip_h8() {
        let h = 8;
        for flat in 0..ports_per_router(h) {
            let port = Port::from_flat(flat, h);
            assert_eq!(port.flat(h), flat);
        }
    }

    #[test]
    fn layout_matches_paper_radix() {
        // Radix is 4h-1 network ports plus h terminals, i.e. our flat space is 4h-1+... :
        // local (2h-1) + global (h) + terminal (h) = 4h - 1.
        assert_eq!(ports_per_router(8), 4 * 8 - 1);
        assert_eq!(ports_per_router(4), 4 * 4 - 1);
    }

    #[test]
    fn kinds_partition_flat_space() {
        let h = 4;
        let kinds: Vec<PortKind> = (0..ports_per_router(h))
            .map(|f| Port::from_flat(f, h).kind())
            .collect();
        assert_eq!(
            kinds.iter().filter(|k| **k == PortKind::Local).count(),
            2 * h - 1
        );
        assert_eq!(kinds.iter().filter(|k| **k == PortKind::Global).count(), h);
        assert_eq!(
            kinds.iter().filter(|k| **k == PortKind::Terminal).count(),
            h
        );
    }

    #[test]
    fn class_index_and_predicates() {
        assert_eq!(Port::Local(3).class_index(), 3);
        assert!(Port::Local(0).is_local());
        assert!(Port::Global(1).is_global());
        assert!(Port::Terminal(2).is_terminal());
        assert!(!Port::Terminal(2).is_global());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Port::Local(2).to_string(), "L2");
        assert_eq!(Port::Global(0).to_string(), "G0");
        assert_eq!(Port::Terminal(7).to_string(), "T7");
    }
}
