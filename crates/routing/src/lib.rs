//! Deadlock-free routing mechanisms for Dragonfly networks.
//!
//! This crate implements every mechanism evaluated by the paper:
//!
//! | Mechanism | VCs (local/global) | Flow control | Misrouting |
//! |-----------|--------------------|--------------|------------|
//! | [`MinimalRouting`] | 2/1 (fits 3/2) | VCT, WH | none |
//! | [`ValiantRouting`] | 3/2 | VCT, WH | global (always) |
//! | [`Piggybacking`]   | 3/2 | VCT, WH | global (source-adaptive) |
//! | [`Par62`]          | 6/2 | VCT, WH | global + local (in-transit) |
//! | [`Rlm`]            | 3/2 | VCT, WH | global + restricted local |
//! | [`Olm`]            | 3/2 | VCT only | global + opportunistic local |
//!
//! The two contributions of the paper are [`Rlm`] (Restricted Local Misrouting, built
//! on the parity-sign table of [`parity_sign`]) and [`Olm`] (Opportunistic Local
//! Misrouting, built on ascending escape paths).  All adaptive mechanisms share the
//! misrouting trigger and eligibility rules in [`common`].

pub mod basic;
pub mod common;
pub mod olm;
pub mod par;
pub mod par62;
pub mod parity_sign;
pub mod piggyback;
pub mod rlm;

pub use basic::{MinimalRouting, ValiantRouting};
pub use common::{AdaptiveParams, MisroutingTrigger};
pub use olm::Olm;
pub use par::Par;
pub use par62::Par62;
pub use parity_sign::{LinkClass, ParitySignTable};
pub use piggyback::Piggybacking;
pub use rlm::Rlm;

use dragonfly_sim::RoutingAlgorithm;

/// A generic visitor over the concrete mechanism type behind a [`RoutingKind`].
///
/// [`RoutingKind::dispatch`] turns a runtime mechanism selection into a call of
/// [`RoutingVisitor::visit`] with the *concrete* mechanism type, so callers can build
/// monomorphized engines (`Network<Olm>`, `Simulation<Rlm>`, ...) from a runtime
/// `RoutingKind` without going through `Box<dyn RoutingAlgorithm>`.
pub trait RoutingVisitor {
    /// Result produced by the visit.
    type Output;

    /// Called with the instantiated concrete mechanism.  Mechanisms are
    /// `Clone` so that visitors can replicate them — the sharded engine builds
    /// one instance per shard from a single dispatch.
    fn visit<R: RoutingAlgorithm + Clone + 'static>(self, routing: R) -> Self::Output;
}

/// Enumeration of every routing mechanism in the crate, used by the experiment
/// harness and the figure-regeneration binaries to select mechanisms by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingKind {
    /// Minimal routing.
    Minimal,
    /// Valiant randomized routing.
    Valiant,
    /// Piggybacking (indirect adaptive, source-routed).
    Piggybacking,
    /// PAR with 4 local VCs (global misrouting only, no local misrouting).
    Par,
    /// PAR-6/2 (naïve reference with 6 local VCs).
    Par62,
    /// Restricted Local Misrouting.
    Rlm,
    /// Opportunistic Local Misrouting.
    Olm,
}

impl RoutingKind {
    /// All mechanisms, in the order used by the paper's figures.
    pub const ALL: [RoutingKind; 7] = [
        RoutingKind::Par62,
        RoutingKind::Olm,
        RoutingKind::Rlm,
        RoutingKind::Minimal,
        RoutingKind::Valiant,
        RoutingKind::Piggybacking,
        RoutingKind::Par,
    ];

    /// Short display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        match self {
            RoutingKind::Minimal => "Minimal",
            RoutingKind::Valiant => "Valiant",
            RoutingKind::Piggybacking => "PB",
            RoutingKind::Par => "PAR",
            RoutingKind::Par62 => "PAR-6/2",
            RoutingKind::Rlm => "RLM",
            RoutingKind::Olm => "OLM",
        }
    }

    /// Parse a (case-insensitive) mechanism name.
    pub fn parse(name: &str) -> Option<RoutingKind> {
        match name.to_ascii_lowercase().as_str() {
            "minimal" | "min" => Some(RoutingKind::Minimal),
            "valiant" | "val" => Some(RoutingKind::Valiant),
            "pb" | "piggyback" | "piggybacking" => Some(RoutingKind::Piggybacking),
            "par" | "par-4/2" | "par42" => Some(RoutingKind::Par),
            "par-6/2" | "par62" => Some(RoutingKind::Par62),
            "rlm" => Some(RoutingKind::Rlm),
            "olm" => Some(RoutingKind::Olm),
            _ => None,
        }
    }

    /// Number of local VCs the mechanism needs.
    pub fn local_vcs(self) -> usize {
        match self {
            RoutingKind::Par62 => 6,
            RoutingKind::Par => 4,
            _ => 3,
        }
    }

    /// Whether the mechanism is safe under Wormhole flow control.
    pub fn supports_wormhole(self) -> bool {
        !matches!(self, RoutingKind::Olm)
    }

    /// Instantiate the mechanism with default adaptive parameters.
    pub fn build(self) -> Box<dyn RoutingAlgorithm> {
        self.build_with(AdaptiveParams::default())
    }

    /// Instantiate the mechanism with explicit adaptive parameters (the threshold is
    /// ignored by the oblivious mechanisms).
    pub fn build_with(self, params: AdaptiveParams) -> Box<dyn RoutingAlgorithm> {
        match self {
            RoutingKind::Minimal => Box::new(MinimalRouting::new()),
            RoutingKind::Valiant => Box::new(ValiantRouting::new()),
            RoutingKind::Piggybacking => Box::new(Piggybacking::new()),
            RoutingKind::Par => Box::new(Par::new(params)),
            RoutingKind::Par62 => Box::new(Par62::new(params)),
            RoutingKind::Rlm => Box::new(Rlm::new(params)),
            RoutingKind::Olm => Box::new(Olm::new(params)),
        }
    }

    /// Instantiate the mechanism as its *concrete* type and hand it to `visitor`.
    ///
    /// This is the monomorphic counterpart of [`RoutingKind::build_with`]: instead of
    /// a `Box<dyn RoutingAlgorithm>`, the visitor's generic `visit` is called with
    /// the concrete mechanism, letting the simulation engine statically dispatch the
    /// per-cycle routing call.
    pub fn dispatch<V: RoutingVisitor>(self, params: AdaptiveParams, visitor: V) -> V::Output {
        match self {
            RoutingKind::Minimal => visitor.visit(MinimalRouting::new()),
            RoutingKind::Valiant => visitor.visit(ValiantRouting::new()),
            RoutingKind::Piggybacking => visitor.visit(Piggybacking::new()),
            RoutingKind::Par => visitor.visit(Par::new(params)),
            RoutingKind::Par62 => visitor.visit(Par62::new(params)),
            RoutingKind::Rlm => visitor.visit(Rlm::new(params)),
            RoutingKind::Olm => visitor.visit(Olm::new(params)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip_through_parse() {
        for kind in RoutingKind::ALL {
            assert_eq!(RoutingKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(RoutingKind::parse("olm"), Some(RoutingKind::Olm));
        assert_eq!(RoutingKind::parse("nonsense"), None);
    }

    #[test]
    fn kind_metadata_matches_mechanisms() {
        for kind in RoutingKind::ALL {
            let mech = kind.build();
            assert_eq!(mech.name(), kind.name());
            assert!(kind.local_vcs() >= mech.required_local_vcs());
            assert_eq!(
                kind.supports_wormhole(),
                mech.supports_flow_control(dragonfly_sim::FlowControl::Wormhole { flit_size: 10 })
            );
        }
    }

    #[test]
    fn all_list_has_every_variant_once() {
        let mut names: Vec<&str> = RoutingKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
