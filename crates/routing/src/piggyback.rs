//! Piggybacking (PB) — the best indirect adaptive routing of Jiang, Kim & Dally
//! (ISCA 2009), used by the paper as the adaptive baseline.
//!
//! Every router of a group periodically broadcasts one congestion bit per global
//! channel to the other routers of its group (the simulator keeps this board up to
//! date in [`dragonfly_sim::Network`]).  At injection time the source router compares
//! the flag of the minimal global channel with the flag of the channel toward a
//! candidate random intermediate group and commits the packet to either the minimal or
//! the Valiant route — source routing, never revisited in transit, and no local
//! misrouting at all.

use crate::common::{ladder_vc_3_2, next_productive_port, sample_intermediate_groups};
use dragonfly_rng::Rng;
use dragonfly_sim::{Packet, RouteChoice, RouteCtx, RouteUpdate, RouterView, RoutingAlgorithm};

/// Piggybacking source-adaptive routing.
#[derive(Debug, Clone, Copy)]
pub struct Piggybacking {
    /// Occupancy fraction of the minimal *local* queue above which group-local traffic
    /// is diverted onto a Valiant path (the paper notes its PB implementation may
    /// misroute local traffic globally).
    pub local_divert_threshold: f64,
}

impl Default for Piggybacking {
    fn default() -> Self {
        Self {
            local_divert_threshold: 0.3,
        }
    }
}

impl Piggybacking {
    /// Create the mechanism with default thresholds.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RoutingAlgorithm for Piggybacking {
    fn name(&self) -> &'static str {
        "PB"
    }

    fn required_local_vcs(&self) -> usize {
        3
    }

    fn required_global_vcs(&self) -> usize {
        2
    }

    fn route(
        &self,
        _ctx: &RouteCtx<'_>,
        packet: &Packet,
        view: &RouterView<'_>,
        rng: &mut Rng,
    ) -> Option<RouteChoice> {
        let params = view.params;
        let dest_router = params.router_of_node(packet.dst);
        if dest_router == view.router {
            return Some(RouteChoice::plain(
                next_productive_port(params, view.router, packet),
                0,
            ));
        }

        // The source-routed decision is taken exactly once, at the injection router.
        if !packet.route.source_decision_taken && packet.route.total_hops == 0 {
            let src_group = view.group();
            let dst_group = params.group_of_node(packet.dst);
            let flags = view.global_congested.unwrap_or(&[]);
            let candidates = sample_intermediate_groups(params, src_group, dst_group, 1, rng);

            let minimal_congested = if dst_group != src_group {
                let channel = params.channel_to_group(src_group, dst_group);
                flags.get(channel).copied().unwrap_or(false)
            } else {
                // Group-local traffic: judge the minimal local queue directly.
                let port = next_productive_port(params, view.router, packet);
                let occupancy = view.port_occupancy(port) as f64;
                let capacity = view.outputs[port.flat(params.h())].total_capacity() as f64;
                occupancy > self.local_divert_threshold * capacity
            };

            if minimal_congested {
                if let Some(&ig) = candidates.first() {
                    let channel = params.channel_to_group(src_group, ig);
                    let candidate_congested = flags.get(channel).copied().unwrap_or(false);
                    if !candidate_congested {
                        let mut probe = packet.clone();
                        probe.route.intermediate_group = Some(ig);
                        probe.route.reached_intermediate = false;
                        let port = next_productive_port(params, view.router, &probe);
                        return Some(RouteChoice {
                            port,
                            vc: ladder_vc_3_2(port, packet),
                            update: RouteUpdate {
                                set_intermediate_group: Some(ig),
                                mark_global_misroute: true,
                                mark_source_decision: true,
                                ..RouteUpdate::default()
                            },
                        });
                    }
                }
            }
            // Commit to the minimal route.
            let port = next_productive_port(params, view.router, packet);
            return Some(RouteChoice {
                port,
                vc: ladder_vc_3_2(port, packet),
                update: RouteUpdate {
                    mark_source_decision: true,
                    ..RouteUpdate::default()
                },
            });
        }

        // In transit: follow whatever was decided at the source.
        let port = next_productive_port(params, view.router, packet);
        let vc = if port.is_terminal() {
            0
        } else {
            ladder_vc_3_2(port, packet)
        };
        Some(RouteChoice::plain(port, vc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{MinimalRouting, ValiantRouting};
    use dragonfly_sim::{SimConfig, Simulation};
    use dragonfly_traffic::{AdversarialGlobal, Uniform};

    #[test]
    fn metadata() {
        let pb = Piggybacking::new();
        assert_eq!(pb.name(), "PB");
        assert_eq!(pb.required_local_vcs(), 3);
        assert_eq!(pb.required_global_vcs(), 2);
    }

    #[test]
    fn pb_uniform_traffic_mostly_minimal() {
        let mut sim = Simulation::new(
            SimConfig::paper_vct(2).with_seed(4),
            Box::new(Piggybacking::new()),
            Box::new(Uniform::new()),
        );
        let report = sim.run_steady_state(0.15, 2_000, 3_000, 4_000);
        assert!(!report.deadlock_detected);
        // Uniform traffic at moderate load keeps global queues below the congestion
        // threshold, so PB rarely misroutes and behaves like minimal routing.
        assert!(
            report.global_misroute_fraction < 0.35,
            "PB misrouted {} of packets under UN",
            report.global_misroute_fraction
        );
        assert_eq!(report.local_misroute_fraction, 0.0);
        assert!((report.accepted_load - 0.15).abs() < 0.04);
    }

    #[test]
    fn pb_advg_beats_minimal_and_tracks_valiant() {
        let adv = || Box::new(AdversarialGlobal::new(1));
        let run = |routing: Box<dyn dragonfly_sim::RoutingAlgorithm>| {
            let mut sim = Simulation::new(SimConfig::paper_vct(2).with_seed(9), routing, adv());
            sim.run_steady_state(0.4, 3_000, 4_000, 2_000)
        };
        let minimal = run(Box::new(MinimalRouting::new()));
        let pb = run(Box::new(Piggybacking::new()));
        let valiant = run(Box::new(ValiantRouting::new()));
        assert!(
            pb.accepted_load > minimal.accepted_load * 1.5,
            "PB {} vs minimal {}",
            pb.accepted_load,
            minimal.accepted_load
        );
        // PB adapts: it should deliver at least ~70% of pure Valiant under ADVG.
        assert!(
            pb.accepted_load > valiant.accepted_load * 0.7,
            "PB {} vs Valiant {}",
            pb.accepted_load,
            valiant.accepted_load
        );
        assert!(pb.global_misroute_fraction > 0.3);
        assert!(!pb.deadlock_detected);
    }
}
