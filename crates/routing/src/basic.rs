//! The oblivious baselines: Minimal routing and Valiant randomized routing.

use crate::common::{ladder_vc_3_2, next_productive_port, sample_intermediate_groups};
use dragonfly_rng::Rng;
use dragonfly_sim::{
    FlowControl, Packet, RouteChoice, RouteCtx, RouteUpdate, RouterView, RoutingAlgorithm,
};

/// Minimal routing: always follow the shortest path `l – g – l` with the ascending
/// 3/2 VC ladder.  The baseline for uniform traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimalRouting;

impl MinimalRouting {
    /// Create the mechanism.
    pub fn new() -> Self {
        Self
    }
}

impl RoutingAlgorithm for MinimalRouting {
    fn name(&self) -> &'static str {
        "Minimal"
    }

    fn required_local_vcs(&self) -> usize {
        2
    }

    fn required_global_vcs(&self) -> usize {
        1
    }

    fn route(
        &self,
        _ctx: &RouteCtx<'_>,
        packet: &Packet,
        view: &RouterView<'_>,
        _rng: &mut Rng,
    ) -> Option<RouteChoice> {
        let port = next_productive_port(view.params, view.router, packet);
        Some(RouteChoice::plain(port, ladder_vc_3_2(port, packet)))
    }
}

/// Valiant randomized routing: every packet is first sent minimally to a uniformly
/// random intermediate group (chosen at injection) and then minimally to its
/// destination.  The baseline for adversarial-global traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValiantRouting;

impl ValiantRouting {
    /// Create the mechanism.
    pub fn new() -> Self {
        Self
    }
}

impl RoutingAlgorithm for ValiantRouting {
    fn name(&self) -> &'static str {
        "Valiant"
    }

    fn required_local_vcs(&self) -> usize {
        3
    }

    fn required_global_vcs(&self) -> usize {
        2
    }

    fn supports_flow_control(&self, _fc: FlowControl) -> bool {
        true
    }

    fn route(
        &self,
        _ctx: &RouteCtx<'_>,
        packet: &Packet,
        view: &RouterView<'_>,
        rng: &mut Rng,
    ) -> Option<RouteChoice> {
        let params = view.params;
        let dest_router = params.router_of_node(packet.dst);
        // Delivered locally: nothing to randomize.
        if dest_router == view.router {
            let port = next_productive_port(params, view.router, packet);
            return Some(RouteChoice::plain(port, 0));
        }
        // At the injection router, commit to a random intermediate group.
        if !packet.route.source_decision_taken && packet.route.total_hops == 0 {
            let src_group = view.group();
            let dst_group = params.group_of_node(packet.dst);
            let candidates = sample_intermediate_groups(params, src_group, dst_group, 1, rng);
            if let Some(&ig) = candidates.first() {
                // Route toward the chosen group; the commitment is applied on grant.
                let mut probe = packet.clone();
                probe.route.intermediate_group = Some(ig);
                probe.route.reached_intermediate = false;
                let port = next_productive_port(params, view.router, &probe);
                let update = RouteUpdate {
                    set_intermediate_group: Some(ig),
                    mark_global_misroute: true,
                    mark_source_decision: true,
                    ..RouteUpdate::default()
                };
                return Some(RouteChoice {
                    port,
                    vc: ladder_vc_3_2(port, packet),
                    update,
                });
            }
        }
        // Otherwise continue along the committed Valiant path (or minimally once the
        // intermediate group has been reached).
        let port = next_productive_port(params, view.router, packet);
        Some(RouteChoice::plain(port, ladder_vc_3_2(port, packet)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_sim::{SimConfig, Simulation};
    use dragonfly_traffic::{AdversarialGlobal, Uniform};

    #[test]
    fn minimal_metadata() {
        let m = MinimalRouting::new();
        assert_eq!(m.name(), "Minimal");
        assert!(m.required_local_vcs() <= 3);
        assert!(m.supports_flow_control(FlowControl::Vct));
        assert!(m.supports_flow_control(FlowControl::Wormhole { flit_size: 10 }));
    }

    #[test]
    fn valiant_metadata() {
        let v = ValiantRouting::new();
        assert_eq!(v.name(), "Valiant");
        assert_eq!(v.required_local_vcs(), 3);
        assert_eq!(v.required_global_vcs(), 2);
    }

    #[test]
    fn minimal_uniform_traffic_end_to_end() {
        let mut sim = Simulation::new(
            SimConfig::paper_vct(2).with_seed(42),
            Box::new(MinimalRouting::new()),
            Box::new(Uniform::new()),
        );
        let report = sim.run_steady_state(0.15, 2_000, 3_000, 4_000);
        assert!(!report.deadlock_detected);
        assert!(
            (report.accepted_load - 0.15).abs() < 0.04,
            "{}",
            report.accepted_load
        );
        assert!(report.avg_hops <= 3.0);
        assert_eq!(report.global_misroute_fraction, 0.0);
        assert_eq!(report.local_misroute_fraction, 0.0);
    }

    #[test]
    fn valiant_uniform_traffic_uses_longer_paths() {
        let mut sim = Simulation::new(
            SimConfig::paper_vct(2).with_seed(42),
            Box::new(ValiantRouting::new()),
            Box::new(Uniform::new()),
        );
        let report = sim.run_steady_state(0.1, 2_000, 3_000, 4_000);
        assert!(!report.deadlock_detected);
        // Essentially every packet is globally misrouted under Valiant.
        assert!(
            report.global_misroute_fraction > 0.9,
            "{}",
            report.global_misroute_fraction
        );
        assert!(report.avg_hops > 2.0, "{}", report.avg_hops);
        assert!((report.accepted_load - 0.1).abs() < 0.04);
    }

    #[test]
    fn valiant_beats_minimal_under_advg() {
        // The defining property of Valiant routing: under adversarial-global traffic
        // it sustains much more throughput than minimal routing.
        let adv = || Box::new(AdversarialGlobal::new(1));
        let mut minimal = Simulation::new(
            SimConfig::paper_vct(2).with_seed(7),
            Box::new(MinimalRouting::new()),
            adv(),
        );
        let mut valiant = Simulation::new(
            SimConfig::paper_vct(2).with_seed(7),
            Box::new(ValiantRouting::new()),
            adv(),
        );
        let rm = minimal.run_steady_state(0.4, 3_000, 4_000, 2_000);
        let rv = valiant.run_steady_state(0.4, 3_000, 4_000, 2_000);
        assert!(
            rv.accepted_load > rm.accepted_load * 1.5,
            "valiant {} vs minimal {}",
            rv.accepted_load,
            rm.accepted_load
        );
        assert!(!rv.deadlock_detected);
        assert!(!rm.deadlock_detected);
    }
}
