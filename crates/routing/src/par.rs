//! PAR — the original Progressive Adaptive Routing of Jiang, Kim & Dally (ISCA 2009)
//! with 4 local / 2 global virtual channels.
//!
//! PAR decides between minimal and Valiant routing at injection time like
//! Piggybacking, but it can *revisit* that decision after the first minimal local hop
//! in the source group if the minimal global channel turns out to be saturated,
//! producing paths of up to six hops (`l l g l g l`) and therefore needing a fourth
//! local VC in the distance-ladder deadlock-avoidance scheme.  It supports **no**
//! local misrouting, which is exactly the limitation the paper's PAR-6/2, RLM and OLM
//! mechanisms remove.  It is included as an additional baseline (the paper discusses
//! it in Section II and builds PAR-6/2 on top of it).

use crate::common::{
    global_misroute_eligible, next_productive_port, occupancy, sample_intermediate_groups,
    AdaptiveParams, MisroutingTrigger,
};
use dragonfly_rng::Rng;
use dragonfly_sim::{Packet, RouteChoice, RouteCtx, RouteUpdate, RouterView, RoutingAlgorithm};
use dragonfly_topology::Port;

/// The PAR (4/2) mechanism.
#[derive(Debug, Clone, Copy)]
pub struct Par {
    params: AdaptiveParams,
    trigger: MisroutingTrigger,
}

impl Default for Par {
    fn default() -> Self {
        Self::new(AdaptiveParams::default())
    }
}

impl Par {
    /// Create the mechanism with the given adaptive parameters.
    pub fn new(params: AdaptiveParams) -> Self {
        Self {
            params,
            trigger: MisroutingTrigger::new(params.threshold),
        }
    }

    /// Create the mechanism with an explicit misrouting threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        Self::new(AdaptiveParams::with_threshold(threshold))
    }

    /// The PAR virtual-channel ladder: `l1 l2 g1 l3 g2 l4`, i.e. the two source-group
    /// local hops use VCs 0 and 1, the intermediate-group local hop VC 2 and the
    /// destination-group local hop VC 3.
    fn ladder_vc(port: Port, packet: &Packet) -> u8 {
        match port {
            Port::Global(_) => packet.route.global_hops.min(1),
            Port::Local(_) => {
                if packet.route.global_hops == 0 {
                    packet.route.local_hops_in_group.min(1)
                } else {
                    (packet.route.global_hops + 1).min(3)
                }
            }
            Port::Terminal(_) => 0,
        }
    }
}

impl RoutingAlgorithm for Par {
    fn name(&self) -> &'static str {
        "PAR"
    }

    fn required_local_vcs(&self) -> usize {
        4
    }

    fn required_global_vcs(&self) -> usize {
        2
    }

    fn route(
        &self,
        _ctx: &RouteCtx<'_>,
        packet: &Packet,
        view: &RouterView<'_>,
        rng: &mut Rng,
    ) -> Option<RouteChoice> {
        let params = view.params;
        let group = view.group();

        let minimal_port = next_productive_port(params, view.router, packet);
        let minimal_vc = if minimal_port.is_terminal() {
            0
        } else {
            Self::ladder_vc(minimal_port, packet)
        };
        if view.can_claim(minimal_port, minimal_vc as usize, packet) {
            return Some(RouteChoice::plain(minimal_port, minimal_vc));
        }
        if minimal_port.is_terminal() {
            return None;
        }
        let minimal_occ = occupancy(view, minimal_port, minimal_vc);

        // Global misrouting only (at the injection router or after the first minimal
        // local hop of the source group) — PAR never misroutes locally.
        if global_misroute_eligible(params, group, packet) {
            let dst_group = params.group_of_node(packet.dst);
            for ig in sample_intermediate_groups(
                params,
                group,
                dst_group,
                self.params.global_candidates,
                rng,
            ) {
                let port = params.port_toward_group(view.router, ig);
                let vc = Self::ladder_vc(port, packet);
                if view.can_claim(port, vc as usize, packet)
                    && self.trigger.allows(occupancy(view, port, vc), minimal_occ)
                {
                    return Some(RouteChoice {
                        port,
                        vc,
                        update: RouteUpdate {
                            set_intermediate_group: Some(ig),
                            mark_global_misroute: true,
                            ..RouteUpdate::default()
                        },
                    });
                }
            }
        }

        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::MinimalRouting;
    use dragonfly_sim::{Packet as SimPacket, PacketId, SimConfig, Simulation};
    use dragonfly_topology::NodeId;
    use dragonfly_traffic::{AdversarialGlobal, AdversarialLocal, Uniform};

    #[test]
    fn metadata() {
        let p = Par::default();
        assert_eq!(p.name(), "PAR");
        assert_eq!(p.required_local_vcs(), 4);
        assert_eq!(p.required_global_vcs(), 2);
        let c = Par::with_threshold(0.6);
        assert!((c.params.threshold - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ladder_follows_l_l_g_l_g_l() {
        let mut p = SimPacket::new(PacketId(0), NodeId(0), NodeId(500), 8, 0);
        assert_eq!(Par::ladder_vc(Port::Local(0), &p), 0);
        p.route.local_hops_in_group = 1;
        assert_eq!(Par::ladder_vc(Port::Local(0), &p), 1);
        assert_eq!(Par::ladder_vc(Port::Global(0), &p), 0);
        p.route.global_hops = 1;
        p.route.local_hops_in_group = 0;
        assert_eq!(Par::ladder_vc(Port::Local(0), &p), 2);
        assert_eq!(Par::ladder_vc(Port::Global(0), &p), 1);
        p.route.global_hops = 2;
        assert_eq!(Par::ladder_vc(Port::Local(0), &p), 3);
        assert_eq!(Par::ladder_vc(Port::Terminal(0), &p), 0);
    }

    #[test]
    #[should_panic(expected = "requires 4 local VCs")]
    fn rejects_three_local_vcs() {
        let _ = Simulation::new(
            SimConfig::paper_vct(2),
            Box::new(Par::default()),
            Box::new(Uniform::new()),
        );
    }

    #[test]
    fn advg_beats_minimal() {
        let adv = || Box::new(AdversarialGlobal::new(1));
        let mut par = Simulation::new(
            SimConfig::paper_vct(2).with_local_vcs(4).with_seed(5),
            Box::new(Par::default()),
            adv(),
        );
        let par_report = par.run_steady_state(0.4, 3_000, 4_000, 2_000);
        let mut minimal = Simulation::new(
            SimConfig::paper_vct(2).with_seed(5),
            Box::new(MinimalRouting::new()),
            adv(),
        );
        let minimal_report = minimal.run_steady_state(0.4, 3_000, 4_000, 2_000);
        assert!(!par_report.deadlock_detected);
        assert!(
            par_report.accepted_load > minimal_report.accepted_load * 1.5,
            "PAR {} vs minimal {}",
            par_report.accepted_load,
            minimal_report.accepted_load
        );
    }

    #[test]
    fn advl_stays_near_one_over_h_without_local_misrouting() {
        // PAR has no local misrouting; under ADVL+1 it can only escape through full
        // Valiant detours, so it stays well below the local-misrouting mechanisms.
        let mut sim = Simulation::new(
            SimConfig::paper_vct(2).with_local_vcs(4).with_seed(7),
            Box::new(Par::default()),
            Box::new(AdversarialLocal::new(1)),
        );
        let report = sim.run_steady_state(0.9, 3_000, 4_000, 2_000);
        assert!(!report.deadlock_detected);
        assert_eq!(
            report.local_misroute_fraction, 0.0,
            "PAR must never misroute locally"
        );
    }

    #[test]
    fn wormhole_supported() {
        let mut sim = Simulation::new(
            SimConfig::paper_wormhole(2).with_local_vcs(4).with_seed(3),
            Box::new(Par::default()),
            Box::new(Uniform::new()),
        );
        let report = sim.run_steady_state(0.1, 2_000, 3_000, 5_000);
        assert!(!report.deadlock_detected);
        assert!(report.packets_measured > 20);
    }
}
