//! Restricted Local Misrouting (RLM) — first contribution of the paper.
//!
//! RLM keeps the baseline 3 local / 2 global virtual channels.  Both local hops taken
//! inside one group share the *same* local VC, so the ascending-VC argument alone no
//! longer rules out cycles among the local channels of a group; instead RLM forbids
//! the 2-hop combinations of the parity-sign table (Table I), which makes intra-group
//! cyclic dependencies impossible by construction.  Because no cycle can ever form,
//! RLM is safe under both Virtual Cut-Through and Wormhole flow control.

use crate::common::{
    global_misroute_eligible, ladder_vc_3_2, local_detour_targets, local_misroute_eligible,
    next_productive_port, occupancy, sample_intermediate_groups, AdaptiveParams, InlineVec,
    MisroutingTrigger, MAX_DETOUR_CANDIDATES,
};
use crate::parity_sign::{LinkClass, ParitySignTable};
use dragonfly_rng::Rng;
use dragonfly_sim::{Packet, RouteChoice, RouteCtx, RouteUpdate, RouterView, RoutingAlgorithm};
use dragonfly_topology::Port;

/// The RLM mechanism.
#[derive(Debug, Clone)]
pub struct Rlm {
    params: AdaptiveParams,
    trigger: MisroutingTrigger,
    table: ParitySignTable,
}

impl Default for Rlm {
    fn default() -> Self {
        Self::new(AdaptiveParams::default())
    }
}

impl Rlm {
    /// Create the mechanism with the given adaptive parameters.
    pub fn new(params: AdaptiveParams) -> Self {
        Self {
            params,
            trigger: MisroutingTrigger::new(params.threshold),
            table: ParitySignTable::new(),
        }
    }

    /// Create the mechanism with an explicit misrouting threshold (Figure 10/11).
    pub fn with_threshold(threshold: f64) -> Self {
        Self::new(AdaptiveParams::with_threshold(threshold))
    }

    /// The parity-sign table used by this instance.
    pub fn table(&self) -> &ParitySignTable {
        &self.table
    }

    /// Whether a local hop `from_idx → to_idx` is compatible with the packet's
    /// previous local hop in this group (if any).
    fn pair_ok(&self, packet: &Packet, from_idx: usize, to_idx: usize) -> bool {
        match packet.route.last_local_class {
            None => true,
            Some(code) => self.table.allowed(
                LinkClass::from_code(code),
                LinkClass::of_hop(from_idx, to_idx),
            ),
        }
    }
}

impl RoutingAlgorithm for Rlm {
    fn name(&self) -> &'static str {
        "RLM"
    }

    fn required_local_vcs(&self) -> usize {
        3
    }

    fn required_global_vcs(&self) -> usize {
        2
    }

    fn route(
        &self,
        _ctx: &RouteCtx<'_>,
        packet: &Packet,
        view: &RouterView<'_>,
        rng: &mut Rng,
    ) -> Option<RouteChoice> {
        let params = view.params;
        let group = view.group();
        let cur_idx = params.router_index_in_group(view.router);

        // Minimal (productive) hop first.
        let minimal_port = next_productive_port(params, view.router, packet);
        let minimal_vc = if minimal_port.is_terminal() {
            0
        } else {
            ladder_vc_3_2(minimal_port, packet)
        };
        let minimal_pair_ok = match minimal_port {
            Port::Local(p) => {
                let to_idx = params.local_neighbor_index(cur_idx, p);
                self.pair_ok(packet, cur_idx, to_idx)
            }
            _ => true,
        };
        if minimal_pair_ok && view.can_claim(minimal_port, minimal_vc as usize, packet) {
            let local_class = match minimal_port {
                Port::Local(p) => {
                    let to_idx = params.local_neighbor_index(cur_idx, p);
                    Some(LinkClass::of_hop(cur_idx, to_idx).code())
                }
                _ => None,
            };
            return Some(RouteChoice {
                port: minimal_port,
                vc: minimal_vc,
                update: RouteUpdate {
                    local_link_class: local_class,
                    ..RouteUpdate::default()
                },
            });
        }
        if minimal_port.is_terminal() {
            return None;
        }
        let minimal_occ = occupancy(view, minimal_port, minimal_vc);

        // 1. Local misrouting restricted by the parity-sign table.
        if local_misroute_eligible(params, group, minimal_port, packet) {
            let to_idx = params.local_neighbor_index(cur_idx, minimal_port.class_index());
            let mut candidates: InlineVec<(Port, u8, u8), MAX_DETOUR_CANDIDATES> =
                InlineVec::new((Port::Local(0), 0, 0));
            for k in local_detour_targets(params, cur_idx, to_idx) {
                // The whole 2-hop detour (current -> k -> to) must be an allowed
                // combination, and it must also compose with any previous local hop of
                // this group (which cannot exist here, but the check is kept for
                // robustness).
                if !self.table.path_allowed(cur_idx, k, to_idx) || !self.pair_ok(packet, cur_idx, k)
                {
                    continue;
                }
                let port = Port::Local(params.local_port_to(cur_idx, k));
                let vc = ladder_vc_3_2(port, packet);
                if view.can_claim(port, vc as usize, packet)
                    && self.trigger.allows(occupancy(view, port, vc), minimal_occ)
                {
                    candidates.push((port, vc, LinkClass::of_hop(cur_idx, k).code()));
                }
            }
            if !candidates.is_empty() {
                let &(port, vc, class) = rng.choose(candidates.as_slice());
                return Some(RouteChoice {
                    port,
                    vc,
                    update: RouteUpdate {
                        mark_local_misroute: true,
                        local_link_class: Some(class),
                        ..RouteUpdate::default()
                    },
                });
            }
        }

        // 2. Global misrouting in the source group.  An indirect detour (a local hop
        // to the router owning the chosen global channel) is itself a local hop of
        // this group and must respect the parity-sign restriction too.
        if global_misroute_eligible(params, group, packet) {
            let dst_group = params.group_of_node(packet.dst);
            for ig in sample_intermediate_groups(
                params,
                group,
                dst_group,
                self.params.global_candidates,
                rng,
            ) {
                let port = params.port_toward_group(view.router, ig);
                let class = match port {
                    Port::Local(p) => {
                        let to_idx = params.local_neighbor_index(cur_idx, p);
                        if !self.pair_ok(packet, cur_idx, to_idx) {
                            continue;
                        }
                        Some(LinkClass::of_hop(cur_idx, to_idx).code())
                    }
                    _ => None,
                };
                let vc = ladder_vc_3_2(port, packet);
                if view.can_claim(port, vc as usize, packet)
                    && self.trigger.allows(occupancy(view, port, vc), minimal_occ)
                {
                    return Some(RouteChoice {
                        port,
                        vc,
                        update: RouteUpdate {
                            set_intermediate_group: Some(ig),
                            mark_global_misroute: true,
                            local_link_class: class,
                            ..RouteUpdate::default()
                        },
                    });
                }
            }
        }

        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{MinimalRouting, ValiantRouting};
    use crate::piggyback::Piggybacking;
    use dragonfly_sim::{FlowControl, SimConfig, Simulation};
    use dragonfly_traffic::{AdversarialGlobal, AdversarialLocal, Uniform};

    fn rlm_sim(
        config: SimConfig,
        traffic: Box<dyn dragonfly_traffic::TrafficPattern>,
    ) -> Simulation {
        Simulation::new(config, Box::new(Rlm::default()), traffic)
    }

    #[test]
    fn metadata_uses_baseline_vcs() {
        let r = Rlm::default();
        assert_eq!(r.name(), "RLM");
        assert_eq!(r.required_local_vcs(), 3);
        assert_eq!(r.required_global_vcs(), 2);
        assert!(r.supports_flow_control(FlowControl::Vct));
        assert!(r.supports_flow_control(FlowControl::Wormhole { flit_size: 10 }));
        assert_eq!(r.table().rows().len(), 16);
    }

    #[test]
    fn pair_check_uses_previous_class() {
        let r = Rlm::default();
        let mut p = dragonfly_sim::Packet::new(
            dragonfly_sim::PacketId(0),
            dragonfly_topology::NodeId(0),
            dragonfly_topology::NodeId(100),
            8,
            0,
        );
        assert!(r.pair_ok(&p, 5, 1));
        // Previous hop even- (e.g. 7 -> 5); next hop 5 -> 0 is odd-, which Table I
        // forbids after even-.
        p.route.last_local_class = Some(LinkClass::of_hop(7, 5).code());
        assert!(!r.pair_ok(&p, 5, 0));
        // 5 -> 2 is odd-, still forbidden; 5 -> 7 is even+, also forbidden after even-;
        // 5 -> 3 is even-, allowed (same class).
        assert!(!r.pair_ok(&p, 5, 2));
        assert!(!r.pair_ok(&p, 5, 7));
        assert!(r.pair_ok(&p, 5, 3));
    }

    #[test]
    fn uniform_traffic_vct() {
        let mut sim = rlm_sim(
            SimConfig::paper_vct(2).with_seed(3),
            Box::new(Uniform::new()),
        );
        let report = sim.run_steady_state(0.3, 2_000, 3_000, 4_000);
        assert!(!report.deadlock_detected);
        assert!(
            (report.accepted_load - 0.3).abs() < 0.06,
            "{}",
            report.accepted_load
        );
    }

    #[test]
    fn advg_traffic_beats_minimal_and_pb() {
        let adv = || Box::new(AdversarialGlobal::new(1));
        let run = |routing: Box<dyn dragonfly_sim::RoutingAlgorithm>| {
            let mut sim = Simulation::new(SimConfig::paper_vct(2).with_seed(17), routing, adv());
            sim.run_steady_state(0.5, 3_000, 4_000, 2_000)
        };
        let minimal = run(Box::new(MinimalRouting::new()));
        let rlm = run(Box::<Rlm>::default());
        assert!(
            rlm.accepted_load > minimal.accepted_load * 1.5,
            "RLM {} vs minimal {}",
            rlm.accepted_load,
            minimal.accepted_load
        );
        assert!(rlm.global_misroute_fraction > 0.3);
        assert!(!rlm.deadlock_detected);
    }

    #[test]
    fn advl_traffic_exploits_local_misrouting() {
        let mut sim = rlm_sim(
            SimConfig::paper_vct(2).with_seed(23),
            Box::new(AdversarialLocal::new(1)),
        );
        let report = sim.run_steady_state(0.9, 3_000, 4_000, 2_000);
        assert!(!report.deadlock_detected);
        assert!(
            report.accepted_load > 0.5,
            "RLM should beat the 1/h bound under ADVL+1, got {}",
            report.accepted_load
        );
    }

    #[test]
    fn advg_plus_h_beats_valiant_thanks_to_local_misrouting() {
        let h = 2;
        let adv = || Box::new(AdversarialGlobal::new(h));
        let mut rlm = rlm_sim(SimConfig::paper_vct(h).with_seed(29), adv());
        let rlm_report = rlm.run_steady_state(0.6, 3_000, 5_000, 2_000);
        let mut valiant = Simulation::new(
            SimConfig::paper_vct(h).with_seed(29),
            Box::new(ValiantRouting::new()),
            adv(),
        );
        let valiant_report = valiant.run_steady_state(0.6, 3_000, 5_000, 2_000);
        assert!(!rlm_report.deadlock_detected);
        assert!(
            rlm_report.accepted_load >= valiant_report.accepted_load * 0.95,
            "RLM {} should not lose to Valiant {} under ADVG+h",
            rlm_report.accepted_load,
            valiant_report.accepted_load
        );
    }

    #[test]
    fn wormhole_advg_runs_deadlock_free() {
        // The key property of RLM versus OLM: it remains deadlock-free under Wormhole.
        let mut sim = rlm_sim(
            SimConfig::paper_wormhole(2).with_seed(31),
            Box::new(AdversarialGlobal::new(1)),
        );
        let report = sim.run_steady_state(0.3, 3_000, 4_000, 6_000);
        assert!(
            !report.deadlock_detected,
            "RLM must never deadlock under WH"
        );
        assert!(report.packets_measured > 20);
    }

    #[test]
    fn pb_comparison_under_uniform_is_close() {
        let run = |routing: Box<dyn dragonfly_sim::RoutingAlgorithm>| {
            let mut sim = Simulation::new(
                SimConfig::paper_vct(2).with_seed(37),
                routing,
                Box::new(Uniform::new()),
            );
            sim.run_steady_state(0.4, 2_000, 3_000, 3_000)
        };
        let rlm = run(Box::<Rlm>::default());
        let pb = run(Box::new(Piggybacking::new()));
        // Under uniform traffic at moderate load both should accept close to the
        // offered load; RLM must not collapse.
        assert!(rlm.accepted_load > pb.accepted_load * 0.85);
    }
}
