//! PAR-6/2 — the naïve reference mechanism: Progressive Adaptive Routing extended
//! with local misrouting, made deadlock-free by a pure distance ladder that needs
//! **six** local virtual channels.
//!
//! PAR-6/2 has the full routing freedom of the paper's proposals (global misrouting at
//! the source router or after one minimal local hop, one local misroute per
//! intermediate/destination group) but pays for it with twice the local VC count of
//! RLM/OLM, which is exactly the cost the paper's new mechanisms avoid.

use crate::common::{
    global_misroute_eligible, ladder_vc_6_2, local_detour_targets, local_misroute_eligible,
    next_productive_port, occupancy, sample_intermediate_groups, AdaptiveParams, InlineVec,
    MisroutingTrigger, MAX_DETOUR_CANDIDATES,
};
use dragonfly_rng::Rng;
use dragonfly_sim::{Packet, RouteChoice, RouteCtx, RouteUpdate, RouterView, RoutingAlgorithm};
use dragonfly_topology::Port;

/// The PAR-6/2 mechanism.
#[derive(Debug, Clone, Copy)]
pub struct Par62 {
    params: AdaptiveParams,
    trigger: MisroutingTrigger,
}

impl Default for Par62 {
    fn default() -> Self {
        Self::new(AdaptiveParams::default())
    }
}

impl Par62 {
    /// Create the mechanism with the given adaptive parameters.
    pub fn new(params: AdaptiveParams) -> Self {
        Self {
            params,
            trigger: MisroutingTrigger::new(params.threshold),
        }
    }

    /// Create the mechanism with an explicit misrouting threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        Self::new(AdaptiveParams::with_threshold(threshold))
    }
}

impl RoutingAlgorithm for Par62 {
    fn name(&self) -> &'static str {
        "PAR-6/2"
    }

    fn required_local_vcs(&self) -> usize {
        6
    }

    fn required_global_vcs(&self) -> usize {
        2
    }

    fn route(
        &self,
        _ctx: &RouteCtx<'_>,
        packet: &Packet,
        view: &RouterView<'_>,
        rng: &mut Rng,
    ) -> Option<RouteChoice> {
        let params = view.params;
        let group = view.group();

        // Minimal (productive) hop is always preferred when it can be granted now.
        let minimal_port = next_productive_port(params, view.router, packet);
        let minimal_vc = if minimal_port.is_terminal() {
            0
        } else {
            ladder_vc_6_2(minimal_port, packet)
        };
        if view.can_claim(minimal_port, minimal_vc as usize, packet) {
            return Some(RouteChoice::plain(minimal_port, minimal_vc));
        }
        if minimal_port.is_terminal() {
            // Ejection ports never stay blocked for long; just wait.
            return None;
        }
        let minimal_occ = occupancy(view, minimal_port, minimal_vc);

        // 1. Local misrouting in the intermediate / destination group.
        if local_misroute_eligible(params, group, minimal_port, packet) {
            let cur_idx = params.router_index_in_group(view.router);
            let to_idx = params.local_neighbor_index(cur_idx, minimal_port.class_index());
            let mut candidates: InlineVec<(Port, u8), MAX_DETOUR_CANDIDATES> =
                InlineVec::new((Port::Local(0), 0));
            for k in local_detour_targets(params, cur_idx, to_idx) {
                let port = Port::Local(params.local_port_to(cur_idx, k));
                let vc = ladder_vc_6_2(port, packet);
                if view.can_claim(port, vc as usize, packet)
                    && self.trigger.allows(occupancy(view, port, vc), minimal_occ)
                {
                    candidates.push((port, vc));
                }
            }
            if !candidates.is_empty() {
                let &(port, vc) = rng.choose(candidates.as_slice());
                return Some(RouteChoice {
                    port,
                    vc,
                    update: RouteUpdate {
                        mark_local_misroute: true,
                        ..RouteUpdate::default()
                    },
                });
            }
        }

        // 2. Global misrouting in the source group (PAR style).
        if global_misroute_eligible(params, group, packet) {
            let dst_group = params.group_of_node(packet.dst);
            for ig in sample_intermediate_groups(
                params,
                group,
                dst_group,
                self.params.global_candidates,
                rng,
            ) {
                let port = params.port_toward_group(view.router, ig);
                let vc = ladder_vc_6_2(port, packet);
                if view.can_claim(port, vc as usize, packet)
                    && self.trigger.allows(occupancy(view, port, vc), minimal_occ)
                {
                    return Some(RouteChoice {
                        port,
                        vc,
                        update: RouteUpdate {
                            set_intermediate_group: Some(ig),
                            mark_global_misroute: true,
                            ..RouteUpdate::default()
                        },
                    });
                }
            }
        }

        // Nothing acceptable this cycle: wait and re-evaluate.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::ValiantRouting;
    use dragonfly_sim::{SimConfig, Simulation};
    use dragonfly_traffic::{AdversarialGlobal, AdversarialLocal, Uniform};

    fn par_sim(
        h: usize,
        seed: u64,
        traffic: Box<dyn dragonfly_traffic::TrafficPattern>,
    ) -> Simulation {
        Simulation::new(
            SimConfig::paper_vct(h).with_local_vcs(6).with_seed(seed),
            Box::new(Par62::default()),
            traffic,
        )
    }

    #[test]
    fn metadata() {
        let p = Par62::default();
        assert_eq!(p.name(), "PAR-6/2");
        assert_eq!(p.required_local_vcs(), 6);
        assert_eq!(p.required_global_vcs(), 2);
        let custom = Par62::with_threshold(0.3);
        assert!((custom.params.threshold - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires 6 local VCs")]
    fn rejects_three_local_vcs() {
        let _ = Simulation::new(
            SimConfig::paper_vct(2),
            Box::new(Par62::default()),
            Box::new(Uniform::new()),
        );
    }

    #[test]
    fn uniform_traffic_delivers_without_deadlock() {
        let mut sim = par_sim(2, 3, Box::new(Uniform::new()));
        let report = sim.run_steady_state(0.3, 2_000, 3_000, 4_000);
        assert!(!report.deadlock_detected);
        assert!(
            (report.accepted_load - 0.3).abs() < 0.06,
            "{}",
            report.accepted_load
        );
        assert!(report.avg_hops <= 8.0);
    }

    #[test]
    fn advg_traffic_misroutes_globally() {
        let mut sim = par_sim(2, 5, Box::new(AdversarialGlobal::new(1)));
        let report = sim.run_steady_state(0.4, 3_000, 4_000, 2_000);
        assert!(!report.deadlock_detected);
        assert!(
            report.global_misroute_fraction > 0.4,
            "PAR-6/2 should misroute most ADVG packets, got {}",
            report.global_misroute_fraction
        );
        // Far better than the minimal bound of 1/(2h^2+1) = 1/9.
        assert!(report.accepted_load > 0.2, "{}", report.accepted_load);
    }

    #[test]
    fn advl_traffic_uses_local_misrouting_to_beat_one_over_h() {
        // ADVL+1 with h=2 caps single-path throughput at 1/h = 0.5; local misrouting
        // (plus the occasional Valiant detour) must push beyond it.
        let mut sim = par_sim(2, 7, Box::new(AdversarialLocal::new(1)));
        let report = sim.run_steady_state(0.9, 3_000, 4_000, 2_000);
        assert!(!report.deadlock_detected);
        assert!(
            report.local_misroute_fraction > 0.05 || report.global_misroute_fraction > 0.05,
            "expected some misrouting under ADVL"
        );
        assert!(
            report.accepted_load > 0.5,
            "PAR-6/2 should beat the 1/h bound under ADVL+1, got {}",
            report.accepted_load
        );
    }

    #[test]
    fn advg_plus_h_beats_valiant() {
        // ADVG+h saturates one local link per intermediate group under plain Valiant;
        // local misrouting works around it.
        let h = 2;
        let adv = || Box::new(AdversarialGlobal::new(h));
        let mut par = par_sim(h, 11, adv());
        let par_report = par.run_steady_state(0.6, 3_000, 5_000, 2_000);
        let mut valiant = Simulation::new(
            SimConfig::paper_vct(h).with_seed(11),
            Box::new(ValiantRouting::new()),
            adv(),
        );
        let valiant_report = valiant.run_steady_state(0.6, 3_000, 5_000, 2_000);
        assert!(!par_report.deadlock_detected);
        assert!(
            par_report.accepted_load > valiant_report.accepted_load,
            "PAR-6/2 {} should beat Valiant {} under ADVG+h",
            par_report.accepted_load,
            valiant_report.accepted_load
        );
    }

    #[test]
    fn wormhole_flow_control_supported() {
        let mut sim = Simulation::new(
            SimConfig::paper_wormhole(2).with_local_vcs(6).with_seed(13),
            Box::new(Par62::default()),
            Box::new(Uniform::new()),
        );
        let report = sim.run_steady_state(0.1, 2_000, 3_000, 6_000);
        assert!(!report.deadlock_detected);
        assert!(report.packets_measured > 20);
    }
}
