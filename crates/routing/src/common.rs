//! Building blocks shared by the adaptive routing mechanisms.
//!
//! All in-transit adaptive mechanisms of the paper (PAR-6/2, RLM, OLM) share the same
//! skeleton: prefer the minimal output; when it cannot be granted this cycle, consult
//! the *misrouting trigger* and pick a random non-minimal output whose downstream
//! occupancy is below a fraction of the minimal output's occupancy.  Global misrouting
//! (committing to a Valiant intermediate group) is only allowed in the source group,
//! at the injection router or after one minimal local hop (as in PAR); local
//! misrouting is allowed once per intermediate/destination group.  The mechanisms
//! differ in which local detours are legal and which virtual channels they may use.

use dragonfly_rng::Rng;
use dragonfly_sim::{Packet, RouterView};
use dragonfly_topology::{DragonflyParams, GroupId, Port, RouterId};

/// Tunable knobs of the adaptive mechanisms.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveParams {
    /// Misrouting-trigger threshold: a non-minimal output is acceptable when its
    /// occupancy is below `threshold × occupancy(minimal output)`.
    pub threshold: f64,
    /// Number of random intermediate groups examined when attempting a global
    /// misroute.
    pub global_candidates: usize,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        Self {
            threshold: 0.45,
            global_candidates: 4,
        }
    }
}

impl AdaptiveParams {
    /// Create parameters with an explicit trigger threshold (e.g. for the Figure 10/11
    /// sweeps).
    pub fn with_threshold(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        Self {
            threshold,
            ..Self::default()
        }
    }
}

/// The credit-based misrouting trigger of the paper.
#[derive(Debug, Clone, Copy)]
pub struct MisroutingTrigger {
    /// Threshold as a fraction of the minimal output occupancy.
    pub threshold: f64,
}

impl MisroutingTrigger {
    /// Create a trigger.
    pub fn new(threshold: f64) -> Self {
        Self { threshold }
    }

    /// Whether a candidate output with `candidate_occ` downstream phits may be used
    /// instead of a minimal output with `minimal_occ` downstream phits.
    ///
    /// When the minimal queue is empty (the minimal output is blocked for another
    /// reason, e.g. its VC is held by another packet), candidates with an empty queue
    /// are still acceptable.
    #[inline]
    pub fn allows(&self, candidate_occ: usize, minimal_occ: usize) -> bool {
        if minimal_occ == 0 {
            candidate_occ == 0
        } else {
            (candidate_occ as f64) < self.threshold * (minimal_occ as f64)
        }
    }
}

/// The group the packet should currently be heading to: its committed Valiant
/// intermediate group while it has not reached it yet, the destination group
/// otherwise.
pub fn target_group(params: &DragonflyParams, packet: &Packet) -> GroupId {
    if let Some(ig) = packet.route.intermediate_group {
        if !packet.route.reached_intermediate {
            return ig;
        }
    }
    params.group_of_node(packet.dst)
}

/// The next hop of the minimal (productive) route from `router`, taking the committed
/// intermediate group into account.  Returns a terminal port at the destination
/// router.
pub fn next_productive_port(params: &DragonflyParams, router: RouterId, packet: &Packet) -> Port {
    let dest_router = params.router_of_node(packet.dst);
    if dest_router == router {
        return Port::Terminal(params.node_index_in_router(packet.dst));
    }
    let current_group = params.group_of_router(router);
    let target = target_group(params, packet);
    if target != current_group {
        params.port_toward_group(router, target)
    } else {
        let from = params.router_index_in_group(router);
        let to = params.router_index_in_group(dest_router);
        Port::Local(params.local_port_to(from, to))
    }
}

/// Ascending virtual-channel ladder used by the 3/2-VC mechanisms (Minimal, Valiant,
/// Piggybacking and RLM): local and global hops both use the VC indexed by the number
/// of global hops already taken.
pub fn ladder_vc_3_2(port: Port, packet: &Packet) -> u8 {
    match port {
        Port::Global(_) => packet.route.global_hops.min(1),
        Port::Local(_) => packet.route.global_hops.min(2),
        Port::Terminal(_) => 0,
    }
}

/// Ascending ladder of the naïve PAR-6/2 mechanism: every local hop moves to a fresh
/// local VC (`2·global_hops + local_hops_in_group`), every global hop to
/// `global_hops`, reproducing the sequence `l1 l2 g1 l3 l4 g2 l5 l6`.
pub fn ladder_vc_6_2(port: Port, packet: &Packet) -> u8 {
    match port {
        Port::Global(_) => packet.route.global_hops.min(1),
        Port::Local(_) => (2 * packet.route.global_hops + packet.route.local_hops_in_group).min(5),
        Port::Terminal(_) => 0,
    }
}

/// Whether the packet may still commit to a global misroute (Valiant path) here: only
/// in the source group, with at most one minimal local hop already taken (PAR rule),
/// and only once.
pub fn global_misroute_eligible(
    params: &DragonflyParams,
    view_group: GroupId,
    packet: &Packet,
) -> bool {
    if packet.route.global_misrouted || packet.route.global_hops != 0 {
        return false;
    }
    let dest_group = params.group_of_node(packet.dst);
    if dest_group == view_group {
        // Local traffic: a Valiant detour through another group is only taken straight
        // from the injection router.
        packet.route.local_hops_in_group == 0
    } else {
        packet.route.local_hops_in_group <= 1
    }
}

/// Whether the packet may take a local misroute here: the minimal next hop must be a
/// local hop, the packet must not have misrouted locally in this group already, and —
/// per the paper — local misrouting is reserved for the intermediate and destination
/// groups (which includes the source group when the traffic is group-local).
pub fn local_misroute_eligible(
    params: &DragonflyParams,
    view_group: GroupId,
    minimal_port: Port,
    packet: &Packet,
) -> bool {
    if !minimal_port.is_local() {
        return false;
    }
    if packet.route.local_misrouted_in_group || packet.route.local_hops_in_group != 0 {
        return false;
    }
    let dest_group = params.group_of_node(packet.dst);
    packet.route.global_hops >= 1 || dest_group == view_group
}

/// A tiny stack-only vector for per-`route()` candidate lists.
///
/// `route()` is the hottest call of the cycle loop and must not touch the heap
/// (the invariant pinned by `tests/zero_alloc.rs`); candidate sets are small
/// and statically bounded, so they live in a fixed inline array.  `fill` is a
/// throwaway value for the unused capacity — never observable, just what lets
/// the buffer be initialised without `unsafe`.
#[derive(Debug, Clone, Copy)]
pub struct InlineVec<T: Copy, const N: usize> {
    buf: [T; N],
    len: usize,
}

impl<T: Copy, const N: usize> InlineVec<T, N> {
    /// An empty list; `fill` initialises the unused slots.
    #[inline]
    pub fn new(fill: T) -> Self {
        Self {
            buf: [fill; N],
            len: 0,
        }
    }

    /// Append an element; panics if the inline capacity is exceeded (the
    /// bounds below are sized to the topology limits, so this is a bug).
    #[inline]
    pub fn push(&mut self, value: T) {
        assert!(self.len < N, "InlineVec overflow: capacity {N} exceeded");
        self.buf[self.len] = value;
        self.len += 1;
    }

    /// The populated prefix as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.buf[..self.len]
    }

    /// Number of elements pushed.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first element, if any.
    #[inline]
    pub fn first(&self) -> Option<&T> {
        self.as_slice().first()
    }

    /// Membership test over the populated prefix.
    #[inline]
    pub fn contains(&self, value: &T) -> bool
    where
        T: PartialEq,
    {
        self.as_slice().contains(value)
    }
}

impl<T: Copy, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = std::iter::Take<std::array::IntoIter<T, N>>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(self.len)
    }
}

/// Upper bound on `AdaptiveParams::global_candidates` (the paper uses 4).
pub const MAX_GLOBAL_CANDIDATES: usize = 8;

/// Upper bound on local-detour candidates per decision: `2h - 2` targets in a
/// group of `2h` routers, so this covers every topology up to `h = 33`.
pub const MAX_DETOUR_CANDIDATES: usize = 64;

/// Draw up to `count` distinct candidate intermediate groups, excluding the source and
/// destination groups.
pub fn sample_intermediate_groups(
    params: &DragonflyParams,
    exclude_a: GroupId,
    exclude_b: GroupId,
    count: usize,
    rng: &mut Rng,
) -> InlineVec<GroupId, MAX_GLOBAL_CANDIDATES> {
    assert!(
        count <= MAX_GLOBAL_CANDIDATES,
        "raise MAX_GLOBAL_CANDIDATES for more than {MAX_GLOBAL_CANDIDATES} candidates"
    );
    let groups = params.groups();
    let mut out = InlineVec::new(GroupId(0));
    let mut attempts = 0;
    while out.len() < count && attempts < count * 4 {
        attempts += 1;
        let g = GroupId(rng.gen_index(groups) as u32);
        if g == exclude_a || g == exclude_b || out.contains(&g) {
            continue;
        }
        out.push(g);
    }
    out
}

/// In-group router indices usable as a local detour between `from` and `to` (all
/// routers except the two endpoints).  The mechanisms filter this further (parity-sign
/// for RLM, VC space for OLM) and apply the misrouting trigger.
pub fn local_detour_targets(
    params: &DragonflyParams,
    from: usize,
    to: usize,
) -> impl Iterator<Item = usize> {
    let routers = params.routers_per_group();
    (0..routers).filter(move |&k| k != from && k != to)
}

/// Convenience: occupancy of the downstream buffer behind (`port`, `vc`).
#[inline]
pub fn occupancy(view: &RouterView<'_>, port: Port, vc: u8) -> usize {
    view.occupancy(port, vc as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_sim::PacketId;
    use dragonfly_topology::NodeId;

    fn packet(params: &DragonflyParams, src: u32, dst: u32) -> Packet {
        let _ = params;
        Packet::new(PacketId(0), NodeId(src), NodeId(dst), 8, 0)
    }

    #[test]
    fn trigger_threshold_semantics() {
        let t = MisroutingTrigger::new(0.5);
        assert!(t.allows(10, 30));
        assert!(!t.allows(15, 30));
        assert!(!t.allows(20, 30));
        // Empty minimal queue: only empty candidates qualify.
        assert!(t.allows(0, 0));
        assert!(!t.allows(1, 0));
    }

    #[test]
    fn adaptive_params_defaults_and_threshold() {
        let d = AdaptiveParams::default();
        assert!((d.threshold - 0.45).abs() < 1e-12);
        assert_eq!(d.global_candidates, 4);
        let s = AdaptiveParams::with_threshold(0.3);
        assert!((s.threshold - 0.3).abs() < 1e-12);
    }

    #[test]
    fn target_group_prefers_unreached_intermediate() {
        let params = DragonflyParams::new(2);
        let mut p = packet(&params, 0, (params.num_nodes() - 1) as u32);
        let dest_group = params.group_of_node(p.dst);
        assert_eq!(target_group(&params, &p), dest_group);
        p.route.intermediate_group = Some(GroupId(3));
        assert_eq!(target_group(&params, &p), GroupId(3));
        p.route.reached_intermediate = true;
        assert_eq!(target_group(&params, &p), dest_group);
    }

    #[test]
    fn productive_port_follows_minimal_path() {
        let params = DragonflyParams::new(2);
        let dst = NodeId((params.num_nodes() - 1) as u32);
        let p = packet(&params, 0, dst.0);
        // At the destination router the productive port is the terminal one.
        let dest_router = params.router_of_node(dst);
        let port = next_productive_port(&params, dest_router, &p);
        assert!(port.is_terminal());
        // At the source router it matches topology minimal routing.
        let src_router = params.router_of_node(NodeId(0));
        assert_eq!(
            next_productive_port(&params, src_router, &p),
            params.minimal_port(src_router, dst)
        );
    }

    #[test]
    fn productive_port_targets_intermediate_group_first() {
        let params = DragonflyParams::new(2);
        let dst = NodeId((params.num_nodes() - 1) as u32);
        let mut p = packet(&params, 0, dst.0);
        p.route.intermediate_group = Some(GroupId(4));
        let src_router = params.router_of_node(NodeId(0));
        let port = next_productive_port(&params, src_router, &p);
        assert_eq!(port, params.port_toward_group(src_router, GroupId(4)));
    }

    #[test]
    fn ladders_follow_hop_counters() {
        let params = DragonflyParams::new(4);
        let mut p = packet(&params, 0, (params.num_nodes() - 1) as u32);
        assert_eq!(ladder_vc_3_2(Port::Local(0), &p), 0);
        assert_eq!(ladder_vc_6_2(Port::Local(0), &p), 0);
        p.route.local_hops_in_group = 1;
        assert_eq!(ladder_vc_3_2(Port::Local(0), &p), 0);
        assert_eq!(ladder_vc_6_2(Port::Local(0), &p), 1);
        p.route.global_hops = 1;
        p.route.local_hops_in_group = 0;
        assert_eq!(ladder_vc_3_2(Port::Local(0), &p), 1);
        assert_eq!(ladder_vc_3_2(Port::Global(0), &p), 1);
        assert_eq!(ladder_vc_6_2(Port::Local(0), &p), 2);
        p.route.local_hops_in_group = 1;
        assert_eq!(ladder_vc_6_2(Port::Local(0), &p), 3);
        p.route.global_hops = 2;
        p.route.local_hops_in_group = 1;
        assert_eq!(ladder_vc_3_2(Port::Local(0), &p), 2);
        assert_eq!(ladder_vc_6_2(Port::Local(0), &p), 5);
        assert_eq!(ladder_vc_3_2(Port::Terminal(0), &p), 0);
    }

    #[test]
    fn global_misroute_eligibility_rules() {
        let params = DragonflyParams::new(2);
        let remote_dst = (params.num_nodes() - 1) as u32;
        let mut p = packet(&params, 0, remote_dst);
        let src_group = params.group_of_node(NodeId(0));
        assert!(global_misroute_eligible(&params, src_group, &p));
        p.route.local_hops_in_group = 1;
        assert!(global_misroute_eligible(&params, src_group, &p));
        p.route.local_hops_in_group = 2;
        assert!(!global_misroute_eligible(&params, src_group, &p));
        p.route.local_hops_in_group = 0;
        p.route.global_misrouted = true;
        assert!(!global_misroute_eligible(&params, src_group, &p));
        // Local traffic: only straight from the injection router.
        let mut q = packet(&params, 0, 2); // node 2 is router 1 of group 0
        assert!(global_misroute_eligible(&params, src_group, &q));
        q.route.local_hops_in_group = 1;
        assert!(!global_misroute_eligible(&params, src_group, &q));
        // Once a global hop has been taken, never again.
        let mut r = packet(&params, 0, remote_dst);
        r.route.global_hops = 1;
        assert!(!global_misroute_eligible(&params, src_group, &r));
    }

    #[test]
    fn local_misroute_eligibility_rules() {
        let params = DragonflyParams::new(2);
        let src_group = params.group_of_node(NodeId(0));
        // Remote traffic in the source group: not eligible (that is global misrouting's
        // job).
        let p = packet(&params, 0, (params.num_nodes() - 1) as u32);
        assert!(!local_misroute_eligible(
            &params,
            src_group,
            Port::Local(0),
            &p
        ));
        // After a global hop (intermediate/destination group) it becomes eligible.
        let mut q = packet(&params, 0, (params.num_nodes() - 1) as u32);
        q.route.global_hops = 1;
        assert!(local_misroute_eligible(
            &params,
            src_group,
            Port::Local(0),
            &q
        ));
        q.route.local_misrouted_in_group = true;
        assert!(!local_misroute_eligible(
            &params,
            src_group,
            Port::Local(0),
            &q
        ));
        // Group-local traffic is eligible straight away, but only for local next hops.
        let r = packet(&params, 0, 2);
        assert!(local_misroute_eligible(
            &params,
            src_group,
            Port::Local(0),
            &r
        ));
        assert!(!local_misroute_eligible(
            &params,
            src_group,
            Port::Global(0),
            &r
        ));
        assert!(!local_misroute_eligible(
            &params,
            src_group,
            Port::Terminal(0),
            &r
        ));
    }

    #[test]
    fn sampled_intermediates_exclude_endpoints() {
        let params = DragonflyParams::new(2);
        let mut rng = Rng::seed_from(3);
        for _ in 0..100 {
            let picks = sample_intermediate_groups(&params, GroupId(0), GroupId(5), 4, &mut rng);
            assert!(!picks.is_empty());
            assert!(picks.len() <= 4);
            for g in picks.as_slice() {
                assert_ne!(*g, GroupId(0));
                assert_ne!(*g, GroupId(5));
            }
            let mut dedup = picks.as_slice().to_vec();
            dedup.dedup();
            assert_eq!(dedup.len(), picks.len());
        }
    }

    #[test]
    fn detour_targets_exclude_endpoints() {
        let params = DragonflyParams::new(4);
        let targets: Vec<usize> = local_detour_targets(&params, 2, 5).collect();
        assert_eq!(targets.len(), params.routers_per_group() - 2);
        assert!(!targets.contains(&2));
        assert!(!targets.contains(&5));
    }
}
