//! The parity-sign route restriction of Restricted Local Misrouting (Table I).
//!
//! Local links of a group (a complete graph `K_{2h}`) are classified by two bits:
//!
//! * **sign**: a hop from router `i` to router `j` is *positive* when `i < j` and
//!   *negative* when `i > j`,
//! * **parity**: the link is *odd* when it connects routers of different parity
//!   (`i + j` odd) and *even* when it connects routers of the same parity.
//!
//! RLM forbids a subset of the 16 possible 2-hop class combinations so that, in any
//! chain of dependent local hops, the last link class can never equal the first one —
//! which makes cyclic dependencies impossible while still leaving at least `h − 1`
//! two-hop routes between every pair of routers.  The allowed set is generated with
//! the paper's ordering *(1) odd−, (2) even+, (3) odd+, (4) even−*, reproducing
//! Table I exactly.

use dragonfly_topology::DragonflyParams;

/// The four local-link classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Different-parity routers, decreasing index.
    OddMinus,
    /// Same-parity routers, increasing index.
    EvenPlus,
    /// Different-parity routers, increasing index.
    OddPlus,
    /// Same-parity routers, decreasing index.
    EvenMinus,
}

impl LinkClass {
    /// All classes in the paper's processing order.
    pub const ORDER: [LinkClass; 4] = [
        LinkClass::OddMinus,
        LinkClass::EvenPlus,
        LinkClass::OddPlus,
        LinkClass::EvenMinus,
    ];

    /// Class of the hop from in-group router `from` to in-group router `to`.
    pub fn of_hop(from: usize, to: usize) -> LinkClass {
        assert_ne!(from, to, "a hop needs two distinct routers");
        let positive = from < to;
        let odd = (from + to) % 2 == 1;
        match (odd, positive) {
            (true, false) => LinkClass::OddMinus,
            (false, true) => LinkClass::EvenPlus,
            (true, true) => LinkClass::OddPlus,
            (false, false) => LinkClass::EvenMinus,
        }
    }

    /// Small integer encoding (stable across the crate, stored in packets).
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            LinkClass::OddMinus => 0,
            LinkClass::EvenPlus => 1,
            LinkClass::OddPlus => 2,
            LinkClass::EvenMinus => 3,
        }
    }

    /// Inverse of [`LinkClass::code`].
    #[inline]
    pub fn from_code(code: u8) -> LinkClass {
        match code {
            0 => LinkClass::OddMinus,
            1 => LinkClass::EvenPlus,
            2 => LinkClass::OddPlus,
            3 => LinkClass::EvenMinus,
            _ => panic!("invalid link class code {code}"),
        }
    }

    /// Human-readable name as used in the paper's Table I.
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::OddMinus => "odd-",
            LinkClass::EvenPlus => "even+",
            LinkClass::OddPlus => "odd+",
            LinkClass::EvenMinus => "even-",
        }
    }
}

/// The parity-sign restriction table (the paper's Table I).
#[derive(Debug, Clone)]
pub struct ParitySignTable {
    allowed: [[bool; 4]; 4],
}

impl Default for ParitySignTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ParitySignTable {
    /// Generate the table with the paper's class ordering.
    pub fn new() -> Self {
        Self::with_order(LinkClass::ORDER)
    }

    /// Generate a table with an arbitrary processing order (used to explore
    /// alternative restriction sets; every order yields a deadlock-free table).
    pub fn with_order(order: [LinkClass; 4]) -> Self {
        // None = still blank, Some(b) = decided.
        let mut cells: [[Option<bool>; 4]; 4] = [[None; 4]; 4];
        // Same-class pairs can never build a cycle on their own: allowed.
        for c in LinkClass::ORDER {
            cells[c.code() as usize][c.code() as usize] = Some(true);
        }
        for t in order {
            let ti = t.code() as usize;
            // Blank pairs starting with `t` become allowed...
            for cell in &mut cells[ti] {
                if cell.is_none() {
                    *cell = Some(true);
                }
            }
            // ...and remaining blank pairs ending with `t` become forbidden.
            for row in &mut cells {
                if row[ti].is_none() {
                    row[ti] = Some(false);
                }
            }
        }
        let mut allowed = [[false; 4]; 4];
        for (i, row) in cells.iter().enumerate() {
            for (j, cell) in row.iter().enumerate() {
                allowed[i][j] = cell.expect("every pair must be decided");
            }
        }
        Self { allowed }
    }

    /// Whether the 2-hop combination `first` then `second` is allowed.
    #[inline]
    pub fn allowed(&self, first: LinkClass, second: LinkClass) -> bool {
        self.allowed[first.code() as usize][second.code() as usize]
    }

    /// Whether the 2-hop path `from → via → to` (in-group router indices) is allowed.
    #[inline]
    pub fn path_allowed(&self, from: usize, via: usize, to: usize) -> bool {
        self.allowed(LinkClass::of_hop(from, via), LinkClass::of_hop(via, to))
    }

    /// All valid intermediate routers for a 2-hop detour from `from` to `to` within a
    /// group of `routers` routers.
    pub fn allowed_intermediates(&self, from: usize, to: usize, routers: usize) -> Vec<usize> {
        (0..routers)
            .filter(|&k| k != from && k != to && self.path_allowed(from, k, to))
            .collect()
    }

    /// Number of allowed 2-hop detours for every router pair of a group; used to check
    /// the `h − 1` guarantee of the paper.
    pub fn min_detours(&self, params: &DragonflyParams) -> usize {
        let routers = params.routers_per_group();
        let mut min = usize::MAX;
        for i in 0..routers {
            for j in 0..routers {
                if i == j {
                    continue;
                }
                min = min.min(self.allowed_intermediates(i, j, routers).len());
            }
        }
        min
    }

    /// Render the 16 combinations in the paper's Table I layout:
    /// `(first, second, allowed)` in row order.
    pub fn rows(&self) -> Vec<(LinkClass, LinkClass, bool)> {
        let mut rows = Vec::with_capacity(16);
        for first in LinkClass::ORDER {
            for second in [
                LinkClass::EvenPlus,
                LinkClass::EvenMinus,
                LinkClass::OddPlus,
                LinkClass::OddMinus,
            ] {
                rows.push((first, second, self.allowed(first, second)));
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_of_hop_matches_definition() {
        // Paper examples (h = 4 group of routers 0..8).
        assert_eq!(LinkClass::of_hop(3, 6), LinkClass::OddPlus); // positive, 3+6 odd
        assert_eq!(LinkClass::of_hop(5, 2), LinkClass::OddMinus); // negative, odd sum
        assert_eq!(LinkClass::of_hop(1, 7), LinkClass::EvenPlus); // positive, even sum
        assert_eq!(LinkClass::of_hop(6, 2), LinkClass::EvenMinus); // negative, even sum
    }

    #[test]
    fn code_round_trip() {
        for c in LinkClass::ORDER {
            assert_eq!(LinkClass::from_code(c.code()), c);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn self_hop_rejected() {
        LinkClass::of_hop(3, 3);
    }

    /// The generated table must match the paper's Table I cell for cell.
    #[test]
    fn table_matches_paper_table_one() {
        use LinkClass::*;
        let t = ParitySignTable::new();
        let expected = [
            ((OddMinus, EvenPlus), true),
            ((OddMinus, EvenMinus), true),
            ((OddMinus, OddPlus), true),
            ((OddMinus, OddMinus), true),
            ((EvenPlus, EvenPlus), true),
            ((EvenPlus, EvenMinus), true),
            ((EvenPlus, OddPlus), true),
            ((EvenPlus, OddMinus), false),
            ((OddPlus, EvenPlus), false),
            ((OddPlus, EvenMinus), true),
            ((OddPlus, OddPlus), true),
            ((OddPlus, OddMinus), false),
            ((EvenMinus, EvenPlus), false),
            ((EvenMinus, EvenMinus), true),
            ((EvenMinus, OddPlus), false),
            ((EvenMinus, OddMinus), false),
        ];
        for ((first, second), allowed) in expected {
            assert_eq!(
                t.allowed(first, second),
                allowed,
                "pair ({}, {})",
                first.label(),
                second.label()
            );
        }
    }

    /// Paper example: from router 5 to router 0 the detour via router 1 is forbidden,
    /// and exactly h − 1 = 3 detours remain (via 2, 4 and 6).
    #[test]
    fn paper_example_router5_to_router0() {
        let t = ParitySignTable::new();
        assert!(!t.path_allowed(5, 1, 0));
        let allowed = t.allowed_intermediates(5, 0, 8);
        assert_eq!(allowed, vec![2, 4, 6]);
    }

    /// Every pair of routers keeps at least h − 1 two-hop detours (plus the direct
    /// link), which is the capacity argument of the paper.
    #[test]
    fn h_minus_one_detours_guaranteed() {
        let t = ParitySignTable::new();
        for h in 2..=8 {
            let params = DragonflyParams::new(h);
            assert!(
                t.min_detours(&params) >= h - 1,
                "h = {h}: fewer than h-1 detours"
            );
        }
    }

    /// In any chain of allowed consecutive hops the final link class never equals the
    /// first one, which is the acyclicity argument of the paper.
    #[test]
    fn chains_never_return_to_initial_class() {
        let t = ParitySignTable::new();
        // Explore all chains of allowed transitions up to length 6 over the class
        // graph; the first class must never reappear as the last link.
        fn explore(
            t: &ParitySignTable,
            first: LinkClass,
            current: LinkClass,
            depth: usize,
        ) -> bool {
            if depth == 0 {
                return true;
            }
            for next in LinkClass::ORDER {
                if t.allowed(current, next) {
                    // A cycle would require the chain to end on the same class it
                    // started with while having moved (same-class self-chains are the
                    // trivial exception handled by the sign/parity itself: a sequence
                    // of odd- hops keeps strictly decreasing indices, so it cannot
                    // close a cycle either).
                    if next == first && next != current {
                        return false;
                    }
                    if !explore(t, first, next, depth - 1) {
                        return false;
                    }
                }
            }
            true
        }
        for first in LinkClass::ORDER {
            for second in LinkClass::ORDER {
                if t.allowed(first, second) && second != first {
                    assert!(
                        explore(&t, first, second, 5),
                        "chain starting {} -> {} can return to the initial class",
                        first.label(),
                        second.label()
                    );
                }
            }
        }
    }

    #[test]
    fn sign_only_restriction_is_unbalanced() {
        // The paper motivates parity-sign by showing that forbidding one sign turn
        // (e.g. +,-) leaves some router pairs with zero 2-hop detours.  Verify that
        // observation: with the (+,-) turn forbidden, routers 0 -> 1 have none.
        let routers = 8;
        let mut detours = 0;
        for k in 0..routers {
            if k == 0 || k == 1 {
                continue;
            }
            let first_positive = 0 < k;
            let second_negative = k > 1;
            if !(first_positive && second_negative) {
                detours += 1;
            }
        }
        assert_eq!(
            detours, 0,
            "sign-only leaves 0->1 without non-minimal routes"
        );
    }

    #[test]
    fn rows_cover_all_sixteen_combinations() {
        let t = ParitySignTable::new();
        let rows = t.rows();
        assert_eq!(rows.len(), 16);
        let allowed = rows.iter().filter(|(_, _, a)| *a).count();
        // Table I has 10 allowed and 6 forbidden combinations.
        assert_eq!(allowed, 10);
    }

    #[test]
    fn alternative_orders_build_complete_tables() {
        use LinkClass::*;
        // The paper notes that different processing orders give different restriction
        // sets; all of them decide every pair and keep exactly ten allowed
        // combinations (four same-class plus six cross-class), but only the paper's
        // order is guaranteed to preserve h − 1 detours for every router pair.
        let orders = [
            [EvenPlus, OddMinus, EvenMinus, OddPlus],
            [OddPlus, OddMinus, EvenPlus, EvenMinus],
            [EvenMinus, OddPlus, EvenPlus, OddMinus],
        ];
        let params = DragonflyParams::new(4);
        let canonical = ParitySignTable::new().min_detours(&params);
        assert!(canonical >= 3);
        for order in orders {
            let t = ParitySignTable::with_order(order);
            let allowed = t.rows().iter().filter(|(_, _, a)| *a).count();
            assert_eq!(allowed, 10, "order {order:?}");
        }
    }
}
