//! Opportunistic Local Misrouting (OLM) — second contribution of the paper.
//!
//! OLM also keeps the baseline 3/2 virtual channels but, unlike RLM, it does not
//! restrict which local detours are legal.  Cyclic dependencies may therefore appear;
//! deadlock is avoided because every packet always keeps a deadlock-free *escape
//! path*: from wherever it sits it can still reach its destination using virtual
//! channels in strictly ascending order.  To preserve that property a local detour is
//! only taken *opportunistically*, when
//!
//! 1. the target buffer can hold the **whole packet** (hence the VCT requirement), and
//! 2. the local VC used for the detour is strictly below every VC of the escape path
//!    from the detour target, so the escape ladder remains intact.
//!
//! Productive hops (minimal, or toward the committed Valiant group) use the ascending
//! ladder `lVC_k / gVC_k` indexed by the number of global hops taken, exactly as in
//! the paper's Figure 3.

use crate::common::{
    global_misroute_eligible, ladder_vc_3_2, local_detour_targets, local_misroute_eligible,
    next_productive_port, occupancy, sample_intermediate_groups, AdaptiveParams, InlineVec,
    MisroutingTrigger, MAX_DETOUR_CANDIDATES,
};
use dragonfly_rng::Rng;
use dragonfly_sim::{
    FlowControl, Packet, RouteChoice, RouteCtx, RouteUpdate, RouterView, RoutingAlgorithm,
};
use dragonfly_topology::{Port, RouterId};

/// The OLM mechanism.
#[derive(Debug, Clone, Copy)]
pub struct Olm {
    params: AdaptiveParams,
    trigger: MisroutingTrigger,
}

impl Default for Olm {
    fn default() -> Self {
        Self::new(AdaptiveParams::default())
    }
}

impl Olm {
    /// Create the mechanism with the given adaptive parameters.
    pub fn new(params: AdaptiveParams) -> Self {
        Self {
            params,
            trigger: MisroutingTrigger::new(params.threshold),
        }
    }

    /// Create the mechanism with an explicit misrouting threshold.
    pub fn with_threshold(threshold: f64) -> Self {
        Self::new(AdaptiveParams::with_threshold(threshold))
    }

    /// Ladder position of a (port-class, VC) pair in the combined ascending order
    /// `lVC0 < gVC0 < lVC1 < gVC1 < lVC2`.
    fn ladder_position(port: Port, vc: u8) -> u8 {
        match port {
            Port::Local(_) => 2 * vc,
            Port::Global(_) => 2 * vc + 1,
            Port::Terminal(_) => u8::MAX,
        }
    }

    /// Ladder position of the *first hop of the escape path* a packet would have after
    /// moving to `at`: its minimal continuation (toward the committed intermediate
    /// group if not yet reached, the destination otherwise) in ascending-ladder VCs.
    fn escape_first_hop_position(view: &RouterView<'_>, packet: &Packet, at: RouterId) -> u8 {
        let port = next_productive_port(view.params, at, packet);
        let vc = ladder_vc_3_2(port, packet);
        Self::ladder_position(port, vc)
    }

    /// The highest local VC usable for a non-productive (detour) hop landing at
    /// router `at`, or `None` if no VC keeps the escape ladder strictly ascending.
    fn best_detour_vc(view: &RouterView<'_>, packet: &Packet, at: RouterId) -> Option<u8> {
        let escape = Self::escape_first_hop_position(view, packet, at);
        let max_local = (view.config.local_vcs - 1) as u8;
        // lVC_j has ladder position 2j; it must stay strictly below the escape hop.
        (0..=max_local).rev().find(|&j| 2 * j < escape)
    }
}

impl RoutingAlgorithm for Olm {
    fn name(&self) -> &'static str {
        "OLM"
    }

    fn required_local_vcs(&self) -> usize {
        3
    }

    fn required_global_vcs(&self) -> usize {
        2
    }

    /// OLM relies on whole-packet buffering for its opportunistic detours, so it is
    /// only safe under Virtual Cut-Through.
    fn supports_flow_control(&self, fc: FlowControl) -> bool {
        fc.is_vct()
    }

    fn route(
        &self,
        _ctx: &RouteCtx<'_>,
        packet: &Packet,
        view: &RouterView<'_>,
        rng: &mut Rng,
    ) -> Option<RouteChoice> {
        let params = view.params;
        let group = view.group();
        let cur_idx = params.router_index_in_group(view.router);

        // Productive hop first (this is also the escape path, so it is always legal).
        let minimal_port = next_productive_port(params, view.router, packet);
        let minimal_vc = if minimal_port.is_terminal() {
            0
        } else {
            ladder_vc_3_2(minimal_port, packet)
        };
        if view.can_claim(minimal_port, minimal_vc as usize, packet) {
            return Some(RouteChoice::plain(minimal_port, minimal_vc));
        }
        if minimal_port.is_terminal() {
            return None;
        }
        let minimal_occ = occupancy(view, minimal_port, minimal_vc);

        // 1. Opportunistic local misrouting: any detour router is acceptable as long
        //    as the whole packet fits in a VC that keeps the escape ladder ascending.
        if local_misroute_eligible(params, group, minimal_port, packet) {
            let to_idx = params.local_neighbor_index(cur_idx, minimal_port.class_index());
            let mut candidates: InlineVec<(Port, u8), MAX_DETOUR_CANDIDATES> =
                InlineVec::new((Port::Local(0), 0));
            for k in local_detour_targets(params, cur_idx, to_idx) {
                let target = params.router_in_group(group, k);
                let Some(vc) = Self::best_detour_vc(view, packet, target) else {
                    continue;
                };
                let port = Port::Local(params.local_port_to(cur_idx, k));
                if view.fits_whole_packet(port, vc as usize, packet)
                    && self.trigger.allows(occupancy(view, port, vc), minimal_occ)
                {
                    candidates.push((port, vc));
                }
            }
            if !candidates.is_empty() {
                let &(port, vc) = rng.choose(candidates.as_slice());
                return Some(RouteChoice {
                    port,
                    vc,
                    update: RouteUpdate {
                        mark_local_misroute: true,
                        ..RouteUpdate::default()
                    },
                });
            }
        }

        // 2. Global misrouting in the source group.  A direct detour uses the router's
        //    own global port (ascending ladder); an indirect detour first takes a
        //    local hop, which is non-productive and therefore follows the same
        //    opportunistic rule as a local misroute.
        if global_misroute_eligible(params, group, packet) {
            let dst_group = params.group_of_node(packet.dst);
            for ig in sample_intermediate_groups(
                params,
                group,
                dst_group,
                self.params.global_candidates,
                rng,
            ) {
                let port = params.port_toward_group(view.router, ig);
                let choice = match port {
                    Port::Global(_) => {
                        let vc = ladder_vc_3_2(port, packet);
                        if view.can_claim(port, vc as usize, packet)
                            && self.trigger.allows(occupancy(view, port, vc), minimal_occ)
                        {
                            Some((port, vc))
                        } else {
                            None
                        }
                    }
                    Port::Local(p) => {
                        let k = params.local_neighbor_index(cur_idx, p);
                        let target = params.router_in_group(group, k);
                        // The escape from the detour target is the global hop of the
                        // committed Valiant path.
                        let mut probe = packet.clone();
                        probe.route.intermediate_group = Some(ig);
                        probe.route.reached_intermediate = false;
                        match Self::best_detour_vc(view, &probe, target) {
                            Some(vc)
                                if view.fits_whole_packet(port, vc as usize, packet)
                                    && self
                                        .trigger
                                        .allows(occupancy(view, port, vc), minimal_occ) =>
                            {
                                Some((port, vc))
                            }
                            _ => None,
                        }
                    }
                    Port::Terminal(_) => None,
                };
                if let Some((port, vc)) = choice {
                    return Some(RouteChoice {
                        port,
                        vc,
                        update: RouteUpdate {
                            set_intermediate_group: Some(ig),
                            mark_global_misroute: true,
                            ..RouteUpdate::default()
                        },
                    });
                }
            }
        }

        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::{MinimalRouting, ValiantRouting};
    use crate::piggyback::Piggybacking;
    use dragonfly_sim::{SimConfig, Simulation};
    use dragonfly_traffic::{AdversarialGlobal, AdversarialLocal, MixedGlobalLocal, Uniform};

    fn olm_sim(
        config: SimConfig,
        traffic: Box<dyn dragonfly_traffic::TrafficPattern>,
    ) -> Simulation {
        Simulation::new(config, Box::new(Olm::default()), traffic)
    }

    #[test]
    fn metadata_and_flow_control() {
        let o = Olm::default();
        assert_eq!(o.name(), "OLM");
        assert_eq!(o.required_local_vcs(), 3);
        assert_eq!(o.required_global_vcs(), 2);
        assert!(o.supports_flow_control(FlowControl::Vct));
        assert!(!o.supports_flow_control(FlowControl::Wormhole { flit_size: 10 }));
    }

    #[test]
    #[should_panic(expected = "does not support")]
    fn rejects_wormhole() {
        let _ = Simulation::new(
            SimConfig::paper_wormhole(2),
            Box::new(Olm::default()),
            Box::new(Uniform::new()),
        );
    }

    #[test]
    fn ladder_positions_follow_paper_order() {
        // lVC0 < gVC0 < lVC1 < gVC1 < lVC2
        assert_eq!(Olm::ladder_position(Port::Local(0), 0), 0);
        assert_eq!(Olm::ladder_position(Port::Global(0), 0), 1);
        assert_eq!(Olm::ladder_position(Port::Local(0), 1), 2);
        assert_eq!(Olm::ladder_position(Port::Global(0), 1), 3);
        assert_eq!(Olm::ladder_position(Port::Local(0), 2), 4);
    }

    #[test]
    fn uniform_traffic_vct() {
        let mut sim = olm_sim(
            SimConfig::paper_vct(2).with_seed(3),
            Box::new(Uniform::new()),
        );
        let report = sim.run_steady_state(0.3, 2_000, 3_000, 4_000);
        assert!(!report.deadlock_detected);
        assert!(
            (report.accepted_load - 0.3).abs() < 0.06,
            "{}",
            report.accepted_load
        );
        assert!(report.avg_hops <= 8.0);
    }

    #[test]
    fn advg_traffic_beats_minimal() {
        let adv = || Box::new(AdversarialGlobal::new(1));
        let run = |routing: Box<dyn dragonfly_sim::RoutingAlgorithm>| {
            let mut sim = Simulation::new(SimConfig::paper_vct(2).with_seed(19), routing, adv());
            sim.run_steady_state(0.5, 3_000, 4_000, 2_000)
        };
        let minimal = run(Box::new(MinimalRouting::new()));
        let olm = run(Box::<Olm>::default());
        assert!(
            olm.accepted_load > minimal.accepted_load * 1.5,
            "OLM {} vs minimal {}",
            olm.accepted_load,
            minimal.accepted_load
        );
        assert!(olm.global_misroute_fraction > 0.3);
        assert!(!olm.deadlock_detected);
    }

    #[test]
    fn advl_traffic_beats_one_over_h() {
        let mut sim = olm_sim(
            SimConfig::paper_vct(2).with_seed(23),
            Box::new(AdversarialLocal::new(1)),
        );
        let report = sim.run_steady_state(0.9, 3_000, 4_000, 2_000);
        assert!(!report.deadlock_detected);
        assert!(
            report.accepted_load > 0.5,
            "OLM should beat the 1/h bound under ADVL+1, got {}",
            report.accepted_load
        );
        assert!(report.local_misroute_fraction + report.global_misroute_fraction > 0.05);
    }

    #[test]
    fn advg_plus_h_competitive_with_valiant() {
        let h = 2;
        let adv = || Box::new(AdversarialGlobal::new(h));
        let mut olm = olm_sim(SimConfig::paper_vct(h).with_seed(29), adv());
        let olm_report = olm.run_steady_state(0.6, 3_000, 5_000, 2_000);
        let mut valiant = Simulation::new(
            SimConfig::paper_vct(h).with_seed(29),
            Box::new(ValiantRouting::new()),
            adv(),
        );
        let valiant_report = valiant.run_steady_state(0.6, 3_000, 5_000, 2_000);
        assert!(!olm_report.deadlock_detected);
        assert!(
            olm_report.accepted_load >= valiant_report.accepted_load * 0.95,
            "OLM {} should not lose to Valiant {} under ADVG+h",
            olm_report.accepted_load,
            valiant_report.accepted_load
        );
    }

    #[test]
    fn mixed_traffic_beats_piggybacking() {
        // Figure 6a of the paper: under the ADVG+h / ADVL+1 mix the mechanisms with
        // local misrouting clearly beat PB.
        let mix = || Box::new(MixedGlobalLocal::new(0.5, 2, 1));
        let run = |routing: Box<dyn dragonfly_sim::RoutingAlgorithm>| {
            let mut sim = Simulation::new(SimConfig::paper_vct(2).with_seed(31), routing, mix());
            sim.run_steady_state(0.9, 3_000, 4_000, 2_000)
        };
        let olm = run(Box::<Olm>::default());
        let pb = run(Box::new(Piggybacking::new()));
        assert!(
            olm.accepted_load > pb.accepted_load,
            "OLM {} should beat PB {} on the mixed pattern",
            olm.accepted_load,
            pb.accepted_load
        );
        assert!(!olm.deadlock_detected);
    }

    #[test]
    fn heavy_adversarial_load_never_deadlocks() {
        // Cyclic dependencies can form under OLM; the escape path must prevent any
        // actual deadlock even at saturation.
        let mut sim = olm_sim(
            SimConfig::paper_vct(2).with_seed(41),
            Box::new(AdversarialGlobal::new(2)),
        );
        let report = sim.run_steady_state(1.0, 4_000, 6_000, 2_000);
        assert!(
            !report.deadlock_detected,
            "OLM must not deadlock at saturation"
        );
        assert!(report.accepted_load > 0.1);
    }
}
