//! Self-describing run manifests: one JSON document per probe file set, so
//! downstream tooling learns what a run was (topology, mechanism, flow
//! control, seed, probe configuration, peak telemetry, emitted files) without
//! parsing CSV headers.
//!
//! The manifest deliberately records nothing engine-dependent — in
//! particular, *not* the shard count — so the manifest of a sharded run is
//! byte-identical to the sequential run's, like every other
//! determinism-pinned probe file.  The vendored `serde_json` stand-in is
//! emission-only, so both the writer and the narrow reader here are
//! hand-rolled; [`RunManifest::from_json`] only parses what
//! [`RunManifest::to_json`] emits (enough for the CI round-trip check).

use crate::config::ProbeConfig;
use crate::detect::DetectorConfig;

/// Current manifest schema version.  History:
///
/// * **1** — initial schema (no `delay` key in the probe section),
/// * **2** — adds the boolean `"delay"` probe key (the per-packet delay
///   ledger).  [`RunManifest::from_json`] still reads version-1 documents;
///   a missing `delay` key parses as `false`.
pub const MANIFEST_SCHEMA_VERSION: u32 = 2;

/// Experiment identity and peak telemetry of one probe file set.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Manifest schema version (bump on field changes; see
    /// [`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The file-set prefix / sweep-point label.
    pub title: String,
    /// Dragonfly size parameter `h` (network has `2h(h²+1)` routers... the
    /// canonical `a = 2h, p = h` balanced configuration).
    pub h: u64,
    /// Routing mechanism name (e.g. `olm`).
    pub routing: String,
    /// Flow-control discipline name (`vct` / `wormhole`).
    pub flow_control: String,
    /// Traffic pattern name (e.g. `advg+1`).
    pub traffic: String,
    /// Offered load in phits/node/cycle.
    pub offered_load: f64,
    /// Adaptive misrouting threshold.
    pub threshold: f64,
    /// RNG seed of the run.
    pub seed: u64,
    /// Warmup cycles.
    pub warmup: u64,
    /// Measured cycles.
    pub measure: u64,
    /// Drain cycles.
    pub drain: u64,
    /// Peak packets in flight during the run (0 when the protocol reports no
    /// peak telemetry, e.g. batch runs).
    pub peak_in_flight_packets: u64,
    /// Peak phits buffered in input VCs.
    pub peak_buffered_phits: u64,
    /// Peak occupancy of any single VC, in phits.
    pub peak_vc_occupancy: u64,
}

/// Minimal JSON string escaping for the few free-text fields.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn unesc(s: &str) -> String {
    s.replace("\\\"", "\"").replace("\\\\", "\\")
}

/// Value of `"key": <raw>` in `text`, as the raw token up to the next
/// delimiter — or, for string values, the whole quoted token (workload and
/// churn traffic labels legally contain commas and brackets).  Keys are
/// matched with the leading quote, so nested objects may not reuse a key name
/// (the manifest schema keeps all keys unique).
fn raw_field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start();
    if let Some(body) = rest.strip_prefix('"') {
        // String value: scan to the closing quote, honoring backslash escapes.
        let mut escaped = false;
        for (i, c) in body.char_indices() {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => return Some(&rest[..i + 2]),
                _ => {}
            }
        }
        return None;
    }
    let end = rest.find([',', '}', ']', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn u64_field(text: &str, key: &str) -> Option<u64> {
    raw_field(text, key)?.parse().ok()
}

fn f64_field(text: &str, key: &str) -> Option<f64> {
    raw_field(text, key)?.parse().ok()
}

fn str_field(text: &str, key: &str) -> Option<String> {
    let raw = raw_field(text, key)?;
    Some(unesc(raw.strip_prefix('"')?.strip_suffix('"')?))
}

impl RunManifest {
    /// Render the manifest, the probe configuration it was recorded under,
    /// and the emitted file list as a pretty-printed JSON document.
    pub fn to_json(&self, probe: &ProbeConfig, files: &[String]) -> String {
        let mut s = String::with_capacity(1024);
        let mut line = |indent: usize, text: String| {
            s.push_str(&" ".repeat(indent));
            s.push_str(&text);
            s.push('\n');
        };
        line(0, "{".into());
        line(2, format!("\"schema_version\": {},", self.schema_version));
        line(2, format!("\"title\": \"{}\",", esc(&self.title)));
        line(2, "\"experiment\": {".into());
        line(4, format!("\"h\": {},", self.h));
        line(4, format!("\"routing\": \"{}\",", esc(&self.routing)));
        line(
            4,
            format!("\"flow_control\": \"{}\",", esc(&self.flow_control)),
        );
        line(4, format!("\"traffic\": \"{}\",", esc(&self.traffic)));
        line(4, format!("\"offered_load\": {},", self.offered_load));
        line(4, format!("\"threshold\": {},", self.threshold));
        line(4, format!("\"seed\": {},", self.seed));
        line(4, format!("\"warmup\": {},", self.warmup));
        line(4, format!("\"measure\": {},", self.measure));
        line(4, format!("\"drain\": {}", self.drain));
        line(2, "},".into());
        line(2, "\"peaks\": {".into());
        line(
            4,
            format!("\"in_flight_packets\": {},", self.peak_in_flight_packets),
        );
        line(
            4,
            format!("\"buffered_phits\": {},", self.peak_buffered_phits),
        );
        line(4, format!("\"vc_occupancy\": {}", self.peak_vc_occupancy));
        line(2, "},".into());
        line(2, "\"probe\": {".into());
        line(4, format!("\"stride\": {},", probe.stride));
        line(4, format!("\"max_samples\": {},", probe.max_samples));
        line(4, format!("\"top_k\": {},", probe.top_k));
        line(4, format!("\"flight_every\": {},", probe.flight_every));
        line(
            4,
            format!("\"flight_capacity\": {},", probe.flight_capacity),
        );
        line(4, format!("\"heatmap_window\": {},", probe.heatmap_window));
        line(4, format!("\"max_windows\": {},", probe.max_windows));
        line(4, format!("\"trace\": {},", probe.trace));
        line(4, format!("\"delay\": {},", probe.delay));
        line(4, "\"detect\": {".into());
        line(6, format!("\"window\": {},", probe.detect.window));
        line(
            6,
            format!("\"collapse_pct\": {},", probe.detect.collapse_pct),
        );
        line(
            6,
            format!(
                "\"min_window_injected\": {},",
                probe.detect.min_window_injected
            ),
        );
        line(
            6,
            format!("\"stall_samples\": {},", probe.detect.stall_samples),
        );
        line(
            6,
            format!("\"misroute_pct\": {},", probe.detect.misroute_pct),
        );
        line(6, format!("\"skew_pct\": {},", probe.detect.skew_pct));
        line(6, format!("\"max_trips\": {}", probe.detect.max_trips));
        line(4, "}".into());
        line(2, "},".into());
        let list = files
            .iter()
            .map(|f| format!("\"{}\"", esc(f)))
            .collect::<Vec<_>>()
            .join(", ");
        line(2, format!("\"files\": [{list}]"));
        line(0, "}".into());
        s
    }

    /// Parse a document emitted by [`Self::to_json`] back into the manifest,
    /// the probe configuration and the file list.  Returns `None` on any
    /// missing field.
    pub fn from_json(text: &str) -> Option<(RunManifest, ProbeConfig, Vec<String>)> {
        let manifest = RunManifest {
            schema_version: u64_field(text, "schema_version")? as u32,
            title: str_field(text, "title")?,
            h: u64_field(text, "h")?,
            routing: str_field(text, "routing")?,
            flow_control: str_field(text, "flow_control")?,
            traffic: str_field(text, "traffic")?,
            offered_load: f64_field(text, "offered_load")?,
            threshold: f64_field(text, "threshold")?,
            seed: u64_field(text, "seed")?,
            warmup: u64_field(text, "warmup")?,
            measure: u64_field(text, "measure")?,
            drain: u64_field(text, "drain")?,
            peak_in_flight_packets: u64_field(text, "in_flight_packets")?,
            peak_buffered_phits: u64_field(text, "buffered_phits")?,
            peak_vc_occupancy: u64_field(text, "vc_occupancy")?,
        };
        let probe = ProbeConfig {
            stride: u64_field(text, "stride")?,
            max_samples: u64_field(text, "max_samples")? as usize,
            top_k: u64_field(text, "top_k")? as usize,
            flight_every: u64_field(text, "flight_every")?,
            flight_capacity: u64_field(text, "flight_capacity")? as usize,
            heatmap_window: u64_field(text, "heatmap_window")?,
            max_windows: u64_field(text, "max_windows")? as usize,
            trace: raw_field(text, "trace")? == "true",
            // Version tolerance: schema-1 manifests predate the delay ledger,
            // so a missing key means the ledger was off.
            delay: raw_field(text, "delay").is_some_and(|r| r == "true"),
            detect: DetectorConfig {
                window: u64_field(text, "window")? as u32,
                collapse_pct: u64_field(text, "collapse_pct")? as u32,
                min_window_injected: u64_field(text, "min_window_injected")?,
                stall_samples: u64_field(text, "stall_samples")? as u32,
                misroute_pct: u64_field(text, "misroute_pct")? as u32,
                skew_pct: u64_field(text, "skew_pct")? as u32,
                max_trips: u64_field(text, "max_trips")? as usize,
            },
        };
        let files_at = text.find("\"files\":")? + "\"files\":".len();
        let rest = &text[files_at..];
        let open = rest.find('[')?;
        let close = rest.find(']')?;
        let files = rest[open + 1..close]
            .split(',')
            .map(str::trim)
            .filter(|f| !f.is_empty())
            .map(|f| Some(unesc(f.strip_prefix('"')?.strip_suffix('"')?)))
            .collect::<Option<Vec<String>>>()?;
        Some((manifest, probe, files))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> RunManifest {
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            title: "fig4_5_un_olm_0-25".to_string(),
            h: 2,
            routing: "olm".to_string(),
            flow_control: "vct".to_string(),
            traffic: "advg+1".to_string(),
            offered_load: 0.25,
            threshold: 0.45,
            seed: 23,
            warmup: 300,
            measure: 600,
            drain: 900,
            peak_in_flight_packets: 512,
            peak_buffered_phits: 4096,
            peak_vc_occupancy: 32,
        }
    }

    #[test]
    fn manifest_round_trips() {
        let probe = ProbeConfig::full_active(64);
        let files = vec!["t_series.csv".to_string(), "t_trigger.jsonl".to_string()];
        let text = manifest().to_json(&probe, &files);
        let (m2, p2, f2) = RunManifest::from_json(&text).expect("parse own emission");
        assert_eq!(m2, manifest());
        assert_eq!(p2, probe);
        assert_eq!(f2, files);
    }

    #[test]
    fn labels_with_commas_brackets_and_quotes_round_trip() {
        // Workload/churn traffic labels legally contain commas and brackets,
        // and free-text titles may carry quotes; none of them may confuse the
        // narrow field parser.
        let mut m = manifest();
        m.title = "run \"A\", the one with [brackets]".to_string();
        m.traffic = "WL[aggressor:ADVG+1@0.24,victim:UN@0.10]".to_string();
        let text = m.to_json(&ProbeConfig::full_active(64), &["a_series.csv".to_string()]);
        let (m2, _, f2) = RunManifest::from_json(&text).expect("parse own emission");
        assert_eq!(m2, m);
        assert_eq!(f2, vec!["a_series.csv".to_string()]);
    }

    #[test]
    fn schema_v1_documents_still_parse() {
        // A version-1 manifest has no "delay" key; the reader must accept it
        // and default the ledger to off.
        let mut probe = ProbeConfig::full_active(64);
        probe.delay = true;
        let v2 = manifest().to_json(&probe, &["t_delay.csv".to_string()]);
        let v1 = v2
            .lines()
            .filter(|l| !l.trim_start().starts_with("\"delay\":"))
            .map(|l| {
                if l.trim_start().starts_with("\"schema_version\":") {
                    "  \"schema_version\": 1,".to_string()
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let (m1, p1, f1) = RunManifest::from_json(&v1).expect("parse schema-1 document");
        assert_eq!(m1.schema_version, 1);
        assert!(!p1.delay, "missing delay key must read as off");
        assert_eq!(f1, vec!["t_delay.csv".to_string()]);

        // The current schema round-trips the flag both ways.
        let (_, p2, _) = RunManifest::from_json(&v2).expect("parse schema-2 document");
        assert!(p2.delay);
    }

    #[test]
    fn detectors_off_and_empty_files_round_trip() {
        let probe = ProbeConfig::default();
        let text = manifest().to_json(&probe, &[]);
        let (_, p2, f2) = RunManifest::from_json(&text).unwrap();
        assert_eq!(p2, probe);
        assert!(f2.is_empty());
    }
}
