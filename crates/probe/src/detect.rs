//! Online anomaly detectors: fixed-state, cycle-indexed machines fed from the
//! recorder's counter stream.
//!
//! Each detector is a deterministic state machine over the *sampled* series
//! (one step per recorded time-series sample, never per cycle), so its
//! verdicts are a pure function of the sample stream.  That purity is the
//! whole determinism story: a sequential run steps the bank online inside
//! [`crate::ProbeRecorder::sample`], while a sharded run discards the
//! shard-local verdicts and replays the identical machine over the *merged*
//! series — and because merged series are byte-identical to sequential series
//! (the pinned shard-invariance of the passive layer), replay and online
//! stepping produce identical [`TripRecord`]s.
//!
//! All evidence is kept as exact integers (numerator/denominator pairs, never
//! ratios), so trigger files format identically everywhere.  All detector
//! state is sized at construction and the trip list is bounded by
//! [`DetectorConfig::max_trips`] (overflow drops and counts), which keeps the
//! zero-allocation pin intact with every detector armed.

/// Detector id: accepted/injected throughput ratio collapsed below
/// `collapse_pct` over an evaluation window.
pub const DETECT_COLLAPSE: u8 = 0;
/// Detector id: phits stayed buffered with zero deliveries for
/// `stall_samples` consecutive samples (credit stall / livelock suspicion).
pub const DETECT_STALL: u8 = 1;
/// Detector id: misroute decisions exceeded `misroute_pct` of injections over
/// an evaluation window.
pub const DETECT_STORM: u8 = 2;
/// Detector id: one router's delivery share exceeded `skew_pct` of the
/// per-router mean over an evaluation window (fairness skew; router-level
/// skew proxies job-level skew under the contiguous placement policy).
pub const DETECT_SKEW: u8 = 3;

/// `router` value of a [`TripRecord`] that implicates no single router.
pub const NO_ROUTER: u32 = u32::MAX;

/// Machine-readable name of a `DETECT_*` id (used in the trigger and trace
/// files).
pub fn detector_name(detector: u8) -> &'static str {
    match detector {
        DETECT_COLLAPSE => "throughput_collapse",
        DETECT_STALL => "credit_stall",
        DETECT_STORM => "misroute_storm",
        DETECT_SKEW => "fairness_skew",
        _ => "unknown",
    }
}

/// Configuration of the online detector bank.  `window == 0` disables every
/// detector (the default); [`DetectorConfig::armed`] gives the tuned-on
/// defaults the `--probe-detect` flag installs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Samples per evaluation window of the windowed detectors (collapse,
    /// storm, skew).  `0` disables the whole bank.
    pub window: u32,
    /// Throughput-collapse threshold: trip when
    /// `delivered × 100 < collapse_pct × injected` over a window.
    pub collapse_pct: u32,
    /// Minimum packets injected in a window for the windowed ratio detectors
    /// to evaluate at all (suppresses verdicts on idle or draining windows).
    pub min_window_injected: u64,
    /// Consecutive samples with buffered phits and zero deliveries before the
    /// credit-stall detector trips.
    pub stall_samples: u32,
    /// Misroute-storm threshold: trip when
    /// `misroutes × 100 > misroute_pct × injected` over a window.
    pub misroute_pct: u32,
    /// Fairness-skew threshold: trip when the busiest router's window
    /// deliveries exceed `skew_pct`% of the per-router mean
    /// (`max × routers × 100 > skew_pct × total`).
    pub skew_pct: u32,
    /// Maximum trip records stored; later trips are dropped and counted.
    pub max_trips: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl DetectorConfig {
    /// Every detector disabled (threshold fields keep the armed values so a
    /// struct update can flip just `window`).
    pub fn off() -> Self {
        Self {
            window: 0,
            ..Self::armed()
        }
    }

    /// The tuned-on defaults: 8-sample windows, collapse below 50%, stall
    /// after 8 flat samples, storm above 60% misroutes, skew above 4× the
    /// per-router mean.
    pub fn armed() -> Self {
        Self {
            window: 8,
            collapse_pct: 50,
            min_window_injected: 64,
            stall_samples: 8,
            misroute_pct: 60,
            skew_pct: 400,
            max_trips: 64,
        }
    }

    /// True when the detector bank runs.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.window > 0
    }
}

/// One detector verdict: the cycle it fired, the sample index and window it
/// evaluated, and the exact integer evidence (`observed` vs `bound`, whose
/// meaning is detector-specific — see the trigger-file schema in RESULTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripRecord {
    /// `DETECT_*` id of the detector that fired.
    pub detector: u8,
    /// Cycle of the sample at which the verdict fired.
    pub cycle: u64,
    /// Index of that sample in the recorded series.
    pub sample: u32,
    /// Cycle of the first sample of the evaluated window (for the stall
    /// detector: the first flat sample of the run).
    pub window_start_cycle: u64,
    /// Detector-specific evidence numerator (e.g. packets delivered in the
    /// window for collapse, buffered phits for stall).
    pub observed: u64,
    /// Detector-specific evidence denominator/bound (e.g. packets injected in
    /// the window for collapse, the configured run length for stall).
    pub bound: u64,
    /// Implicated router ([`NO_ROUTER`] for network-wide verdicts; set by the
    /// fairness-skew detector).
    pub router: u32,
}

/// One step of detector input: the cumulative counters at a sample point.
/// Built either from the live hot counters (sequential online stepping) or
/// from row `i` of the recorded series (replay after a shard merge) — the two
/// sources carry identical values by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetectorSample<'a> {
    /// Cycle of the sample.
    pub cycle: u64,
    /// Cumulative packets injected.
    pub injected: u64,
    /// Cumulative packets delivered.
    pub delivered: u64,
    /// Cumulative global misroute decisions.
    pub global_misroutes: u64,
    /// Cumulative local misroute decisions.
    pub local_misroutes: u64,
    /// Phits buffered at the sample point (instantaneous gauge).
    pub buffered_phits: u64,
    /// Cumulative per-router deliveries, when per-router recording is on
    /// (`top_k > 0`); `None` disables the fairness-skew detector for this
    /// step, identically online and in replay.
    pub router_delivered: Option<&'a [u64]>,
}

/// The four detector state machines sharing one window clock.  All storage is
/// sized at construction; [`DetectorBank::step`] never allocates.
#[derive(Debug, Clone)]
pub struct DetectorBank {
    cfg: DetectorConfig,

    // Window clock.
    window_fill: u32,
    window_start_cycle: u64,

    // Cumulative baselines at the previous window boundary.
    base_injected: u64,
    base_delivered: u64,
    base_misroutes: u64,
    router_base_delivered: Vec<u64>,

    // Credit-stall run-length machine.
    stall_run: u32,
    stall_start_cycle: u64,
    prev_delivered: u64,

    // Re-arm latches: a detector that tripped stays quiet until one clean
    // evaluation (or, for stall, until progress resumes).
    armed: [bool; 4],

    samples_seen: u32,
    trips: Vec<TripRecord>,
    trips_dropped: u64,
}

impl DetectorBank {
    /// Build a bank.  `skew_routers` is the router count when per-router
    /// deliveries will be fed in (arming the fairness-skew detector) and `0`
    /// otherwise.
    pub fn new(cfg: &DetectorConfig, skew_routers: usize) -> Self {
        let mut trips = Vec::new();
        trips.reserve_exact(if cfg.enabled() { cfg.max_trips } else { 0 });
        Self {
            cfg: cfg.clone(),
            window_fill: 0,
            window_start_cycle: 0,
            base_injected: 0,
            base_delivered: 0,
            base_misroutes: 0,
            router_base_delivered: vec![0; skew_routers],
            stall_run: 0,
            stall_start_cycle: 0,
            prev_delivered: 0,
            armed: [true; 4],
            samples_seen: 0,
            trips,
            trips_dropped: 0,
        }
    }

    /// Trips recorded so far, in firing order (which is cycle order).
    pub fn trips(&self) -> &[TripRecord] {
        &self.trips
    }

    /// Trips dropped after the bounded list filled.
    pub fn trips_dropped(&self) -> u64 {
        self.trips_dropped
    }

    fn trip(&mut self, record: TripRecord) {
        if self.trips.len() < self.cfg.max_trips {
            self.trips.push(record);
        } else {
            self.trips_dropped += 1;
        }
    }

    /// Advance every machine by one sample.  Allocation-free.
    pub fn step(&mut self, s: DetectorSample<'_>) {
        if !self.cfg.enabled() {
            return;
        }
        let sample = self.samples_seen;
        self.samples_seen += 1;
        if self.window_fill == 0 {
            self.window_start_cycle = s.cycle;
        }

        // Credit stall: buffered traffic with zero forward progress.
        if s.buffered_phits > 0 && s.delivered == self.prev_delivered {
            if self.stall_run == 0 {
                self.stall_start_cycle = s.cycle;
            }
            self.stall_run += 1;
            if self.stall_run >= self.cfg.stall_samples && self.armed[DETECT_STALL as usize] {
                self.armed[DETECT_STALL as usize] = false;
                self.trip(TripRecord {
                    detector: DETECT_STALL,
                    cycle: s.cycle,
                    sample,
                    window_start_cycle: self.stall_start_cycle,
                    observed: s.buffered_phits,
                    bound: u64::from(self.cfg.stall_samples),
                    router: NO_ROUTER,
                });
            }
        } else {
            self.stall_run = 0;
            self.armed[DETECT_STALL as usize] = true;
        }
        self.prev_delivered = s.delivered;

        // Windowed ratio detectors evaluate on non-overlapping windows.
        self.window_fill += 1;
        if self.window_fill < self.cfg.window {
            return;
        }
        self.window_fill = 0;
        let d_inj = s.injected - self.base_injected;
        let d_del = s.delivered - self.base_delivered;
        let misroutes = s.global_misroutes + s.local_misroutes;
        let d_mis = misroutes - self.base_misroutes;
        let window_start_cycle = self.window_start_cycle;

        if d_inj >= self.cfg.min_window_injected {
            if d_del * 100 < u64::from(self.cfg.collapse_pct) * d_inj {
                if self.armed[DETECT_COLLAPSE as usize] {
                    self.armed[DETECT_COLLAPSE as usize] = false;
                    self.trip(TripRecord {
                        detector: DETECT_COLLAPSE,
                        cycle: s.cycle,
                        sample,
                        window_start_cycle,
                        observed: d_del,
                        bound: d_inj,
                        router: NO_ROUTER,
                    });
                }
            } else {
                self.armed[DETECT_COLLAPSE as usize] = true;
            }
            if d_mis * 100 > u64::from(self.cfg.misroute_pct) * d_inj {
                if self.armed[DETECT_STORM as usize] {
                    self.armed[DETECT_STORM as usize] = false;
                    self.trip(TripRecord {
                        detector: DETECT_STORM,
                        cycle: s.cycle,
                        sample,
                        window_start_cycle,
                        observed: d_mis,
                        bound: d_inj,
                        router: NO_ROUTER,
                    });
                }
            } else {
                self.armed[DETECT_STORM as usize] = true;
            }
        } else {
            // Idle window: no verdicts either way, and tripped ratio
            // detectors re-arm.
            self.armed[DETECT_COLLAPSE as usize] = true;
            self.armed[DETECT_STORM as usize] = true;
        }

        if let Some(rd) = s.router_delivered {
            if !rd.is_empty() && rd.len() == self.router_base_delivered.len() {
                let n = rd.len() as u64;
                let mut max_delta = 0u64;
                let mut max_router = NO_ROUTER;
                let mut total = 0u64;
                for (r, (&cur, &base)) in rd.iter().zip(&self.router_base_delivered).enumerate() {
                    let delta = cur - base;
                    total += delta;
                    if delta > max_delta {
                        max_delta = delta;
                        max_router = r as u32;
                    }
                }
                if total >= self.cfg.min_window_injected
                    && max_delta * n * 100 > u64::from(self.cfg.skew_pct) * total
                {
                    if self.armed[DETECT_SKEW as usize] {
                        self.armed[DETECT_SKEW as usize] = false;
                        self.trip(TripRecord {
                            detector: DETECT_SKEW,
                            cycle: s.cycle,
                            sample,
                            window_start_cycle,
                            observed: max_delta * n,
                            bound: total,
                            router: max_router,
                        });
                    }
                } else {
                    self.armed[DETECT_SKEW as usize] = true;
                }
                self.router_base_delivered.copy_from_slice(rd);
            }
        }

        self.base_injected = s.injected;
        self.base_delivered = s.delivered;
        self.base_misroutes = misroutes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            window: 2,
            collapse_pct: 50,
            min_window_injected: 10,
            stall_samples: 3,
            misroute_pct: 60,
            skew_pct: 300,
            max_trips: 4,
        }
    }

    fn feed(bank: &mut DetectorBank, rows: &[(u64, u64, u64, u64, u64)]) {
        for &(cycle, injected, delivered, misroutes, buffered) in rows {
            bank.step(DetectorSample {
                cycle,
                injected,
                delivered,
                global_misroutes: misroutes,
                local_misroutes: 0,
                buffered_phits: buffered,
                router_delivered: None,
            });
        }
    }

    #[test]
    fn collapse_trips_once_then_rearms_after_a_clean_window() {
        let mut bank = DetectorBank::new(&cfg(), 0);
        feed(
            &mut bank,
            &[
                // Window 1: 20 injected, 4 delivered — 20% < 50% → trip.
                (0, 10, 2, 0, 0),
                (4, 20, 4, 0, 0),
                // Window 2: still collapsed, but the latch holds.
                (8, 30, 6, 0, 0),
                (12, 40, 8, 0, 0),
                // Window 3: healthy → re-arms.
                (16, 50, 18, 0, 0),
                (20, 60, 28, 0, 0),
                // Window 4: collapsed again → second trip.
                (24, 70, 29, 0, 0),
                (28, 80, 30, 0, 0),
            ],
        );
        let trips = bank.trips();
        assert_eq!(trips.len(), 2);
        assert_eq!(trips[0].detector, DETECT_COLLAPSE);
        assert_eq!(
            (trips[0].cycle, trips[0].observed, trips[0].bound),
            (4, 4, 20)
        );
        assert_eq!(trips[0].window_start_cycle, 0);
        assert_eq!(trips[1].cycle, 28);
    }

    #[test]
    fn idle_windows_never_trip_ratio_detectors() {
        let mut bank = DetectorBank::new(&cfg(), 0);
        // 4 injected per window, below min_window_injected = 10, all lost.
        feed(&mut bank, &[(0, 2, 0, 2, 0), (4, 4, 0, 4, 0)]);
        assert!(bank.trips().is_empty());
    }

    #[test]
    fn stall_needs_buffered_phits_and_flat_deliveries() {
        let mut bank = DetectorBank::new(&cfg(), 0);
        feed(
            &mut bank,
            &[
                (0, 50, 5, 0, 9),  // delivery count moves here → run starts after
                (4, 60, 5, 0, 9),  // flat #1
                (8, 70, 5, 0, 9),  // flat #2
                (12, 80, 5, 0, 9), // flat #3 → trip
                (16, 90, 6, 0, 0), // progress resumes → machine resets
                (20, 99, 6, 0, 0), // flat but nothing buffered → no stall
            ],
        );
        let stalls: Vec<_> = bank
            .trips()
            .iter()
            .filter(|t| t.detector == DETECT_STALL)
            .collect();
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].cycle, 12);
        assert_eq!(stalls[0].window_start_cycle, 4);
        assert_eq!(stalls[0].observed, 9);
    }

    #[test]
    fn storm_and_skew_evidence_is_exact() {
        let mut bank = DetectorBank::new(&cfg(), 4);
        let step = |bank: &mut DetectorBank, cycle, inj, del, mis, rd: [u64; 4]| {
            bank.step(DetectorSample {
                cycle,
                injected: inj,
                delivered: del,
                global_misroutes: mis,
                local_misroutes: 0,
                buffered_phits: 0,
                router_delivered: Some(&rd),
            });
        };
        // Window: 20 injected, 13 misroutes (65% > 60%); router 2 delivers 10
        // of 12 (skew 10*4*100 = 4000 > 300*12 = 3600).
        step(&mut bank, 0, 10, 6, 6, [1, 0, 5, 0]);
        step(&mut bank, 4, 20, 12, 13, [1, 0, 10, 1]);
        let trips = bank.trips();
        assert_eq!(trips.len(), 2);
        assert_eq!(trips[0].detector, DETECT_STORM);
        assert_eq!((trips[0].observed, trips[0].bound), (13, 20));
        assert_eq!(trips[1].detector, DETECT_SKEW);
        assert_eq!((trips[1].observed, trips[1].bound), (40, 12));
        assert_eq!(trips[1].router, 2);
    }

    #[test]
    fn trip_list_is_bounded() {
        let mut bank = DetectorBank::new(
            &DetectorConfig {
                max_trips: 1,
                ..cfg()
            },
            0,
        );
        // Alternate collapsed and clean windows so the latch re-arms.
        let (mut inj, mut del) = (0u64, 0u64);
        for w in 0..6u64 {
            let healthy = w % 2 == 1;
            for half in 0..2u64 {
                inj += 50;
                del += if healthy { 48 } else { 5 };
                feed(&mut bank, &[(w * 8 + half * 4, inj, del, 0, 0)]);
            }
        }
        assert_eq!(bank.trips().len(), 1);
        assert!(bank.trips_dropped() > 0);
    }

    #[test]
    fn disabled_bank_records_nothing() {
        let mut bank = DetectorBank::new(&DetectorConfig::off(), 0);
        feed(&mut bank, &[(0, 100, 0, 100, 50); 32]);
        assert!(bank.trips().is_empty());
        assert_eq!(bank.trips_dropped(), 0);
    }
}
