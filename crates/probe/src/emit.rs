//! File emission of recorded probe data (CSV and hand-formatted JSONL).
//!
//! Every emitted number is an exact integer count, so the byte output of a
//! merged sharded recorder is identical to the sequential recorder's — no
//! float formatting is involved anywhere on the determinism-pinned paths.
//! The diagnostics file (`*_diag.csv`) is the deliberate exception: its
//! values are engine-dependent (see [`crate::recorder::DiagSeries`]).

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::flight::{FLIGHT_DELIVER, FLIGHT_HOP, FLIGHT_INJECT, NONE_U16};
use crate::recorder::{class_name, ProbeRecorder};

fn kind_name(kind: u8) -> &'static str {
    match kind {
        FLIGHT_INJECT => "inject",
        FLIGHT_HOP => "hop",
        FLIGHT_DELIVER => "deliver",
        _ => "unknown",
    }
}

/// JSON fragment for an optional numeric field encoded as a `u16` sentinel.
fn opt_u16(v: u16) -> String {
    if v == NONE_U16 {
        "null".to_string()
    } else {
        v.to_string()
    }
}

impl ProbeRecorder {
    /// Write every enabled instrument's output into `dir`, with file names
    /// `<prefix>_<instrument>.<ext>`.  Returns the paths written.
    pub fn write_all(&self, dir: &Path, prefix: &str) -> io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let mut emit = |name: &str, body: &dyn Fn(&mut BufWriter<File>) -> io::Result<()>| {
            let path = dir.join(format!("{prefix}_{name}"));
            let mut out = BufWriter::new(File::create(&path)?);
            body(&mut out)?;
            out.flush()?;
            written.push(path);
            Ok::<(), io::Error>(())
        };
        emit("series.csv", &|out| self.write_series_csv(out))?;
        emit("series.jsonl", &|out| self.write_series_jsonl(out))?;
        if self.cfg.top_k > 0 {
            emit("routers.csv", &|out| self.write_router_series_csv(out))?;
        }
        if self.cfg.flight_enabled() {
            emit("flight.jsonl", &|out| self.write_flight_jsonl(out))?;
        }
        if self.cfg.heatmap_enabled() {
            emit("heatmap.csv", &|out| self.write_heatmap_csv(out))?;
        }
        if self.cfg.delay_enabled() {
            emit("delay.csv", &|out| self.write_delay_csv(out))?;
            emit("delay.jsonl", &|out| self.write_delay_jsonl(out))?;
        }
        if self.cfg.detect_enabled() {
            emit("trigger.jsonl", &|out| self.write_trigger_jsonl(out))?;
            // The black-box bundle slices around the first verdict.
            if let Some(&first) = self.trips().first() {
                emit("trigger_series.csv", &|out| {
                    self.write_bundle_series_csv(out, &first)
                })?;
                if self.cfg.flight_enabled() {
                    emit("trigger_flight.jsonl", &|out| {
                        self.write_bundle_flight_jsonl(out, &first)
                    })?;
                }
                if self.cfg.heatmap_enabled() {
                    emit("trigger_heatmap.csv", &|out| {
                        self.write_bundle_heatmap_csv(out, &first)
                    })?;
                }
                if self.cfg.delay_enabled() {
                    emit("trigger_delay.csv", &|out| {
                        self.write_bundle_delay_csv(out, &first)
                    })?;
                }
            }
        }
        if self.cfg.trace {
            emit("trace.json", &|out| self.write_trace(out))?;
        }
        emit("diag.csv", &|out| self.write_diag_csv(out))?;
        Ok(written)
    }

    /// [`Self::write_all`] plus a `<prefix>_manifest.json` self-description
    /// listing the written files.  Returns every path written, the manifest
    /// last.
    pub fn write_all_with_manifest(
        &self,
        dir: &Path,
        prefix: &str,
        manifest: &crate::manifest::RunManifest,
    ) -> io::Result<Vec<PathBuf>> {
        let mut written = self.write_all(dir, prefix)?;
        let names: Vec<String> = written
            .iter()
            .map(|p| {
                p.file_name()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        let path = dir.join(format!("{prefix}_manifest.json"));
        let mut out = BufWriter::new(File::create(&path)?);
        out.write_all(manifest.to_json(&self.cfg, &names).as_bytes())?;
        out.flush()?;
        written.push(path);
        Ok(written)
    }

    /// The network-wide time series as a CSV table, one row per sample.
    pub fn write_series_csv(&self, out: &mut impl Write) -> io::Result<()> {
        let columns = self.series.columns();
        write!(out, "cycle")?;
        for (name, _) in &columns {
            write!(out, ",{name}")?;
        }
        writeln!(out)?;
        for i in 0..self.samples {
            write!(out, "{}", self.series.injected.cycle_of(i))?;
            for (_, series) in &columns {
                write!(out, ",{}", series.samples()[i] as u64)?;
            }
            writeln!(out)?;
        }
        Ok(())
    }

    /// The network-wide time series as JSONL, one object per sample.
    pub fn write_series_jsonl(&self, out: &mut impl Write) -> io::Result<()> {
        let columns = self.series.columns();
        for i in 0..self.samples {
            write!(out, "{{\"cycle\":{}", self.series.injected.cycle_of(i))?;
            for (name, series) in &columns {
                write!(out, ",\"{name}\":{}", series.samples()[i] as u64)?;
            }
            writeln!(out, "}}")?;
        }
        Ok(())
    }

    /// Per-router time series of the top-K routers by total activity.
    pub fn write_router_series_csv(&self, out: &mut impl Write) -> io::Result<()> {
        writeln!(out, "router,cycle,injected,delivered,misrouted")?;
        for r in self.top_routers(self.cfg.top_k) {
            for i in 0..self.samples {
                writeln!(
                    out,
                    "{r},{},{},{},{}",
                    self.series.injected.cycle_of(i),
                    self.router_injected_series[r].samples()[i] as u64,
                    self.router_delivered_series[r].samples()[i] as u64,
                    self.router_misrouted_series[r].samples()[i] as u64,
                )?;
            }
        }
        Ok(())
    }

    /// The flight recorder's events in canonical order, one JSON object per
    /// line, with a trailing `{"flight_dropped":N}` metadata object.
    pub fn write_flight_jsonl(&self, out: &mut impl Write) -> io::Result<()> {
        for e in self.sorted_flight() {
            let class = if e.class == u8::MAX {
                "null".to_string()
            } else {
                format!("\"{}\"", class_name(e.class))
            };
            let nonminimal = match e.nonminimal {
                0 => "false",
                1 => "true",
                _ => "null",
            };
            writeln!(
                out,
                "{{\"cycle\":{},\"kind\":\"{}\",\"src\":{},\"gen_cycle\":{},\"dst\":{},\
                 \"router\":{},\"port\":{},\"class\":{},\"vc\":{},\"nonminimal\":{}}}",
                e.cycle,
                kind_name(e.kind),
                e.src,
                e.gen_cycle,
                e.dst,
                e.router,
                opt_u16(e.port),
                class,
                opt_u16(e.vc),
                nonminimal,
            )?;
        }
        writeln!(out, "{{\"flight_dropped\":{}}}", self.flight_dropped)?;
        Ok(())
    }

    /// The per-(link, VC) heatmap in long CSV form, all-zero cells skipped.
    pub fn write_heatmap_csv(&self, out: &mut impl Write) -> io::Result<()> {
        writeln!(
            out,
            "window_start,router,port,class,vc,phits,credit_stalls,occupancy_phits"
        )?;
        let links = self.dims.links();
        for w in 0..self.heat_windows {
            for li in 0..links {
                for vc in 0..self.dims.vcs {
                    let cell = (w * links + li) * self.dims.vcs + vc;
                    let (p, s, o) = (
                        self.heat_phits[cell],
                        self.heat_stalls[cell],
                        self.heat_occupancy[cell],
                    );
                    if p == 0 && s == 0 && o == 0 {
                        continue;
                    }
                    writeln!(
                        out,
                        "{},{},{},{},{vc},{p},{s},{o}",
                        w as u64 * self.cfg.heatmap_window,
                        li / self.dims.ports,
                        li % self.dims.ports,
                        class_name(self.dims.link_class[li]),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// The delay-attribution ledger as a CSV table, one row per
    /// (scope, component).
    pub fn write_delay_csv(&self, out: &mut impl Write) -> io::Result<()> {
        let ledger = self.ledger.as_ref().expect("delay ledger enabled");
        writeln!(out, "{}", crate::delay::DelayLedger::CSV_HEADER)?;
        for row in ledger.rows() {
            writeln!(out, "{}", row.csv())?;
        }
        Ok(())
    }

    /// The delay-attribution ledger as JSONL: one object per row, then a
    /// trailing metadata object with the folded / violation / dropped counts.
    pub fn write_delay_jsonl(&self, out: &mut impl Write) -> io::Result<()> {
        let ledger = self.ledger.as_ref().expect("delay ledger enabled");
        for row in ledger.rows() {
            writeln!(out, "{}", row.json())?;
        }
        writeln!(out, "{}", ledger.meta_json())?;
        Ok(())
    }

    /// The engine-dependent diagnostic series (arena growth, ring high-water
    /// marks).  Not covered by the sequential-vs-sharded byte-identity
    /// guarantee — see the module docs.
    pub fn write_diag_csv(&self, out: &mut impl Write) -> io::Result<()> {
        let columns = self.diag.columns();
        write!(out, "cycle")?;
        for (name, _) in &columns {
            write!(out, ",{name}")?;
        }
        writeln!(out)?;
        for i in 0..self.samples {
            write!(out, "{}", self.diag.arena_grows.cycle_of(i))?;
            for (_, series) in &columns {
                write!(out, ",{}", series.samples()[i] as u64)?;
            }
            writeln!(out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{ProbeDims, SampleSnapshot, CLASS_GLOBAL, CLASS_LOCAL, CLASS_TERMINAL};
    use crate::{DelaySample, FlightEvent, ProbeConfig, DELAY_UNTAGGED, FLIGHT_HOP};

    fn recorder() -> ProbeRecorder {
        let dims = ProbeDims {
            routers: 1,
            ports: 3,
            vcs: 1,
            link_class: vec![CLASS_LOCAL, CLASS_GLOBAL, CLASS_TERMINAL],
        };
        let cfg = ProbeConfig {
            stride: 4,
            max_samples: 4,
            top_k: 1,
            flight_every: 1,
            flight_capacity: 8,
            heatmap_window: 8,
            max_windows: 2,
            delay: true,
            ..ProbeConfig::default()
        };
        let mut p = ProbeRecorder::new(cfg, dims);
        p.record_injected(0);
        p.record_flight(FlightEvent {
            cycle: 2,
            gen_cycle: 1,
            src: 0,
            dst: 3,
            router: 0,
            port: 1,
            vc: 0,
            kind: FLIGHT_HOP,
            class: CLASS_GLOBAL,
            nonminimal: 1,
        });
        p.record_link_phit(2, 1, 0);
        p.record_delay(
            &DelaySample {
                components: [1, 0, 0, 2, 0, 1],
                misrouted: false,
                job: DELAY_UNTAGGED,
                phase: DELAY_UNTAGGED,
            },
            4,
        );
        p.sample(0, &[1, 2, 3], SampleSnapshot::default());
        p
    }

    #[test]
    fn csv_and_jsonl_shapes() {
        let p = recorder();
        let mut series = Vec::new();
        p.write_series_csv(&mut series).unwrap();
        let text = String::from_utf8(series).unwrap();
        assert!(text.starts_with("cycle,injected,delivered"), "{text}");
        assert!(text.contains("\n0,1,0,"), "{text}");

        let mut jsonl = Vec::new();
        p.write_series_jsonl(&mut jsonl).unwrap();
        let text = String::from_utf8(jsonl).unwrap();
        assert!(text.starts_with("{\"cycle\":0,\"injected\":1,"), "{text}");

        let mut flight = Vec::new();
        p.write_flight_jsonl(&mut flight).unwrap();
        let text = String::from_utf8(flight).unwrap();
        assert!(
            text.contains("\"kind\":\"hop\"") && text.contains("\"nonminimal\":true"),
            "{text}"
        );
        assert!(
            text.trim_end().ends_with("{\"flight_dropped\":0}"),
            "{text}"
        );

        let mut heat = Vec::new();
        p.write_heatmap_csv(&mut heat).unwrap();
        let text = String::from_utf8(heat).unwrap();
        // One nonzero cell: window 0, router 0, port 1 (global), vc 0, 1 phit.
        assert_eq!(
            text,
            "window_start,router,port,class,vc,phits,credit_stalls,occupancy_phits\n\
             0,0,1,global,0,1,0,0\n"
        );

        let mut delay = Vec::new();
        p.write_delay_csv(&mut delay).unwrap();
        let text = String::from_utf8(delay).unwrap();
        assert!(
            text.starts_with("scope,component,packets,cycles,p50,p95,p99\n"),
            "{text}"
        );
        // One minimal packet [1,0,0,2,0,1]: net and minimal rows agree,
        // the misrouted scope is empty and skipped.
        assert!(text.contains("net,injection_queue,1,1,2,2,2"), "{text}");
        assert!(text.contains("minimal,link_transit,1,2,3,3,3"), "{text}");
        assert!(!text.contains("misrouted,"), "{text}");

        let mut delay_jsonl = Vec::new();
        p.write_delay_jsonl(&mut delay_jsonl).unwrap();
        let text = String::from_utf8(delay_jsonl).unwrap();
        assert!(
            text.trim_end().ends_with(
                "{\"delay_folded\":1,\"conservation_violations\":0,\"scope_dropped\":0}"
            ),
            "{text}"
        );

        let mut routers = Vec::new();
        p.write_router_series_csv(&mut routers).unwrap();
        let text = String::from_utf8(routers).unwrap();
        assert_eq!(
            text,
            "router,cycle,injected,delivered,misrouted\n0,0,1,0,0\n"
        );

        let mut diag = Vec::new();
        p.write_diag_csv(&mut diag).unwrap();
        assert!(String::from_utf8(diag)
            .unwrap()
            .starts_with("cycle,arena_grows,"));
    }

    #[test]
    fn write_all_emits_every_enabled_file() {
        let p = recorder();
        let dir = std::env::temp_dir().join("dragonfly_probe_emit_test");
        let written = p.write_all(&dir, "t").unwrap();
        let names: Vec<String> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "t_series.csv",
                "t_series.jsonl",
                "t_routers.csv",
                "t_flight.jsonl",
                "t_heatmap.csv",
                "t_delay.csv",
                "t_delay.jsonl",
                "t_diag.csv"
            ]
        );
        for path in &written {
            assert!(path.exists());
            std::fs::remove_file(path).unwrap();
        }
    }

    #[test]
    fn write_all_with_manifest_emits_active_layer_files() {
        use crate::detect::DetectorConfig;
        use crate::manifest::RunManifest;

        let dims = ProbeDims {
            routers: 1,
            ports: 1,
            vcs: 1,
            link_class: vec![CLASS_TERMINAL],
        };
        let cfg = ProbeConfig {
            stride: 4,
            max_samples: 16,
            detect: DetectorConfig {
                window: 2,
                min_window_injected: 4,
                ..DetectorConfig::armed()
            },
            trace: true,
            delay: true,
            ..ProbeConfig::full(8)
        };
        let mut p = ProbeRecorder::new(cfg.clone(), dims);
        for i in 0..4u64 {
            for _ in 0..3 {
                p.record_injected(0);
            }
            p.sample(i * 4, &[0], SampleSnapshot::default());
        }
        assert!(!p.trips().is_empty(), "collapse must trip");

        let manifest = RunManifest {
            schema_version: crate::manifest::MANIFEST_SCHEMA_VERSION,
            title: "t".to_string(),
            h: 2,
            routing: "olm".to_string(),
            flow_control: "vct".to_string(),
            traffic: "un".to_string(),
            offered_load: 0.2,
            threshold: 0.45,
            seed: 1,
            warmup: 0,
            measure: 16,
            drain: 0,
            peak_in_flight_packets: 0,
            peak_buffered_phits: 0,
            peak_vc_occupancy: 0,
        };
        let dir = std::env::temp_dir().join("dragonfly_probe_emit_active_test");
        let written = p.write_all_with_manifest(&dir, "t", &manifest).unwrap();
        let names: Vec<String> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "t_series.csv",
                "t_series.jsonl",
                "t_routers.csv",
                "t_flight.jsonl",
                "t_heatmap.csv",
                "t_delay.csv",
                "t_delay.jsonl",
                "t_trigger.jsonl",
                "t_trigger_series.csv",
                "t_trigger_flight.jsonl",
                "t_trigger_heatmap.csv",
                "t_trigger_delay.csv",
                "t_trace.json",
                "t_diag.csv",
                "t_manifest.json",
            ]
        );
        let text = std::fs::read_to_string(written.last().unwrap()).unwrap();
        let (m2, p2, files) = RunManifest::from_json(&text).expect("manifest parses");
        assert_eq!(m2, manifest);
        assert_eq!(p2, cfg);
        assert_eq!(files.len(), names.len() - 1, "manifest lists the set");
        for path in &written {
            std::fs::remove_file(path).unwrap();
        }
    }
}
