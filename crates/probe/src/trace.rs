//! Chrome `trace_event` / Perfetto JSON export.
//!
//! [`TraceBuilder`] accumulates spans, instants and metadata records and
//! renders the JSON-array trace format that `about://tracing` and
//! [ui.perfetto.dev](https://ui.perfetto.dev) open directly.  Two producers
//! feed it:
//!
//! * [`crate::ProbeRecorder::trace`] — detector trips on a **cycle-as-
//!   microsecond** timebase (1 simulated cycle = 1 µs), one track per
//!   detector.  This content is a pure function of the trip list, so the
//!   emitted `*_trace.json` is byte-identical between sequential and sharded
//!   runs like the other determinism-pinned files.
//! * `examples/phase_profile.rs` (`--features profile`) — wall-clock phase
//!   spans and per-shard `barrier_wait_nanos`, which are genuinely
//!   engine-dependent and therefore never emitted from `write_all`.

use std::io::{self, Write};

use crate::detect::{detector_name, NO_ROUTER};
use crate::recorder::ProbeRecorder;

/// Incremental builder of a Chrome `trace_event` JSON document.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    events: Vec<String>,
}

/// Render one `"key":value` argument list as a JSON object body.
fn render_args(args: &[(&str, String)]) -> String {
    let body = args
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v}"))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

impl TraceBuilder {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name the process `pid` in the trace viewer (a `process_name` metadata
    /// record).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    /// Name the thread `(pid, tid)` in the trace viewer (a `thread_name`
    /// metadata record).
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    /// A complete span (`ph:"X"`): `[ts_us, ts_us + dur_us]` on track
    /// `(pid, tid)`, with numeric arguments.
    pub fn span(
        &mut self,
        name: &str,
        pid: u32,
        tid: u32,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, String)],
    ) {
        self.events.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us},\"dur\":{dur_us},\"args\":{}}}",
            render_args(args)
        ));
    }

    /// An instant event (`ph:"i"`, thread scope) at `ts_us` on `(pid, tid)`.
    pub fn instant(&mut self, name: &str, pid: u32, tid: u32, ts_us: f64, args: &[(&str, String)]) {
        self.events.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\
             \"ts\":{ts_us},\"args\":{}}}",
            render_args(args)
        ));
    }

    /// The trace as a JSON document (`{"traceEvents":[...]}`).
    pub fn render(&self) -> String {
        let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        s.push_str(&self.events.join(",\n"));
        s.push_str("\n]}\n");
        s
    }

    /// Write [`Self::render`] to `out`.
    pub fn write_to(&self, out: &mut impl Write) -> io::Result<()> {
        out.write_all(self.render().as_bytes())
    }
}

impl ProbeRecorder {
    /// Build the detector-trip trace: one track per detector (1 cycle = 1 µs),
    /// a span over each trip's evaluated window and an instant at the trip
    /// cycle carrying the integer evidence.
    pub fn trace(&self) -> TraceBuilder {
        let mut tb = TraceBuilder::new();
        tb.name_process(0, "dragonfly-sim");
        for d in 0u8..4 {
            tb.name_thread(0, u32::from(d) + 1, detector_name(d));
        }
        for t in self.trips() {
            let tid = u32::from(t.detector) + 1;
            let name = detector_name(t.detector);
            let mut args = vec![
                ("sample", t.sample.to_string()),
                ("observed", t.observed.to_string()),
                ("bound", t.bound.to_string()),
            ];
            if t.router != NO_ROUTER {
                args.push(("router", t.router.to_string()));
            }
            tb.span(
                name,
                0,
                tid,
                t.window_start_cycle as f64,
                (t.cycle - t.window_start_cycle) as f64,
                &[],
            );
            tb.instant(name, 0, tid, t.cycle as f64, &args);
        }
        tb
    }

    /// Write the detector-trip trace as Perfetto-openable JSON.
    pub fn write_trace(&self, out: &mut impl Write) -> io::Result<()> {
        self.trace().write_to(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_renders_valid_event_array() {
        let mut tb = TraceBuilder::new();
        tb.name_process(0, "test");
        tb.name_thread(0, 1, "phase");
        tb.span("routing", 0, 1, 10.0, 5.5, &[("cycles", "100".to_string())]);
        tb.instant("trip", 0, 1, 12.0, &[]);
        let text = tb.render();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(
            text.contains("\"ph\":\"X\"") && text.contains("\"dur\":5.5"),
            "{text}"
        );
        assert!(text.contains("\"args\":{\"cycles\":100}"), "{text}");
        assert!(text.trim_end().ends_with("]}"), "{text}");
        assert_eq!(tb.len(), 4);
        assert!(!tb.is_empty());
    }
}
