//! Read-only observability probes for the Dragonfly simulator.
//!
//! A [`ProbeRecorder`] is installed into an engine (sequential or sharded) and
//! passively records what the cycle loop already computes — it never consumes
//! RNG state, never feeds back into routing or flow control, and therefore
//! never perturbs a run: reports with probes on are byte-identical to reports
//! with probes off (pinned by `tests/probe_invariance.rs`).
//!
//! Five instruments share one [`ProbeConfig`]:
//!
//! * **time series** — network-wide counters (injected / delivered packets,
//!   misroute decisions, buffered phits, per-class link phits, Piggybacking
//!   congested-flag count) sampled every `stride` cycles into preallocated
//!   [`dragonfly_stats::TimeSeries`] buffers, plus per-router counters for a
//!   top-K cut,
//! * **flight recorder** — a deterministic ~1/N sample of packets (pure hash
//!   of `(source, generation cycle)`, *not* RNG) whose per-hop events land in
//!   a fixed-capacity ring,
//! * **heatmaps** — windowed per-(link, VC) phit counts, credit-stall counts
//!   and occupancy samples,
//! * **diagnostics** — engine-dependent memory counters (packet-arena growth,
//!   ring high-water marks) that are deliberately *excluded* from the
//!   byte-identity guarantee (a sharded engine drains its boundary rings every
//!   cycle, so its high-water marks legitimately differ from the sequential
//!   engine's),
//! * **delay attribution** ([`DelayLedger`]) — an exact (not sampled)
//!   per-packet latency decomposition: the engine stamps component boundaries
//!   on every packet, and on delivery the completed split (injection queue /
//!   VC wait / credit wait / link transit / detour / serialization) folds into
//!   per-component histograms whose integer sum equals the end-to-end latency
//!   for every packet (the conservation invariant).
//!
//! # Determinism
//!
//! Every counter is attributed to exactly one router/link owner, so the
//! per-shard recorders of a sharded run merge by plain element-wise addition
//! ([`ProbeRecorder::merge`]) — commutative and associative like
//! `ExactStats`, hence shard-count-invariant.  Flight events are sorted into
//! a canonical total order at emission time, so the emitted files (except the
//! diagnostics series) are byte-identical between sequential and sharded runs
//! of the same spec (pinned by `tests/shard_equivalence.rs`).
//!
//! # Zero allocation
//!
//! All probe storage is sized and reserved at installation time; the hot-path
//! record methods only index into it.  Overflow (more samples, events or
//! windows than configured) *drops and counts* instead of growing, which
//! keeps `tests/zero_alloc.rs` green with probes enabled.
//!
//! # The active layer
//!
//! On top of the passive instruments sits an *active diagnostics layer* that
//! preserves all three invariants above:
//!
//! * **online detectors** ([`DetectorBank`]) — four fixed-state anomaly
//!   machines (throughput collapse, credit stall, misroute storm, fairness
//!   skew) stepped once per recorded sample.  A sequential engine steps them
//!   online; a sharded engine defers and replays the identical machine over
//!   the merged series, which is byte-identical to the sequential stream —
//!   so the verdicts are too,
//! * **triggered black-box capture** — when a detector trips, `write_all`
//!   slices the already-recorded series/flight/heatmap data into a bounded
//!   diagnostic bundle around the first trip (`*_trigger*` files),
//! * **trace + manifest export** — detector trips as Chrome
//!   `trace_event`/Perfetto JSON ([`TraceBuilder`]), and a self-describing
//!   [`RunManifest`] JSON naming the run and its emitted files.

#![warn(missing_docs)]

mod config;
mod delay;
mod detect;
mod emit;
mod flight;
mod manifest;
mod recorder;
mod trace;
mod trigger;

pub use config::ProbeConfig;
pub use delay::{
    ClassLedger, DelayLedger, DelayRow, DelaySample, DELAY_COMPONENTS, DELAY_COMPONENT_NAMES,
    DELAY_UNTAGGED,
};
pub use detect::{
    detector_name, DetectorBank, DetectorConfig, DetectorSample, TripRecord, DETECT_COLLAPSE,
    DETECT_SKEW, DETECT_STALL, DETECT_STORM, NO_ROUTER,
};
pub use flight::{flight_hash, FlightEvent, FLIGHT_DELIVER, FLIGHT_HOP, FLIGHT_INJECT, NONE_U16};
pub use manifest::{RunManifest, MANIFEST_SCHEMA_VERSION};
pub use recorder::{
    ProbeDims, ProbeRecorder, SampleSnapshot, CLASS_GLOBAL, CLASS_LOCAL, CLASS_TERMINAL,
};
pub use trace::TraceBuilder;
