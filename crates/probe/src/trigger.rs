//! Triggered black-box capture: when a detector trips, the already-recorded
//! probe data is sliced into a bounded diagnostic bundle around the trip.
//!
//! Emission is entirely post-run — the hot path records nothing extra — so
//! the bundle is a pure function of the trip list and the passive
//! instruments, all of which are shard-invariant; the bundle files are
//! therefore byte-identical between sequential and sharded runs by
//! construction.  Every emitted number is an exact integer.
//!
//! The bundle around the *first* trip contains:
//!
//! * a time-series slice covering the evaluated window plus one window of
//!   leading context,
//! * the flight-recorder events inside that cycle range, filtered to the
//!   implicated routers (the skew-flagged router, or the top-K busiest
//!   routers for network-wide verdicts),
//! * the heatmap windows overlapping the range (when heatmaps are on),
//! * the delay ledger's per-component cycle deltas over the range (when the
//!   delay ledger is on), recovered exactly from its cumulative series.

use std::io::{self, Write};

use crate::delay::DELAY_COMPONENT_NAMES;
use crate::detect::{detector_name, TripRecord, NO_ROUTER};
use crate::recorder::ProbeRecorder;
use dragonfly_stats::TimeSeries;

/// JSON fragment for a trip's implicated-router field.
fn opt_router(router: u32) -> String {
    if router == NO_ROUTER {
        "null".to_string()
    } else {
        router.to_string()
    }
}

impl ProbeRecorder {
    /// The bundle's cycle range around `trip`: the evaluated window plus one
    /// extra window of leading context, closed at the trip cycle.
    pub fn bundle_range(&self, trip: &TripRecord) -> (u64, u64) {
        let context = u64::from(self.cfg.detect.window) * self.cfg.stride;
        (trip.window_start_cycle.saturating_sub(context), trip.cycle)
    }

    /// Routers the bundle's flight slice is filtered to: the skew-implicated
    /// router when the trip names one, otherwise the top-K busiest routers.
    /// Deterministic and shard-invariant (both sources are).
    pub fn implicated_routers(&self, trip: &TripRecord) -> Vec<usize> {
        if trip.router != NO_ROUTER {
            vec![trip.router as usize]
        } else {
            self.top_routers(self.cfg.top_k.max(1))
        }
    }

    /// Every trip as one JSON object per line, with a trailing
    /// `{"trips":N,"trips_dropped":N}` metadata object.
    pub fn write_trigger_jsonl(&self, out: &mut impl Write) -> io::Result<()> {
        for t in self.trips() {
            writeln!(
                out,
                "{{\"detector\":\"{}\",\"cycle\":{},\"sample\":{},\"window_start\":{},\
                 \"observed\":{},\"bound\":{},\"router\":{}}}",
                detector_name(t.detector),
                t.cycle,
                t.sample,
                t.window_start_cycle,
                t.observed,
                t.bound,
                opt_router(t.router),
            )?;
        }
        writeln!(
            out,
            "{{\"trips\":{},\"trips_dropped\":{}}}",
            self.trips().len(),
            self.trips_dropped()
        )?;
        Ok(())
    }

    /// The time-series slice of the bundle, in the `series.csv` schema.
    pub fn write_bundle_series_csv(
        &self,
        out: &mut impl Write,
        trip: &TripRecord,
    ) -> io::Result<()> {
        let (lo, hi) = self.bundle_range(trip);
        let columns = self.series.columns();
        write!(out, "cycle")?;
        for (name, _) in &columns {
            write!(out, ",{name}")?;
        }
        writeln!(out)?;
        for i in 0..self.samples {
            let cycle = self.series.injected.cycle_of(i);
            if cycle < lo || cycle > hi {
                continue;
            }
            write!(out, "{cycle}")?;
            for (_, series) in &columns {
                write!(out, ",{}", series.samples()[i] as u64)?;
            }
            writeln!(out)?;
        }
        Ok(())
    }

    /// The flight slice of the bundle: canonical-order events inside the
    /// bundle range at the implicated routers, with a trailing
    /// `{"bundle_lo":..,"bundle_hi":..,"events":N}` metadata object.
    pub fn write_bundle_flight_jsonl(
        &self,
        out: &mut impl Write,
        trip: &TripRecord,
    ) -> io::Result<()> {
        let (lo, hi) = self.bundle_range(trip);
        let implicated = self.implicated_routers(trip);
        let mut events = 0u64;
        for e in self.sorted_flight() {
            if e.cycle < lo || e.cycle > hi || !implicated.contains(&(e.router as usize)) {
                continue;
            }
            events += 1;
            writeln!(
                out,
                "{{\"cycle\":{},\"src\":{},\"gen_cycle\":{},\"dst\":{},\"router\":{}}}",
                e.cycle, e.src, e.gen_cycle, e.dst, e.router,
            )?;
        }
        writeln!(
            out,
            "{{\"bundle_lo\":{lo},\"bundle_hi\":{hi},\"events\":{events}}}"
        )?;
        Ok(())
    }

    /// The heatmap slice of the bundle: the windows overlapping the bundle
    /// range, in the `heatmap.csv` schema.
    pub fn write_bundle_heatmap_csv(
        &self,
        out: &mut impl Write,
        trip: &TripRecord,
    ) -> io::Result<()> {
        let (lo, hi) = self.bundle_range(trip);
        writeln!(
            out,
            "window_start,router,port,class,vc,phits,credit_stalls,occupancy_phits"
        )?;
        let links = self.dims.links();
        let hw = self.cfg.heatmap_window.max(1);
        for w in 0..self.heat_windows {
            let w_start = w as u64 * hw;
            if w_start > hi || w_start + hw <= lo {
                continue;
            }
            for li in 0..links {
                for vc in 0..self.dims.vcs {
                    let cell = (w * links + li) * self.dims.vcs + vc;
                    let (p, s, o) = (
                        self.heat_phits[cell],
                        self.heat_stalls[cell],
                        self.heat_occupancy[cell],
                    );
                    if p == 0 && s == 0 && o == 0 {
                        continue;
                    }
                    writeln!(
                        out,
                        "{w_start},{},{},{},{vc},{p},{s},{o}",
                        li / self.dims.ports,
                        li % self.dims.ports,
                        crate::recorder::class_name(self.dims.link_class[li]),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// The delay slice of the bundle: per-component folded-packet and cycle
    /// deltas over the bundle range, recovered from the ledger's cumulative
    /// series (exact integers, so the slice is shard-invariant like the rest
    /// of the bundle).
    pub fn write_bundle_delay_csv(
        &self,
        out: &mut impl Write,
        trip: &TripRecord,
    ) -> io::Result<()> {
        let ledger = self.ledger.as_ref().expect("delay ledger enabled");
        let (lo, hi) = self.bundle_range(trip);
        // Delta of a cumulative series over [lo, hi]: value at the last
        // sample inside the range minus the value at the last sample before
        // it (both zero when no such sample exists).
        let delta = |series: &TimeSeries| -> u64 {
            let samples = series.samples();
            let (mut before, mut inside) = (0.0, 0.0);
            for (i, &v) in samples.iter().enumerate() {
                let cycle = series.cycle_of(i);
                if cycle < lo {
                    before = v;
                }
                if cycle <= hi {
                    inside = v;
                }
            }
            (inside - before) as u64
        };
        writeln!(out, "component,packets,cycles")?;
        let packets = delta(ledger.series_folded());
        for (i, name) in DELAY_COMPONENT_NAMES.iter().enumerate() {
            writeln!(out, "{name},{packets},{}", delta(&ledger.series()[i]))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{DetectorConfig, DETECT_COLLAPSE};
    use crate::recorder::{ProbeDims, SampleSnapshot, CLASS_GLOBAL, CLASS_LOCAL, CLASS_TERMINAL};
    use crate::{FlightEvent, ProbeConfig, FLIGHT_HOP};

    fn tripped_recorder() -> ProbeRecorder {
        let dims = ProbeDims {
            routers: 2,
            ports: 3,
            vcs: 1,
            link_class: vec![
                CLASS_LOCAL,
                CLASS_GLOBAL,
                CLASS_TERMINAL,
                CLASS_LOCAL,
                CLASS_GLOBAL,
                CLASS_TERMINAL,
            ],
        };
        let cfg = ProbeConfig {
            stride: 4,
            max_samples: 16,
            top_k: 1,
            flight_every: 1,
            flight_capacity: 8,
            heatmap_window: 8,
            max_windows: 8,
            detect: DetectorConfig {
                window: 2,
                min_window_injected: 4,
                ..DetectorConfig::armed()
            },
            trace: false,
            delay: true,
        };
        let mut p = ProbeRecorder::new(cfg, dims);
        p.record_delay(
            &crate::DelaySample {
                components: [1, 0, 0, 2, 0, 1],
                misrouted: false,
                job: crate::DELAY_UNTAGGED,
                phase: crate::DELAY_UNTAGGED,
            },
            4,
        );
        p.record_flight(FlightEvent {
            cycle: 2,
            gen_cycle: 1,
            src: 0,
            dst: 3,
            router: 0,
            port: 1,
            vc: 0,
            kind: FLIGHT_HOP,
            class: CLASS_GLOBAL,
            nonminimal: 0,
        });
        p.record_link_phit(2, 1, 0);
        p.record_link_phit(70, 1, 0); // outside the bundle of an early trip
        for i in 0..4u64 {
            for _ in 0..3 {
                p.record_injected(0);
            }
            p.sample(i * 4, &[0; 6], SampleSnapshot::default());
        }
        p
    }

    #[test]
    fn trigger_and_bundle_slices() {
        let p = tripped_recorder();
        let trips = p.trips();
        assert!(!trips.is_empty());
        let first = trips[0];
        assert_eq!(first.detector, DETECT_COLLAPSE);
        assert_eq!(first.cycle, 4);

        let mut buf = Vec::new();
        p.write_trigger_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(
            text.starts_with("{\"detector\":\"throughput_collapse\",\"cycle\":4,"),
            "{text}"
        );
        assert!(text.contains("\"router\":null"), "{text}");
        assert!(text.trim_end().ends_with("\"trips_dropped\":0}"), "{text}");

        // Series slice: trip at cycle 4, window start 0, one window of
        // context → cycles 0 and 4 only.
        let mut buf = Vec::new();
        p.write_bundle_series_csv(&mut buf, &first).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3, "{text}");
        assert!(text.contains("\n0,") && text.contains("\n4,"), "{text}");

        // Flight slice: the cycle-2 hop at router 0 is implicated (router 0
        // is the only active router, hence top-1).
        let mut buf = Vec::new();
        p.write_bundle_flight_jsonl(&mut buf, &first).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("{\"cycle\":2,"), "{text}");
        assert!(
            text.trim_end()
                .ends_with("{\"bundle_lo\":0,\"bundle_hi\":4,\"events\":1}"),
            "{text}"
        );

        // Heatmap slice: window 0 overlaps [0, 4]; window 8 (cycle 70) does
        // not appear.
        let mut buf = Vec::new();
        p.write_bundle_heatmap_csv(&mut buf, &first).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        assert!(text.contains("\n0,0,1,global,0,1,0,0"), "{text}");

        // Delay slice: the single packet folded before the first sample lands
        // inside the bundle range, so its component split shows up as the
        // window's delta.
        let mut buf = Vec::new();
        p.write_bundle_delay_csv(&mut buf, &first).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("component,packets,cycles\n"), "{text}");
        assert!(text.contains("injection_queue,1,1"), "{text}");
        assert!(text.contains("link_transit,1,2"), "{text}");
        assert!(text.contains("serialization,1,1"), "{text}");
        assert!(text.contains("detour,1,0"), "{text}");
    }
}
