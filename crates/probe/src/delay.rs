//! The delay-attribution ledger: exact (not sampled) per-packet latency
//! decomposition, folded on delivery.
//!
//! The engine stamps component boundaries on every packet as it moves through
//! the five-phase pipeline (see the "Delay attribution" section of
//! `docs/ARCHITECTURE.md` for the stamp points); when a tail phit is ejected
//! with the delay probe armed, the completed decomposition arrives here as a
//! [`DelaySample`] and is folded into per-component [`Histogram`]s scoped
//! network-wide, per class (minimal vs misrouted) and per workload job/phase.
//!
//! The cardinal invariant: the six components partition the packet's lifetime,
//! so their integer sum equals the delivered end-to-end latency exactly — no
//! residual bucket.  Violations are counted (never silently absorbed) and
//! pinned to zero by `tests/delay_conservation.rs`.
//!
//! Like every other probe instrument the ledger is preallocated at
//! construction, allocation-free on the fold path, and merges associatively
//! across shards (histograms, totals and cumulative series are all sums), so
//! sequential and sharded runs emit byte-identical `*_delay.*` files.

use dragonfly_stats::{Histogram, TimeSeries};

/// Number of delay components.
pub const DELAY_COMPONENTS: usize = 6;

/// Component names, in canonical (emission) order.
pub const DELAY_COMPONENT_NAMES: [&str; DELAY_COMPONENTS] = [
    "injection_queue",
    "vc_wait",
    "credit_wait",
    "link_transit",
    "detour",
    "serialization",
];

/// Job/phase tag of packets generated outside any workload job (mirrors the
/// engine's `UNTAGGED`; such packets fold into the class scopes only).
pub const DELAY_UNTAGGED: u16 = u16::MAX;

/// Largest component value the histograms resolve exactly (1-cycle bins);
/// larger values clamp into the overflow bin but still count exactly in the
/// `cycles` totals.
const DELAY_HIST_CYCLES: usize = 4096;

/// Bounded number of distinct (job, phase) scope slots; further keys are
/// dropped and counted.
const MAX_DELAY_SCOPES: usize = 32;

/// One delivered packet's completed decomposition, in
/// [`DELAY_COMPONENT_NAMES`] order.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelaySample {
    /// Per-component cycle counts.
    pub components: [u64; DELAY_COMPONENTS],
    /// True when the packet took any non-minimal hop (global or local).
    pub misrouted: bool,
    /// Workload job tag ([`DELAY_UNTAGGED`] outside workloads).
    pub job: u16,
    /// Job phase tag ([`DELAY_UNTAGGED`] outside workloads).
    pub phase: u16,
}

impl DelaySample {
    /// Integer sum of the components — must equal the end-to-end latency.
    #[inline]
    pub fn total(&self) -> u64 {
        self.components.iter().sum()
    }
}

/// Per-component histograms plus exact totals for one packet class.
#[derive(Debug, Clone)]
pub struct ClassLedger {
    /// Packets folded into this class.
    pub packets: u64,
    /// Exact per-component cycle totals.
    pub cycles: [u64; DELAY_COMPONENTS],
    /// Per-component latency histograms (1-cycle bins).
    pub hist: [Histogram; DELAY_COMPONENTS],
}

impl ClassLedger {
    fn new() -> Self {
        Self {
            packets: 0,
            cycles: [0; DELAY_COMPONENTS],
            hist: std::array::from_fn(|_| Histogram::new(1.0, DELAY_HIST_CYCLES)),
        }
    }

    #[inline]
    fn fold(&mut self, components: &[u64; DELAY_COMPONENTS]) {
        self.packets += 1;
        for (i, &c) in components.iter().enumerate() {
            self.cycles[i] += c;
            self.hist[i].record(c as f64);
        }
    }

    fn merge(&mut self, other: &ClassLedger) {
        self.packets += other.packets;
        for i in 0..DELAY_COMPONENTS {
            self.cycles[i] += other.cycles[i];
            self.hist[i].merge(&other.hist[i]);
        }
    }
}

/// Exact per-(job, phase) component totals (no histograms: the scope count is
/// bounded, and the totals stay exact integers through any merge).
#[derive(Debug, Clone, Copy)]
struct ScopeSlot {
    job: u16,
    phase: u16,
    packets: u64,
    cycles: [u64; DELAY_COMPONENTS],
}

/// One emitted row of the `*_delay.csv` / JSONL file set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayRow {
    /// Scope label: `net`, `minimal`, `misrouted`, or `job=J/phase=P`.
    pub scope: String,
    /// Component name (one of [`DELAY_COMPONENT_NAMES`]).
    pub component: &'static str,
    /// Packets folded into the scope.
    pub packets: u64,
    /// Exact total cycles of this component across those packets.
    pub cycles: u64,
    /// Percentiles in cycles (upper bin edges; `None` for job scopes, which
    /// keep exact totals only).
    pub p50: Option<u64>,
    /// 95th percentile.
    pub p95: Option<u64>,
    /// 99th percentile.
    pub p99: Option<u64>,
}

impl DelayRow {
    /// The row as a CSV line under [`DelayLedger::CSV_HEADER`].
    pub fn csv(&self) -> String {
        let cell = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_default();
        format!(
            "{},{},{},{},{},{},{}",
            self.scope,
            self.component,
            self.packets,
            self.cycles,
            cell(self.p50),
            cell(self.p95),
            cell(self.p99)
        )
    }

    /// The row as a JSON object (percentiles are `null` for job scopes).
    pub fn json(&self) -> String {
        let cell = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
        format!(
            "{{\"scope\":\"{}\",\"component\":\"{}\",\"packets\":{},\"cycles\":{},\
             \"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.scope,
            self.component,
            self.packets,
            self.cycles,
            cell(self.p50),
            cell(self.p95),
            cell(self.p99)
        )
    }
}

/// The per-partition delay ledger: class histograms, bounded job/phase
/// totals, and cumulative per-component time series for the trigger bundles.
#[derive(Debug, Clone)]
pub struct DelayLedger {
    minimal: ClassLedger,
    misrouted: ClassLedger,
    scopes: Vec<ScopeSlot>,
    scope_dropped: u64,
    folded: u64,
    violations: u64,
    series: [TimeSeries; DELAY_COMPONENTS],
    series_folded: TimeSeries,
}

impl DelayLedger {
    /// Header of the `*_delay.csv` emission.
    pub const CSV_HEADER: &'static str = "scope,component,packets,cycles,p50,p95,p99";

    /// Build a ledger sampling its cumulative series every `stride` cycles
    /// with at most `max_samples` points, all storage preallocated.
    pub fn new(stride: u64, max_samples: usize) -> Self {
        Self {
            minimal: ClassLedger::new(),
            misrouted: ClassLedger::new(),
            scopes: Vec::with_capacity(MAX_DELAY_SCOPES),
            scope_dropped: 0,
            folded: 0,
            violations: 0,
            series: std::array::from_fn(|_| TimeSeries::with_capacity(stride, max_samples)),
            series_folded: TimeSeries::with_capacity(stride, max_samples),
        }
    }

    /// Fold one delivered packet.  `latency` is the delivered end-to-end
    /// latency (`delivery cycle − generation cycle`); a component sum that
    /// differs from it is a conservation violation, counted here and pinned
    /// to zero by the test suite.
    #[inline]
    pub fn fold(&mut self, sample: &DelaySample, latency: u64) {
        self.folded += 1;
        if sample.total() != latency {
            self.violations += 1;
        }
        let class = if sample.misrouted {
            &mut self.misrouted
        } else {
            &mut self.minimal
        };
        class.fold(&sample.components);
        if sample.job != DELAY_UNTAGGED {
            self.fold_scope(sample);
        }
    }

    #[inline]
    fn fold_scope(&mut self, sample: &DelaySample) {
        if let Some(slot) = self
            .scopes
            .iter_mut()
            .find(|s| s.job == sample.job && s.phase == sample.phase)
        {
            slot.packets += 1;
            for (dst, src) in slot.cycles.iter_mut().zip(&sample.components) {
                *dst += src;
            }
        } else if self.scopes.len() < MAX_DELAY_SCOPES {
            self.scopes.push(ScopeSlot {
                job: sample.job,
                phase: sample.phase,
                packets: 1,
                cycles: sample.components,
            });
        } else {
            self.scope_dropped += 1;
        }
    }

    /// Take a cumulative time-series sample (the recorder calls this from its
    /// own accepted `sample` branch, so the delay series share the stride,
    /// capacity and drop policy of every other series).
    pub fn sample(&mut self) {
        let total: [u64; DELAY_COMPONENTS] =
            std::array::from_fn(|i| self.minimal.cycles[i] + self.misrouted.cycles[i]);
        for (series, cycles) in self.series.iter_mut().zip(total) {
            series.push(cycles as f64);
        }
        self.series_folded.push(self.folded as f64);
    }

    /// Packets folded so far.
    pub fn folded(&self) -> u64 {
        self.folded
    }

    /// Conservation violations observed (must stay zero).
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// (job, phase) keys dropped after the bounded scope table filled.
    pub fn scope_dropped(&self) -> u64 {
        self.scope_dropped
    }

    /// The minimal-class ledger.
    pub fn minimal(&self) -> &ClassLedger {
        &self.minimal
    }

    /// The misrouted-class ledger.
    pub fn misrouted(&self) -> &ClassLedger {
        &self.misrouted
    }

    /// Cumulative per-component cycle series, in canonical component order
    /// (one sample per recorder stride; used by the trigger bundles).
    pub fn series(&self) -> &[TimeSeries; DELAY_COMPONENTS] {
        &self.series
    }

    /// Cumulative folded-packet count series.
    pub fn series_folded(&self) -> &TimeSeries {
        &self.series_folded
    }

    /// Merge another partition's ledger (element-wise sums everywhere —
    /// commutative and associative, so the merged emission is independent of
    /// shard count and merge order).
    pub fn merge(&mut self, other: &DelayLedger) {
        self.minimal.merge(&other.minimal);
        self.misrouted.merge(&other.misrouted);
        for slot in &other.scopes {
            if let Some(dst) = self
                .scopes
                .iter_mut()
                .find(|s| s.job == slot.job && s.phase == slot.phase)
            {
                dst.packets += slot.packets;
                for (d, s) in dst.cycles.iter_mut().zip(&slot.cycles) {
                    *d += s;
                }
            } else if self.scopes.len() < MAX_DELAY_SCOPES {
                self.scopes.push(*slot);
            } else {
                self.scope_dropped += slot.packets;
            }
        }
        self.scope_dropped += other.scope_dropped;
        self.folded += other.folded;
        self.violations += other.violations;
        for (dst, src) in self.series.iter_mut().zip(&other.series) {
            dst.merge(src);
        }
        self.series_folded.merge(&other.series_folded);
    }

    /// The emitted rows in canonical order: `net`, `minimal`, `misrouted`
    /// (component percentiles from the histograms), then the job/phase scopes
    /// sorted by key (exact totals, empty percentile cells).  Zero-packet
    /// scopes are skipped.
    pub fn rows(&self) -> Vec<DelayRow> {
        let mut rows = Vec::new();
        let mut net = self.minimal.clone();
        net.merge(&self.misrouted);
        for (scope, class) in [
            ("net", &net),
            ("minimal", &self.minimal),
            ("misrouted", &self.misrouted),
        ] {
            if class.packets == 0 {
                continue;
            }
            for (i, &name) in DELAY_COMPONENT_NAMES.iter().enumerate() {
                // Percentiles land on exact 1-cycle upper bin edges, so the
                // u64 cast is lossless and deterministic.
                let pct = |q: f64| class.hist[i].percentile(q).map(|v| v as u64);
                rows.push(DelayRow {
                    scope: scope.to_string(),
                    component: name,
                    packets: class.packets,
                    cycles: class.cycles[i],
                    p50: pct(0.50),
                    p95: pct(0.95),
                    p99: pct(0.99),
                });
            }
        }
        let mut scopes: Vec<&ScopeSlot> = self.scopes.iter().collect();
        scopes.sort_by_key(|s| (s.job, s.phase));
        for slot in scopes {
            for (i, &name) in DELAY_COMPONENT_NAMES.iter().enumerate() {
                rows.push(DelayRow {
                    scope: format!("job={}/phase={}", slot.job, slot.phase),
                    component: name,
                    packets: slot.packets,
                    cycles: slot.cycles[i],
                    p50: None,
                    p95: None,
                    p99: None,
                });
            }
        }
        rows
    }

    /// The trailing JSONL metadata object.
    pub fn meta_json(&self) -> String {
        format!(
            "{{\"delay_folded\":{},\"conservation_violations\":{},\"scope_dropped\":{}}}",
            self.folded, self.violations, self.scope_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(components: [u64; DELAY_COMPONENTS], misrouted: bool) -> DelaySample {
        DelaySample {
            components,
            misrouted,
            job: DELAY_UNTAGGED,
            phase: DELAY_UNTAGGED,
        }
    }

    #[test]
    fn fold_routes_by_class_and_counts_conservation() {
        let mut ledger = DelayLedger::new(4, 8);
        let s = sample([1, 2, 3, 4, 0, 5], false);
        ledger.fold(&s, 15);
        let m = sample([0, 1, 0, 9, 7, 3], true);
        ledger.fold(&m, 20);
        assert_eq!(ledger.folded(), 2);
        assert_eq!(ledger.violations(), 0);
        assert_eq!(ledger.minimal().packets, 1);
        assert_eq!(ledger.misrouted().packets, 1);
        assert_eq!(ledger.minimal().cycles, [1, 2, 3, 4, 0, 5]);
        // A wrong latency is counted, never absorbed.
        ledger.fold(&s, 14);
        assert_eq!(ledger.violations(), 1);
    }

    #[test]
    fn rows_emit_net_then_classes_with_exact_percentiles() {
        let mut ledger = DelayLedger::new(4, 8);
        ledger.fold(&sample([10, 0, 0, 100, 0, 7], false), 117);
        ledger.fold(&sample([20, 0, 0, 100, 30, 7], true), 157);
        let rows = ledger.rows();
        // 3 scopes × 6 components.
        assert_eq!(rows.len(), 18);
        assert_eq!(rows[0].scope, "net");
        assert_eq!(rows[0].component, "injection_queue");
        assert_eq!(rows[0].packets, 2);
        assert_eq!(rows[0].cycles, 30);
        // 1-cycle bins: the p99 of {10, 20} is the upper edge of 20's bin.
        assert_eq!(rows[0].p99, Some(21));
        let detour_min = rows
            .iter()
            .find(|r| r.scope == "minimal" && r.component == "detour")
            .unwrap();
        assert_eq!(detour_min.cycles, 0, "minimal packets take no detour");
    }

    #[test]
    fn job_scopes_are_bounded_sorted_and_percentile_free() {
        let mut ledger = DelayLedger::new(4, 8);
        for job in (0..40u16).rev() {
            let mut s = sample([job as u64, 0, 0, 0, 0, 0], false);
            s.job = job;
            s.phase = 0;
            ledger.fold(&s, job as u64);
        }
        // Only the first MAX_DELAY_SCOPES distinct keys kept (jobs 39..8).
        assert_eq!(ledger.scope_dropped(), 8);
        let rows = ledger.rows();
        let job_rows: Vec<&DelayRow> = rows
            .iter()
            .filter(|r| r.scope.starts_with("job="))
            .collect();
        assert_eq!(job_rows.len(), 32 * DELAY_COMPONENTS);
        // Sorted by key, regardless of fold order.
        assert_eq!(job_rows[0].scope, "job=8/phase=0");
        assert!(job_rows[0].p50.is_none());
        assert!(job_rows[0].csv().ends_with(",,,"));
        assert!(job_rows[0].json().contains("\"p50\":null"));
    }

    #[test]
    fn merge_is_associative_and_order_independent() {
        let build = |packets: &[(u64, bool, u16)]| {
            let mut ledger = DelayLedger::new(4, 8);
            for &(c, mis, job) in packets {
                let mut s = sample([c, 0, 0, c, 0, 0], mis);
                s.job = job;
                s.phase = 1;
                ledger.fold(&s, 2 * c);
            }
            ledger.sample();
            ledger
        };
        let a = build(&[(3, false, 0), (5, true, 1)]);
        let b = build(&[(7, false, 0)]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.rows(), ba.rows());
        assert_eq!(ab.meta_json(), ba.meta_json());
        assert_eq!(ab.series()[0].samples(), ba.series()[0].samples());
        assert_eq!(ab.folded(), 3);
    }

    #[test]
    fn cumulative_series_track_folds() {
        let mut ledger = DelayLedger::new(4, 8);
        ledger.sample();
        ledger.fold(&sample([1, 0, 0, 2, 0, 0], false), 3);
        ledger.sample();
        assert_eq!(ledger.series_folded().samples(), &[0.0, 1.0]);
        assert_eq!(ledger.series()[0].samples(), &[0.0, 1.0]);
        assert_eq!(ledger.series()[3].samples(), &[0.0, 2.0]);
    }
}
