//! The packet flight recorder: deterministic sampling and per-hop events.

/// Event kind: the sampled packet was generated (entered its source queue).
pub const FLIGHT_INJECT: u8 = 0;
/// Event kind: the sampled packet won a route grant at a router.
pub const FLIGHT_HOP: u8 = 1;
/// Event kind: the sampled packet was delivered at its destination.
pub const FLIGHT_DELIVER: u8 = 2;

/// Sentinel for "not applicable" port/VC fields (emitted as `null`).
pub const NONE_U16: u16 = u16::MAX;

/// One recorded event in a sampled packet's flight.
///
/// Packets are keyed by `(src, gen_cycle)` rather than by their arena id: ids
/// are arena-local and rewritten when a packet crosses a shard boundary, while
/// the source node and generation cycle travel with the packet unchanged — so
/// the key (and therefore the sampling decision) is identical in sequential
/// and sharded runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Cycle the event happened at.
    pub cycle: u64,
    /// Generation cycle of the packet (half of the sampling key).
    pub gen_cycle: u64,
    /// Source node (the other half of the sampling key).
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Router the event happened at.
    pub router: u32,
    /// Output port granted ([`NONE_U16`] for inject/deliver events).
    pub port: u16,
    /// VC granted ([`NONE_U16`] when not applicable).
    pub vc: u16,
    /// [`FLIGHT_INJECT`], [`FLIGHT_HOP`] or [`FLIGHT_DELIVER`].
    pub kind: u8,
    /// Port class of a hop (the crate's `CLASS_*` constants; `u8::MAX` n/a).
    pub class: u8,
    /// `0` = minimal grant, `1` = non-minimal (misroute decision), `2` = n/a.
    pub nonminimal: u8,
}

impl FlightEvent {
    /// Canonical sort key: a total order over the deterministic event multiset,
    /// independent of the (engine-dependent) order events were recorded in.
    pub fn sort_key(&self) -> (u64, u8, u32, u64, u32, u16, u16, u32, u8) {
        (
            self.cycle,
            self.kind,
            self.src,
            self.gen_cycle,
            self.router,
            self.port,
            self.vc,
            self.dst,
            self.nonminimal,
        )
    }
}

/// Pure 64-bit mix of the packet key (SplitMix64 finalizer): the sampling
/// decision `flight_hash(src, gen) % N == 0` picks an unbiased ~1/N packet
/// subset without touching any RNG stream.
#[inline]
pub fn flight_hash(src: u32, gen_cycle: u64) -> u64 {
    let mut x = (u64::from(src) << 40) ^ gen_cycle ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(flight_hash(7, 123), flight_hash(7, 123));
        assert_ne!(flight_hash(7, 123), flight_hash(8, 123));
        assert_ne!(flight_hash(7, 123), flight_hash(7, 124));
        // Roughly 1/N of keys selected for a few divisors.
        for n in [8u64, 64] {
            let hits = (0..10_000u64)
                .filter(|&g| flight_hash((g % 97) as u32, g).is_multiple_of(n))
                .count() as f64;
            let expect = 10_000.0 / n as f64;
            assert!(
                (hits - expect).abs() < expect * 0.5,
                "divisor {n}: {hits} hits, expected ~{expect}"
            );
        }
    }

    #[test]
    fn sort_key_orders_by_cycle_then_kind() {
        let mut e1 = FlightEvent {
            cycle: 5,
            gen_cycle: 1,
            src: 0,
            dst: 9,
            router: 2,
            port: NONE_U16,
            vc: NONE_U16,
            kind: FLIGHT_DELIVER,
            class: u8::MAX,
            nonminimal: 2,
        };
        let e2 = FlightEvent {
            kind: FLIGHT_HOP,
            ..e1
        };
        assert!(e2.sort_key() < e1.sort_key());
        e1.cycle = 4;
        assert!(e1.sort_key() < e2.sort_key());
    }
}
