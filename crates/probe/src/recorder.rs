//! The probe recorder: preallocated storage plus the hot-path record methods.

use crate::config::ProbeConfig;
use crate::delay::{DelayLedger, DelaySample};
use crate::detect::{DetectorBank, DetectorSample, TripRecord};
use crate::flight::{flight_hash, FlightEvent};
use dragonfly_stats::TimeSeries;

/// Link class: a local (intra-group) channel.
pub const CLASS_LOCAL: u8 = 0;
/// Link class: a global (inter-group) channel.
pub const CLASS_GLOBAL: u8 = 1;
/// Link class: a terminal (injection/ejection) channel.
pub const CLASS_TERMINAL: u8 = 2;

/// Human-readable name of a `CLASS_*` value.
pub(crate) fn class_name(class: u8) -> &'static str {
    match class {
        CLASS_LOCAL => "local",
        CLASS_GLOBAL => "global",
        CLASS_TERMINAL => "terminal",
        _ => "n/a",
    }
}

/// Static geometry of the probed network, fixed at installation.
///
/// Links are identified by their transmit side: `li = router * ports + port`.
/// The engine building the dims also classifies every link (`link_class`), so
/// the recorder itself needs no topology knowledge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeDims {
    /// Routers in the network.
    pub routers: usize,
    /// Ports per router (all classes).
    pub ports: usize,
    /// Maximum VCs on any port.
    pub vcs: usize,
    /// `CLASS_*` of each link, indexed by `li` (length `routers * ports`).
    pub link_class: Vec<u8>,
}

impl ProbeDims {
    /// Number of links (`routers * ports`).
    #[inline]
    pub fn links(&self) -> usize {
        self.routers * self.ports
    }
}

/// Values the engine snapshots at each sample point — quantities the recorder
/// cannot derive from its own counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleSnapshot {
    /// Phits currently buffered in input VCs (this engine partition).
    pub buffered_phits: u64,
    /// Piggybacking global-channel congested flags currently set.
    pub pb_congested: u64,
    /// Packet-arena growths beyond the preallocation so far (diagnostic).
    pub arena_grows: u64,
    /// Highest occupancy any link phit ring has reached (diagnostic).
    pub phit_ring_high_water: u64,
    /// Highest occupancy any link credit ring has reached (diagnostic).
    pub credit_ring_high_water: u64,
    /// Links in this engine partition's active set at the sample point
    /// (diagnostic; sums across shards, where boundary links count once per
    /// shard that keeps them lit).
    pub active_links: u64,
    /// Routers in this engine partition's active set at the sample point
    /// (diagnostic).
    pub active_routers: u64,
}

/// The network-wide deterministic time series, one [`TimeSeries`] per counter.
///
/// All values are exact cumulative counts stored as `f64` (lossless below
/// 2^53), so per-shard series merge by element-wise addition.
#[derive(Debug, Clone)]
pub struct SeriesSet {
    /// Packets generated.
    pub injected: TimeSeries,
    /// Packets delivered.
    pub delivered: TimeSeries,
    /// Route grants that took a non-minimal global hop (the OLM/RLM/PB
    /// threshold comparison crossed in favour of misrouting).
    pub global_misroute_decisions: TimeSeries,
    /// Route grants that took a non-minimal local hop.
    pub local_misroute_decisions: TimeSeries,
    /// Phits buffered in input VCs at the sample point.
    pub buffered_phits: TimeSeries,
    /// Piggybacking congested flags set at the sample point.
    pub pb_congested: TimeSeries,
    /// Phits sent on local links.
    pub link_local_phits: TimeSeries,
    /// Phits sent on global links.
    pub link_global_phits: TimeSeries,
    /// Phits sent on terminal links.
    pub link_terminal_phits: TimeSeries,
}

impl SeriesSet {
    fn new(stride: u64, capacity: usize) -> Self {
        let mk = || TimeSeries::with_capacity(stride, capacity);
        Self {
            injected: mk(),
            delivered: mk(),
            global_misroute_decisions: mk(),
            local_misroute_decisions: mk(),
            buffered_phits: mk(),
            pb_congested: mk(),
            link_local_phits: mk(),
            link_global_phits: mk(),
            link_terminal_phits: mk(),
        }
    }

    /// `(column name, series)` pairs in emission order.
    pub fn columns(&self) -> [(&'static str, &TimeSeries); 9] {
        [
            ("injected", &self.injected),
            ("delivered", &self.delivered),
            ("global_misroute_decisions", &self.global_misroute_decisions),
            ("local_misroute_decisions", &self.local_misroute_decisions),
            ("buffered_phits", &self.buffered_phits),
            ("pb_congested", &self.pb_congested),
            ("link_local_phits", &self.link_local_phits),
            ("link_global_phits", &self.link_global_phits),
            ("link_terminal_phits", &self.link_terminal_phits),
        ]
    }

    fn merge(&mut self, other: &SeriesSet) {
        self.injected.merge(&other.injected);
        self.delivered.merge(&other.delivered);
        self.global_misroute_decisions
            .merge(&other.global_misroute_decisions);
        self.local_misroute_decisions
            .merge(&other.local_misroute_decisions);
        self.buffered_phits.merge(&other.buffered_phits);
        self.pb_congested.merge(&other.pb_congested);
        self.link_local_phits.merge(&other.link_local_phits);
        self.link_global_phits.merge(&other.link_global_phits);
        self.link_terminal_phits.merge(&other.link_terminal_phits);
    }
}

/// Engine-dependent diagnostic series: memory counters whose values
/// legitimately differ between the sequential and sharded engines (each shard
/// has its own arena and drains its boundary rings every cycle).  Emitted to a
/// separate file excluded from the byte-identity guarantee.
#[derive(Debug, Clone)]
pub struct DiagSeries {
    /// Packet-arena growths beyond the preallocation (summed across shards).
    pub arena_grows: TimeSeries,
    /// Maximum link phit-ring occupancy (maxed across shards).
    pub phit_ring_high_water: TimeSeries,
    /// Maximum link credit-ring occupancy (maxed across shards).
    pub credit_ring_high_water: TimeSeries,
    /// Active-set link population (summed across shards).
    pub active_links: TimeSeries,
    /// Active-set router population (summed across shards).
    pub active_routers: TimeSeries,
}

impl DiagSeries {
    fn new(stride: u64, capacity: usize) -> Self {
        let mk = || TimeSeries::with_capacity(stride, capacity);
        Self {
            arena_grows: mk(),
            phit_ring_high_water: mk(),
            credit_ring_high_water: mk(),
            active_links: mk(),
            active_routers: mk(),
        }
    }

    /// `(column name, series)` pairs in emission order.
    pub fn columns(&self) -> [(&'static str, &TimeSeries); 5] {
        [
            ("arena_grows", &self.arena_grows),
            ("phit_ring_high_water", &self.phit_ring_high_water),
            ("credit_ring_high_water", &self.credit_ring_high_water),
            ("active_links", &self.active_links),
            ("active_routers", &self.active_routers),
        ]
    }

    fn merge(&mut self, other: &DiagSeries) {
        // Growth and population counts add; high-water marks take the maximum.
        self.arena_grows.merge(&other.arena_grows);
        merge_max(&mut self.phit_ring_high_water, &other.phit_ring_high_water);
        merge_max(
            &mut self.credit_ring_high_water,
            &other.credit_ring_high_water,
        );
        self.active_links.merge(&other.active_links);
        self.active_routers.merge(&other.active_routers);
    }
}

/// Element-wise maximum of two series (same merge contract as
/// [`TimeSeries::merge`] but for high-water marks).
fn merge_max(dst: &mut TimeSeries, src: &TimeSeries) {
    assert_eq!(dst.period(), src.period());
    let extra: Vec<f64> = src.samples().iter().skip(dst.len()).copied().collect();
    let n = dst.len().min(src.len());
    // TimeSeries exposes no mutable sample access by design; rebuild the
    // prefix via merge-with-delta: max(a, b) = a + max(0, b - a).
    let deltas: Vec<f64> = (0..n)
        .map(|i| (src.samples()[i] - dst.samples()[i]).max(0.0))
        .collect();
    let mut delta_series = TimeSeries::new(dst.period());
    for d in deltas {
        delta_series.push(d);
    }
    for e in extra {
        delta_series.push(e);
    }
    dst.merge(&delta_series);
}

/// The probe state of one engine partition: all storage preallocated at
/// construction, all record methods allocation-free.
#[derive(Debug, Clone)]
pub struct ProbeRecorder {
    pub(crate) cfg: ProbeConfig,
    pub(crate) dims: ProbeDims,

    // Cumulative hot counters.
    pub(crate) injected_total: u64,
    pub(crate) delivered_total: u64,
    pub(crate) global_mis_total: u64,
    pub(crate) local_mis_total: u64,
    pub(crate) router_injected: Vec<u64>,
    pub(crate) router_delivered: Vec<u64>,
    pub(crate) router_misrouted: Vec<u64>,

    // Sampled series.
    pub(crate) series: SeriesSet,
    pub(crate) diag: DiagSeries,
    pub(crate) router_injected_series: Vec<TimeSeries>,
    pub(crate) router_delivered_series: Vec<TimeSeries>,
    pub(crate) router_misrouted_series: Vec<TimeSeries>,
    pub(crate) samples: usize,
    pub(crate) samples_dropped: u64,

    // Flight recorder.
    pub(crate) flight: Vec<FlightEvent>,
    pub(crate) flight_dropped: u64,

    // Heatmaps, window-major: `(w * links + li) * vcs + vc`.
    pub(crate) heat_phits: Vec<u32>,
    pub(crate) heat_stalls: Vec<u32>,
    pub(crate) heat_occupancy: Vec<u32>,
    pub(crate) heat_windows: usize,
    pub(crate) heat_dropped: u64,

    // Delay-attribution ledger (`None` when `cfg.delay` is off).
    pub(crate) ledger: Option<DelayLedger>,

    // Online detector bank (`None` when `cfg.detect` is off).
    pub(crate) detect: Option<DetectorBank>,
    // True on the replicas of a sharded engine: shard-local counter streams
    // are meaningless to the network-wide detectors, so online stepping is
    // skipped and [`Self::merge`] recomputes the verdicts by replaying the
    // merged series instead.
    pub(crate) detect_deferred: bool,
}

impl ProbeRecorder {
    /// Build a recorder for a network of the given dimensions, reserving all
    /// storage up front.
    pub fn new(cfg: ProbeConfig, dims: ProbeDims) -> Self {
        cfg.validate();
        assert_eq!(
            dims.link_class.len(),
            dims.links(),
            "link_class must cover every link"
        );
        let routers = dims.routers;
        let heat_cells = if cfg.heatmap_enabled() {
            cfg.max_windows * dims.links() * dims.vcs
        } else {
            0
        };
        let per_router_series = |enabled: bool| {
            if enabled {
                (0..routers)
                    .map(|_| TimeSeries::with_capacity(cfg.stride, cfg.max_samples))
                    .collect()
            } else {
                Vec::new()
            }
        };
        let mut flight = Vec::new();
        flight.reserve_exact(if cfg.flight_enabled() {
            cfg.flight_capacity
        } else {
            0
        });
        Self {
            series: SeriesSet::new(cfg.stride, cfg.max_samples),
            diag: DiagSeries::new(cfg.stride, cfg.max_samples),
            router_injected_series: per_router_series(cfg.top_k > 0),
            router_delivered_series: per_router_series(cfg.top_k > 0),
            router_misrouted_series: per_router_series(cfg.top_k > 0),
            router_injected: vec![0; routers],
            router_delivered: vec![0; routers],
            router_misrouted: vec![0; routers],
            injected_total: 0,
            delivered_total: 0,
            global_mis_total: 0,
            local_mis_total: 0,
            samples: 0,
            samples_dropped: 0,
            flight,
            flight_dropped: 0,
            heat_phits: vec![0; heat_cells],
            heat_stalls: vec![0; heat_cells],
            heat_occupancy: vec![0; heat_cells],
            heat_windows: 0,
            heat_dropped: 0,
            ledger: cfg
                .delay_enabled()
                .then(|| DelayLedger::new(cfg.stride, cfg.max_samples)),
            detect: cfg.detect.enabled().then(|| {
                // The fairness-skew detector replays over the per-router
                // series, so it arms only when those are recorded.
                DetectorBank::new(&cfg.detect, if cfg.top_k > 0 { routers } else { 0 })
            }),
            detect_deferred: false,
            cfg,
            dims,
        }
    }

    /// The configuration the recorder was built with.
    pub fn config(&self) -> &ProbeConfig {
        &self.cfg
    }

    /// The network dimensions the recorder was built for.
    pub fn dims(&self) -> &ProbeDims {
        &self.dims
    }

    /// Sampling stride in cycles.
    #[inline]
    pub fn stride(&self) -> u64 {
        self.cfg.stride
    }

    /// True when the heatmap instrument is active (lets the engine skip its
    /// occupancy scan entirely).
    #[inline]
    pub fn heatmap_enabled(&self) -> bool {
        self.cfg.heatmap_enabled()
    }

    /// True when the delay ledger folds deliveries (lets the engine skip the
    /// sample assembly entirely).
    #[inline]
    pub fn delay_enabled(&self) -> bool {
        self.ledger.is_some()
    }

    /// Fold one delivered packet's delay decomposition into the ledger
    /// (no-op when the delay probe is off).  `latency` is the delivered
    /// end-to-end latency the components must sum to.
    #[inline]
    pub fn record_delay(&mut self, sample: &DelaySample, latency: u64) {
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.fold(sample, latency);
        }
    }

    /// The delay ledger, when armed.
    pub fn delay_ledger(&self) -> Option<&DelayLedger> {
        self.ledger.as_ref()
    }

    /// Deterministic flight-sampling decision for a packet key.
    #[inline]
    pub fn flight_sampled(&self, src: u32, gen_cycle: u64) -> bool {
        self.cfg.flight_every > 0
            && flight_hash(src, gen_cycle).is_multiple_of(self.cfg.flight_every)
    }

    /// Record a packet generation at `router`.
    #[inline]
    pub fn record_injected(&mut self, router: usize) {
        self.injected_total += 1;
        self.router_injected[router] += 1;
    }

    /// Record a packet delivery at `router`.
    #[inline]
    pub fn record_delivered(&mut self, router: usize) {
        self.delivered_total += 1;
        self.router_delivered[router] += 1;
    }

    /// Record a route grant at `router` and whether it was a misroute
    /// decision (the adaptive mechanism's threshold comparison crossing in
    /// favour of a non-minimal hop).
    #[inline]
    pub fn record_grant(&mut self, router: usize, global_misroute: bool, local_misroute: bool) {
        if global_misroute {
            self.global_mis_total += 1;
            self.router_misrouted[router] += 1;
        }
        if local_misroute {
            self.local_mis_total += 1;
            self.router_misrouted[router] += 1;
        }
    }

    /// Append a flight event for a packet that passed [`Self::flight_sampled`];
    /// drops (and counts) once the ring is full.
    #[inline]
    pub fn record_flight(&mut self, event: FlightEvent) {
        if self.flight.len() < self.cfg.flight_capacity {
            self.flight.push(event);
        } else {
            self.flight_dropped += 1;
        }
    }

    /// Heatmap cell index for `(cycle, li, vc)`, or `None` when the window is
    /// beyond the configured cap (counted as dropped).
    #[inline]
    fn heat_cell(&mut self, cycle: u64, li: usize, vc: usize) -> Option<usize> {
        let w = (cycle / self.cfg.heatmap_window) as usize;
        if w >= self.cfg.max_windows {
            self.heat_dropped += 1;
            return None;
        }
        if w >= self.heat_windows {
            self.heat_windows = w + 1;
        }
        Some((w * self.dims.links() + li) * self.dims.vcs + vc)
    }

    /// Record one phit sent on link `li`, VC `vc`.
    #[inline]
    pub fn record_link_phit(&mut self, cycle: u64, li: usize, vc: usize) {
        if !self.cfg.heatmap_enabled() {
            return;
        }
        if let Some(cell) = self.heat_cell(cycle, li, vc) {
            self.heat_phits[cell] += 1;
        }
    }

    /// Record one cycle in which `(li, vc)` held a granted packet but could
    /// not advance for lack of downstream credits.
    #[inline]
    pub fn record_credit_stall(&mut self, cycle: u64, li: usize, vc: usize) {
        if !self.cfg.heatmap_enabled() {
            return;
        }
        if let Some(cell) = self.heat_cell(cycle, li, vc) {
            self.heat_stalls[cell] += 1;
        }
    }

    /// Accumulate a sampled occupancy (phits buffered at the receive side of
    /// link `li`, VC `vc`) into the current window.
    #[inline]
    pub fn add_occupancy(&mut self, cycle: u64, li: usize, vc: usize, phits: u32) {
        if !self.cfg.heatmap_enabled() || phits == 0 {
            return;
        }
        if let Some(cell) = self.heat_cell(cycle, li, vc) {
            self.heat_occupancy[cell] += phits;
        }
    }

    /// Take a time-series sample at `cycle` (the engine calls this every
    /// `stride` cycles, after its per-cycle bookkeeping).  `link_phits` is the
    /// engine's cumulative per-link phit counter, classified via
    /// [`ProbeDims::link_class`].
    pub fn sample(&mut self, _cycle: u64, link_phits: &[u64], snap: SampleSnapshot) {
        if self.samples >= self.cfg.max_samples {
            self.samples_dropped += 1;
            return;
        }
        self.samples += 1;
        let mut by_class = [0u64; 3];
        for (li, &phits) in link_phits.iter().enumerate() {
            by_class[self.dims.link_class[li] as usize] += phits;
        }
        self.series.injected.push(self.injected_total as f64);
        self.series.delivered.push(self.delivered_total as f64);
        self.series
            .global_misroute_decisions
            .push(self.global_mis_total as f64);
        self.series
            .local_misroute_decisions
            .push(self.local_mis_total as f64);
        self.series.buffered_phits.push(snap.buffered_phits as f64);
        self.series.pb_congested.push(snap.pb_congested as f64);
        self.series
            .link_local_phits
            .push(by_class[CLASS_LOCAL as usize] as f64);
        self.series
            .link_global_phits
            .push(by_class[CLASS_GLOBAL as usize] as f64);
        self.series
            .link_terminal_phits
            .push(by_class[CLASS_TERMINAL as usize] as f64);
        self.diag.arena_grows.push(snap.arena_grows as f64);
        self.diag
            .phit_ring_high_water
            .push(snap.phit_ring_high_water as f64);
        self.diag
            .credit_ring_high_water
            .push(snap.credit_ring_high_water as f64);
        self.diag.active_links.push(snap.active_links as f64);
        self.diag.active_routers.push(snap.active_routers as f64);
        if self.cfg.top_k > 0 {
            for r in 0..self.dims.routers {
                self.router_injected_series[r].push(self.router_injected[r] as f64);
                self.router_delivered_series[r].push(self.router_delivered[r] as f64);
                self.router_misrouted_series[r].push(self.router_misrouted[r] as f64);
            }
        }
        if let Some(ledger) = self.ledger.as_mut() {
            ledger.sample();
        }
        // Step the detector bank on exactly the values this sample recorded,
        // indexed by the sample's canonical cycle — the same stream a replay
        // over the series reconstructs.
        if !self.detect_deferred {
            if let Some(bank) = self.detect.as_mut() {
                bank.step(DetectorSample {
                    cycle: self.series.injected.cycle_of(self.samples - 1),
                    injected: self.injected_total,
                    delivered: self.delivered_total,
                    global_misroutes: self.global_mis_total,
                    local_misroutes: self.local_mis_total,
                    buffered_phits: snap.buffered_phits,
                    router_delivered: (self.cfg.top_k > 0).then_some(&self.router_delivered[..]),
                });
            }
        }
    }

    /// Number of time-series samples recorded.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The network-wide deterministic series.
    pub fn series(&self) -> &SeriesSet {
        &self.series
    }

    /// The engine-dependent diagnostic series.
    pub fn diag(&self) -> &DiagSeries {
        &self.diag
    }

    /// Recorded flight events, in recording order (use
    /// [`Self::sorted_flight`] for the canonical order).
    pub fn flight_events(&self) -> &[FlightEvent] {
        &self.flight
    }

    /// Flight events dropped after the ring filled.
    pub fn flight_dropped(&self) -> u64 {
        self.flight_dropped
    }

    /// Flight events in the canonical total order (identical for sequential
    /// and sharded runs of the same spec).
    pub fn sorted_flight(&self) -> Vec<FlightEvent> {
        let mut events = self.flight.clone();
        events.sort_by_key(FlightEvent::sort_key);
        events
    }

    /// Heatmap windows recorded (capped at the configured maximum).
    pub fn heat_windows(&self) -> usize {
        self.heat_windows
    }

    /// Top-`k` routers by total recorded activity (injected + delivered +
    /// misrouted), ties broken towards the lower router id.  Deterministic,
    /// and shard-invariant once recorders are merged.
    pub fn top_routers(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.dims.routers).collect();
        order.sort_by_key(|&r| {
            (
                u64::MAX
                    - (self.router_injected[r]
                        + self.router_delivered[r]
                        + self.router_misrouted[r]),
                r,
            )
        });
        order.truncate(k);
        order
    }

    /// Detector verdicts recorded so far (empty when detectors are off, and
    /// on the replicas of a sharded engine until [`Self::merge`] replays the
    /// merged series).
    pub fn trips(&self) -> &[TripRecord] {
        self.detect.as_ref().map_or(&[], DetectorBank::trips)
    }

    /// Detector verdicts dropped after the bounded trip list filled.
    pub fn trips_dropped(&self) -> u64 {
        self.detect.as_ref().map_or(0, DetectorBank::trips_dropped)
    }

    /// Skip online detector stepping on this recorder (sharded engines call
    /// this on every replica: shard-local streams carry partial counts, so
    /// the verdicts are recomputed from the merged series instead).
    pub fn defer_detection(&mut self) {
        self.detect_deferred = true;
    }

    /// Recompute the detector verdicts by replaying the bank over the
    /// recorded series.  Because the bank is a pure function of the sample
    /// stream and merged series are byte-identical to sequential series, the
    /// replayed trips equal the online trips of an equivalent sequential run
    /// (pinned by `online_and_replayed_trips_agree` below).
    pub fn replay_detectors(&mut self) {
        if self.detect.take().is_none() {
            return;
        }
        let mut bank = DetectorBank::new(
            &self.cfg.detect,
            if self.cfg.top_k > 0 {
                self.dims.routers
            } else {
                0
            },
        );
        let mut router_scratch = vec![0u64; self.router_delivered_series.len()];
        let per_router = !self.router_delivered_series.is_empty();
        for i in 0..self.samples {
            for (r, series) in self.router_delivered_series.iter().enumerate() {
                router_scratch[r] = series.samples()[i] as u64;
            }
            bank.step(DetectorSample {
                cycle: self.series.injected.cycle_of(i),
                injected: self.series.injected.samples()[i] as u64,
                delivered: self.series.delivered.samples()[i] as u64,
                global_misroutes: self.series.global_misroute_decisions.samples()[i] as u64,
                local_misroutes: self.series.local_misroute_decisions.samples()[i] as u64,
                buffered_phits: self.series.buffered_phits.samples()[i] as u64,
                router_delivered: per_router.then_some(&router_scratch[..]),
            });
        }
        self.detect_deferred = false;
        self.detect = Some(bank);
    }

    /// Merge another partition's recorder into this one (element-wise sums,
    /// plus maxima for the diagnostic high-water marks).  Commutative and
    /// associative, so the result is independent of shard count and merge
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when the two recorders were built with different configurations
    /// or for different network dimensions.
    pub fn merge(&mut self, other: &ProbeRecorder) {
        assert_eq!(
            self.cfg, other.cfg,
            "cannot merge differently-configured probes"
        );
        assert_eq!(
            self.dims, other.dims,
            "cannot merge probes of different networks"
        );
        self.injected_total += other.injected_total;
        self.delivered_total += other.delivered_total;
        self.global_mis_total += other.global_mis_total;
        self.local_mis_total += other.local_mis_total;
        for (dst, src) in self.router_injected.iter_mut().zip(&other.router_injected) {
            *dst += src;
        }
        for (dst, src) in self
            .router_delivered
            .iter_mut()
            .zip(&other.router_delivered)
        {
            *dst += src;
        }
        for (dst, src) in self
            .router_misrouted
            .iter_mut()
            .zip(&other.router_misrouted)
        {
            *dst += src;
        }
        self.series.merge(&other.series);
        self.diag.merge(&other.diag);
        for (dst, src) in self
            .router_injected_series
            .iter_mut()
            .zip(&other.router_injected_series)
        {
            dst.merge(src);
        }
        for (dst, src) in self
            .router_delivered_series
            .iter_mut()
            .zip(&other.router_delivered_series)
        {
            dst.merge(src);
        }
        for (dst, src) in self
            .router_misrouted_series
            .iter_mut()
            .zip(&other.router_misrouted_series)
        {
            dst.merge(src);
        }
        self.samples = self.samples.max(other.samples);
        self.samples_dropped += other.samples_dropped;
        self.flight.extend_from_slice(&other.flight);
        self.flight_dropped += other.flight_dropped;
        for (dst, src) in self.heat_phits.iter_mut().zip(&other.heat_phits) {
            *dst += src;
        }
        for (dst, src) in self.heat_stalls.iter_mut().zip(&other.heat_stalls) {
            *dst += src;
        }
        for (dst, src) in self.heat_occupancy.iter_mut().zip(&other.heat_occupancy) {
            *dst += src;
        }
        self.heat_windows = self.heat_windows.max(other.heat_windows);
        self.heat_dropped += other.heat_dropped;
        if let (Some(dst), Some(src)) = (self.ledger.as_mut(), other.ledger.as_ref()) {
            dst.merge(src);
        }
        // Detector verdicts are not summable — they are a nonlinear function
        // of the global stream — so the merged recorder recomputes them from
        // the merged series, which this merge just made byte-identical to the
        // sequential stream.
        self.replay_detectors();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FLIGHT_HOP;

    fn dims() -> ProbeDims {
        // 2 routers × 3 ports: port 0 local, port 1 global, port 2 terminal.
        ProbeDims {
            routers: 2,
            ports: 3,
            vcs: 2,
            link_class: vec![
                CLASS_LOCAL,
                CLASS_GLOBAL,
                CLASS_TERMINAL,
                CLASS_LOCAL,
                CLASS_GLOBAL,
                CLASS_TERMINAL,
            ],
        }
    }

    fn cfg() -> ProbeConfig {
        ProbeConfig {
            stride: 4,
            max_samples: 8,
            top_k: 1,
            flight_every: 1,
            flight_capacity: 4,
            heatmap_window: 8,
            max_windows: 2,
            ..ProbeConfig::default()
        }
    }

    fn hop(cycle: u64, src: u32) -> FlightEvent {
        FlightEvent {
            cycle,
            gen_cycle: 0,
            src,
            dst: 1,
            router: 0,
            port: 1,
            vc: 0,
            kind: FLIGHT_HOP,
            class: CLASS_GLOBAL,
            nonminimal: 0,
        }
    }

    #[test]
    fn counters_series_and_class_sums() {
        let mut p = ProbeRecorder::new(cfg(), dims());
        p.record_injected(0);
        p.record_injected(0);
        p.record_delivered(1);
        p.record_grant(0, true, false);
        p.record_grant(1, false, true);
        let link_phits = [5u64, 7, 1, 0, 2, 3];
        p.sample(0, &link_phits, SampleSnapshot::default());
        assert_eq!(p.samples(), 1);
        assert_eq!(p.series().injected.samples(), &[2.0]);
        assert_eq!(p.series().delivered.samples(), &[1.0]);
        assert_eq!(p.series().global_misroute_decisions.samples(), &[1.0]);
        assert_eq!(p.series().local_misroute_decisions.samples(), &[1.0]);
        assert_eq!(p.series().link_local_phits.samples(), &[5.0]);
        assert_eq!(p.series().link_global_phits.samples(), &[9.0]);
        assert_eq!(p.series().link_terminal_phits.samples(), &[4.0]);
        // Router 0 saw 2 injections + 1 misroute; router 1 saw 1 delivery + 1.
        assert_eq!(p.top_routers(2), vec![0, 1]);
    }

    #[test]
    fn sample_cap_drops_instead_of_growing() {
        let mut p = ProbeRecorder::new(cfg(), dims());
        for i in 0..12u64 {
            p.sample(i * 4, &[0; 6], SampleSnapshot::default());
        }
        assert_eq!(p.samples(), 8);
        assert_eq!(p.samples_dropped, 4);
    }

    #[test]
    fn flight_ring_caps_and_sorts_canonically() {
        let mut p = ProbeRecorder::new(cfg(), dims());
        for i in (0..6u64).rev() {
            p.record_flight(hop(i, i as u32));
        }
        assert_eq!(p.flight_events().len(), 4);
        assert_eq!(p.flight_dropped(), 2);
        let sorted = p.sorted_flight();
        for w in sorted.windows(2) {
            assert!(w[0].sort_key() <= w[1].sort_key());
        }
    }

    #[test]
    fn heatmap_windows_cap_and_index() {
        let mut p = ProbeRecorder::new(cfg(), dims());
        p.record_link_phit(0, 1, 0); // window 0
        p.record_link_phit(9, 1, 0); // window 1
        p.record_credit_stall(9, 1, 1);
        p.add_occupancy(9, 1, 1, 3);
        p.record_link_phit(99, 1, 0); // beyond max_windows → dropped
        assert_eq!(p.heat_windows(), 2);
        assert_eq!(p.heat_dropped, 1);
        // (window 0, link 1, vc 0) — window 0's block starts at index 0.
        assert_eq!(p.heat_phits[2], 1);
        assert_eq!(p.heat_phits[(6 + 1) * 2], 1);
        assert_eq!(p.heat_stalls[(6 + 1) * 2 + 1], 1);
        assert_eq!(p.heat_occupancy[(6 + 1) * 2 + 1], 3);
    }

    #[test]
    fn merge_is_order_independent() {
        let build = |spread: &[(usize, u64)]| {
            let mut p = ProbeRecorder::new(cfg(), dims());
            for &(r, c) in spread {
                p.record_injected(r);
                p.record_flight(hop(c, r as u32));
                p.record_link_phit(c, r, 0);
            }
            p.sample(0, &[1, 0, 0, 0, 0, 0], SampleSnapshot::default());
            p
        };
        let a = build(&[(0, 3), (1, 1)]);
        let b = build(&[(1, 2)]);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.injected_total, 3);
        assert_eq!(ab.injected_total, ba.injected_total);
        assert_eq!(
            ab.series().injected.samples(),
            ba.series().injected.samples()
        );
        assert_eq!(ab.sorted_flight(), ba.sorted_flight());
        assert_eq!(ab.heat_phits, ba.heat_phits);
        assert_eq!(ab.router_injected, ba.router_injected);
    }

    #[test]
    fn flight_sampling_is_a_pure_function_of_the_key() {
        let p = ProbeRecorder::new(
            ProbeConfig {
                flight_every: 8,
                ..cfg()
            },
            dims(),
        );
        for src in 0..64u32 {
            for gen in 0..16u64 {
                assert_eq!(p.flight_sampled(src, gen), p.flight_sampled(src, gen));
            }
        }
        let hits = (0..1000u32).filter(|&s| p.flight_sampled(s, 5)).count();
        assert!(hits > 60 && hits < 250, "{hits} of 1000 sampled at 1/8");
    }

    #[test]
    fn online_and_replayed_trips_agree() {
        let mut p = ProbeRecorder::new(
            ProbeConfig {
                detect: crate::detect::DetectorConfig {
                    window: 2,
                    min_window_injected: 4,
                    ..crate::detect::DetectorConfig::armed()
                },
                ..cfg()
            },
            dims(),
        );
        // Inject without delivering: throughput collapse plus a credit stall
        // (buffered phits, flat deliveries) fire online.
        for i in 0..8u64 {
            for _ in 0..3 {
                p.record_injected((i % 2) as usize);
            }
            p.sample(
                i * 4,
                &[0; 6],
                SampleSnapshot {
                    buffered_phits: 10,
                    ..SampleSnapshot::default()
                },
            );
        }
        let online = p.trips().to_vec();
        assert!(!online.is_empty(), "scenario must trip at least once");
        p.replay_detectors();
        assert_eq!(p.trips(), &online[..], "replay must equal online verdicts");

        // A deferred replica records nothing until merge-time replay.
        let mut deferred = ProbeRecorder::new(p.cfg.clone(), dims());
        deferred.defer_detection();
        deferred.sample(0, &[0; 6], SampleSnapshot::default());
        assert!(deferred.trips().is_empty());
    }

    #[test]
    fn diag_high_water_merges_by_max() {
        let mut a = ProbeRecorder::new(cfg(), dims());
        let mut b = ProbeRecorder::new(cfg(), dims());
        a.sample(
            0,
            &[0; 6],
            SampleSnapshot {
                phit_ring_high_water: 5,
                arena_grows: 1,
                ..SampleSnapshot::default()
            },
        );
        b.sample(
            0,
            &[0; 6],
            SampleSnapshot {
                phit_ring_high_water: 9,
                arena_grows: 2,
                ..SampleSnapshot::default()
            },
        );
        a.merge(&b);
        assert_eq!(a.diag().phit_ring_high_water.samples(), &[9.0]);
        assert_eq!(a.diag().arena_grows.samples(), &[3.0]);
    }
}
