//! Probe configuration: one struct gates all four passive instruments plus
//! the active diagnostics layer (detectors and trace export).

use crate::detect::DetectorConfig;

/// Configuration of a [`crate::ProbeRecorder`].
///
/// The defaults enable the time series and the flight recorder at moderate
/// cost and leave the heatmaps off (their footprint scales with
/// `links × VCs × windows`); sweep binaries expose every knob as a
/// `--probe-*` flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeConfig {
    /// Sampling stride of the time series in cycles (`≥ 1`).
    pub stride: u64,
    /// Maximum samples any one series stores; later sample points are dropped
    /// and counted rather than allocated.
    pub max_samples: usize,
    /// Routers emitted in the per-router time-series output (ranked by total
    /// activity at emission time; `0` disables per-router recording and its
    /// storage entirely).
    pub top_k: usize,
    /// Record the flight of roughly one in `flight_every` packets, selected by
    /// a pure hash of `(source node, generation cycle)` — deterministic and
    /// independent of engine sharding.  `0` disables the flight recorder.
    pub flight_every: u64,
    /// Capacity of the flight-event ring; once full, further events are
    /// dropped and counted.
    pub flight_capacity: usize,
    /// Cycles per heatmap aggregation window.  `0` disables the heatmaps.
    pub heatmap_window: u64,
    /// Maximum heatmap windows stored; later windows are dropped and counted.
    pub max_windows: usize,
    /// Online anomaly detectors ([`DetectorConfig::off`] by default; armed
    /// detectors trip on the recorded sample stream and gate the trigger
    /// bundle emission).
    pub detect: DetectorConfig,
    /// Emit a Chrome `trace_event` / Perfetto JSON file (detector trips on a
    /// cycle-as-microsecond timebase) next to the other probe files.
    pub trace: bool,
    /// Fold every delivered packet's delay decomposition into the per-component
    /// ledger and emit `*_delay.csv`/`*_delay.jsonl` (exact, not sampled; off
    /// by default — the stamps themselves are always captured by the engine).
    pub delay: bool,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        Self {
            stride: 64,
            max_samples: 4096,
            top_k: 4,
            flight_every: 64,
            flight_capacity: 1 << 16,
            heatmap_window: 0,
            max_windows: 64,
            detect: DetectorConfig::off(),
            trace: false,
            delay: false,
        }
    }
}

impl ProbeConfig {
    /// Defaults with the heatmaps enabled too (window of `window` cycles) —
    /// the configuration of the interference/transient studies.
    pub fn full(window: u64) -> Self {
        Self {
            heatmap_window: window,
            ..Self::default()
        }
    }

    /// [`Self::full`] plus the whole active layer: every detector armed at
    /// the [`DetectorConfig::armed`] defaults and trace export on — the
    /// configuration of the detectors-armed bench point and the invariance
    /// tests.
    pub fn full_active(window: u64) -> Self {
        Self {
            detect: DetectorConfig::armed(),
            trace: true,
            ..Self::full(window)
        }
    }

    /// True when the online detector bank runs.
    #[inline]
    pub fn detect_enabled(&self) -> bool {
        self.detect.enabled()
    }

    /// True when the per-(link, VC) heatmaps are recorded.
    #[inline]
    pub fn heatmap_enabled(&self) -> bool {
        self.heatmap_window > 0
    }

    /// True when the flight recorder samples packets.
    #[inline]
    pub fn flight_enabled(&self) -> bool {
        self.flight_every > 0
    }

    /// True when the per-packet delay ledger folds deliveries.
    #[inline]
    pub fn delay_enabled(&self) -> bool {
        self.delay
    }

    /// Panics on nonsensical values (a zero stride).
    pub fn validate(&self) {
        assert!(self.stride >= 1, "probe stride must be at least 1 cycle");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_heatmap_off() {
        let cfg = ProbeConfig::default();
        cfg.validate();
        assert!(!cfg.heatmap_enabled());
        assert!(cfg.flight_enabled());
        assert!(!cfg.detect_enabled());
        assert!(!cfg.delay_enabled(), "the delay ledger is opt-in");
        assert!(ProbeConfig::full(1024).heatmap_enabled());
        let active = ProbeConfig::full_active(1024);
        assert!(active.heatmap_enabled() && active.detect_enabled() && active.trace);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_rejected() {
        ProbeConfig {
            stride: 0,
            ..ProbeConfig::default()
        }
        .validate();
    }
}
