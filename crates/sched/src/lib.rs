//! Dynamic job scheduling for the Dragonfly simulator.
//!
//! The static `dragonfly_workload` subsystem fixes the job set at cycle 0.  Real
//! machines *churn*: jobs arrive over time, wait for nodes, run, and leave — and the
//! fragmentation this produces (new jobs scattered into the holes left by
//! departures) is exactly what couples the jobs' traffic onto shared channels and
//! makes adaptive routing matter.  This crate models that lifecycle:
//!
//! * a [`Trace`] is a list of [`TraceJob`] arrivals — parsed from a small text
//!   format ([`Trace::parse`] / [`Trace::to_text`] round-trip) or generated from
//!   seeded synthetic distributions ([`SyntheticTrace`]),
//! * each job names its size, a [`PlacementPolicy`] (now allocating from the
//!   *current* free set via [`dragonfly_workload::FreePool`]), a
//!   [`JobPattern`] — including the collective-style patterns `A2A`, `RING` and
//!   `PERM` — an offered load, and a completion condition ([`Completion`]:
//!   run for a duration, or until a delivered packet volume),
//! * a [`ScheduleRuntime`] compiled from the trace drives the simulation engine:
//!   its `advance_to` hook (called at the top of every `Network::step`) admits
//!   arrivals, places them FIFO into free nodes, retires finished jobs and
//!   re-places waiting ones onto the freed nodes; destinations flow through a
//!   [`dragonfly_traffic::DynamicSlots`] adapter whose per-job patterns are
//!   installed and torn down as jobs come and go,
//! * [`scenarios::fragmentation_trace`] builds the headline churn scenario: a
//!   machine fragmented by departures places a fresh aggressor/victim pair into
//!   the holes, degrading the victim's tail latency versus a contiguous placement
//!   on a fresh machine.
//!
//! [`PlacementPolicy`]: dragonfly_workload::PlacementPolicy
//! [`JobPattern`]: dragonfly_workload::JobPattern

#![warn(missing_docs)]

mod runtime;
pub mod scenarios;
mod trace;

pub use runtime::{JobLifetime, ScheduleRuntime};
pub use trace::{Completion, SyntheticTrace, Trace, TraceJob};
