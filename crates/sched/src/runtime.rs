//! The compiled, event-driven lifecycle engine a [`Trace`] turns into.
//!
//! A [`ScheduleRuntime`] lives inside the simulation network (next to the static
//! `WorkloadRuntime`) and owns all dynamic-job state: the wait queue, the free-node
//! pool, the per-job destination patterns (through a
//! [`dragonfly_traffic::DynamicSlots`] adapter) and the lifecycle records the
//! statistics layer turns into per-job wait/completion/slowdown numbers.
//!
//! The engine calls [`ScheduleRuntime::advance_to`] at the top of every cycle:
//! arrivals whose cycle has come join the wait queue, finished jobs retire (their
//! nodes return to the pool, their pattern is torn down), and waiting jobs are
//! placed FIFO — head-of-line blocking, no backfilling — onto whatever free nodes
//! the machine has, however fragmented.  Deliveries are fed back through
//! [`ScheduleRuntime::note_delivered`] so volume-bound jobs know when they are done.

use crate::trace::{Completion, Trace, TraceJob};
use dragonfly_rng::Rng;
use dragonfly_topology::{DragonflyParams, NodeId};
use dragonfly_traffic::DynamicSlots;
use dragonfly_workload::{build_job_pattern, FreePool};
use std::collections::VecDeque;

/// Arrival/placement/completion record of one job (cycles are absolute).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobLifetime {
    /// Cycle the job arrived (entered the wait queue).
    pub arrival: u64,
    /// Cycle the job was placed, if it ever was.
    pub placed: Option<u64>,
    /// Cycle the job completed, if it did.
    pub completed: Option<u64>,
}

impl JobLifetime {
    /// Cycles spent waiting for nodes (`None` until placed).
    pub fn wait_cycles(&self) -> Option<u64> {
        self.placed.map(|p| p - self.arrival)
    }

    /// Cycles between placement and completion (`None` until completed).
    pub fn service_cycles(&self) -> Option<u64> {
        match (self.placed, self.completed) {
            (Some(p), Some(c)) => Some(c - p),
            _ => None,
        }
    }
}

/// Per-job state inside the runtime.
#[derive(Debug)]
struct JobState {
    spec: TraceJob,
    /// Per-node, per-cycle packet-generation probability while running.
    prob: f64,
    lifetime: JobLifetime,
    /// Nodes the job occupies while running (empty before placement and after
    /// retirement — the lifecycle keeps the counts).
    nodes: Vec<NodeId>,
    /// Packets of this job delivered so far (drives [`Completion::Volume`]).
    delivered_packets: u64,
}

impl JobState {
    /// Whether the job is finished at the top of `cycle`.
    fn is_complete(&self, cycle: u64) -> bool {
        let Some(placed) = self.lifetime.placed else {
            return false;
        };
        match self.spec.completion {
            Completion::Duration(cycles) => placed + cycles <= cycle,
            Completion::Volume(packets) => self.delivered_packets >= packets,
        }
    }
}

/// The compiled lifecycle engine of a trace (see the module docs).
pub struct ScheduleRuntime {
    label: String,
    params: DragonflyParams,
    jobs: Vec<JobState>,
    /// Jobs arrived but not yet placed, FIFO (indices into `jobs`).
    waiting: VecDeque<usize>,
    /// Next not-yet-arrived index into `jobs` (trace order = arrival order).
    next_arrival: usize,
    /// Currently running jobs, in placement order (indices into `jobs`).
    running: Vec<usize>,
    pool: FreePool,
    slots: DynamicSlots,
    /// Jobs retired so far (so the per-cycle `all_complete` check is O(1)).
    completed_count: usize,
    /// Set once generation and admission stop (horizon reached; drain phase).
    halted: bool,
}

impl ScheduleRuntime {
    /// Compile `trace` against a topology and packet size.
    ///
    /// # Panics
    ///
    /// Panics when any job is larger than the machine (it could never be placed).
    pub fn new(trace: &Trace, params: DragonflyParams, packet_size: usize) -> Self {
        assert!(packet_size >= 1, "packet size must be at least one phit");
        let num_nodes = params.num_nodes();
        for job in &trace.jobs {
            assert!(
                job.size <= num_nodes,
                "job `{}` needs {} nodes but the machine has {num_nodes}",
                job.name,
                job.size
            );
        }
        let jobs = trace
            .jobs
            .iter()
            .map(|spec| JobState {
                prob: (spec.offered_load / packet_size as f64).min(1.0),
                lifetime: JobLifetime {
                    arrival: spec.arrival,
                    placed: None,
                    completed: None,
                },
                nodes: Vec::new(),
                delivered_packets: 0,
                spec: spec.clone(),
            })
            .collect::<Vec<_>>();
        Self {
            label: trace.label(),
            params,
            slots: DynamicSlots::new(num_nodes, jobs.len()),
            pool: FreePool::all_free(num_nodes),
            waiting: VecDeque::new(),
            next_arrival: 0,
            running: Vec::new(),
            jobs,
            completed_count: 0,
            halted: false,
        }
    }

    /// Display label (`CHURN[<trace>:<n>jobs]`), used as the traffic name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of jobs in the trace.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Display name of a job.
    pub fn job_name(&self, job: u16) -> &str {
        &self.jobs[job as usize].spec.name
    }

    /// The trace entry behind a job.
    pub fn job_spec(&self, job: u16) -> &TraceJob {
        &self.jobs[job as usize].spec
    }

    /// Lifecycle record of a job.
    pub fn lifetime(&self, job: u16) -> JobLifetime {
        self.jobs[job as usize].lifetime
    }

    /// The job's ideal (uncontended) service time in cycles: the configured
    /// duration, or — for volume-bound jobs — the injection-limited time to push
    /// the volume at the offered load.  The denominator of the slowdown metric.
    pub fn ideal_service_cycles(&self, job: u16, packet_size: usize) -> u64 {
        let spec = &self.jobs[job as usize].spec;
        match spec.completion {
            Completion::Duration(cycles) => cycles,
            Completion::Volume(packets) => {
                let phits = packets as f64 * packet_size as f64;
                let rate = spec.offered_load * spec.size as f64;
                if rate > 0.0 {
                    (phits / rate).ceil() as u64
                } else {
                    u64::MAX
                }
            }
        }
    }

    /// Number of currently free nodes.
    pub fn free_nodes(&self) -> usize {
        self.pool.free_count()
    }

    /// Aggregate nominal demand in phits/(node·cycle) as if every job of the
    /// trace were resident at once (see [`Trace::nominal_offered_load`]).
    pub fn nominal_offered_load(&self, num_nodes: usize) -> f64 {
        crate::trace::nominal_load_of(self.jobs.iter().map(|j| &j.spec), num_nodes)
    }

    /// Number of currently running jobs.
    pub fn running_jobs(&self) -> usize {
        self.running.len()
    }

    /// Number of jobs waiting for nodes.
    pub fn waiting_jobs(&self) -> usize {
        self.waiting.len()
    }

    /// Whether every job of the trace has completed.
    pub fn all_complete(&self) -> bool {
        self.completed_count == self.jobs.len()
    }

    /// Stop generating packets and freeze the lifecycle (drain phase after the
    /// horizon): no further arrivals, placements or retirements, so a job still
    /// running at the horizon reports `completed = None` regardless of how long
    /// the drain budget is.
    pub fn halt(&mut self) {
        self.halted = true;
    }

    /// The lifecycle hook, called at the top of every cycle: enqueue arrivals,
    /// retire finished jobs (returning their nodes and tearing their pattern down),
    /// then place waiting jobs FIFO onto the free set.  Returns `true` when any job
    /// was placed or retired.  A no-op once [`ScheduleRuntime::halt`] has run.
    pub fn advance_to(&mut self, cycle: u64) -> bool {
        if self.halted {
            return false;
        }
        let mut changed = false;
        // Arrivals join the wait queue in trace order.
        let mut arrived = false;
        while self.next_arrival < self.jobs.len()
            && self.jobs[self.next_arrival].lifetime.arrival <= cycle
        {
            self.waiting.push_back(self.next_arrival);
            self.next_arrival += 1;
            arrived = true;
        }
        // Retire finished jobs first, so their nodes are re-placeable this cycle.
        let mut idx = 0;
        while idx < self.running.len() {
            let j = self.running[idx];
            if self.jobs[j].is_complete(cycle) {
                self.running.remove(idx);
                let job = &mut self.jobs[j];
                job.lifetime.completed = Some(cycle);
                let nodes = std::mem::take(&mut job.nodes);
                self.pool.release(&nodes);
                self.slots.clear(j as u16, &nodes);
                self.completed_count += 1;
                changed = true;
            } else {
                idx += 1;
            }
        }
        // Placement is deterministic in the free set, so a blocked queue head can
        // only unblock after a retirement (arrivals just extend the queue): skip
        // the pool scan on the many cycles where neither happened.
        if !arrived && !changed {
            return false;
        }
        // Place waiting jobs FIFO (head-of-line blocking: no backfill, so a large
        // job cannot be starved by later small ones).
        while let Some(&j) = self.waiting.front() {
            let spec = &self.jobs[j].spec;
            let Some(nodes) = self
                .pool
                .allocate(spec.placement, spec.size, &self.params, j as u64)
            else {
                break;
            };
            let pattern = build_job_pattern(spec.pattern, &nodes, &self.params);
            self.slots.install(j as u16, &nodes, pattern);
            let job = &mut self.jobs[j];
            job.lifetime.placed = Some(cycle);
            job.nodes = nodes;
            self.waiting.pop_front();
            self.running.push(j);
            changed = true;
        }
        changed
    }

    /// The running job of a node, if any (idle and waiting jobs never inject).
    #[inline]
    pub fn source(&self, node: usize) -> Option<u16> {
        self.slots.slot_of(NodeId(node as u32))
    }

    /// Bernoulli trial: does a node of `job` generate a packet this cycle?
    #[inline]
    pub fn generate(&self, job: u16, rng: &mut Rng) -> bool {
        !self.halted && rng.bernoulli(self.jobs[job as usize].prob)
    }

    /// Destination of a packet generated at `src` during `cycle` (the installed
    /// pattern of the source's job).
    #[inline]
    pub fn destination(
        &self,
        cycle: u64,
        src: NodeId,
        params: &DragonflyParams,
        rng: &mut Rng,
    ) -> NodeId {
        self.slots.destination(cycle, src, params, rng)
    }

    /// Delivery feedback: a packet of `job` reached its destination (drives
    /// volume-bound completion).
    #[inline]
    pub fn note_delivered(&mut self, job: u16) {
        self.jobs[job as usize].delivered_packets += 1;
    }

    /// Check the node-disjointness invariant: every node belongs to at most one
    /// running job, running jobs own exactly their placed node count, and the free
    /// pool agrees.  Cheap enough for tests to call mid-run.
    pub fn assert_disjoint(&self) {
        let num_nodes = self.params.num_nodes();
        let mut owner = vec![None; num_nodes];
        for &j in &self.running {
            let job = &self.jobs[j];
            assert_eq!(job.nodes.len(), job.spec.size, "job `{}`", job.spec.name);
            for &node in &job.nodes {
                assert!(
                    self.slots.slot_of(node) == Some(j as u16),
                    "slot map out of sync at {node:?}"
                );
                assert!(
                    !self.pool.is_free(node),
                    "running job `{}` owns free node {node:?}",
                    job.spec.name
                );
                assert!(
                    owner[node.index()].replace(j).is_none(),
                    "node {node:?} owned by two jobs"
                );
            }
        }
        let owned = owner.iter().filter(|o| o.is_some()).count();
        assert_eq!(owned + self.pool.free_count(), num_nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dragonfly_workload::{JobPattern, PlacementPolicy};

    fn params() -> DragonflyParams {
        DragonflyParams::new(2)
    }

    fn job(name: &str, arrival: u64, size: usize, completion: Completion) -> TraceJob {
        TraceJob {
            name: name.into(),
            arrival,
            size,
            placement: PlacementPolicy::Contiguous,
            pattern: JobPattern::Uniform,
            offered_load: 0.2,
            completion,
        }
    }

    #[test]
    fn jobs_wait_when_the_machine_is_full_and_replace_freed_nodes() {
        let p = params(); // 72 nodes
        let trace = Trace::new(
            "t",
            vec![
                job("big", 0, 60, Completion::Duration(1_000)),
                job("late", 100, 30, Completion::Duration(500)),
            ],
        );
        let mut rt = ScheduleRuntime::new(&trace, p, 8);
        assert_eq!(rt.label(), "CHURN[t:2jobs]");

        rt.advance_to(0);
        assert_eq!(rt.running_jobs(), 1);
        assert_eq!(rt.free_nodes(), 12);
        assert_eq!(rt.source(0), Some(0));
        assert_eq!(rt.source(65), None);
        rt.assert_disjoint();

        // `late` arrives but 30 > 12 free: it waits.
        rt.advance_to(100);
        assert_eq!(rt.waiting_jobs(), 1);
        assert_eq!(rt.running_jobs(), 1);
        assert_eq!(rt.lifetime(1).placed, None);

        // At 1 000 `big` retires; `late` is placed the same cycle.
        rt.advance_to(1_000);
        assert_eq!(rt.running_jobs(), 1);
        assert_eq!(rt.waiting_jobs(), 0);
        assert_eq!(rt.lifetime(0).completed, Some(1_000));
        assert_eq!(rt.lifetime(1).placed, Some(1_000));
        assert_eq!(rt.lifetime(1).wait_cycles(), Some(900));
        assert_eq!(rt.free_nodes(), 42);
        assert_eq!(rt.source(0), Some(1));
        rt.assert_disjoint();
        assert!(!rt.all_complete());

        rt.advance_to(1_500);
        assert!(rt.all_complete());
        assert_eq!(rt.free_nodes(), 72);
        assert_eq!(rt.lifetime(1).service_cycles(), Some(500));
    }

    #[test]
    fn volume_jobs_complete_on_delivery_feedback() {
        let p = params();
        let trace = Trace::new("t", vec![job("v", 0, 8, Completion::Volume(10))]);
        let mut rt = ScheduleRuntime::new(&trace, p, 8);
        rt.advance_to(0);
        for _ in 0..9 {
            rt.note_delivered(0);
        }
        rt.advance_to(50);
        assert!(!rt.all_complete());
        rt.note_delivered(0);
        rt.advance_to(51);
        assert!(rt.all_complete());
        assert_eq!(rt.lifetime(0).completed, Some(51));
        // Ideal service of 10 packets × 8 phits at 0.2 × 8 nodes = 50 cycles.
        assert_eq!(rt.ideal_service_cycles(0, 8), 50);
    }

    #[test]
    fn fifo_head_of_line_blocks_later_jobs() {
        let p = params();
        let trace = Trace::new(
            "t",
            vec![
                job("a", 0, 40, Completion::Duration(2_000)),
                job("blocked", 10, 40, Completion::Duration(100)),
                job("small", 20, 8, Completion::Duration(100)),
            ],
        );
        let mut rt = ScheduleRuntime::new(&trace, p, 8);
        rt.advance_to(0);
        rt.advance_to(20);
        // `small` would fit (32 free) but FIFO order keeps it behind `blocked`.
        assert_eq!(rt.running_jobs(), 1);
        assert_eq!(rt.waiting_jobs(), 2);
        rt.advance_to(2_000);
        // `a` retires; `blocked` then `small` are placed together.
        assert_eq!(rt.running_jobs(), 2);
        assert_eq!(rt.lifetime(1).placed, Some(2_000));
        assert_eq!(rt.lifetime(2).placed, Some(2_000));
        rt.assert_disjoint();
    }

    #[test]
    fn halt_stops_generation_and_admission() {
        let p = params();
        let trace = Trace::new(
            "t",
            vec![
                job("a", 0, 8, Completion::Duration(100)),
                job("b", 500, 8, Completion::Duration(100)),
            ],
        );
        let mut rt = ScheduleRuntime::new(&trace, p, 8);
        rt.advance_to(0);
        let mut rng = Rng::seed_from(1);
        assert!((0..1_000).any(|_| rt.generate(0, &mut rng)));
        rt.halt();
        assert!((0..1_000).all(|_| !rt.generate(0, &mut rng)));
        // The lifecycle is frozen: `a` is not retired even past its duration (so
        // its report is independent of the drain budget), and `b`, arriving after
        // the halt, is never placed.
        assert!(!rt.advance_to(500));
        assert_eq!(rt.running_jobs(), 1);
        assert_eq!(rt.lifetime(0).completed, None);
        assert_eq!(rt.lifetime(1).placed, None);
    }

    #[test]
    #[should_panic(expected = "machine has")]
    fn oversized_job_rejected_at_compile() {
        let trace = Trace::new("t", vec![job("huge", 0, 100, Completion::Duration(10))]);
        let _ = ScheduleRuntime::new(&trace, params(), 8);
    }
}
