//! Canonical churn scenarios shared by the `churn_sweep` binary, the
//! `churn_study` example and the pinned integration tests.

use crate::trace::{Completion, Trace, TraceJob};
use dragonfly_topology::DragonflyParams;
use dragonfly_workload::{JobPattern, PlacementPolicy};

/// Offered load of the background filler jobs: enough to keep their queues warm,
/// small enough that the victim's tail is dominated by the aggressor.
const FILLER_LOAD: f64 = 0.02;

/// Number of filler jobs the machine is carved into during the churn prologue.
const FILLERS: usize = 12;

/// The headline fragmentation scenario: does churn-induced fragmentation hurt a
/// newly placed job, and how much of the damage does adaptive routing undo?
///
/// Phase 1 (cycle 0): twelve equal filler jobs pack the machine contiguously and
/// run near-idle uniform traffic.  Phase 2 (`churn_cycle`): in the **fragmented**
/// variant every *odd* filler departs, leaving alternating holes across all groups,
/// and an aggressor/victim pair arrives with seeded-random placement — the classic
/// "re-placement into the holes" outcome, scattering both jobs over every group so
/// the aggressor's job-scoped ADVG+1 hot channels run right through the victim's
/// traffic.  In the **fresh** variant *all* fillers depart and the pair is placed
/// contiguously on the emptied machine: the aggressor's hot channels stay inside
/// its own groups and the victim is isolated.
///
/// Both variants contain the same twelve-plus-two jobs and differ only in filler
/// durations and the pair's placement policy, so their reports compare one-to-one.
/// The pair runs from `churn_cycle` to `run_cycles`; drive the run with a horizon
/// a little past `run_cycles`.
pub fn fragmentation_trace(
    params: &DragonflyParams,
    fragmented: bool,
    aggressor_load: f64,
    victim_load: f64,
    churn_cycle: u64,
    run_cycles: u64,
    seed: u64,
) -> Trace {
    assert!(churn_cycle < run_cycles);
    let nodes = params.num_nodes();
    let filler_size = nodes / FILLERS;
    let pair_size = 2 * params.nodes_per_group();
    // Odd fillers free FILLERS/2 blocks; the pair must fit into them.
    assert!(
        (FILLERS / 2) * filler_size >= 2 * pair_size,
        "machine too small for the fragmentation scenario"
    );
    let mut jobs = Vec::with_capacity(FILLERS + 2);
    for i in 0..FILLERS {
        let departs = if fragmented { i % 2 == 1 } else { true };
        jobs.push(TraceJob {
            name: format!("filler{i:02}"),
            arrival: 0,
            size: filler_size,
            placement: PlacementPolicy::Contiguous,
            pattern: JobPattern::Uniform,
            offered_load: FILLER_LOAD,
            completion: Completion::Duration(if departs { churn_cycle } else { run_cycles }),
        });
    }
    let pair_placement = if fragmented {
        PlacementPolicy::Random { seed }
    } else {
        PlacementPolicy::Contiguous
    };
    let pair_duration = run_cycles - churn_cycle;
    jobs.push(TraceJob {
        name: "aggressor".into(),
        arrival: churn_cycle,
        size: pair_size,
        placement: pair_placement,
        pattern: JobPattern::AdversarialGlobal(1),
        offered_load: aggressor_load,
        completion: Completion::Duration(pair_duration),
    });
    jobs.push(TraceJob {
        name: "victim".into(),
        arrival: churn_cycle,
        size: pair_size,
        placement: pair_placement,
        pattern: JobPattern::Uniform,
        offered_load: victim_load,
        completion: Completion::Duration(pair_duration),
    });
    let label = if fragmented { "frag" } else { "fresh" };
    Trace::new(label, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_share_shape_and_differ_in_churn() {
        let p = DragonflyParams::new(2);
        let frag = fragmentation_trace(&p, true, 0.5, 0.1, 4_000, 12_000, 7);
        let fresh = fragmentation_trace(&p, false, 0.5, 0.1, 4_000, 12_000, 7);
        assert_eq!(frag.name, "frag");
        assert_eq!(fresh.name, "fresh");
        assert_eq!(frag.jobs.len(), FILLERS + 2);
        assert_eq!(fresh.jobs.len(), frag.jobs.len());
        // Fragmented: half the fillers persist to the end; fresh: none do.
        let persists = |t: &Trace| {
            t.jobs
                .iter()
                .filter(|j| j.name.starts_with("filler"))
                .filter(|j| j.completion == Completion::Duration(12_000))
                .count()
        };
        assert_eq!(persists(&frag), FILLERS / 2);
        assert_eq!(persists(&fresh), 0);
        // The pair arrives at the churn point in both variants.
        for trace in [&frag, &fresh] {
            let victim = trace.jobs.iter().find(|j| j.name == "victim").unwrap();
            assert_eq!(victim.arrival, 4_000);
            assert_eq!(victim.size, 2 * p.nodes_per_group());
        }
        assert_eq!(
            frag.jobs
                .iter()
                .find(|j| j.name == "victim")
                .unwrap()
                .placement,
            PlacementPolicy::Random { seed: 7 }
        );
        // The scenario fits every supported machine size down to h = 2.
        for h in [2, 3, 4] {
            let p = DragonflyParams::new(h);
            let t = fragmentation_trace(&p, true, 0.5, 0.1, 1_000, 5_000, 1);
            let peak: usize = t
                .jobs
                .iter()
                .filter(|j| j.arrival == 0)
                .map(|j| j.size)
                .sum();
            assert!(peak <= p.num_nodes());
        }
    }
}
