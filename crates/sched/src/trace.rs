//! Job-arrival traces: the parseable input of the dynamic scheduler.

use dragonfly_rng::{derive_seed, Rng};
use dragonfly_workload::{JobPattern, PlacementPolicy};
use serde::{Deserialize, Serialize};

/// When a running job is finished.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Completion {
    /// The job runs for this many cycles after being placed.
    Duration(u64),
    /// The job runs until this many of its packets have been delivered.
    Volume(u64),
}

/// One job arrival of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJob {
    /// Display name (unique within the trace; used in per-job reports).
    pub name: String,
    /// Absolute cycle at which the job arrives (enters the wait queue).
    pub arrival: u64,
    /// Number of nodes the job needs (at least 2, so it can communicate).
    pub size: usize,
    /// How the job's nodes are chosen from the free set at placement time.
    pub placement: PlacementPolicy,
    /// Traffic pattern over the job's nodes while it runs.
    pub pattern: JobPattern,
    /// Offered load while running, in phits/(node·cycle).
    pub offered_load: f64,
    /// Completion condition.
    pub completion: Completion,
}

impl TraceJob {
    /// One canonical trace-file line (see [`Trace::to_text`]).
    fn to_line(&self) -> String {
        let place = match self.placement {
            PlacementPolicy::Contiguous => "cont".to_string(),
            PlacementPolicy::RoundRobinRouters => "rr".to_string(),
            PlacementPolicy::Random { seed } => format!("rand#{seed}"),
        };
        let completion = match self.completion {
            Completion::Duration(cycles) => format!("duration={cycles}"),
            Completion::Volume(packets) => format!("volume={packets}"),
        };
        format!(
            "job {} arrive={} size={} place={place} pattern={} load={} {completion}",
            self.name,
            self.arrival,
            self.size,
            self.pattern.name(),
            self.offered_load,
        )
    }

    fn validate(&self) -> Result<(), String> {
        if !name_is_clean(&self.name) {
            return Err(format!("bad job name `{}`", self.name));
        }
        if self.size < 2 {
            return Err(format!("job `{}` needs at least 2 nodes", self.name));
        }
        if !self.offered_load.is_finite() || self.offered_load < 0.0 {
            return Err(format!("job `{}` has a bad load", self.name));
        }
        match self.completion {
            Completion::Duration(0) => Err(format!("job `{}` has zero duration", self.name)),
            Completion::Volume(0) => Err(format!("job `{}` has zero volume", self.name)),
            _ => Ok(()),
        }
    }
}

/// A job-arrival trace: named, sorted by arrival cycle (stable for ties, so the
/// trace order breaks placement ties deterministically).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Display name of the trace (scenario label in sweeps and CSV rows).
    pub name: String,
    /// The arrivals, sorted by arrival cycle.
    pub jobs: Vec<TraceJob>,
}

impl Trace {
    /// Build a validated trace (jobs are stably sorted by arrival cycle).
    ///
    /// # Panics
    ///
    /// Panics on an invalid job (see [`Trace::try_new`]).
    pub fn new(name: impl Into<String>, jobs: Vec<TraceJob>) -> Self {
        match Self::try_new(name, jobs) {
            Ok(trace) => trace,
            Err(msg) => panic!("invalid trace: {msg}"),
        }
    }

    /// Build a validated trace, reporting the first problem instead of panicking.
    pub fn try_new(name: impl Into<String>, mut jobs: Vec<TraceJob>) -> Result<Self, String> {
        let name = name.into();
        if !name_is_clean(&name) {
            return Err(format!("bad trace name `{name}`"));
        }
        if jobs.is_empty() {
            return Err("a trace needs at least one job".to_string());
        }
        if jobs.len() >= u16::MAX as usize {
            return Err("too many jobs for the u16 job tag".to_string());
        }
        let mut names = std::collections::HashSet::new();
        for job in &jobs {
            job.validate()?;
            if !names.insert(job.name.clone()) {
                return Err(format!("duplicate job name `{}`", job.name));
            }
        }
        jobs.sort_by_key(|j| j.arrival);
        Ok(Self { name, jobs })
    }

    /// Parse the text format emitted by [`Trace::to_text`]:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// trace <name>
    /// job <name> arrive=<cycle> size=<nodes> place=<cont|rr|rand#seed> \
    ///     pattern=<UN|ADVG+n|ADVL+n|A2A|RING|PERM#seed|MIXp%(ADVG+g/ADVL+l)> \
    ///     load=<phits/(node·cycle)> (duration=<cycles> | volume=<packets>)
    /// ```
    ///
    /// (each `job` stanza on one line; key order after the name is free).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut name = "trace".to_string();
        let mut jobs = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |msg: String| format!("line {}: {msg}", lineno + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("trace ") {
                name = rest.trim().to_string();
                continue;
            }
            let Some(rest) = line.strip_prefix("job ") else {
                return Err(err(format!(
                    "expected `trace`, `job` or a comment, got `{line}`"
                )));
            };
            let mut fields = rest.split_whitespace();
            let job_name = fields
                .next()
                .ok_or_else(|| err("missing job name".to_string()))?
                .to_string();
            let (mut arrive, mut size, mut place, mut pattern, mut load, mut completion) =
                (None, None, None, None, None, None);
            for field in fields {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| err(format!("expected key=value, got `{field}`")))?;
                // Repeated keys never overwrite silently; duration= and volume= are
                // mutually exclusive ways to state the same completion bound.
                let taken = match key {
                    "arrive" => arrive.is_some(),
                    "size" => size.is_some(),
                    "place" => place.is_some(),
                    "pattern" => pattern.is_some(),
                    "load" => load.is_some(),
                    "duration" | "volume" => completion.is_some(),
                    _ => false,
                };
                if taken {
                    return Err(err(if matches!(key, "duration" | "volume") {
                        "conflicting completion keys (duration= and volume= are \
                         mutually exclusive)"
                            .to_string()
                    } else {
                        format!("duplicate key `{key}=`")
                    }));
                }
                match key {
                    "arrive" => {
                        arrive = Some(
                            value
                                .parse::<u64>()
                                .map_err(|e| err(format!("arrive: {e}")))?,
                        )
                    }
                    "size" => {
                        size = Some(
                            value
                                .parse::<usize>()
                                .map_err(|e| err(format!("size: {e}")))?,
                        )
                    }
                    "place" => place = Some(parse_placement(value).map_err(&err)?),
                    "pattern" => pattern = Some(JobPattern::parse(value).map_err(&err)?),
                    "load" => {
                        load = Some(
                            value
                                .parse::<f64>()
                                .map_err(|e| err(format!("load: {e}")))?,
                        )
                    }
                    "duration" => {
                        completion = Some(Completion::Duration(
                            value.parse().map_err(|e| err(format!("duration: {e}")))?,
                        ))
                    }
                    "volume" => {
                        completion = Some(Completion::Volume(
                            value.parse().map_err(|e| err(format!("volume: {e}")))?,
                        ))
                    }
                    other => return Err(err(format!("unknown key `{other}`"))),
                }
            }
            let missing = |what: &str| err(format!("job `{job_name}` is missing {what}"));
            jobs.push(TraceJob {
                name: job_name.clone(),
                arrival: arrive.ok_or_else(|| missing("arrive="))?,
                size: size.ok_or_else(|| missing("size="))?,
                placement: place.ok_or_else(|| missing("place="))?,
                pattern: pattern.ok_or_else(|| missing("pattern="))?,
                offered_load: load.ok_or_else(|| missing("load="))?,
                completion: completion.ok_or_else(|| missing("duration= or volume="))?,
            });
        }
        Self::try_new(name, jobs)
    }

    /// Emit the canonical text form ([`Trace::parse`] round-trips it).
    pub fn to_text(&self) -> String {
        let mut out = format!("trace {}\n", self.name);
        for job in &self.jobs {
            out.push_str(&job.to_line());
            out.push('\n');
        }
        out
    }

    /// Aggregate nominal demand in phits/(node·cycle) as if every job of the trace
    /// were resident at once (an upper bound; the actual offered load varies as
    /// jobs come and go).
    pub fn nominal_offered_load(&self, num_nodes: usize) -> f64 {
        nominal_load_of(&self.jobs, num_nodes)
    }

    /// The display label used as the traffic name wherever this trace drives a
    /// run (`TrafficKind::Churn`, `ScheduleRuntime`, report aggregates).
    pub fn label(&self) -> String {
        format!("CHURN[{}:{}jobs]", self.name, self.jobs.len())
    }

    /// The largest arrival cycle of the trace.
    pub fn last_arrival(&self) -> u64 {
        self.jobs.last().map_or(0, |j| j.arrival)
    }
}

/// Shared formula behind [`Trace::nominal_offered_load`] and
/// `ScheduleRuntime::nominal_offered_load`: `Σ load·size / num_nodes`.
pub(crate) fn nominal_load_of<'a>(
    jobs: impl IntoIterator<Item = &'a TraceJob>,
    num_nodes: usize,
) -> f64 {
    if num_nodes == 0 {
        return 0.0;
    }
    jobs.into_iter()
        .map(|j| j.offered_load * j.size as f64)
        .sum::<f64>()
        / num_nodes as f64
}

/// Trace and job names end up as whitespace-delimited trace-file tokens and raw
/// CSV cells, so they must be non-empty and free of whitespace and commas.
fn name_is_clean(name: &str) -> bool {
    !name.is_empty() && !name.contains(|c: char| c.is_whitespace() || c == ',')
}

fn parse_placement(text: &str) -> Result<PlacementPolicy, String> {
    // Case-insensitive, like `JobPattern::parse` for the adjacent pattern= key.
    match text.to_ascii_lowercase().as_str() {
        "cont" => Ok(PlacementPolicy::Contiguous),
        "rr" => Ok(PlacementPolicy::RoundRobinRouters),
        other => match other.strip_prefix("rand#") {
            Some(seed) => Ok(PlacementPolicy::Random {
                seed: seed
                    .parse()
                    .map_err(|e| format!("bad placement seed in `{text}`: {e}"))?,
            }),
            None => Err(format!(
                "unknown placement `{text}` (expected cont, rr or rand#seed)"
            )),
        },
    }
}

/// Seeded synthetic arrival process: exponential inter-arrival times and durations,
/// sizes and patterns drawn uniformly from the given menus.  The same spec always
/// builds the same trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticTrace {
    /// Trace display name.
    pub name: String,
    /// Seed of every draw below.
    pub seed: u64,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Mean cycles between consecutive arrivals (exponential).
    pub mean_interarrival: f64,
    /// Mean running duration in cycles (exponential, at least 1).
    pub mean_duration: f64,
    /// Job sizes to draw from (uniformly).
    pub sizes: Vec<usize>,
    /// Patterns to draw from (uniformly).
    pub patterns: Vec<JobPattern>,
    /// Placement policy of every job.
    pub placement: PlacementPolicy,
    /// Offered load of every job, in phits/(node·cycle).
    pub offered_load: f64,
}

impl SyntheticTrace {
    /// Build the trace (deterministic for a fixed spec).
    pub fn build(&self) -> Trace {
        assert!(self.jobs > 0, "a synthetic trace needs at least one job");
        assert!(!self.sizes.is_empty(), "no job sizes to draw from");
        assert!(!self.patterns.is_empty(), "no job patterns to draw from");
        let mut rng = Rng::seed_from(derive_seed(self.seed, 0xD15C));
        let mut arrival = 0u64;
        let jobs = (0..self.jobs)
            .map(|i| {
                arrival += exponential(&mut rng, self.mean_interarrival);
                TraceJob {
                    name: format!("j{i:03}"),
                    arrival,
                    size: *rng.choose(&self.sizes),
                    placement: self.placement,
                    pattern: *rng.choose(&self.patterns),
                    offered_load: self.offered_load,
                    completion: Completion::Duration(exponential(&mut rng, self.mean_duration)),
                }
            })
            .collect();
        Trace::new(self.name.clone(), jobs)
    }
}

/// An exponential draw with the given mean, rounded up to at least one cycle.
fn exponential(rng: &mut Rng, mean: f64) -> u64 {
    let u = rng.next_f64();
    (-(1.0 - u).ln() * mean).ceil().max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::new(
            "sample",
            vec![
                TraceJob {
                    name: "late".into(),
                    arrival: 500,
                    size: 8,
                    placement: PlacementPolicy::Random { seed: 3 },
                    pattern: JobPattern::Permutation { seed: 7 },
                    offered_load: 0.25,
                    completion: Completion::Volume(2_000),
                },
                TraceJob {
                    name: "early".into(),
                    arrival: 0,
                    size: 16,
                    placement: PlacementPolicy::Contiguous,
                    pattern: JobPattern::AdversarialGlobal(1),
                    offered_load: 0.4,
                    completion: Completion::Duration(3_000),
                },
            ],
        )
    }

    #[test]
    fn trace_sorts_by_arrival_and_round_trips_through_text() {
        let trace = sample_trace();
        assert_eq!(trace.jobs[0].name, "early");
        let text = trace.to_text();
        assert!(text.starts_with("trace sample\n"));
        assert!(text.contains("place=rand#3"));
        assert!(text.contains("pattern=PERM#7"));
        assert!(text.contains("volume=2000"));
        let parsed = Trace::parse(&text).expect("canonical text must parse");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn parse_tolerates_comments_and_key_order() {
        let text = "# a comment\n\n\
                    trace t\n\
                    job a size=4 arrive=10 load=0.1 pattern=ring place=RR duration=100\n";
        let trace = Trace::parse(text).unwrap();
        assert_eq!(trace.name, "t");
        assert_eq!(trace.jobs.len(), 1);
        // Both pattern= and place= are case-insensitive.
        assert_eq!(trace.jobs[0].pattern, JobPattern::RingExchange);
        assert_eq!(trace.jobs[0].placement, PlacementPolicy::RoundRobinRouters);
        assert_eq!(trace.jobs[0].completion, Completion::Duration(100));
    }

    #[test]
    fn parse_reports_line_numbers_for_errors() {
        let bad = "trace t\njob a arrive=0 size=4 place=cont pattern=UN load=0.1\n";
        let err = Trace::parse(bad).unwrap_err();
        assert!(err.contains("missing duration= or volume="), "{err}");
        let bad = "wat\n";
        assert!(Trace::parse(bad).unwrap_err().contains("line 1"));
        let bad = "job a arrive=0 size=4 place=weird pattern=UN load=0.1 duration=1\n";
        assert!(Trace::parse(bad).unwrap_err().contains("unknown placement"));
    }

    #[test]
    fn parse_rejects_duplicate_and_conflicting_keys() {
        let dup = "job a arrive=0 arrive=5 size=4 place=cont pattern=UN load=0.1 duration=1\n";
        let err = Trace::parse(dup).unwrap_err();
        assert!(err.contains("duplicate key `arrive=`"), "{err}");
        let both =
            "job a arrive=0 size=4 place=cont pattern=UN load=0.1 duration=5000 volume=100\n";
        let err = Trace::parse(both).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn validation_rejects_degenerate_jobs() {
        let job = |name: &str| TraceJob {
            name: name.into(),
            arrival: 0,
            size: 4,
            placement: PlacementPolicy::Contiguous,
            pattern: JobPattern::Uniform,
            offered_load: 0.1,
            completion: Completion::Duration(10),
        };
        assert!(Trace::try_new("t", vec![]).is_err());
        let mut tiny = job("tiny");
        tiny.size = 1;
        assert!(Trace::try_new("t", vec![tiny])
            .unwrap_err()
            .contains("at least 2"));
        let mut dead = job("dead");
        dead.completion = Completion::Duration(0);
        assert!(Trace::try_new("t", vec![dead])
            .unwrap_err()
            .contains("zero duration"));
        assert!(Trace::try_new("t", vec![job("dup"), job("dup")])
            .unwrap_err()
            .contains("duplicate"));
        // Names become raw CSV cells: commas would shift every column after them.
        assert!(Trace::try_new("t", vec![job("a,b")])
            .unwrap_err()
            .contains("bad job name"));
        assert!(Trace::try_new("t,x", vec![job("ok")])
            .unwrap_err()
            .contains("bad trace name"));
    }

    #[test]
    fn nominal_load_weighs_sizes() {
        let trace = sample_trace();
        let want = (0.25 * 8.0 + 0.4 * 16.0) / 72.0;
        assert!((trace.nominal_offered_load(72) - want).abs() < 1e-12);
        assert_eq!(trace.last_arrival(), 500);
    }

    #[test]
    fn synthetic_traces_are_deterministic_and_seed_sensitive() {
        let spec = SyntheticTrace {
            name: "syn".into(),
            seed: 9,
            jobs: 20,
            mean_interarrival: 400.0,
            mean_duration: 2_000.0,
            sizes: vec![4, 8, 16],
            patterns: vec![JobPattern::Uniform, JobPattern::RingExchange],
            placement: PlacementPolicy::Contiguous,
            offered_load: 0.15,
        };
        let one = spec.build();
        assert_eq!(one, spec.build());
        assert_eq!(one.jobs.len(), 20);
        assert!(one.jobs.iter().all(|j| [4, 8, 16].contains(&j.size)));
        assert!(one.jobs.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(one.last_arrival() > 0);
        let other = SyntheticTrace { seed: 10, ..spec };
        assert_ne!(one, other.build());
        // The synthetic trace survives the text round-trip too.
        assert_eq!(Trace::parse(&one.to_text()).unwrap(), one);
    }
}
