//! Node-indexed, time-aware composite pattern used by the workload subsystem.
//!
//! A [`WorkloadPattern`] partitions the machine's nodes into *slots* (one per job)
//! and gives every slot a *schedule*: a list of `(start_cycle, pattern)` entries
//! sorted by start cycle.  The destination of a packet is chosen by the pattern of
//! the source node's slot that is active at the generation cycle, so a single
//! `Box<dyn TrafficPattern>` can drive a multi-job, phase-switching workload through
//! the unchanged simulation engine.

use crate::{BoxedPattern, TrafficPattern, Uniform};
use dragonfly_rng::Rng;
use dragonfly_topology::{DragonflyParams, NodeId};

/// Slot value for nodes that belong to no job (they fall back to uniform traffic if
/// a destination is ever requested for them; the workload runtime never injects from
/// such nodes).
pub const UNASSIGNED_SLOT: u16 = u16::MAX;

/// Per-slot phase schedule: patterns switching at cycle boundaries.
struct Schedule {
    /// Phase start cycles, strictly increasing, first entry 0.
    starts: Vec<u64>,
    /// Pattern of each phase (same length as `starts`).
    patterns: Vec<BoxedPattern>,
}

impl Schedule {
    /// Index of the phase active at `cycle`.
    #[inline]
    fn phase_at(&self, cycle: u64) -> usize {
        // partition_point returns the number of starts ≤ cycle; phases are few
        // (usually 1-3), so this is effectively a couple of comparisons.
        self.starts.partition_point(|&s| s <= cycle) - 1
    }
}

/// Node-indexed, time-aware composite of traffic patterns (see module docs).
pub struct WorkloadPattern {
    label: String,
    slot_of_node: Vec<u16>,
    schedules: Vec<Schedule>,
}

impl WorkloadPattern {
    /// Build the composite.
    ///
    /// `slot_of_node[n]` names the schedule of node `n` (or [`UNASSIGNED_SLOT`]);
    /// `schedules[s]` is the `(start_cycle, pattern)` list of slot `s`, which must be
    /// non-empty, sorted by strictly increasing start cycle and begin at cycle 0.
    pub fn new(
        label: impl Into<String>,
        slot_of_node: Vec<u16>,
        schedules: Vec<Vec<(u64, BoxedPattern)>>,
    ) -> Self {
        for &slot in &slot_of_node {
            assert!(
                slot == UNASSIGNED_SLOT || (slot as usize) < schedules.len(),
                "node assigned to slot {slot} but only {} schedules given",
                schedules.len()
            );
        }
        let schedules = schedules
            .into_iter()
            .map(|entries| {
                assert!(!entries.is_empty(), "every slot needs at least one phase");
                let (starts, patterns): (Vec<u64>, Vec<BoxedPattern>) = entries.into_iter().unzip();
                assert_eq!(starts[0], 0, "the first phase must start at cycle 0");
                assert!(
                    starts.windows(2).all(|w| w[0] < w[1]),
                    "phase start cycles must be strictly increasing"
                );
                Schedule { starts, patterns }
            })
            .collect();
        Self {
            label: label.into(),
            slot_of_node,
            schedules,
        }
    }

    /// Number of slots (jobs).
    pub fn slots(&self) -> usize {
        self.schedules.len()
    }

    /// Slot of a node, if assigned.
    pub fn slot_of(&self, node: NodeId) -> Option<u16> {
        match self.slot_of_node.get(node.index()) {
            Some(&s) if s != UNASSIGNED_SLOT => Some(s),
            _ => None,
        }
    }

    /// Index of the phase of `slot` active at `cycle`.
    pub fn phase_at(&self, slot: u16, cycle: u64) -> usize {
        self.schedules[slot as usize].phase_at(cycle)
    }
}

impl TrafficPattern for WorkloadPattern {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        self.destination_at(0, src, params, rng)
    }

    fn destination_at(
        &self,
        cycle: u64,
        src: NodeId,
        params: &DragonflyParams,
        rng: &mut Rng,
    ) -> NodeId {
        match self.slot_of(src) {
            Some(slot) => {
                let schedule = &self.schedules[slot as usize];
                let phase = schedule.phase_at(cycle);
                schedule.patterns[phase].destination_at(cycle, src, params, rng)
            }
            None => Uniform.destination(src, params, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdversarialGlobal, NodeShift};

    fn params() -> DragonflyParams {
        DragonflyParams::new(2)
    }

    fn shift(offset: usize) -> BoxedPattern {
        Box::new(NodeShift::new(offset))
    }

    #[test]
    fn routes_by_slot_and_phase() {
        let p = params();
        let n = p.num_nodes();
        // Even nodes: slot 0 (shift +1 forever). Odd nodes: slot 1, shift +2 until
        // cycle 100, then shift +3.
        let slot_of_node = (0..n).map(|i| (i % 2) as u16).collect();
        let pattern = WorkloadPattern::new(
            "test",
            slot_of_node,
            vec![vec![(0, shift(1))], vec![(0, shift(2)), (100, shift(3))]],
        );
        let mut rng = Rng::seed_from(1);
        assert_eq!(
            pattern.destination_at(0, NodeId(4), &p, &mut rng),
            NodeId(5)
        );
        assert_eq!(
            pattern.destination_at(0, NodeId(5), &p, &mut rng),
            NodeId(7)
        );
        assert_eq!(
            pattern.destination_at(99, NodeId(5), &p, &mut rng),
            NodeId(7)
        );
        assert_eq!(
            pattern.destination_at(100, NodeId(5), &p, &mut rng),
            NodeId(8)
        );
        assert_eq!(
            pattern.destination_at(10_000, NodeId(5), &p, &mut rng),
            NodeId(8)
        );
        assert_eq!(pattern.phase_at(1, 99), 0);
        assert_eq!(pattern.phase_at(1, 100), 1);
        assert_eq!(pattern.name(), "test");
    }

    #[test]
    fn unassigned_nodes_fall_back_to_uniform() {
        let p = params();
        let mut slot_of_node = vec![UNASSIGNED_SLOT; p.num_nodes()];
        slot_of_node[0] = 0;
        let pattern = WorkloadPattern::new(
            "partial",
            slot_of_node,
            vec![vec![(
                0,
                Box::new(AdversarialGlobal::new(1)) as BoxedPattern,
            )]],
        );
        let mut rng = Rng::seed_from(2);
        assert!(pattern.slot_of(NodeId(0)).is_some());
        assert!(pattern.slot_of(NodeId(1)).is_none());
        for _ in 0..100 {
            let d = pattern.destination_at(0, NodeId(1), &p, &mut rng);
            assert_ne!(d, NodeId(1));
        }
    }

    #[test]
    #[should_panic(expected = "first phase must start at cycle 0")]
    fn rejects_late_first_phase() {
        WorkloadPattern::new("bad", vec![0], vec![vec![(5, shift(1))]]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_phases() {
        WorkloadPattern::new(
            "bad",
            vec![0],
            vec![vec![(0, shift(1)), (50, shift(2)), (50, shift(3))]],
        );
    }

    #[test]
    #[should_panic(expected = "schedules given")]
    fn rejects_out_of_range_slot() {
        WorkloadPattern::new("bad", vec![3], vec![vec![(0, shift(1))]]);
    }
}
