//! Time-varying destination adapter for jobs that appear and disappear.
//!
//! The static [`crate::WorkloadPattern`] fixes its node→slot map and per-slot phase
//! schedules at compile time; a dynamic job scheduler cannot use it because jobs are
//! placed (and their node sets chosen) *during* the run.  [`DynamicSlots`] is the
//! mutable sibling: the scheduler installs a pattern over a node set when a job is
//! placed and clears it when the job departs, while the simulation engine keeps
//! asking the same `destination` question every time a source generates a packet.

use crate::{BoxedPattern, TrafficPattern, Uniform, UNASSIGNED_SLOT};
use dragonfly_rng::Rng;
use dragonfly_topology::{DragonflyParams, NodeId};

/// A mutable node→slot map with one installable destination pattern per slot
/// (see the module docs).
pub struct DynamicSlots {
    slot_of_node: Vec<u16>,
    patterns: Vec<Option<BoxedPattern>>,
    fallback: Uniform,
}

impl DynamicSlots {
    /// An empty adapter for a machine of `num_nodes` nodes and up to `slots` jobs.
    pub fn new(num_nodes: usize, slots: usize) -> Self {
        assert!(
            slots < UNASSIGNED_SLOT as usize,
            "too many slots for the u16 slot tag"
        );
        Self {
            slot_of_node: vec![UNASSIGNED_SLOT; num_nodes],
            patterns: (0..slots).map(|_| None).collect(),
            fallback: Uniform::new(),
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.patterns.len()
    }

    /// The slot a node currently belongs to, if any.
    pub fn slot_of(&self, node: NodeId) -> Option<u16> {
        match self.slot_of_node.get(node.index()) {
            Some(&s) if s != UNASSIGNED_SLOT => Some(s),
            _ => None,
        }
    }

    /// Install `pattern` for `slot` over `nodes` (a placed job).
    ///
    /// # Panics
    ///
    /// Panics when the slot is already installed or any node is already claimed —
    /// the scheduler's node-disjointness invariant.
    pub fn install(&mut self, slot: u16, nodes: &[NodeId], pattern: BoxedPattern) {
        assert!(
            self.patterns[slot as usize].is_none(),
            "slot {slot} installed twice"
        );
        for &node in nodes {
            let entry = &mut self.slot_of_node[node.index()];
            assert_eq!(
                *entry, UNASSIGNED_SLOT,
                "node {node:?} already belongs to slot {}",
                *entry
            );
            *entry = slot;
        }
        self.patterns[slot as usize] = Some(pattern);
    }

    /// Tear `slot` down (a departed job): its nodes become unassigned and the
    /// pattern is dropped.
    ///
    /// # Panics
    ///
    /// Panics when the slot is not installed or `nodes` does not match the
    /// installed node set.
    pub fn clear(&mut self, slot: u16, nodes: &[NodeId]) {
        assert!(
            self.patterns[slot as usize].is_some(),
            "slot {slot} cleared while not installed"
        );
        for &node in nodes {
            let entry = &mut self.slot_of_node[node.index()];
            assert_eq!(*entry, slot, "node {node:?} does not belong to slot {slot}");
            *entry = UNASSIGNED_SLOT;
        }
        self.patterns[slot as usize] = None;
    }

    /// Destination for a packet generated at `src` during `cycle`: the installed
    /// pattern of the source's slot, or machine-wide uniform for unassigned nodes
    /// (a scheduler never injects from those, but burst preloads may).
    pub fn destination(
        &self,
        cycle: u64,
        src: NodeId,
        params: &DragonflyParams,
        rng: &mut Rng,
    ) -> NodeId {
        match self.slot_of(src) {
            Some(slot) => self.patterns[slot as usize]
                .as_ref()
                .expect("assigned nodes always have an installed pattern")
                .destination_at(cycle, src, params, rng),
            None => self.fallback.destination(src, params, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeShift;

    fn params() -> DragonflyParams {
        DragonflyParams::new(2)
    }

    fn shift(offset: usize) -> BoxedPattern {
        Box::new(NodeShift::new(offset))
    }

    #[test]
    fn install_routes_and_clear_reverts_to_uniform() {
        let p = params();
        let mut slots = DynamicSlots::new(p.num_nodes(), 4);
        assert_eq!(slots.slots(), 4);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        slots.install(2, &nodes, shift(1));
        assert_eq!(slots.slot_of(NodeId(0)), Some(2));
        assert_eq!(slots.slot_of(NodeId(4)), None);
        let mut rng = Rng::seed_from(1);
        assert_eq!(slots.destination(0, NodeId(3), &p, &mut rng), NodeId(4));
        slots.clear(2, &nodes);
        assert_eq!(slots.slot_of(NodeId(3)), None);
        // Cleared nodes fall back to machine-wide uniform (never src itself).
        for _ in 0..50 {
            let d = slots.destination(0, NodeId(3), &p, &mut rng);
            assert_ne!(d, NodeId(3));
        }
        // The slot is reusable after the teardown.
        slots.install(2, &nodes, shift(2));
        assert_eq!(slots.destination(9, NodeId(3), &p, &mut rng), NodeId(5));
    }

    #[test]
    #[should_panic(expected = "installed twice")]
    fn double_install_panics() {
        let mut slots = DynamicSlots::new(72, 2);
        slots.install(0, &[NodeId(0)], shift(1));
        slots.install(0, &[NodeId(1)], shift(1));
    }

    #[test]
    #[should_panic(expected = "already belongs to slot")]
    fn overlapping_install_panics() {
        let mut slots = DynamicSlots::new(72, 2);
        slots.install(0, &[NodeId(5)], shift(1));
        slots.install(1, &[NodeId(5)], shift(1));
    }

    #[test]
    #[should_panic(expected = "does not belong to slot")]
    fn mismatched_clear_panics() {
        let mut slots = DynamicSlots::new(72, 2);
        slots.install(0, &[NodeId(0)], shift(1));
        slots.clear(0, &[NodeId(1)]);
    }
}
