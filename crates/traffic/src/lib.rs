//! Synthetic traffic patterns used by the paper's evaluation.
//!
//! A [`TrafficPattern`] maps a source node to a destination node every time the source
//! generates a packet.  The patterns implemented here are exactly those of the paper:
//!
//! * **UN** — uniform random: every other node is equally likely,
//! * **ADVG+N** — adversarial-global: all nodes of group *i* send to random nodes of
//!   group *i + N*, saturating the single global link between the two groups,
//! * **ADVL+N** — adversarial-local: all nodes of router *i* send to nodes of router
//!   *i + N* of the same group, saturating a single local link,
//! * **ADVG+g/ADVL+l mixes** — a per-packet Bernoulli choice between an
//!   adversarial-global and an adversarial-local component (Figures 6 and 9).
//!
//! The crate also provides the generation processes: the Bernoulli injection process
//! used for the steady-state experiments and the fixed-size burst used for the burst
//! consumption experiments.

mod dynamic;
mod injection;
mod patterns;
mod patterns_extra;
mod workload_adapter;

pub use dynamic::DynamicSlots;
pub use injection::{BernoulliInjection, BurstSpec};
pub use patterns::{AdversarialGlobal, AdversarialLocal, MixedGlobalLocal, Permutation, Uniform};
pub use patterns_extra::{BitComplement, Hotspot, NodeShift};
pub use workload_adapter::{WorkloadPattern, UNASSIGNED_SLOT};

use dragonfly_rng::Rng;
use dragonfly_topology::{DragonflyParams, NodeId};

/// A synthetic traffic pattern: a (possibly randomized) map from source to destination.
pub trait TrafficPattern: Send {
    /// Short name used in reports and CSV output (e.g. `"ADVG+1"`).
    fn name(&self) -> String;

    /// Pick the destination for a packet generated at `src`.
    ///
    /// Implementations must never return `src` itself (a node does not send packets to
    /// itself through the network).
    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId;

    /// Time-aware variant of [`TrafficPattern::destination`]: pick the destination for
    /// a packet generated at `src` during `cycle`.
    ///
    /// The synthetic patterns of the paper are stationary and ignore the cycle, which
    /// is the default.  Composite patterns (phase schedules, workloads) override this
    /// to switch behaviour at cycle boundaries; the simulation engine always generates
    /// destinations through this method.
    fn destination_at(
        &self,
        cycle: u64,
        src: NodeId,
        params: &DragonflyParams,
        rng: &mut Rng,
    ) -> NodeId {
        let _ = cycle;
        self.destination(src, params, rng)
    }
}

/// Boxed pattern alias used throughout the workspace.
pub type BoxedPattern = Box<dyn TrafficPattern>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boxed_pattern_is_usable() {
        let p = DragonflyParams::new(2);
        let pattern: BoxedPattern = Box::new(Uniform::new());
        let mut rng = Rng::seed_from(1);
        let d = pattern.destination(NodeId(0), &p, &mut rng);
        assert_ne!(d, NodeId(0));
        assert!(d.index() < p.num_nodes());
    }
}
