//! The traffic patterns of the paper: UN, ADVG+N, ADVL+N, mixes and permutations.

use crate::TrafficPattern;
use dragonfly_rng::Rng;
use dragonfly_topology::{DragonflyParams, GroupId, NodeId};

/// Uniform random traffic: each packet goes to a uniformly random node other than the
/// source.
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl Uniform {
    /// Create the pattern.
    pub fn new() -> Self {
        Self
    }
}

impl TrafficPattern for Uniform {
    fn name(&self) -> String {
        "UN".to_string()
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        let n = params.num_nodes();
        debug_assert!(n >= 2);
        // Draw from [0, n-1) and skip over the source to keep the draw unbiased.
        let raw = rng.gen_index(n - 1);
        let dest = if raw >= src.index() { raw + 1 } else { raw };
        NodeId(dest as u32)
    }
}

/// Adversarial-global traffic ADVG+N: every node of group `i` sends to a uniformly
/// random node of group `i + N (mod G)`.
///
/// All of a group's traffic then competes for the single global channel between the
/// two groups, which caps minimal-routing throughput at `1/(2h²+1)` phits/(node·cycle).
#[derive(Debug, Clone, Copy)]
pub struct AdversarialGlobal {
    offset: usize,
}

impl AdversarialGlobal {
    /// Create ADVG+`offset`.  The offset must not be a multiple of the group count.
    pub fn new(offset: usize) -> Self {
        assert!(offset >= 1, "ADVG offset must be at least 1");
        Self { offset }
    }

    /// The group offset `N`.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl TrafficPattern for AdversarialGlobal {
    fn name(&self) -> String {
        format!("ADVG+{}", self.offset)
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        let groups = params.groups();
        let src_group = params.group_of_node(src);
        let dst_group = GroupId(((src_group.index() + self.offset) % groups) as u32);
        if dst_group == src_group {
            // Degenerate offset (multiple of the group count): fall back to uniform so
            // the pattern still never targets the source itself.
            return Uniform.destination(src, params, rng);
        }
        let nodes_per_group = params.nodes_per_group();
        let first_router = params.router_in_group(dst_group, 0);
        let first_node = params.node_of_router(first_router, 0);
        NodeId((first_node.index() + rng.gen_index(nodes_per_group)) as u32)
    }
}

/// Adversarial-local traffic ADVL+N: every node of router `i` sends to a random node of
/// router `i + N (mod 2h)` in the same group.
///
/// All of a router's injected traffic then competes for a single local link, which caps
/// minimal-routing throughput at `1/h` phits/(node·cycle).
#[derive(Debug, Clone, Copy)]
pub struct AdversarialLocal {
    offset: usize,
}

impl AdversarialLocal {
    /// Create ADVL+`offset`.  The offset must not be a multiple of `2h`.
    pub fn new(offset: usize) -> Self {
        assert!(offset >= 1, "ADVL offset must be at least 1");
        Self { offset }
    }

    /// The router offset `N`.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl TrafficPattern for AdversarialLocal {
    fn name(&self) -> String {
        format!("ADVL+{}", self.offset)
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        let src_router = params.router_of_node(src);
        let group = params.group_of_router(src_router);
        let routers = params.routers_per_group();
        let src_idx = params.router_index_in_group(src_router);
        let dst_idx = (src_idx + self.offset) % routers;
        if dst_idx == src_idx {
            return Uniform.destination(src, params, rng);
        }
        let dst_router = params.router_in_group(group, dst_idx);
        let term = rng.gen_index(params.nodes_per_router());
        params.node_of_router(dst_router, term)
    }
}

/// Per-packet mix of an adversarial-global and an adversarial-local component.
///
/// With probability `global_fraction` the packet follows ADVG+`global_offset`,
/// otherwise ADVL+`local_offset`.  Figure 6/9 of the paper sweep `global_fraction`
/// from 0 % to 100 % with ADVG+h and ADVL+1.
#[derive(Debug, Clone, Copy)]
pub struct MixedGlobalLocal {
    global_fraction: f64,
    global: AdversarialGlobal,
    local: AdversarialLocal,
}

impl MixedGlobalLocal {
    /// Create the mix.  `global_fraction` is clamped to `[0, 1]`.
    pub fn new(global_fraction: f64, global_offset: usize, local_offset: usize) -> Self {
        Self {
            global_fraction: global_fraction.clamp(0.0, 1.0),
            global: AdversarialGlobal::new(global_offset),
            local: AdversarialLocal::new(local_offset),
        }
    }

    /// Fraction of packets following the global component.
    pub fn global_fraction(&self) -> f64 {
        self.global_fraction
    }
}

impl TrafficPattern for MixedGlobalLocal {
    fn name(&self) -> String {
        format!(
            "MIX{}%(ADVG+{}/ADVL+{})",
            (self.global_fraction * 100.0).round() as u32,
            self.global.offset(),
            self.local.offset()
        )
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        if rng.bernoulli(self.global_fraction) {
            self.global.destination(src, params, rng)
        } else {
            self.local.destination(src, params, rng)
        }
    }
}

/// A fixed node permutation: node `i` always sends to `perm[i]`.
///
/// Not used by the paper's figures but handy for regression tests and for users who
/// want to replay application-derived communication patterns.
#[derive(Debug, Clone)]
pub struct Permutation {
    perm: Vec<u32>,
}

impl Permutation {
    /// Build from an explicit permutation vector. `perm[i]` must be a valid node and
    /// must differ from `i`.
    pub fn new(perm: Vec<u32>) -> Self {
        for (i, &d) in perm.iter().enumerate() {
            assert_ne!(i as u32, d, "permutation maps node {i} to itself");
        }
        Self { perm }
    }

    /// A random derangement-ish permutation (random shuffle re-rolled until no fixed
    /// points remain) over `n` nodes.
    pub fn random(n: usize, rng: &mut Rng) -> Self {
        assert!(n >= 2);
        loop {
            let mut v: Vec<u32> = (0..n as u32).collect();
            rng.shuffle(&mut v);
            if v.iter().enumerate().all(|(i, &d)| i as u32 != d) {
                return Self { perm: v };
            }
        }
    }
}

impl TrafficPattern for Permutation {
    fn name(&self) -> String {
        "PERM".to_string()
    }

    fn destination(&self, src: NodeId, _params: &DragonflyParams, _rng: &mut Rng) -> NodeId {
        NodeId(self.perm[src.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DragonflyParams {
        DragonflyParams::new(4)
    }

    #[test]
    fn uniform_never_targets_source_and_covers_space() {
        let p = params();
        let mut rng = Rng::seed_from(7);
        let src = NodeId(10);
        let mut seen = vec![false; p.num_nodes()];
        for _ in 0..20_000 {
            let d = Uniform.destination(src, &p, &mut rng);
            assert_ne!(d, src);
            seen[d.index()] = true;
        }
        let covered = seen.iter().filter(|&&x| x).count();
        assert!(covered > p.num_nodes() * 9 / 10, "covered {covered}");
        assert!(!seen[src.index()]);
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let p = DragonflyParams::new(2);
        let mut rng = Rng::seed_from(3);
        let src = NodeId(0);
        let n = p.num_nodes();
        let samples = 50_000;
        let mut counts = vec![0usize; n];
        for _ in 0..samples {
            counts[Uniform.destination(src, &p, &mut rng).index()] += 1;
        }
        let expected = samples as f64 / (n - 1) as f64;
        for (i, &c) in counts.iter().enumerate() {
            if i == 0 {
                assert_eq!(c, 0);
            } else {
                assert!(
                    (c as f64 - expected).abs() < expected * 0.2,
                    "node {i}: {c} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn advg_targets_offset_group() {
        let p = params();
        let mut rng = Rng::seed_from(1);
        let pattern = AdversarialGlobal::new(3);
        for src_raw in [0usize, 5, 100, p.num_nodes() - 1] {
            let src = NodeId(src_raw as u32);
            let src_group = p.group_of_node(src);
            for _ in 0..50 {
                let d = pattern.destination(src, &p, &mut rng);
                let dst_group = p.group_of_node(d);
                assert_eq!(
                    dst_group.index(),
                    (src_group.index() + 3) % p.groups(),
                    "src group {src_group}, dst group {dst_group}"
                );
                assert_ne!(d, src);
            }
        }
        assert_eq!(pattern.name(), "ADVG+3");
    }

    #[test]
    fn advg_covers_all_nodes_of_target_group() {
        let p = params();
        let mut rng = Rng::seed_from(2);
        let pattern = AdversarialGlobal::new(1);
        let src = NodeId(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(pattern.destination(src, &p, &mut rng).index());
        }
        assert_eq!(seen.len(), p.nodes_per_group());
    }

    #[test]
    fn advg_degenerate_offset_falls_back_to_uniform() {
        let p = DragonflyParams::new(2); // 9 groups
        let pattern = AdversarialGlobal::new(9);
        let mut rng = Rng::seed_from(5);
        let src = NodeId(0);
        for _ in 0..100 {
            let d = pattern.destination(src, &p, &mut rng);
            assert_ne!(d, src);
        }
    }

    #[test]
    fn advl_targets_offset_router_in_same_group() {
        let p = params();
        let mut rng = Rng::seed_from(11);
        let pattern = AdversarialLocal::new(1);
        for src_raw in [0usize, 7, 63, p.num_nodes() - 1] {
            let src = NodeId(src_raw as u32);
            let src_router = p.router_of_node(src);
            let src_group = p.group_of_router(src_router);
            for _ in 0..20 {
                let d = pattern.destination(src, &p, &mut rng);
                let dst_router = p.router_of_node(d);
                assert_eq!(p.group_of_router(dst_router), src_group);
                let expect_idx = (p.router_index_in_group(src_router) + 1) % p.routers_per_group();
                assert_eq!(p.router_index_in_group(dst_router), expect_idx);
            }
        }
        assert_eq!(pattern.name(), "ADVL+1");
    }

    #[test]
    fn mixed_fraction_controls_split() {
        let p = params();
        let mut rng = Rng::seed_from(13);
        let pattern = MixedGlobalLocal::new(0.7, p.h(), 1);
        let src = NodeId(0);
        let src_group = p.group_of_node(src);
        let n = 20_000;
        let mut global = 0usize;
        for _ in 0..n {
            let d = pattern.destination(src, &p, &mut rng);
            if p.group_of_node(d) != src_group {
                global += 1;
            }
        }
        let frac = global as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.02, "global fraction {frac}");
    }

    #[test]
    fn mixed_extremes_are_pure() {
        let p = params();
        let mut rng = Rng::seed_from(17);
        let all_local = MixedGlobalLocal::new(0.0, p.h(), 1);
        let all_global = MixedGlobalLocal::new(1.0, p.h(), 1);
        let src = NodeId(42);
        let src_group = p.group_of_node(src);
        for _ in 0..200 {
            assert_eq!(
                p.group_of_node(all_local.destination(src, &p, &mut rng)),
                src_group
            );
            assert_ne!(
                p.group_of_node(all_global.destination(src, &p, &mut rng)),
                src_group
            );
        }
    }

    #[test]
    fn mixed_name_mentions_components() {
        let m = MixedGlobalLocal::new(0.25, 8, 1);
        assert_eq!(m.name(), "MIX25%(ADVG+8/ADVL+1)");
        assert!((m.global_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn permutation_is_deterministic_and_fixed_point_free() {
        let p = DragonflyParams::new(2);
        let mut rng = Rng::seed_from(19);
        let perm = Permutation::random(p.num_nodes(), &mut rng);
        for i in 0..p.num_nodes() {
            let src = NodeId(i as u32);
            let d1 = perm.destination(src, &p, &mut rng);
            let d2 = perm.destination(src, &p, &mut rng);
            assert_eq!(d1, d2);
            assert_ne!(d1, src);
        }
    }

    #[test]
    #[should_panic(expected = "maps node")]
    fn permutation_rejects_fixed_points() {
        Permutation::new(vec![0, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn advg_zero_offset_rejected() {
        AdversarialGlobal::new(0);
    }
}
