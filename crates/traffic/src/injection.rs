//! Packet generation processes: Bernoulli injection and fixed-size bursts.

use dragonfly_rng::Rng;

/// Bernoulli injection process, the paper's steady-state source model.
///
/// The offered load is expressed in phits/(node·cycle); with packets of `packet_size`
/// phits a node generates a packet in a given cycle with probability
/// `load / packet_size`, so the expected injected phit rate equals the offered load.
#[derive(Debug, Clone, Copy)]
pub struct BernoulliInjection {
    offered_load: f64,
    packet_size: usize,
}

impl BernoulliInjection {
    /// Create a process with the given offered load (phits/(node·cycle)) and packet
    /// size (phits).
    pub fn new(offered_load: f64, packet_size: usize) -> Self {
        assert!(offered_load >= 0.0, "offered load must be non-negative");
        assert!(packet_size >= 1, "packet size must be at least one phit");
        Self {
            offered_load,
            packet_size,
        }
    }

    /// Offered load in phits/(node·cycle).
    pub fn offered_load(&self) -> f64 {
        self.offered_load
    }

    /// Packet size in phits.
    pub fn packet_size(&self) -> usize {
        self.packet_size
    }

    /// Per-cycle packet generation probability for one node.
    pub fn packet_probability(&self) -> f64 {
        (self.offered_load / self.packet_size as f64).min(1.0)
    }

    /// Decide whether a node generates a packet this cycle.
    #[inline]
    pub fn generate(&self, rng: &mut Rng) -> bool {
        rng.bernoulli(self.packet_probability())
    }
}

/// Specification of a burst-consumption experiment: every node generates a fixed
/// number of packets at cycle zero and the network runs until all are delivered.
#[derive(Debug, Clone, Copy)]
pub struct BurstSpec {
    packets_per_node: u64,
    packet_size: usize,
}

impl BurstSpec {
    /// Every node sends `packets_per_node` packets of `packet_size` phits.
    pub fn new(packets_per_node: u64, packet_size: usize) -> Self {
        assert!(
            packets_per_node >= 1,
            "burst needs at least one packet per node"
        );
        assert!(packet_size >= 1, "packet size must be at least one phit");
        Self {
            packets_per_node,
            packet_size,
        }
    }

    /// Packets each node generates.
    pub fn packets_per_node(&self) -> u64 {
        self.packets_per_node
    }

    /// Packet size in phits.
    pub fn packet_size(&self) -> usize {
        self.packet_size
    }

    /// Total phits a node will send.
    pub fn phits_per_node(&self) -> u64 {
        self.packets_per_node * self.packet_size as u64
    }

    /// Scale the per-node packet count so that the total payload matches a reference
    /// burst with a different packet size (the paper sends 1000×8-phit packets under
    /// VCT but 89×80-phit packets under WH to keep the payload comparable).
    pub fn with_equivalent_payload(reference: &BurstSpec, packet_size: usize) -> Self {
        let total_phits = reference.phits_per_node();
        let packets = (total_phits as f64 / packet_size as f64).round().max(1.0) as u64;
        Self::new(packets, packet_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_probability_scaling() {
        let inj = BernoulliInjection::new(0.4, 8);
        assert!((inj.packet_probability() - 0.05).abs() < 1e-12);
        assert_eq!(inj.packet_size(), 8);
        assert!((inj.offered_load() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_probability_clamped_to_one() {
        let inj = BernoulliInjection::new(20.0, 8);
        assert_eq!(inj.packet_probability(), 1.0);
    }

    #[test]
    fn bernoulli_generation_rate_matches_load() {
        let inj = BernoulliInjection::new(0.8, 8);
        let mut rng = Rng::seed_from(23);
        let cycles = 200_000;
        let packets = (0..cycles).filter(|_| inj.generate(&mut rng)).count();
        let phit_rate = packets as f64 * 8.0 / cycles as f64;
        assert!((phit_rate - 0.8).abs() < 0.02, "phit rate {phit_rate}");
    }

    #[test]
    fn zero_load_never_generates() {
        let inj = BernoulliInjection::new(0.0, 8);
        let mut rng = Rng::seed_from(1);
        assert!((0..1000).all(|_| !inj.generate(&mut rng)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_load_rejected() {
        BernoulliInjection::new(-0.1, 8);
    }

    #[test]
    fn burst_phits_per_node() {
        let b = BurstSpec::new(1000, 8);
        assert_eq!(b.phits_per_node(), 8000);
        assert_eq!(b.packets_per_node(), 1000);
        assert_eq!(b.packet_size(), 8);
    }

    #[test]
    fn equivalent_payload_matches_paper_scaling() {
        // The paper: 1000 packets of 8 phits (VCT) versus 89 packets of 80 phits (WH),
        // chosen so the total payload is as close as possible.
        let vct = BurstSpec::new(1000, 8);
        let wh = BurstSpec::with_equivalent_payload(&vct, 80);
        assert_eq!(wh.packets_per_node(), 100);
        // With the paper's 89 the totals differ slightly; our rounding gives the exact
        // equivalent. Check that both are within 12% of the reference payload.
        let ratio = wh.phits_per_node() as f64 / vct.phits_per_node() as f64;
        assert!((ratio - 1.0).abs() < 0.12);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn empty_burst_rejected() {
        BurstSpec::new(0, 8);
    }
}
