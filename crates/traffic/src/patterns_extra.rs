//! Additional synthetic patterns commonly used in interconnection-network studies.
//!
//! These are not part of the paper's evaluation but are standard companions (bit
//! complement, node shift, hotspot) that downstream users expect from a traffic
//! library, and they are useful for regression-testing the simulator on workloads
//! with very different locality properties.

use crate::{TrafficPattern, Uniform};
use dragonfly_rng::Rng;
use dragonfly_topology::{DragonflyParams, NodeId};

/// Bit-complement traffic: node `i` always sends to node `N − 1 − i`.
///
/// In a Dragonfly this pairs the first and last groups, the second and second-to-last
/// and so on, which loads global channels very unevenly — a harsher variant of
/// adversarial-global traffic with a fixed permutation.
#[derive(Debug, Clone, Copy, Default)]
pub struct BitComplement;

impl BitComplement {
    /// Create the pattern.
    pub fn new() -> Self {
        Self
    }
}

impl TrafficPattern for BitComplement {
    fn name(&self) -> String {
        "BITCOMP".to_string()
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        let n = params.num_nodes() as u32;
        let dst = n - 1 - src.0;
        if dst == src.0 {
            // The middle node of an odd-sized network maps to itself; fall back to a
            // uniform destination for that single node.
            Uniform.destination(src, params, rng)
        } else {
            NodeId(dst)
        }
    }
}

/// Node-shift traffic: node `i` sends to node `i + offset (mod N)`.
///
/// With an offset equal to the number of nodes per group this becomes a whole-group
/// shift (similar to ADVG+1 but with deterministic per-node destinations); with a
/// small offset it is mostly router- and group-local.
#[derive(Debug, Clone, Copy)]
pub struct NodeShift {
    offset: usize,
}

impl NodeShift {
    /// Create a shift by `offset` nodes (must be at least 1).
    pub fn new(offset: usize) -> Self {
        assert!(offset >= 1, "node shift offset must be at least 1");
        Self { offset }
    }

    /// The shift amount.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl TrafficPattern for NodeShift {
    fn name(&self) -> String {
        format!("SHIFT+{}", self.offset)
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        let n = params.num_nodes();
        let dst = (src.index() + self.offset) % n;
        if dst == src.index() {
            Uniform.destination(src, params, rng)
        } else {
            NodeId(dst as u32)
        }
    }
}

/// Hotspot traffic: with probability `hot_fraction` the packet goes to the single hot
/// node, otherwise to a uniformly random node.
///
/// Hotspots saturate the ejection bandwidth of one router and are a classic stress
/// test for adaptive routing: misrouting cannot help because the bottleneck is the
/// destination itself, so a good mechanism should not waste bandwidth trying.
#[derive(Debug, Clone, Copy)]
pub struct Hotspot {
    hot_node: NodeId,
    hot_fraction: f64,
}

impl Hotspot {
    /// Create a hotspot pattern: `hot_fraction` of the packets (clamped to `[0, 1]`)
    /// target `hot_node`.
    pub fn new(hot_node: NodeId, hot_fraction: f64) -> Self {
        Self {
            hot_node,
            hot_fraction: hot_fraction.clamp(0.0, 1.0),
        }
    }

    /// The hot destination.
    pub fn hot_node(&self) -> NodeId {
        self.hot_node
    }

    /// The fraction of packets aimed at the hot destination.
    pub fn hot_fraction(&self) -> f64 {
        self.hot_fraction
    }
}

impl TrafficPattern for Hotspot {
    fn name(&self) -> String {
        format!(
            "HOT{}%@{}",
            (self.hot_fraction * 100.0).round() as u32,
            self.hot_node
        )
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        if src != self.hot_node && rng.bernoulli(self.hot_fraction) {
            self.hot_node
        } else {
            Uniform.destination(src, params, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DragonflyParams {
        DragonflyParams::new(2)
    }

    #[test]
    fn bit_complement_is_an_involution() {
        let p = params();
        let mut rng = Rng::seed_from(1);
        let n = p.num_nodes() as u32;
        for i in 0..n {
            let src = NodeId(i);
            let dst = BitComplement::new().destination(src, &p, &mut rng);
            assert_ne!(dst, src);
            if dst.0 == n - 1 - i {
                let back = BitComplement::new().destination(dst, &p, &mut rng);
                assert_eq!(back, src, "bit complement must be symmetric");
            }
        }
        assert_eq!(BitComplement::new().name(), "BITCOMP");
    }

    #[test]
    fn node_shift_wraps_and_avoids_self() {
        let p = params();
        let mut rng = Rng::seed_from(2);
        let shift = NodeShift::new(5);
        assert_eq!(shift.offset(), 5);
        let n = p.num_nodes();
        for i in 0..n {
            let src = NodeId(i as u32);
            let dst = shift.destination(src, &p, &mut rng);
            assert_ne!(dst, src);
            assert_eq!(dst.index(), (i + 5) % n);
        }
        assert_eq!(shift.name(), "SHIFT+5");
    }

    #[test]
    fn node_shift_degenerate_offset_falls_back() {
        let p = params();
        let mut rng = Rng::seed_from(3);
        let shift = NodeShift::new(p.num_nodes());
        for i in 0..p.num_nodes() {
            let src = NodeId(i as u32);
            assert_ne!(shift.destination(src, &p, &mut rng), src);
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn node_shift_zero_rejected() {
        NodeShift::new(0);
    }

    #[test]
    fn hotspot_fraction_is_respected() {
        let p = params();
        let mut rng = Rng::seed_from(4);
        let hot = Hotspot::new(NodeId(10), 0.25);
        assert_eq!(hot.hot_node(), NodeId(10));
        let samples = 40_000;
        let mut to_hot = 0usize;
        for _ in 0..samples {
            let d = hot.destination(NodeId(0), &p, &mut rng);
            assert_ne!(d, NodeId(0));
            if d == NodeId(10) {
                to_hot += 1;
            }
        }
        let fraction = to_hot as f64 / samples as f64;
        // 25% direct hits plus the uniform share that happens to land on node 10.
        assert!(
            fraction > 0.24 && fraction < 0.30,
            "hot fraction {fraction}"
        );
    }

    #[test]
    fn hotspot_source_never_targets_itself() {
        let p = params();
        let mut rng = Rng::seed_from(5);
        let hot = Hotspot::new(NodeId(3), 1.0);
        for _ in 0..100 {
            assert_ne!(hot.destination(NodeId(3), &p, &mut rng), NodeId(3));
        }
        assert!(hot.name().starts_with("HOT100%"));
    }

    #[test]
    fn hotspot_fraction_clamped() {
        let hot = Hotspot::new(NodeId(0), 7.0);
        assert_eq!(hot.hot_fraction(), 1.0);
        let cold = Hotspot::new(NodeId(0), -1.0);
        assert_eq!(cold.hot_fraction(), 0.0);
    }
}
