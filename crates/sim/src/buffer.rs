//! Virtual-channel FIFO buffers measured in phits.

use crate::packet::PacketId;
use crate::ring::RingMeta;

/// Bookkeeping for one packet currently (partially) stored in a VC buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PacketSlot {
    /// The packet.
    pub packet: PacketId,
    /// Total packet size in phits.
    pub size: u16,
    /// Phits of this packet received into the buffer so far.
    pub phits_received: u16,
    /// Phits of this packet forwarded out of the buffer so far.
    pub phits_sent: u16,
    /// Cycle the head phit entered this buffer (delay attribution: the start
    /// of the VC-allocation wait at this hop).
    pub enqueue_cycle: u64,
    /// Cycle this buffer's packet was granted an output VC (delay
    /// attribution: the start of the credit/switch wait; 0 until granted).
    pub grant_cycle: u64,
}

impl PacketSlot {
    /// Phits physically present in the buffer.
    #[inline]
    pub fn phits_present(&self) -> u16 {
        self.phits_received - self.phits_sent
    }

    /// True when at least one phit is available to forward.
    #[inline]
    pub fn has_phit(&self) -> bool {
        self.phits_present() > 0
    }

    /// True when every phit of the packet has been forwarded.
    #[inline]
    pub fn fully_sent(&self) -> bool {
        self.phits_sent == self.size
    }

    /// True when every phit of the packet has been received.
    #[inline]
    pub fn fully_received(&self) -> bool {
        self.phits_received == self.size
    }
}

/// One virtual-channel FIFO.
///
/// The buffer stores per-packet slots rather than individual phits: phits of a packet
/// arrive in order and cannot interleave with other packets inside a single VC, so a
/// `(received, sent)` pair per packet captures the exact FIFO content while staying
/// O(packets) instead of O(phits).
///
/// The slot queue is a slice-backed ring ([`RingMeta`]) over a region of its
/// router's shared slot pool ([`crate::router::Router::slot_pool`]): the
/// buffer itself is four words — the packed ring-metadata word, the pool
/// offset, the occupancy and the capacity — and every slot of every VC of a
/// router lives in one contiguous allocation.  The region is sized from two
/// invariants of the FIFO: phits arrive in order, so only the *newest* slot
/// can be partially received, and only the *head* slot forwards, so every
/// interior slot is fully received with nothing sent — it holds exactly
/// `size >= min_packet` present phits.  With `k` slots, `(k - 2) * min_packet
/// <= occupancy <= capacity`, so `k <= capacity / min_packet + 2` (and `k <=
/// capacity + 1` always, since every slot behind the head holds at least one
/// phit).  The ring is built at the tighter bound; deep buffers sized in
/// phits (a 256-phit global port) only pay for the handful of whole packets
/// they can actually hold.
#[derive(Debug, Clone)]
pub struct VcBuffer {
    slots: RingMeta,
    /// Start of this buffer's slot region in the router's pool.
    start: u32,
    occupancy: u32,
    capacity: u32,
}

impl VcBuffer {
    /// Number of packet slots a buffer of `capacity` phits needs for packets
    /// no smaller than `min_packet` phits (the region size the router's slot
    /// pool must reserve per VC).
    pub fn slot_bound(capacity: usize, min_packet: usize) -> usize {
        assert!(capacity >= 1, "buffer capacity must be at least one phit");
        assert!(min_packet >= 1, "packets are at least one phit");
        (capacity + 1).min(capacity / min_packet + 2)
    }

    /// Create a buffer of `capacity` phits for packets no smaller than
    /// `min_packet` phits (a smaller packet would overflow the slot ring and
    /// panic rather than corrupt state), backed by the pool region starting
    /// at `start` of [`VcBuffer::slot_bound`] slots.
    pub fn new(capacity: usize, min_packet: usize, start: usize) -> Self {
        let bound = Self::slot_bound(capacity, min_packet);
        Self {
            slots: RingMeta::new(bound),
            start: start as u32,
            occupancy: 0,
            capacity: capacity as u32,
        }
    }

    /// This buffer's slot region within its router's pool.
    #[inline]
    fn region<'a>(&self, pool: &'a [PacketSlot]) -> &'a [PacketSlot] {
        let start = self.start as usize;
        &pool[start..start + self.slots.capacity()]
    }

    /// Mutable slot region within its router's pool.
    #[inline]
    fn region_mut<'a>(&self, pool: &'a mut [PacketSlot]) -> &'a mut [PacketSlot] {
        let start = self.start as usize;
        &mut pool[start..start + self.slots.capacity()]
    }

    /// Capacity in phits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Phits currently stored.
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.occupancy as usize
    }

    /// Free space in phits.
    #[inline]
    pub fn free_space(&self) -> usize {
        (self.capacity - self.occupancy) as usize
    }

    /// True when no phit is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.occupancy == 0 && self.slots.is_empty()
    }

    /// Number of packet slots currently tracked (packets partially or fully present,
    /// or being cut through).
    #[inline]
    pub fn packets(&self) -> usize {
        self.slots.len()
    }

    /// The packet at the head of the FIFO.
    #[inline]
    pub fn head<'a>(&self, pool: &'a [PacketSlot]) -> Option<&'a PacketSlot> {
        self.slots.front(self.region(pool))
    }

    /// Receive one phit of `packet` at `cycle`.  `is_head` marks the first
    /// phit of the packet, which opens a new slot at the tail of the FIFO and
    /// stamps the slot's `enqueue_cycle` for delay attribution.
    ///
    /// Panics if the buffer would overflow (the credit scheme must prevent this) or if
    /// a non-head phit arrives for a packet that is not the most recent slot.
    pub fn receive_phit(
        &mut self,
        pool: &mut [PacketSlot],
        packet: PacketId,
        size: u16,
        is_head: bool,
        cycle: u64,
    ) {
        assert!(
            self.occupancy < self.capacity,
            "VC buffer overflow: credit accounting is broken"
        );
        let region = self.region_mut(pool);
        if is_head {
            self.slots.push_back(
                region,
                PacketSlot {
                    packet,
                    size,
                    phits_received: 1,
                    phits_sent: 0,
                    enqueue_cycle: cycle,
                    grant_cycle: 0,
                },
            );
        } else {
            let slot = self
                .slots
                .back_mut(region)
                .expect("body phit arrived with no open packet slot");
            assert_eq!(
                slot.packet, packet,
                "phits of different packets interleaved within one VC"
            );
            assert!(
                slot.phits_received < slot.size,
                "received more phits than packet size"
            );
            slot.phits_received += 1;
        }
        self.occupancy += 1;
    }

    /// Forward one phit of the head packet out of the buffer.
    ///
    /// Returns the packet id and whether the forwarded phit was the tail (last) phit;
    /// when it is, the slot is popped.  Panics if no phit is available.
    pub fn send_phit(&mut self, pool: &mut [PacketSlot]) -> (PacketId, bool) {
        let region = self.region_mut(pool);
        let slot = self
            .slots
            .front_mut(region)
            .expect("send from an empty VC buffer");
        assert!(slot.has_phit(), "no phit of the head packet is present yet");
        slot.phits_sent += 1;
        self.occupancy -= 1;
        let packet = slot.packet;
        let is_tail = slot.fully_sent();
        if is_tail {
            debug_assert!(slot.fully_received());
            self.slots.pop_slot();
        }
        (packet, is_tail)
    }

    /// True when the head packet exists and has a phit ready to forward.
    #[inline]
    pub fn head_has_phit(&self, pool: &[PacketSlot]) -> bool {
        self.head(pool).map(|s| s.has_phit()).unwrap_or(false)
    }

    /// Stamp the head slot's `grant_cycle` (delay attribution: the output-VC
    /// grant ends the head's VC wait at this hop).
    #[inline]
    pub fn stamp_grant(&mut self, pool: &mut [PacketSlot], cycle: u64) {
        let region = self.region_mut(pool);
        let slot = self
            .slots
            .front_mut(region)
            .expect("grant stamped on an empty VC buffer");
        slot.grant_cycle = cycle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u32) -> PacketId {
        PacketId(i as u64)
    }

    /// A buffer plus a standalone pool exactly covering its slot region.
    fn with_pool(capacity: usize, min_packet: usize) -> (VcBuffer, Vec<PacketSlot>) {
        let bound = VcBuffer::slot_bound(capacity, min_packet);
        (
            VcBuffer::new(capacity, min_packet, 0),
            vec![PacketSlot::default(); bound],
        )
    }

    #[test]
    fn receive_then_send_whole_packet() {
        let (mut b, mut pool) = with_pool(16, 4);
        for i in 0..4u16 {
            b.receive_phit(&mut pool, pid(1), 4, i == 0, 0);
        }
        assert_eq!(b.occupancy(), 4);
        assert_eq!(b.packets(), 1);
        assert!(b.head(&pool).unwrap().fully_received());
        for i in 0..4 {
            let (p, tail) = b.send_phit(&mut pool);
            assert_eq!(p, pid(1));
            assert_eq!(tail, i == 3);
        }
        assert!(b.is_empty());
        assert_eq!(b.free_space(), 16);
    }

    #[test]
    fn cut_through_send_while_receiving() {
        let (mut b, mut pool) = with_pool(8, 4);
        b.receive_phit(&mut pool, pid(7), 4, true, 0);
        assert!(b.head_has_phit(&pool));
        let (_, tail) = b.send_phit(&mut pool);
        assert!(!tail);
        assert_eq!(b.occupancy(), 0);
        assert!(!b.head_has_phit(&pool));
        assert_eq!(b.packets(), 1, "slot stays open until the tail is sent");
        b.receive_phit(&mut pool, pid(7), 4, false, 0);
        b.receive_phit(&mut pool, pid(7), 4, false, 0);
        b.receive_phit(&mut pool, pid(7), 4, false, 0);
        let mut tails = 0;
        for _ in 0..3 {
            let (_, t) = b.send_phit(&mut pool);
            if t {
                tails += 1;
            }
        }
        assert_eq!(tails, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn multiple_packets_fifo_order() {
        let (mut b, mut pool) = with_pool(16, 2);
        for i in 0..3u16 {
            b.receive_phit(&mut pool, pid(1), 3, i == 0, 0);
        }
        for i in 0..2u16 {
            b.receive_phit(&mut pool, pid(2), 2, i == 0, 0);
        }
        assert_eq!(b.packets(), 2);
        assert_eq!(b.occupancy(), 5);
        // Head is packet 1; it must drain before packet 2.
        for _ in 0..3 {
            let (p, _) = b.send_phit(&mut pool);
            assert_eq!(p, pid(1));
        }
        let (p, tail) = b.send_phit(&mut pool);
        assert_eq!(p, pid(2));
        assert!(!tail);
        let (p, tail) = b.send_phit(&mut pool);
        assert_eq!(p, pid(2));
        assert!(tail);
        assert!(b.is_empty());
    }

    #[test]
    fn buffers_share_one_pool_without_interference() {
        // Two buffers packed back to back in a single pool.
        let bound = VcBuffer::slot_bound(8, 4);
        let mut a = VcBuffer::new(8, 4, 0);
        let mut b = VcBuffer::new(8, 4, bound);
        let mut pool = vec![PacketSlot::default(); bound * 2];
        a.receive_phit(&mut pool, pid(1), 4, true, 0);
        b.receive_phit(&mut pool, pid(2), 4, true, 0);
        a.receive_phit(&mut pool, pid(1), 4, false, 0);
        assert_eq!(a.head(&pool).unwrap().packet, pid(1));
        assert_eq!(b.head(&pool).unwrap().packet, pid(2));
        assert_eq!(a.occupancy(), 2);
        assert_eq!(b.occupancy(), 1);
        let (p, _) = b.send_phit(&mut pool);
        assert_eq!(p, pid(2));
        assert_eq!(a.occupancy(), 2, "sibling buffer is untouched");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let (mut b, mut pool) = with_pool(2, 4);
        b.receive_phit(&mut pool, pid(1), 4, true, 0);
        b.receive_phit(&mut pool, pid(1), 4, false, 0);
        b.receive_phit(&mut pool, pid(1), 4, false, 0);
    }

    #[test]
    #[should_panic(expected = "interleaved")]
    fn interleaved_packets_rejected() {
        let (mut b, mut pool) = with_pool(8, 4);
        b.receive_phit(&mut pool, pid(1), 4, true, 0);
        b.receive_phit(&mut pool, pid(2), 4, false, 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn send_from_empty_panics() {
        let (mut b, mut pool) = with_pool(4, 1);
        b.send_phit(&mut pool);
    }

    #[test]
    #[should_panic(expected = "no phit of the head packet")]
    fn send_without_present_phit_panics() {
        let (mut b, mut pool) = with_pool(8, 4);
        b.receive_phit(&mut pool, pid(1), 4, true, 0);
        let _ = b.send_phit(&mut pool);
        let _ = b.send_phit(&mut pool);
    }

    #[test]
    #[should_panic(expected = "at least one phit")]
    fn zero_capacity_rejected() {
        VcBuffer::new(0, 1, 0);
    }

    #[test]
    fn occupancy_tracks_present_phits_only() {
        let (mut b, mut pool) = with_pool(8, 8);
        b.receive_phit(&mut pool, pid(1), 8, true, 0);
        b.receive_phit(&mut pool, pid(1), 8, false, 0);
        let _ = b.send_phit(&mut pool);
        assert_eq!(b.occupancy(), 1);
        assert_eq!(b.free_space(), 7);
        assert_eq!(b.head(&pool).unwrap().phits_present(), 1);
        assert_eq!(b.head(&pool).unwrap().phits_sent, 1);
    }
}
