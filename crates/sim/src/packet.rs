//! Packets and the per-packet adaptive routing state.

use dragonfly_topology::{GroupId, NodeId};
use serde::{Deserialize, Serialize};

/// Generational handle to a packet in the simulation's packet arena.
///
/// The low 32 bits are the slot index, the high 32 bits the slot's generation
/// at allocation time.  A handle is only valid while the generations match:
/// freeing a slot bumps its generation, so stale ids (use-after-free,
/// double-free) are caught by a single integer compare instead of an
/// `Option` discriminant per slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl PacketId {
    /// Assemble a handle from a slot index and its generation.
    #[inline]
    pub fn new(index: usize, generation: u32) -> Self {
        Self(index as u64 | ((generation as u64) << 32))
    }

    /// The raw arena slot index.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    /// The arena generation the handle was issued under.
    #[inline]
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Job/phase tag of packets generated outside any workload job.
pub const UNTAGGED: u16 = u16::MAX;

/// Adaptive routing state carried by every packet and updated on each granted hop.
///
/// The fields mirror the decisions the paper's mechanisms must remember:
/// whether the packet has committed to a Valiant (global misroute) path, which
/// intermediate group it chose, how many local hops it has taken in the current group,
/// whether it has already misrouted locally in this group, the parity-sign class of
/// its last local hop (for RLM) and the virtual channel it currently occupies.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RouteState {
    /// Virtual channel the packet currently occupies (index within its port class).
    pub vc: u8,
    /// Chosen intermediate group for Valiant/global misrouting, if any.
    pub intermediate_group: Option<GroupId>,
    /// True once the packet has entered its intermediate group (or finished phase 1).
    pub reached_intermediate: bool,
    /// Number of global hops taken so far (0..=2).
    pub global_hops: u8,
    /// Number of local hops taken in the current group.
    pub local_hops_in_group: u8,
    /// Total router-to-router hops taken.
    pub total_hops: u8,
    /// True if the packet committed to a non-minimal global path.
    pub global_misrouted: bool,
    /// True if the packet has already misrouted locally within the current group.
    pub local_misrouted_in_group: bool,
    /// True if the packet misrouted locally anywhere along its path.
    pub local_misrouted_ever: bool,
    /// True once a source-routed decision (Piggybacking/Valiant) has been taken.
    pub source_decision_taken: bool,
    /// Parity-sign class of the last local hop taken in the current group (RLM).
    pub last_local_class: Option<u8>,
}

impl RouteState {
    /// Reset the per-group fields after crossing a global link.
    pub fn enter_new_group(&mut self) {
        self.local_hops_in_group = 0;
        self.local_misrouted_in_group = false;
        self.last_local_class = None;
    }
}

/// Per-packet delay-attribution ledger: integer cycle accumulators stamped by
/// the engine at component boundaries and folded by the probe layer on
/// delivery.
///
/// The components partition the packet's lifetime exactly — every cycle
/// between generation and tail delivery lands in exactly one accumulator, so
/// their sum equals the end-to-end latency with no residual (the delay
/// layer's cardinal invariant, pinned by `tests/delay_conservation.rs`).
/// `head_stamp` is the one transient field: the cycle of the packet's latest
/// boundary event, consumed by the next event.  Stamping is unconditional
/// (plain integer writes on state the engine already touches), so the probe
/// passivity invariant is untouched: nothing here feeds back into routing.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DelayState {
    /// Cycles between generation and the head phit entering the source VC.
    pub injection_queue: u64,
    /// Cycles the head waited buffered for an output-VC grant (minimal path).
    pub vc_wait: u64,
    /// Cycles the granted head waited for downstream credits / switch
    /// bandwidth before its first phit went out (minimal path).
    pub credit_wait: u64,
    /// Cycles the head spent crossing links, pipeline latency included
    /// (minimal path).
    pub link_transit: u64,
    /// Cycles of waiting and transit accumulated while the packet was on a
    /// misrouting detour (before reaching its Valiant intermediate group, or
    /// on a local misroute within a group).
    pub detour: u64,
    /// Cycles between the head and the tail phit arriving at the destination.
    pub serialization: u64,
    /// Cycle of the latest boundary event (transient bookkeeping, not a
    /// component).
    pub head_stamp: u64,
}

impl DelayState {
    /// Sum of all components — equals the delivered end-to-end latency.
    #[inline]
    pub fn total(&self) -> u64 {
        self.injection_queue
            + self.vc_wait
            + self.credit_wait
            + self.link_transit
            + self.detour
            + self.serialization
    }
}

/// A packet in flight.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Packet {
    /// Arena identifier.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Packet size in phits.
    pub size: u16,
    /// Cycle at which the source generated the packet (start of latency measurement).
    pub gen_cycle: u64,
    /// Cycle at which the first phit entered the injection queue.
    pub inject_cycle: u64,
    /// Whether the packet was generated inside the measurement window.
    pub measured: bool,
    /// Workload job that generated the packet ([`UNTAGGED`] outside workloads).
    pub job: u16,
    /// Job phase active when the packet was generated ([`UNTAGGED`] outside workloads).
    pub phase: u16,
    /// Adaptive routing state.
    pub route: RouteState,
    /// Delay-attribution accumulators (stamped unconditionally, read only on
    /// delivery when the delay probe is armed).
    pub delay: DelayState,
}

impl Packet {
    /// Create a fresh packet.
    pub fn new(id: PacketId, src: NodeId, dst: NodeId, size: u16, gen_cycle: u64) -> Self {
        Self {
            id,
            src,
            dst,
            size,
            gen_cycle,
            inject_cycle: gen_cycle,
            measured: false,
            job: UNTAGGED,
            phase: UNTAGGED,
            route: RouteState::default(),
            delay: DelayState::default(),
        }
    }

    /// Packet size in phits as `usize`.
    #[inline]
    pub fn size_phits(&self) -> usize {
        self.size as usize
    }
}

/// Dense generational slab of packets with slot reuse.
///
/// Slots are a plain `Vec<Packet>`; the authoritative generation of a slot
/// lives *inside the slot*, as the generation half of its `id` field, so a
/// freed slot keeps its stale `Packet` bytes (every field is `Copy`) and is
/// invalidated purely by bumping `slot.id`'s generation in place.
/// `get`/`get_mut` are a bounds check plus one integer compare against memory
/// the caller is about to read anyway (the slot's own cache line — no side
/// lookup, no `Option` unwrap), and the lifetime bugs the old
/// `Vec<Option<Packet>>` caught (use-after-free, double free) still panic,
/// now via the id mismatch.
///
/// The slab is preallocated at construction (the engine sizes it from
/// [`crate::SimConfig::arena_prealloc_for`]); growth beyond the preallocation
/// still works but is counted in [`PacketArena::grows`] so capacity planning
/// mistakes are visible.  Freed slots are reused LIFO, and the preallocated
/// free list is ordered so a fresh arena hands out indices `0, 1, 2, …` —
/// exactly the sequence a cold (unpreallocated) arena produces, which keeps
/// reports byte-identical regardless of preallocation.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Packet>,
    free: Vec<u32>,
    live: usize,
    allocated_total: u64,
    grows: u64,
}

impl PacketArena {
    /// Create an empty arena (every allocation will grow the slab).
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an arena with `slots` preallocated, reuse-ordered so the id
    /// sequence matches a cold arena exactly.
    pub fn with_capacity(slots: usize) -> Self {
        // Each free slot's `id` records its own index at generation 0.
        let slots = (0..slots)
            .map(|i| Packet::new(PacketId::new(i, 0), NodeId(0), NodeId(0), 0, 0))
            .collect::<Vec<_>>();
        Self {
            // LIFO free list: store indices descending so pops yield 0, 1, 2, …
            free: (0..slots.len() as u32).rev().collect(),
            slots,
            live: 0,
            allocated_total: 0,
            grows: 0,
        }
    }

    /// Allocate a new packet and return its id.
    pub fn alloc(&mut self, src: NodeId, dst: NodeId, size: u16, gen_cycle: u64) -> PacketId {
        self.allocated_total += 1;
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let idx = idx as usize;
            // The free slot's own id field carries its current generation.
            let id = self.slots[idx].id;
            debug_assert_eq!(id.index(), idx);
            self.slots[idx] = Packet::new(id, src, dst, size, gen_cycle);
            id
        } else {
            self.grows += 1;
            let idx = self.slots.len();
            let id = PacketId::new(idx, 0);
            self.slots.push(Packet::new(id, src, dst, size, gen_cycle));
            id
        }
    }

    /// Immutable access to a live packet.
    #[inline]
    pub fn get(&self, id: PacketId) -> &Packet {
        let slot = &self.slots[id.index()];
        assert!(slot.id == id, "access to a freed packet {id:?}");
        slot
    }

    /// Mutable access to a live packet.
    #[inline]
    pub fn get_mut(&mut self, id: PacketId) -> &mut Packet {
        let slot = &mut self.slots[id.index()];
        assert!(slot.id == id, "access to a freed packet {id:?}");
        slot
    }

    /// Adopt a packet arriving from another shard's arena: allocate a local
    /// slot, copy every field of `packet` and return the *local* id (the
    /// packet's `id` field is rewritten to match).
    pub fn adopt(&mut self, packet: &Packet) -> PacketId {
        let id = self.alloc(packet.src, packet.dst, packet.size, packet.gen_cycle);
        let slot = self.get_mut(id);
        *slot = packet.clone();
        slot.id = id;
        id
    }

    /// Free a delivered packet's slot for reuse.  Bumping the generation half
    /// of the slot's own `id` is what invalidates every outstanding handle.
    pub fn free(&mut self, id: PacketId) {
        let idx = id.index();
        assert!(self.slots[idx].id == id, "double free of packet {id:?}");
        self.slots[idx].id = PacketId::new(idx, id.generation().wrapping_add(1));
        self.free.push(idx as u32);
        self.live -= 1;
    }

    /// Number of live (allocated, not yet freed) packets.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total packets ever allocated.
    #[inline]
    pub fn allocated_total(&self) -> u64 {
        self.allocated_total
    }

    /// Times the slab grew beyond its preallocation (telemetry: a non-zero
    /// value after a run means `SimConfig::arena_prealloc_for` under-sized
    /// the arena; see `RESULTS.md` for why this is deliberately *not* a
    /// report column).
    #[inline]
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Capacity of the underlying slot vector (diagnostic).
    pub fn capacity_slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_state_group_reset() {
        let mut rs = RouteState {
            local_hops_in_group: 2,
            local_misrouted_in_group: true,
            last_local_class: Some(3),
            global_hops: 1,
            total_hops: 3,
            ..RouteState::default()
        };
        rs.enter_new_group();
        assert_eq!(rs.local_hops_in_group, 0);
        assert!(!rs.local_misrouted_in_group);
        assert!(rs.last_local_class.is_none());
        // Global state is preserved.
        assert_eq!(rs.global_hops, 1);
        assert_eq!(rs.total_hops, 3);
    }

    #[test]
    fn arena_alloc_get_free() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(NodeId(0), NodeId(5), 8, 100);
        let b = arena.alloc(NodeId(1), NodeId(6), 8, 101);
        assert_eq!(arena.live(), 2);
        assert_eq!(arena.get(a).src, NodeId(0));
        assert_eq!(arena.get(b).dst, NodeId(6));
        arena.get_mut(a).route.global_hops = 2;
        assert_eq!(arena.get(a).route.global_hops, 2);
        arena.free(a);
        assert_eq!(arena.live(), 1);
        assert_eq!(arena.allocated_total(), 2);
    }

    #[test]
    fn arena_reuses_slots() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(NodeId(0), NodeId(1), 8, 0);
        arena.free(a);
        let b = arena.alloc(NodeId(2), NodeId(3), 8, 1);
        assert_eq!(a.index(), b.index(), "freed slot should be reused");
        assert_ne!(
            a.generation(),
            b.generation(),
            "reuse must issue a fresh generation"
        );
        assert_ne!(a, b);
        assert_eq!(arena.capacity_slots(), 1);
        assert_eq!(arena.get(b).src, NodeId(2));
    }

    #[test]
    #[should_panic(expected = "freed packet")]
    fn arena_rejects_stale_id_after_reuse() {
        // The dangerous aliasing case: the slot is live again under a newer
        // generation, and a stale handle to the previous occupant must still
        // be rejected.
        let mut arena = PacketArena::new();
        let a = arena.alloc(NodeId(0), NodeId(1), 8, 0);
        arena.free(a);
        let b = arena.alloc(NodeId(2), NodeId(3), 8, 1);
        assert_eq!(a.index(), b.index());
        let _ = arena.get(a);
    }

    #[test]
    fn preallocated_arena_matches_cold_id_sequence() {
        let mut cold = PacketArena::new();
        let mut warm = PacketArena::with_capacity(4);
        assert_eq!(warm.capacity_slots(), 4);
        for i in 0..6 {
            let c = cold.alloc(NodeId(i), NodeId(i + 1), 8, i as u64);
            let w = warm.alloc(NodeId(i), NodeId(i + 1), 8, i as u64);
            assert_eq!(c, w, "id sequence must not depend on preallocation");
        }
        // Four preallocated slots, six allocations: the slab grew twice.
        assert_eq!(warm.grows(), 2);
        assert_eq!(cold.grows(), 6);
        assert_eq!(warm.capacity_slots(), 6);
    }

    #[test]
    #[should_panic(expected = "freed packet")]
    fn arena_rejects_use_after_free() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(NodeId(0), NodeId(1), 8, 0);
        arena.free(a);
        let _ = arena.get(a);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn arena_rejects_double_free() {
        let mut arena = PacketArena::new();
        let a = arena.alloc(NodeId(0), NodeId(1), 8, 0);
        arena.free(a);
        arena.free(a);
    }

    #[test]
    fn packet_constructor_defaults() {
        let p = Packet::new(PacketId(3), NodeId(1), NodeId(2), 8, 42);
        assert_eq!(p.gen_cycle, 42);
        assert_eq!(p.inject_cycle, 42);
        assert!(!p.measured);
        assert_eq!(p.job, UNTAGGED);
        assert_eq!(p.phase, UNTAGGED);
        assert_eq!(p.route.total_hops, 0);
        assert_eq!(p.size_phits(), 8);
    }
}
