//! Struct-of-arrays link fabric: every pipeline of the network in two pools.
//!
//! The per-object layout this replaces kept each link's phit ring, credit
//! ring and their bookkeeping in a `Link` struct inside a `Vec<Link>`; a sweep
//! over the active links chased a pointer per ring and the ring backings were
//! rounded up to powers of two.  [`LinkFabric`] keeps the same state as
//! parallel arrays indexed by link id:
//!
//! ```text
//! latency:      [u32;        links]   latency of link i, in cycles
//! to:           [LinkEnd;    links]   far end of link i
//! phit_meta:    [RingMeta;   links]   head|len|high_water|cap, one u64 word
//! credit_meta:  [RingMeta;   links]
//! phit_off:     [u32;    links + 1]   link i's phit ring is
//!                                     phit_pool[phit_off[i]..phit_off[i+1]]
//! credit_off:   [u32;    links + 1]
//! phit_pool:    [PhitInFlight;   Σ phit caps]     all phit rings, contiguous
//! credit_pool:  [CreditInFlight; Σ credit caps]   all credit rings, contiguous
//! ```
//!
//! Rings are packed back to back at their *exact* provable capacities (no
//! power-of-two rounding): the forward pipeline holds at most `latency + 1`
//! phits (one launch per cycle, drained every active cycle) and the credit
//! pipeline at most `min(vcs × downstream buffer, vcs × (latency + 1))`
//! credits — the tighter of the space the credits stand for and the drain
//! rate.  Since links of equal class are built identically, consecutive links
//! have consecutive ring storage, and an index-ordered sweep of the active
//! set (see [`crate::active_set::ActiveSet`]) walks both pools front to back.

use crate::link::{CreditInFlight, LinkEnd, PhitInFlight};
use crate::ring::RingMeta;

/// Construction-time description of one link.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Latency in cycles.
    pub latency: u64,
    /// Where the link ends.
    pub to: LinkEnd,
    /// Capacity of the forward phit pipeline (`latency + 1`).
    pub phit_cap: usize,
    /// Capacity of the backward credit pipeline.
    pub credit_cap: usize,
}

/// The pipelined state of every link in the network, struct-of-arrays.
///
/// Phits inserted at cycle `t` become available at the far end at
/// `t + latency`; credits flow in the opposite direction with the same
/// latency, modelling the round-trip time that sizes the buffers in the
/// paper's methodology.
#[derive(Debug)]
pub struct LinkFabric {
    latency: Vec<u32>,
    to: Vec<LinkEnd>,
    phit_meta: Vec<RingMeta>,
    credit_meta: Vec<RingMeta>,
    phit_off: Vec<u32>,
    credit_off: Vec<u32>,
    phit_pool: Vec<PhitInFlight>,
    credit_pool: Vec<CreditInFlight>,
}

impl LinkFabric {
    /// Build the fabric from per-link specs, materializing both pools at the
    /// exact sum of the per-ring capacity bounds.
    pub fn build(specs: &[LinkSpec]) -> Self {
        let n = specs.len();
        let mut latency = Vec::with_capacity(n);
        let mut to = Vec::with_capacity(n);
        let mut phit_meta = Vec::with_capacity(n);
        let mut credit_meta = Vec::with_capacity(n);
        let mut phit_off = Vec::with_capacity(n + 1);
        let mut credit_off = Vec::with_capacity(n + 1);
        let (mut pacc, mut cacc) = (0u32, 0u32);
        for spec in specs {
            debug_assert!(spec.latency <= u32::MAX as u64);
            latency.push(spec.latency as u32);
            to.push(spec.to);
            phit_meta.push(RingMeta::new(spec.phit_cap));
            credit_meta.push(RingMeta::new(spec.credit_cap));
            phit_off.push(pacc);
            credit_off.push(cacc);
            pacc += spec.phit_cap as u32;
            cacc += spec.credit_cap as u32;
        }
        phit_off.push(pacc);
        credit_off.push(cacc);
        Self {
            latency,
            to,
            phit_meta,
            credit_meta,
            phit_off,
            credit_off,
            phit_pool: vec![PhitInFlight::default(); pacc as usize],
            credit_pool: vec![CreditInFlight::default(); cacc as usize],
        }
    }

    /// Number of links.
    #[inline]
    pub fn len(&self) -> usize {
        self.to.len()
    }

    /// True when the fabric has no links.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.to.is_empty()
    }

    /// Where link `li` ends.
    #[inline]
    pub fn end(&self, li: usize) -> LinkEnd {
        self.to[li]
    }

    /// Latency of link `li` in cycles.
    #[inline]
    pub fn latency(&self, li: usize) -> u64 {
        self.latency[li] as u64
    }

    /// Link `li`'s slice of the phit pool.
    #[inline]
    fn phit_ring(&mut self, li: usize) -> &mut [PhitInFlight] {
        &mut self.phit_pool[self.phit_off[li] as usize..self.phit_off[li + 1] as usize]
    }

    /// Link `li`'s slice of the credit pool.
    #[inline]
    fn credit_ring(&mut self, li: usize) -> &mut [CreditInFlight] {
        &mut self.credit_pool[self.credit_off[li] as usize..self.credit_off[li + 1] as usize]
    }

    /// Launch a phit on link `li` at cycle `now`.
    #[inline]
    pub fn send_phit(&mut self, li: usize, now: u64, mut phit: PhitInFlight) {
        let arrive = now + self.latency[li] as u64;
        debug_assert!(arrive <= u32::MAX as u64, "cycle count exceeds u32 range");
        phit.arrive = arrive as u32;
        let mut meta = self.phit_meta[li];
        let ring = self.phit_ring(li);
        debug_assert!(
            meta.back(ring)
                .map(|p| p.arrive <= phit.arrive)
                .unwrap_or(true),
            "phits must be launched in non-decreasing time order"
        );
        meta.push_back(ring, phit);
        self.phit_meta[li] = meta;
    }

    /// Launch a credit back to the transmitter of link `li` at cycle `now`.
    #[inline]
    pub fn send_credit(&mut self, li: usize, now: u64, vc: u8) {
        let arrive = now + self.latency[li] as u64;
        debug_assert!(arrive <= u32::MAX as u64, "cycle count exceeds u32 range");
        let mut meta = self.credit_meta[li];
        let ring = self.credit_ring(li);
        meta.push_back(
            ring,
            CreditInFlight {
                arrive: arrive as u32,
                vc,
            },
        );
        self.credit_meta[li] = meta;
    }

    /// Drain every phit of link `li` that has arrived by `now` into `out`, in
    /// FIFO order.  Arrival stamps are non-decreasing, so the drain stops at
    /// the first future stamp; the whole batch is one metadata update plus a
    /// contiguous (possibly two-piece) copy out of the pool.
    #[inline]
    pub fn drain_arrived_phits(&mut self, li: usize, now: u64, out: &mut Vec<PhitInFlight>) {
        let mut meta = self.phit_meta[li];
        let ring = &self.phit_pool[self.phit_off[li] as usize..self.phit_off[li + 1] as usize];
        while let Some(front) = meta.front(ring) {
            if front.arrive as u64 > now {
                break;
            }
            out.push(*front);
            meta.pop_slot();
        }
        self.phit_meta[li] = meta;
    }

    /// Drain every credit of link `li` that has arrived by `now` into `out`.
    #[inline]
    pub fn drain_arrived_credits(&mut self, li: usize, now: u64, out: &mut Vec<CreditInFlight>) {
        let mut meta = self.credit_meta[li];
        let ring =
            &self.credit_pool[self.credit_off[li] as usize..self.credit_off[li + 1] as usize];
        while let Some(front) = meta.front(ring) {
            if front.arrive as u64 > now {
                break;
            }
            out.push(*front);
            meta.pop_slot();
        }
        self.credit_meta[li] = meta;
    }

    /// Pop the next phit regardless of its arrival stamp (boundary-link
    /// export: the phit continues its flight in the receiving shard's copy).
    #[inline]
    pub fn take_phit(&mut self, li: usize) -> Option<PhitInFlight> {
        let mut meta = self.phit_meta[li];
        let ring = self.phit_ring(li);
        let phit = meta.pop_front(ring);
        self.phit_meta[li] = meta;
        phit
    }

    /// Pop the next credit regardless of its arrival stamp (boundary-link
    /// export toward the transmitting shard).
    #[inline]
    pub fn take_credit(&mut self, li: usize) -> Option<CreditInFlight> {
        let mut meta = self.credit_meta[li];
        let ring = self.credit_ring(li);
        let credit = meta.pop_front(ring);
        self.credit_meta[li] = meta;
        credit
    }

    /// Enqueue a phit that already carries its absolute arrival stamp
    /// (boundary-link import from the transmitting shard).
    #[inline]
    pub fn push_arriving_phit(&mut self, li: usize, phit: PhitInFlight) {
        let mut meta = self.phit_meta[li];
        let ring = self.phit_ring(li);
        debug_assert!(
            meta.back(ring)
                .map(|p| p.arrive <= phit.arrive)
                .unwrap_or(true),
            "imported phits must keep non-decreasing arrival order"
        );
        meta.push_back(ring, phit);
        self.phit_meta[li] = meta;
    }

    /// Enqueue a credit that already carries its absolute arrival stamp
    /// (boundary-link import from the receiving shard).
    #[inline]
    pub fn push_arriving_credit(&mut self, li: usize, credit: CreditInFlight) {
        let mut meta = self.credit_meta[li];
        let ring = self.credit_ring(li);
        debug_assert!(
            meta.back(ring)
                .map(|c| c.arrive <= credit.arrive)
                .unwrap_or(true),
            "imported credits must keep non-decreasing arrival order"
        );
        meta.push_back(ring, credit);
        self.credit_meta[li] = meta;
    }

    /// Number of phits currently in flight on link `li` — one packed-word
    /// read, no ring traversal.
    #[inline]
    pub fn phits_in_flight(&self, li: usize) -> usize {
        self.phit_meta[li].len()
    }

    /// Number of credits currently in flight on link `li` (packed-word read).
    #[inline]
    pub fn credits_in_flight(&self, li: usize) -> usize {
        self.credit_meta[li].len()
    }

    /// Highest occupancy link `li`'s phit pipeline has ever reached.
    #[inline]
    pub fn phit_high_water(&self, li: usize) -> usize {
        self.phit_meta[li].high_water()
    }

    /// Highest occupancy link `li`'s credit pipeline has ever reached.
    #[inline]
    pub fn credit_high_water(&self, li: usize) -> usize {
        self.credit_meta[li].high_water()
    }

    /// True when nothing is travelling on link `li` in either direction —
    /// two packed-word reads (the watchdog/idle path never walks a ring).
    #[inline]
    pub fn is_idle(&self, li: usize) -> bool {
        self.phit_meta[li].is_empty() && self.credit_meta[li].is_empty()
    }

    /// Maximum phit- and credit-ring high-water marks over every link (probe
    /// diagnostics).  Scans only the two metadata arrays, never the pools.
    pub fn max_high_waters(&self) -> (usize, usize) {
        let mut phit_hw = 0;
        for meta in &self.phit_meta {
            phit_hw = phit_hw.max(meta.high_water());
        }
        let mut credit_hw = 0;
        for meta in &self.credit_meta {
            credit_hw = credit_hw.max(meta.high_water());
        }
        (phit_hw, credit_hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use dragonfly_topology::NodeId;

    fn phit(packet: u32) -> PhitInFlight {
        PhitInFlight::new(PacketId(packet as u64), 0, true, false, 8)
    }

    fn fabric_of(specs: &[(u64, LinkEnd)]) -> LinkFabric {
        let specs: Vec<LinkSpec> = specs
            .iter()
            .map(|&(latency, to)| LinkSpec {
                latency,
                to,
                phit_cap: latency as usize + 1,
                credit_cap: latency as usize + 1,
            })
            .collect();
        LinkFabric::build(&specs)
    }

    #[test]
    fn phit_arrives_after_latency() {
        let mut f = fabric_of(&[(10, LinkEnd::Node { node: NodeId(0) })]);
        f.send_phit(0, 5, phit(1));
        let mut out = Vec::new();
        f.drain_arrived_phits(0, 14, &mut out);
        assert!(out.is_empty());
        f.drain_arrived_phits(0, 15, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].packet, PacketId(1));
        assert_eq!(out[0].arrive, 15);
        assert!(f.is_idle(0));
    }

    #[test]
    fn batched_drain_preserves_order_and_stops_at_future_stamps() {
        let mut f = fabric_of(&[(3, LinkEnd::Router { router: 1, port: 2 })]);
        f.send_phit(0, 0, phit(1));
        f.send_phit(0, 1, phit(2));
        f.send_phit(0, 2, phit(3));
        assert_eq!(f.phits_in_flight(0), 3);
        let mut out = Vec::new();
        f.drain_arrived_phits(0, 4, &mut out);
        let ids: Vec<_> = out.iter().map(|p| p.packet).collect();
        assert_eq!(ids, vec![PacketId(1), PacketId(2)]);
        assert_eq!(f.phits_in_flight(0), 1);
        out.clear();
        f.drain_arrived_phits(0, 5, &mut out);
        assert_eq!(out[0].packet, PacketId(3));
        assert!(f.is_idle(0));
    }

    #[test]
    fn credits_travel_with_latency() {
        let mut f = fabric_of(&[(7, LinkEnd::Router { router: 0, port: 0 })]);
        f.send_credit(0, 100, 2);
        let mut out = Vec::new();
        f.drain_arrived_credits(0, 106, &mut out);
        assert!(out.is_empty());
        f.drain_arrived_credits(0, 107, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].vc, 2);
        assert_eq!(f.credits_in_flight(0), 0);
    }

    #[test]
    fn idle_tracks_both_directions() {
        let mut f = fabric_of(&[(2, LinkEnd::Node { node: NodeId(1) })]);
        assert!(f.is_idle(0));
        f.send_credit(0, 0, 0);
        assert!(!f.is_idle(0));
        let mut out = Vec::new();
        f.drain_arrived_credits(0, 2, &mut out);
        assert!(f.is_idle(0));
    }

    #[test]
    fn rings_pack_back_to_back_without_rounding() {
        // Three links, exact-capacity packing: offsets are the prefix sums.
        let f = fabric_of(&[
            (2, LinkEnd::Node { node: NodeId(0) }),
            (4, LinkEnd::Node { node: NodeId(1) }),
            (1, LinkEnd::Node { node: NodeId(2) }),
        ]);
        assert_eq!(f.phit_off, vec![0, 3, 8, 10]);
        assert_eq!(f.phit_pool.len(), 10);
        assert_eq!(f.credit_pool.len(), 10);
    }

    #[test]
    fn neighbouring_rings_do_not_interfere() {
        let mut f = fabric_of(&[
            (1, LinkEnd::Node { node: NodeId(0) }),
            (1, LinkEnd::Node { node: NodeId(1) }),
        ]);
        // Fill both rings to capacity (2 each), wrap one of them, and check
        // the other's contents survive untouched.
        f.send_phit(0, 0, phit(10));
        f.send_phit(1, 0, phit(20));
        f.send_phit(0, 1, phit(11));
        f.send_phit(1, 1, phit(21));
        let mut out = Vec::new();
        f.drain_arrived_phits(0, 1, &mut out);
        assert_eq!(out[0].packet, PacketId(10));
        f.send_phit(0, 2, phit(12)); // wraps within link 0's slice
        out.clear();
        f.drain_arrived_phits(1, 10, &mut out);
        let ids: Vec<_> = out.iter().map(|p| p.packet).collect();
        assert_eq!(ids, vec![PacketId(20), PacketId(21)]);
        out.clear();
        f.drain_arrived_phits(0, 10, &mut out);
        let ids: Vec<_> = out.iter().map(|p| p.packet).collect();
        assert_eq!(ids, vec![PacketId(11), PacketId(12)]);
    }

    #[test]
    fn shard_export_import_roundtrip() {
        let mut f = fabric_of(&[(5, LinkEnd::Router { router: 3, port: 1 })]);
        f.send_phit(0, 0, phit(1));
        f.send_credit(0, 0, 1);
        let p = f.take_phit(0).unwrap();
        let c = f.take_credit(0).unwrap();
        assert!(f.is_idle(0));
        assert_eq!(p.arrive, 5);
        f.push_arriving_phit(0, p);
        f.push_arriving_credit(0, c);
        assert_eq!(f.phits_in_flight(0), 1);
        assert_eq!(f.credits_in_flight(0), 1);
        let mut out = Vec::new();
        f.drain_arrived_phits(0, 5, &mut out);
        assert_eq!(out[0].packet, PacketId(1));
    }

    #[test]
    fn high_water_marks_per_link() {
        let mut f = fabric_of(&[
            (3, LinkEnd::Node { node: NodeId(0) }),
            (3, LinkEnd::Node { node: NodeId(1) }),
        ]);
        f.send_phit(0, 0, phit(1));
        f.send_phit(0, 1, phit(2));
        f.send_credit(1, 0, 0);
        assert_eq!(f.phit_high_water(0), 2);
        assert_eq!(f.phit_high_water(1), 0);
        assert_eq!(f.credit_high_water(1), 1);
        assert_eq!(f.max_high_waters(), (2, 1));
        let mut out = Vec::new();
        f.drain_arrived_phits(0, 100, &mut out);
        assert_eq!(f.phit_high_water(0), 2, "draining keeps the mark");
    }
}
