//! The network: routers, the link fabric, sources and the per-cycle phases.

use crate::active_set::ActiveSet;
use crate::config::SimConfig;
use crate::fabric::{LinkFabric, LinkSpec};
use crate::link::{CreditInFlight, LinkEnd, PhitInFlight};
use crate::packet::{Packet, PacketArena, PacketId, RouteState, UNTAGGED};
use crate::router::Router;
use crate::routing_iface::{RouteChoice, RouteCtx, RouterView, RoutingAlgorithm};
use crate::stats_collect::StatsCollector;
use dragonfly_probe::{
    DelaySample, FlightEvent, ProbeConfig, ProbeDims, ProbeRecorder, SampleSnapshot, CLASS_GLOBAL,
    CLASS_LOCAL, CLASS_TERMINAL, FLIGHT_DELIVER, FLIGHT_HOP, FLIGHT_INJECT, NONE_U16,
};
use dragonfly_rng::{derive_seed, Rng};
use dragonfly_sched::ScheduleRuntime;
use dragonfly_topology::{DragonflyParams, NodeId, Port, PortKind, RouterId};
use dragonfly_traffic::{BernoulliInjection, TrafficPattern};
use dragonfly_workload::WorkloadRuntime;
use std::collections::VecDeque;
use std::ops::Range;

/// Unbounded per-node source queue feeding the router's injection port.
#[derive(Debug, Default)]
pub struct SourceQueue {
    /// Packets waiting to enter the injection buffer.
    pub pending: VecDeque<PacketId>,
    /// Phits of the head packet already pushed into the injection buffer.
    pub head_phits_sent: u16,
}

impl SourceQueue {
    /// True when no packet is waiting.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Per-group board of piggybacked global-channel congestion flags.
#[derive(Debug)]
pub struct GlobalStatusBoard {
    flags: Vec<bool>,
    channels_per_group: usize,
}

impl GlobalStatusBoard {
    fn new(groups: usize, channels_per_group: usize) -> Self {
        Self {
            flags: vec![false; groups * channels_per_group],
            channels_per_group,
        }
    }

    /// The congestion flags of one group, indexed by global channel.
    pub fn group(&self, group: usize) -> &[bool] {
        let start = group * self.channels_per_group;
        &self.flags[start..start + self.channels_per_group]
    }

    /// Number of congestion flags currently set (probe time series).
    pub fn congested_count(&self) -> u64 {
        self.flags.iter().filter(|&&f| f).count() as u64
    }

    fn set(&mut self, group: usize, channel: usize, value: bool) {
        self.flags[group * self.channels_per_group + channel] = value;
    }
}

/// The simulated network and all of its per-cycle state.
///
/// The engine is generic over the routing mechanism `R`, so the per-cycle `route()`
/// call in the routing phase of [`Network::step`] is statically dispatched (and inlinable) when a
/// concrete mechanism type is used.  The default parameter keeps the type-erased
/// path: a plain `Network` is `Network<Box<dyn RoutingAlgorithm>>`, built through
/// [`Network::new`] from e.g. `RoutingKind::build()`.
pub struct Network<R: RoutingAlgorithm = Box<dyn RoutingAlgorithm>> {
    /// Configuration of this run.
    pub config: SimConfig,
    params: DragonflyParams,
    /// All routers, indexed by router id.
    pub routers: Vec<Router>,
    /// Struct-of-arrays link state: every link's phit/credit pipeline lives in
    /// two shared pools, addressed by link index (see [`LinkFabric`]).
    fabric: LinkFabric,
    /// For every (router, input port): index of the link feeding it (usize::MAX for
    /// terminal/injection ports).
    incoming_link: Vec<usize>,
    /// Phits transmitted on each link since construction (indexed like `links`).
    link_phits: Vec<u64>,
    /// Per-node source queues.
    pub sources: Vec<SourceQueue>,
    /// Packet arena.
    pub packets: PacketArena,
    /// Current cycle.
    pub cycle: u64,
    /// One RNG stream per router, derived deterministically from the master
    /// seed.  Injection draws of a node use its router's stream and routing
    /// draws use the deciding router's stream, so the simulation outcome never
    /// depends on the order routers are visited in — which is what lets the
    /// sharded engine (`dragonfly_shard`) reproduce sequential runs exactly.
    rngs: Vec<Rng>,
    routing: R,
    traffic: Box<dyn TrafficPattern>,
    injection: Option<BernoulliInjection>,
    /// Injection-side workload runtime: per-job phase rates and job/phase tags.
    workload: Option<WorkloadRuntime>,
    /// Dynamic job scheduler: trace-driven arrivals/departures with re-placement.
    sched: Option<ScheduleRuntime>,
    /// Statistics collector.
    pub stats: StatsCollector,
    pb_board: GlobalStatusBoard,
    /// Global channels whose downstream occupancy changed since the last board
    /// update, as flat `group * channels_per_group + channel` indices.
    pb_dirty_list: Vec<u32>,
    /// Membership flags for `pb_dirty_list`.
    pb_dirty: Vec<bool>,
    last_activity: u64,
    /// Set when the deadlock watchdog fires.
    pub deadlock_detected: bool,
    /// Whether newly generated packets are tagged as measured.
    pub tag_measured: bool,
    // --- Active-set scheduling state -------------------------------------------
    // At low load almost every link and router is idle; the per-cycle phases only
    // visit members of these sets instead of scanning the whole network.  Both
    // sets are two-level bitmaps iterated in ascending index order, so the
    // arrival sweep walks the fabric's pipeline pools front to back and the
    // switch sweep walks the router array front to back — traversal order
    // matches memory order.
    /// Links with phits or credits currently in flight.
    active_links: ActiveSet,
    /// Routers with at least one phit buffered in an input VC.
    active_routers: ActiveSet,
    /// Phits currently stored in each router's input buffers.
    buffered_phits: Vec<u32>,
    /// Phits currently stored across *all* input buffers (memory telemetry).
    buffered_total: u64,
    /// Reused scratch buffer for the per-router routing decisions (avoids a per-cycle
    /// allocation in `phase_routing`).
    route_scratch: Vec<(usize, usize, PacketId, RouteChoice)>,
    /// Reused scratch for one link's arrived phits: `phase_arrivals` drains a
    /// whole link in one batch (one metadata write-back per link per cycle)
    /// and then processes the copies, so the fabric borrow never overlaps the
    /// router/ejection mutations.  Capacity is the largest phit ring, fixed at
    /// construction.
    arrivals_phits: Vec<PhitInFlight>,
    /// Reused scratch for one link's arrived credits (see `arrivals_phits`).
    arrivals_credits: Vec<CreditInFlight>,
    // --- Sharding support -------------------------------------------------------
    /// Nodes this network instance generates and injects for.  The full range in
    /// a sequential run; a shard's owned range when this network is one partition
    /// of a sharded run (see `dragonfly_shard`).
    owned_nodes: Range<usize>,
    /// When present, every job id fed to `ScheduleRuntime::note_delivered` is
    /// also appended here, so a sharded run can broadcast delivery feedback to
    /// the other shards' schedule replicas at the cycle barrier.
    sched_delivery_log: Option<Vec<u16>>,
    /// Observability probes (see `dragonfly_probe`), installed through
    /// [`Network::install_probes`].  Strictly read-only with respect to the
    /// simulation: no RNG stream is consumed and no report field changes.
    probe: Option<Box<ProbeRecorder>>,
    /// Accumulated per-phase wall-clock time (`--features profile`).
    #[cfg(feature = "profile")]
    profile: PhaseProfile,
}

/// Accumulated wall-clock nanoseconds per pipeline phase, plus the cycle
/// count they cover (`--features profile` only; see `dragonfly_probe`'s
/// module docs for the phase profiler).
#[cfg(feature = "profile")]
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfile {
    /// Cycles the timers have covered.
    pub cycles: u64,
    /// Phase A: link and credit arrivals.
    pub arrivals_nanos: u64,
    /// Phase B: packet generation and injection.
    pub injection_nanos: u64,
    /// Phase C: routing and output-VC allocation.
    pub routing_nanos: u64,
    /// Phase D: switch traversal and link transmission.
    pub switch_nanos: u64,
    /// Per-cycle bookkeeping: stats tick, PB board update, probe sampling.
    pub bookkeeping_nanos: u64,
}

#[cfg(feature = "profile")]
impl PhaseProfile {
    /// `(phase name, accumulated nanoseconds)` rows in pipeline order.
    pub fn rows(&self) -> [(&'static str, u64); 5] {
        [
            ("arrivals", self.arrivals_nanos),
            ("injection", self.injection_nanos),
            ("routing", self.routing_nanos),
            ("switch", self.switch_nanos),
            ("bookkeeping", self.bookkeeping_nanos),
        ]
    }

    /// Total nanoseconds across all five phases.
    pub fn total_nanos(&self) -> u64 {
        self.rows().iter().map(|&(_, n)| n).sum()
    }

    /// Nanoseconds elapsed since `prev`, advancing `prev` to now.
    #[inline]
    fn lap(prev: &mut std::time::Instant) -> u64 {
        let now = std::time::Instant::now();
        let nanos = now.duration_since(*prev).as_nanos() as u64;
        *prev = now;
        nanos
    }
}

/// Type-erased construction path, kept so `RoutingKind::build()` and the experiment
/// harness keep working unchanged.
impl Network {
    /// Build an idle network from a boxed routing mechanism (dynamic dispatch).
    pub fn new(
        config: SimConfig,
        routing: Box<dyn RoutingAlgorithm>,
        traffic: Box<dyn TrafficPattern>,
    ) -> Self {
        Self::with_routing(config, routing, traffic)
    }
}

impl<R: RoutingAlgorithm> Network<R> {
    /// Build an idle network with a statically known routing mechanism.
    pub fn with_routing(config: SimConfig, routing: R, traffic: Box<dyn TrafficPattern>) -> Self {
        config.validate();
        assert!(
            config.local_vcs >= routing.required_local_vcs(),
            "{} requires {} local VCs but the configuration provides {}",
            routing.name(),
            routing.required_local_vcs(),
            config.local_vcs
        );
        assert!(
            config.global_vcs >= routing.required_global_vcs(),
            "{} requires {} global VCs but the configuration provides {}",
            routing.name(),
            routing.required_global_vcs(),
            config.global_vcs
        );
        assert!(
            routing.supports_flow_control(config.flow_control),
            "{} does not support the selected flow control",
            routing.name()
        );
        let params = config.params;
        let ports = params.ports_per_router();
        let num_routers = params.num_routers();
        let ejection_capacity = (config.packet_size * 4).max(config.injection_buffer);

        // Downstream capacities per output port are identical for every router.
        let h = params.h();
        let downstream: Vec<usize> = (0..ports)
            .map(|flat| match Port::from_flat(flat, h).kind() {
                PortKind::Local => config.local_buffer,
                PortKind::Global => config.global_buffer,
                PortKind::Terminal => ejection_capacity,
            })
            .collect();

        let mut routers = Vec::with_capacity(num_routers);
        let mut specs = Vec::with_capacity(num_routers * ports);
        for r in 0..num_routers {
            let rid = RouterId(r as u32);
            routers.push(Router::new(rid, &config, &downstream));
            for (flat, &down) in downstream.iter().enumerate() {
                let port = Port::from_flat(flat, h);
                let latency = config.latency_for_port(port);
                let to = match port {
                    Port::Local(_) | Port::Global(_) => {
                        let (nbr, back) = params.neighbor(rid, port);
                        LinkEnd::Router {
                            router: nbr.index(),
                            port: back.flat(h),
                        }
                    }
                    Port::Terminal(t) => LinkEnd::Node {
                        node: params.node_of_router(rid, t),
                    },
                };
                // Fixed pipeline capacities (see `LinkFabric`): at most one
                // phit is launched per cycle and arrivals drain every cycle,
                // bounding the forward ring by `latency + 1`; in-flight
                // credits are bounded both by the downstream buffer space they
                // stand for and by one credit per downstream VC per cycle.
                let phit_cap = latency as usize + 1;
                let vcs = config.vcs_for(port.kind());
                let credit_cap = (vcs * down).min(vcs * phit_cap);
                specs.push(LinkSpec {
                    latency,
                    to,
                    phit_cap,
                    credit_cap,
                });
            }
        }

        // Reverse map: which link feeds each (router, input port)?
        let mut incoming_link = vec![usize::MAX; num_routers * ports];
        for (li, spec) in specs.iter().enumerate() {
            if let LinkEnd::Router { router, port } = spec.to {
                incoming_link[router * ports + port] = li;
            }
        }
        // Per-link arrival batches are bounded by the ring capacities.
        let max_phit_cap = specs.iter().map(|s| s.phit_cap).max().unwrap_or(0);
        let max_credit_cap = specs.iter().map(|s| s.credit_cap).max().unwrap_or(0);
        let fabric = LinkFabric::build(&specs);

        let sources = (0..params.num_nodes())
            .map(|_| SourceQueue::default())
            .collect();
        let stats = StatsCollector::new(64 * 1024);
        let pb_board = GlobalStatusBoard::new(params.groups(), params.global_channels_per_group());

        let link_phits = vec![0u64; fabric.len()];
        let num_links = fabric.len();
        let num_global_channels = params.groups() * params.global_channels_per_group();
        let rngs = (0..num_routers)
            .map(|r| Rng::seed_from(derive_seed(config.seed, r as u64)))
            .collect();
        let arena_prealloc = config.arena_prealloc_for(params.num_nodes());
        // Worst case per router: one pending decision per input VC.
        let route_scratch_cap = ports * config.local_vcs.max(config.global_vcs);
        Self {
            rngs,
            config,
            params,
            routers,
            fabric,
            incoming_link,
            link_phits,
            sources,
            packets: PacketArena::with_capacity(arena_prealloc),
            cycle: 0,
            routing,
            traffic,
            injection: None,
            workload: None,
            sched: None,
            stats,
            pb_board,
            // The active sets and scratch buffers are preallocated at their
            // hard upper bounds so membership pushes never reallocate, even
            // the first time the whole network lights up.
            pb_dirty_list: Vec::with_capacity(num_global_channels),
            pb_dirty: vec![false; num_global_channels],
            last_activity: 0,
            deadlock_detected: false,
            tag_measured: false,
            active_links: ActiveSet::new(num_links),
            active_routers: ActiveSet::new(num_routers),
            buffered_phits: vec![0; num_routers],
            buffered_total: 0,
            route_scratch: Vec::with_capacity(route_scratch_cap),
            arrivals_phits: Vec::with_capacity(max_phit_cap),
            arrivals_credits: Vec::with_capacity(max_credit_cap),
            owned_nodes: 0..params.num_nodes(),
            sched_delivery_log: None,
            probe: None,
            #[cfg(feature = "profile")]
            profile: PhaseProfile::default(),
        }
    }

    /// Add a link to the active set (idempotent).
    #[inline]
    fn mark_link_active(&mut self, li: usize) {
        self.active_links.insert(li);
    }

    /// Add a router to the active set (idempotent).
    #[inline]
    fn mark_router_active(&mut self, r: usize) {
        self.active_routers.insert(r);
    }

    /// Topology parameters of the network.
    pub fn params(&self) -> &DragonflyParams {
        &self.params
    }

    /// Name of the routing mechanism driving this network.
    pub fn routing_name(&self) -> &'static str {
        self.routing.name()
    }

    /// Name of the traffic pattern.
    pub fn traffic_name(&self) -> String {
        self.traffic.name()
    }

    /// Set (or clear) the Bernoulli injection process.
    pub fn set_injection(&mut self, injection: Option<BernoulliInjection>) {
        self.injection = injection;
    }

    /// Install a workload: `runtime` drives per-node injection rates, job/phase tags
    /// and the phase-boundary hook; `pattern` (usually the paired
    /// `WorkloadSpec::build_pattern`) replaces the network's traffic pattern.
    ///
    /// Per-job statistics are enabled, and any global Bernoulli process or dynamic
    /// schedule is cleared — with a workload installed each job's phases carry
    /// their own offered loads.
    pub fn install_workload(&mut self, runtime: WorkloadRuntime, pattern: Box<dyn TrafficPattern>) {
        self.stats.enable_scoped(&runtime.phase_counts());
        self.traffic = pattern;
        self.injection = None;
        self.sched = None;
        self.workload = Some(runtime);
    }

    /// The installed workload runtime, if any.
    pub fn workload(&self) -> Option<&WorkloadRuntime> {
        self.workload.as_ref()
    }

    /// Remove the workload runtime, stopping its injection while keeping the
    /// (node-indexed, time-aware) traffic pattern in place.  Burst runs use this so
    /// a preloaded burst can drain against workload destinations.
    pub fn take_workload(&mut self) -> Option<WorkloadRuntime> {
        self.workload.take()
    }

    /// Install a dynamic job schedule: `runtime` owns the whole lifecycle — the
    /// per-cycle install/teardown hook at the top of [`Network::step`], per-node
    /// injection rates and job tags, and (unlike a static workload) the
    /// destination side too, through its internal
    /// [`dragonfly_traffic::DynamicSlots`] adapter.
    ///
    /// Per-job statistics are enabled (one phase per job), and any Bernoulli
    /// process or static workload is cleared.
    pub fn install_schedule(&mut self, runtime: ScheduleRuntime) {
        self.stats.enable_scoped(&vec![1; runtime.num_jobs()]);
        self.injection = None;
        self.workload = None;
        self.sched = Some(runtime);
    }

    /// The installed dynamic schedule, if any.
    pub fn schedule(&self) -> Option<&ScheduleRuntime> {
        self.sched.as_ref()
    }

    /// Mutable access to the installed dynamic schedule (the engine uses it to
    /// halt generation at the measurement horizon).
    pub fn schedule_mut(&mut self) -> Option<&mut ScheduleRuntime> {
        self.sched.as_mut()
    }

    /// Pre-load every owned node's source queue with `packets_per_node` packets
    /// (burst mode).
    pub fn preload_burst(&mut self, packets_per_node: u64) {
        for n in self.owned_nodes.start..self.owned_nodes.end {
            let src = NodeId(n as u32);
            let router = self.params.router_of_node(src).index();
            for _ in 0..packets_per_node {
                let dst = self.traffic.destination_at(
                    self.cycle,
                    src,
                    &self.params,
                    &mut self.rngs[router],
                );
                debug_assert_ne!(dst, src);
                let id = self
                    .packets
                    .alloc(src, dst, self.config.packet_size as u16, self.cycle);
                self.packets.get_mut(id).measured = true;
                self.sources[n].pending.push_back(id);
                self.stats
                    .record_generated(self.config.packet_size, self.cycle);
            }
        }
    }

    /// True when no packet exists anywhere in the network.
    pub fn is_drained(&self) -> bool {
        self.packets.live() == 0 && self.sources.iter().all(|s| s.is_empty())
    }

    /// Total phits currently stored in router buffers (conservation checks).
    pub fn stored_phits(&self) -> usize {
        self.routers.iter().map(|r| r.stored_phits()).sum()
    }

    /// Phits transmitted so far on the link behind `(router, flat output port)`.
    pub fn link_phits(&self, router: usize, flat_port: usize) -> u64 {
        self.link_phits[router * self.params.ports_per_router() + flat_port]
    }

    /// Utilization (phits per cycle, `0.0 ..= 1.0`) of every link of the given kind,
    /// computed over the whole run so far.
    pub fn link_utilization_by_kind(&self, kind: PortKind) -> Vec<f64> {
        let ports = self.params.ports_per_router();
        let h = self.params.h();
        let cycles = self.cycle.max(1) as f64;
        self.link_phits
            .iter()
            .enumerate()
            .filter(|(i, _)| Port::from_flat(i % ports, h).kind() == kind)
            .map(|(_, &phits)| phits as f64 / cycles)
            .collect()
    }

    /// Maximum and mean utilization of the links of the given kind — the quantity
    /// that exposes the ADVG+h intermediate-group pathology (a few local links near
    /// 100% while the mean stays low).
    pub fn link_utilization_summary(&self, kind: PortKind) -> (f64, f64) {
        let utils = self.link_utilization_by_kind(kind);
        if utils.is_empty() {
            return (0.0, 0.0);
        }
        let max = utils.iter().cloned().fold(0.0f64, f64::max);
        let mean = utils.iter().sum::<f64>() / utils.len() as f64;
        (max, mean)
    }

    /// Advance the simulation by one cycle.
    pub fn step(&mut self) {
        self.advance_hooks();
        let activity = self.step_phases();
        let live = self.packets.live() > 0;
        self.apply_watchdog(activity, live);
        self.stats
            .note_cycle_peaks(self.stats.in_flight(), self.buffered_total);
        self.finish_cycle();
    }

    /// Advance one cycle, invoking `hook` at every phase boundary with the
    /// name of the phase about to run (`"arrivals"`, `"injection"`,
    /// `"routing"`, `"switch"`, `"bookkeeping"`) and finally with `"done"`.
    ///
    /// Behaviourally identical to [`Network::step`] — same phases, same order,
    /// same watchdog and peak bookkeeping — the hook only brackets them.  The
    /// zero-allocation tier uses this to attribute allocator activity to an
    /// individual phase instead of a whole cycle; it is also the natural seam
    /// for external phase-level instrumentation.
    pub fn step_with_phase_hook(&mut self, hook: &mut dyn FnMut(&'static str)) {
        self.advance_hooks();
        let cycle = self.cycle;
        let mut activity = false;
        hook("arrivals");
        activity |= self.phase_arrivals(cycle);
        hook("injection");
        activity |= self.phase_injection(cycle);
        hook("routing");
        self.phase_routing(cycle);
        hook("switch");
        activity |= self.phase_switch(cycle);
        hook("bookkeeping");
        self.stats.tick(cycle);
        self.update_pb_board();
        self.probe_sample(cycle);
        let live = self.packets.live() > 0;
        self.apply_watchdog(activity, live);
        self.stats
            .note_cycle_peaks(self.stats.in_flight(), self.buffered_total);
        self.finish_cycle();
        hook("done");
    }

    /// Run the per-cycle lifecycle hooks (dynamic scheduler, workload phase
    /// boundaries) for the current cycle, before any packet is generated.
    ///
    /// Part of the decomposed [`Network::step`] used by the sharded engine; a
    /// sequential step is `advance_hooks` → `step_phases` → `apply_watchdog` →
    /// `finish_cycle`.
    pub fn advance_hooks(&mut self) {
        let cycle = self.cycle;
        // Lifecycle hook: the dynamic scheduler admits arrivals, retires finished
        // jobs and re-places waiting ones before any packet of the cycle is
        // generated (a job placed at cycle N injects from cycle N on).
        if let Some(sched) = &mut self.sched {
            sched.advance_to(cycle);
        }
        // Phase-boundary hook: jobs switch pattern/load at cycle boundaries before
        // any packet of the cycle is generated.
        if let Some(workload) = &mut self.workload {
            workload.advance_to(cycle);
        }
    }

    /// Run the five phases (arrivals → injection → routing → switch → local
    /// bookkeeping) of the current cycle and return whether any phit moved.
    ///
    /// Everything here is local to the routers, links and nodes this network
    /// instance owns; the deadlock watchdog — which needs run-wide knowledge in
    /// a sharded run — is applied separately by [`Network::apply_watchdog`].
    pub fn step_phases(&mut self) -> bool {
        let cycle = self.cycle;
        let mut activity = false;
        #[cfg(feature = "profile")]
        {
            let mut lap = std::time::Instant::now();
            activity |= self.phase_arrivals(cycle);
            self.profile.arrivals_nanos += PhaseProfile::lap(&mut lap);
            activity |= self.phase_injection(cycle);
            self.profile.injection_nanos += PhaseProfile::lap(&mut lap);
            self.phase_routing(cycle);
            self.profile.routing_nanos += PhaseProfile::lap(&mut lap);
            activity |= self.phase_switch(cycle);
            self.profile.switch_nanos += PhaseProfile::lap(&mut lap);
            self.stats.tick(cycle);
            self.update_pb_board();
            self.probe_sample(cycle);
            self.profile.bookkeeping_nanos += PhaseProfile::lap(&mut lap);
            self.profile.cycles += 1;
        }
        #[cfg(not(feature = "profile"))]
        {
            activity |= self.phase_arrivals(cycle);
            activity |= self.phase_injection(cycle);
            self.phase_routing(cycle);
            activity |= self.phase_switch(cycle);
            self.stats.tick(cycle);
            self.update_pb_board();
            self.probe_sample(cycle);
        }
        activity
    }

    /// Advance the deadlock watchdog with run-wide knowledge: whether *any*
    /// phit moved this cycle and whether *any* packet is live anywhere.  A
    /// sequential run passes its own activity and `packets.live() > 0`; a
    /// sharded run passes the OR over all shards, so every shard reaches the
    /// same verdict at the same cycle.
    pub fn apply_watchdog(&mut self, global_activity: bool, global_live: bool) {
        let cycle = self.cycle;
        if global_activity {
            self.last_activity = cycle;
        } else if global_live && cycle - self.last_activity > self.config.deadlock_threshold {
            self.deadlock_detected = true;
        }
    }

    /// Close the current cycle (the last piece of the decomposed [`Network::step`]).
    pub fn finish_cycle(&mut self) {
        self.cycle += 1;
    }

    /// Run `cycles` simulation cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    // ------------------------------------------------------------------
    // Phase A: link and credit arrivals.
    // ------------------------------------------------------------------
    //
    // Only links with phits or credits in flight are visited, in ascending
    // link-index order (the sweep over the active-set bitmap), so the walk
    // reads the fabric's struct-of-arrays pools front to back.  Each link is
    // drained in one batch — a single packed-metadata write-back per pipeline
    // per link — into a reused scratch buffer, then the copies are processed
    // against the routers; a link leaves the active set as soon as both of
    // its pipelines are empty.
    fn phase_arrivals(&mut self, cycle: u64) -> bool {
        let ports = self.params.ports_per_router();
        let h = self.params.h();
        let mut activity = false;
        let mut credits = std::mem::take(&mut self.arrivals_credits);
        let mut phits = std::mem::take(&mut self.arrivals_phits);
        let mut cursor = 0;
        while let Some(li) = self.active_links.next_at_or_after(cursor) {
            cursor = li + 1;
            // Credits back to the transmitter (owner of this link).
            credits.clear();
            self.fabric.drain_arrived_credits(li, cycle, &mut credits);
            if !credits.is_empty() {
                let router = li / ports;
                let port = li % ports;
                for credit in &credits {
                    let out = &mut self.routers[router].outputs[port].vcs[credit.vc as usize];
                    out.credits += 1;
                    debug_assert!(
                        out.credits <= out.downstream_capacity,
                        "credits above downstream capacity: credit accounting is broken"
                    );
                }
                // A credit on a global output changes its advertised occupancy.
                if let Port::Global(gport) = Port::from_flat(port, h) {
                    self.mark_pb_dirty(router, gport);
                }
            }
            // Phits forward to the receiver.
            phits.clear();
            self.fabric.drain_arrived_phits(li, cycle, &mut phits);
            if !phits.is_empty() {
                activity = true;
                match self.fabric.end(li) {
                    LinkEnd::Router { router, port } => {
                        // The whole batch lands at one (router, port); split the
                        // borrow once so the per-phit work is pure buffer pushes.
                        let Router {
                            inputs, slot_pool, ..
                        } = &mut self.routers[router];
                        let vcs = &mut inputs[port].vcs;
                        for phit in &phits {
                            if phit.is_head() {
                                // Delay attribution: arrival ends this hop's
                                // link transit (first phit out → head in).
                                let packet = self.packets.get_mut(phit.packet);
                                let transit = cycle - packet.delay.head_stamp;
                                if on_detour(&packet.route) {
                                    packet.delay.detour += transit;
                                } else {
                                    packet.delay.link_transit += transit;
                                }
                            }
                            let buffer = &mut vcs[phit.vc as usize].buffer;
                            buffer.receive_phit(
                                slot_pool,
                                phit.packet,
                                phit.size,
                                phit.is_head(),
                                cycle,
                            );
                            let occupancy = buffer.occupancy();
                            self.stats.note_vc_occupancy(occupancy);
                        }
                        self.buffered_phits[router] += phits.len() as u32;
                        self.buffered_total += phits.len() as u64;
                        self.active_routers.insert(router);
                    }
                    LinkEnd::Node { node: _ } => {
                        for phit in &phits {
                            // Ejection: the node consumes the phit immediately and
                            // returns the credit so the ejection VC never backs up
                            // artificially.
                            self.fabric.send_credit(li, cycle, phit.vc);
                            if phit.is_head() {
                                // Delay attribution: the head reaching the node
                                // ends the final link transit and starts the
                                // serialization tail (head before tail, so a
                                // one-phit packet serializes in zero cycles).
                                let packet = self.packets.get_mut(phit.packet);
                                let transit = cycle - packet.delay.head_stamp;
                                if on_detour(&packet.route) {
                                    packet.delay.detour += transit;
                                } else {
                                    packet.delay.link_transit += transit;
                                }
                                packet.delay.head_stamp = cycle;
                            }
                            if phit.is_tail() {
                                {
                                    let packet = self.packets.get_mut(phit.packet);
                                    packet.delay.serialization = cycle - packet.delay.head_stamp;
                                }
                                // Delivery feedback for volume-bound scheduled jobs.
                                // Only the job tag is needed here, and the stats
                                // collector reads the packet in place — no clone.
                                let job = self.packets.get(phit.packet).job;
                                if job != UNTAGGED {
                                    if let Some(sched) = self.sched.as_mut() {
                                        sched.note_delivered(job);
                                        if let Some(log) = self.sched_delivery_log.as_mut() {
                                            log.push(job);
                                        }
                                    }
                                }
                                // Probe: delivery happens at the ejection link of
                                // the (owned) destination router, so in a sharded
                                // run exactly one shard records it.
                                if self.probe.is_some() {
                                    let pkt = self.packets.get(phit.packet);
                                    let (src, dst, gen) = (pkt.src.0, pkt.dst.0, pkt.gen_cycle);
                                    let router = li / ports;
                                    let probe = self.probe.as_deref_mut().unwrap();
                                    probe.record_delivered(router);
                                    if probe.flight_sampled(src, gen) {
                                        probe.record_flight(FlightEvent {
                                            cycle,
                                            gen_cycle: gen,
                                            src,
                                            dst,
                                            router: router as u32,
                                            port: NONE_U16,
                                            vc: NONE_U16,
                                            kind: FLIGHT_DELIVER,
                                            class: u8::MAX,
                                            nonminimal: 2,
                                        });
                                    }
                                }
                                // Delay ledger: fold the completed decomposition
                                // at the destination's ejection link (exactly one
                                // shard owns it), before the packet is freed.
                                if self
                                    .probe
                                    .as_deref()
                                    .is_some_and(ProbeRecorder::delay_enabled)
                                {
                                    let pkt = self.packets.get(phit.packet);
                                    let d = &pkt.delay;
                                    let sample = DelaySample {
                                        components: [
                                            d.injection_queue,
                                            d.vc_wait,
                                            d.credit_wait,
                                            d.link_transit,
                                            d.detour,
                                            d.serialization,
                                        ],
                                        misrouted: pkt.route.global_misrouted
                                            || pkt.route.local_misrouted_ever,
                                        job: pkt.job,
                                        phase: pkt.phase,
                                    };
                                    let latency = cycle - pkt.gen_cycle;
                                    debug_assert_eq!(
                                        sample.total(),
                                        latency,
                                        "delay components must sum to the \
                                         end-to-end latency"
                                    );
                                    self.probe
                                        .as_deref_mut()
                                        .unwrap()
                                        .record_delay(&sample, latency);
                                }
                                self.stats
                                    .record_delivery(self.packets.get(phit.packet), cycle);
                                self.packets.free(phit.packet);
                            }
                        }
                    }
                }
            }
            if self.fabric.is_idle(li) {
                // Safe mid-sweep: removal at the cursor never skips members.
                self.active_links.remove(li);
            }
        }
        self.arrivals_credits = credits;
        self.arrivals_phits = phits;
        activity
    }

    // ------------------------------------------------------------------
    // Phase B: packet generation and injection into the terminal input buffers.
    // ------------------------------------------------------------------
    fn phase_injection(&mut self, cycle: u64) -> bool {
        let mut activity = false;
        for n in self.owned_nodes.start..self.owned_nodes.end {
            let node = NodeId(n as u32);
            // All random draws of a node use its router's stream, so the outcome
            // is independent of how the node space is partitioned across shards.
            let router = self.params.router_of_node(node).index();
            // Generation: per-job scheduler or workload rates (tagged) or the
            // global Bernoulli process (untagged).  Idle nodes never generate.
            let generated = if let Some(sched) = self.sched.as_ref() {
                match sched.source(n) {
                    // Scheduled jobs have a single phase (index 0).
                    Some(job) if sched.generate(job, &mut self.rngs[router]) => Some((job, 0)),
                    _ => None,
                }
            } else if let Some(workload) = self.workload.as_ref() {
                match workload.source(n) {
                    Some((job, phase)) if workload.generate(job, &mut self.rngs[router]) => {
                        Some((job, phase))
                    }
                    _ => None,
                }
            } else if let Some(injection) = self.injection {
                injection
                    .generate(&mut self.rngs[router])
                    .then_some((UNTAGGED, UNTAGGED))
            } else {
                None
            };
            if let Some((job, phase)) = generated {
                let src = node;
                // Destinations: the scheduler's dynamic per-job patterns, or the
                // network's (static, possibly time-aware) traffic pattern.
                let dst = if let Some(sched) = self.sched.as_ref() {
                    sched.destination(cycle, src, &self.params, &mut self.rngs[router])
                } else {
                    self.traffic
                        .destination_at(cycle, src, &self.params, &mut self.rngs[router])
                };
                debug_assert_ne!(dst, src);
                let id = self
                    .packets
                    .alloc(src, dst, self.config.packet_size as u16, cycle);
                let packet = self.packets.get_mut(id);
                packet.measured = self.tag_measured;
                packet.job = job;
                packet.phase = phase;
                self.sources[n].pending.push_back(id);
                self.stats
                    .record_generated_tagged(self.config.packet_size, cycle, job, phase);
                // Probe: generation happens at owned nodes only, so in a
                // sharded run exactly one shard records it.  The flight key
                // `(src, gen_cycle)` is a pure function of the packet.
                if let Some(probe) = self.probe.as_deref_mut() {
                    probe.record_injected(router);
                    if probe.flight_sampled(src.0, cycle) {
                        probe.record_flight(FlightEvent {
                            cycle,
                            gen_cycle: cycle,
                            src: src.0,
                            dst: dst.0,
                            router: router as u32,
                            port: NONE_U16,
                            vc: NONE_U16,
                            kind: FLIGHT_INJECT,
                            class: u8::MAX,
                            nonminimal: 2,
                        });
                    }
                }
            }
            // Move at most one phit of the head packet into the injection buffer.
            let source = &mut self.sources[n];
            let Some(&head) = source.pending.front() else {
                continue;
            };
            let term = self.params.node_index_in_router(node);
            let port = Port::Terminal(term).flat(self.params.h());
            if self.routers[router].inputs[port].vcs[0].buffer.free_space() == 0 {
                continue;
            }
            let packet = self.packets.get_mut(head);
            let is_head = source.head_phits_sent == 0;
            if is_head {
                packet.inject_cycle = cycle;
                // Delay stamp 1: time spent queued at the source NIC before the
                // head phit enters the injection buffer.
                packet.delay.injection_queue = cycle - packet.gen_cycle;
            }
            let size = packet.size;
            let Router {
                inputs, slot_pool, ..
            } = &mut self.routers[router];
            let buffer = &mut inputs[port].vcs[0].buffer;
            buffer.receive_phit(slot_pool, head, size, is_head, cycle);
            let occupancy = buffer.occupancy();
            self.stats.note_vc_occupancy(occupancy);
            source.head_phits_sent += 1;
            activity = true;
            if source.head_phits_sent == size {
                source.pending.pop_front();
                source.head_phits_sent = 0;
            }
            self.buffered_phits[router] += 1;
            self.buffered_total += 1;
            self.mark_router_active(router);
        }
        activity
    }

    // ------------------------------------------------------------------
    // Phase C: routing and output-VC allocation.
    // ------------------------------------------------------------------
    // Only routers with buffered phits can have a head packet to route; the walk
    // sweeps the active-set bitmap in ascending router order (safe because every
    // router draws from its own RNG stream, so decisions are order-independent)
    // and the decision buffer is a reused scratch allocation owned by the network.
    fn phase_routing(&mut self, cycle: u64) {
        let ports = self.params.ports_per_router();
        let h = self.params.h();
        let mut decisions = std::mem::take(&mut self.route_scratch);
        let mut cursor = 0;
        while let Some(r) = self.active_routers.next_at_or_after(cursor) {
            cursor = r + 1;
            decisions.clear();
            {
                let router = &self.routers[r];
                let group = self.params.group_of_router(router.id).index();
                let view = RouterView {
                    router: router.id,
                    outputs: &router.outputs,
                    params: &self.params,
                    config: &self.config,
                    global_congested: Some(self.pb_board.group(group)),
                };
                let ctx = RouteCtx {
                    cycle,
                    params: &self.params,
                    config: &self.config,
                };
                // Rotate the service order of input ports for long-term fairness.
                let offset = router.rr_alloc;
                for i in 0..ports {
                    let ip = (i + offset) % ports;
                    let input_port = &router.inputs[ip];
                    for (ivc, input) in input_port.vcs.iter().enumerate() {
                        if input.route.is_some() {
                            continue;
                        }
                        let Some(slot) = input.buffer.head(&router.slot_pool) else {
                            continue;
                        };
                        let packet = self.packets.get(slot.packet);
                        if let Some(choice) =
                            self.routing.route(&ctx, packet, &view, &mut self.rngs[r])
                        {
                            decisions.push((ip, ivc, slot.packet, choice));
                        }
                    }
                }
            }
            if decisions.is_empty() {
                continue;
            }
            let router = &mut self.routers[r];
            router.rr_alloc = (router.rr_alloc + 1) % ports;
            for &(ip, ivc, pid, choice) in decisions.iter() {
                let flat = choice.port.flat(h);
                let needed = self
                    .config
                    .flow_control
                    .claim_phits(self.packets.get(pid).size_phits());
                let out = &mut router.outputs[flat].vcs[choice.vc as usize];
                if out.owner.is_some() || out.credits < needed {
                    continue;
                }
                out.owner = Some((ip as u16, ivc as u8));
                router.inputs[ip].vcs[ivc].route = Some((flat as u16, choice.vc));
                // Delay stamp 3: the head waited in this input VC from enqueue
                // until this grant.  Classified on the *pre-grant* route: a
                // packet still travelling its detour books the wait against
                // the detour component instead of `vc_wait`.
                let waited = {
                    let Router {
                        inputs, slot_pool, ..
                    } = &mut *router;
                    let buffer = &mut inputs[ip].vcs[ivc].buffer;
                    let enqueued = buffer
                        .head(slot_pool)
                        .expect("granted VC holds a head packet")
                        .enqueue_cycle;
                    buffer.stamp_grant(slot_pool, cycle);
                    cycle - enqueued
                };
                {
                    let packet = self.packets.get_mut(pid);
                    if on_detour(&packet.route) {
                        packet.delay.detour += waited;
                    } else {
                        packet.delay.vc_wait += waited;
                    }
                }
                apply_grant(self.packets.get_mut(pid), &choice, &self.params, router.id);
                // Probe: grants only happen at routers holding buffered phits,
                // which in a sharded run are exactly the owned routers.
                if self.probe.is_some() {
                    let pkt = self.packets.get(pid);
                    let (src, dst, gen) = (pkt.src.0, pkt.dst.0, pkt.gen_cycle);
                    let up = &choice.update;
                    let probe = self.probe.as_deref_mut().unwrap();
                    probe.record_grant(r, up.mark_global_misroute, up.mark_local_misroute);
                    if probe.flight_sampled(src, gen) {
                        let (class, nonminimal) = match choice.port {
                            Port::Local(_) => (CLASS_LOCAL, up.mark_local_misroute as u8),
                            Port::Global(_) => (CLASS_GLOBAL, up.mark_global_misroute as u8),
                            Port::Terminal(_) => (CLASS_TERMINAL, 2),
                        };
                        probe.record_flight(FlightEvent {
                            cycle,
                            gen_cycle: gen,
                            src,
                            dst,
                            router: r as u32,
                            port: flat as u16,
                            vc: choice.vc as u16,
                            kind: FLIGHT_HOP,
                            class,
                            nonminimal,
                        });
                    }
                }
            }
        }
        decisions.clear();
        self.route_scratch = decisions;
    }

    // ------------------------------------------------------------------
    // Phase D: switch traversal and link transmission (one phit per output port).
    // ------------------------------------------------------------------
    // The switch only needs routers holding buffered phits, visited in ascending
    // router order via the active-set bitmap (the launched phits and credits land
    // on links `r * ports + op`, so the fabric's send-side writes sweep forward
    // too); routers whose buffers drain during the sweep leave the active set
    // (and re-enter it from the arrival or injection phases when a new phit
    // shows up).
    fn phase_switch(&mut self, cycle: u64) -> bool {
        let ports = self.params.ports_per_router();
        let h = self.params.h();
        let flow_control = self.config.flow_control;
        let mut activity = false;
        let mut cursor = 0;
        while let Some(r) = self.active_routers.next_at_or_after(cursor) {
            cursor = r + 1;
            for op in 0..ports {
                let vcs = self.routers[r].outputs[op].vcs.len();
                let start = self.routers[r].outputs[op].rr_next;
                let mut chosen: Option<usize> = None;
                for k in 0..vcs {
                    let vc = (start + k) % vcs;
                    let Some((ip, ivc)) = self.routers[r].outputs[op].vcs[vc].owner else {
                        continue;
                    };
                    let out = &self.routers[r].outputs[op].vcs[vc];
                    if out.credits == 0 {
                        // Probe: a granted packet held the output VC but could
                        // not advance for lack of downstream credits.
                        if let Some(probe) = self.probe.as_deref_mut() {
                            probe.record_credit_stall(cycle, r * ports + op, vc);
                        }
                        continue;
                    }
                    let router = &self.routers[r];
                    let buffer = &router.inputs[ip as usize].vcs[ivc as usize].buffer;
                    let Some(head) = buffer.head(&router.slot_pool) else {
                        continue;
                    };
                    if !head.has_phit() {
                        continue;
                    }
                    // At a flit boundary, wormhole needs space for the whole flit.
                    let size = head.size as usize;
                    let fl = flow_control.flit_phits(size);
                    if fl > 1 && (head.phits_sent as usize).is_multiple_of(fl) {
                        let remaining = size - head.phits_sent as usize;
                        if out.credits < fl.min(remaining) {
                            continue;
                        }
                    }
                    chosen = Some(vc);
                    break;
                }
                let Some(vc) = chosen else { continue };
                activity = true;
                self.buffered_phits[r] -= 1;
                self.buffered_total -= 1;
                let (ip, ivc) = self.routers[r].outputs[op].vcs[vc].owner.unwrap();
                let (ip, ivc) = (ip as usize, ivc as usize);
                let Router {
                    inputs,
                    outputs,
                    slot_pool,
                    ..
                } = &mut self.routers[r];
                let buffer = &mut inputs[ip].vcs[ivc].buffer;
                let head = buffer.head(slot_pool).unwrap();
                let sent_before = head.phits_sent;
                let size = head.size;
                let grant_cycle = head.grant_cycle;
                let (pid, is_tail) = buffer.send_phit(slot_pool);
                let out = &mut outputs[op].vcs[vc];
                out.credits -= 1;
                out.rr_owner_advance(is_tail);
                if is_tail {
                    inputs[ip].vcs[ivc].route = None;
                }
                outputs[op].rr_next = (vc + 1) % vcs;
                // Delay stamp 4: the first phit crossing the switch ends the
                // wait for downstream credits that began at the grant, and the
                // head timestamp restarts for the link-transit leg.
                if sent_before == 0 {
                    let packet = self.packets.get_mut(pid);
                    let waited = cycle - grant_cycle;
                    if on_detour(&packet.route) {
                        packet.delay.detour += waited;
                    } else {
                        packet.delay.credit_wait += waited;
                    }
                    packet.delay.head_stamp = cycle;
                }
                // A phit leaving a global output changes its advertised occupancy.
                if let Port::Global(gport) = Port::from_flat(op, h) {
                    self.mark_pb_dirty(r, gport);
                }
                self.link_phits[r * ports + op] += 1;
                if let Some(probe) = self.probe.as_deref_mut() {
                    probe.record_link_phit(cycle, r * ports + op, vc);
                }
                self.fabric.send_phit(
                    r * ports + op,
                    cycle,
                    PhitInFlight::new(pid, vc as u8, sent_before == 0, is_tail, size),
                );
                self.active_links.insert(r * ports + op);
                // Return a credit to the upstream transmitter of the input buffer that
                // just freed one phit (injection ports have no upstream link).
                let upstream = self.incoming_link[r * ports + ip];
                if upstream != usize::MAX {
                    self.fabric.send_credit(upstream, cycle, ivc as u8);
                    self.active_links.insert(upstream);
                }
            }
            if self.buffered_phits[r] == 0 {
                // Safe mid-sweep: removal at the cursor never skips members.
                self.active_routers.remove(r);
            }
        }
        activity
    }

    /// Mark the global channel behind `(router, global port)` for re-evaluation.
    #[inline]
    fn mark_pb_dirty(&mut self, router: usize, gport: usize) {
        let rpg = self.params.routers_per_group();
        let channels = self.params.global_channels_per_group();
        let channel = self.params.global_channel_of(router % rpg, gport);
        let flat = (router / rpg) * channels + channel;
        if !self.pb_dirty[flat] {
            self.pb_dirty[flat] = true;
            self.pb_dirty_list.push(flat as u32);
        }
    }

    // Event-driven piggybacking board: a channel's advertised congestion flag can only
    // change when the downstream occupancy of its global output changes, i.e. when a
    // phit is transmitted (phase D) or a credit returns (phase A).  Both places mark
    // the channel dirty and only dirty channels are re-evaluated here, mirroring the
    // active-set scheduling of links and routers.
    fn update_pb_board(&mut self) {
        let channels = self.params.global_channels_per_group();
        let per_group_routers = self.params.routers_per_group();
        let h = self.params.h();
        let threshold = self.config.pb_congestion_threshold;
        while let Some(flat) = self.pb_dirty_list.pop() {
            let flat = flat as usize;
            self.pb_dirty[flat] = false;
            let (g, d) = (flat / channels, flat % channels);
            let (ridx, gport) = self.params.global_channel_owner(d);
            let router = g * per_group_routers + ridx;
            let out = &self.routers[router].outputs[Port::Global(gport).flat(h)];
            let occupancy = out.total_occupancy() as f64;
            let capacity = out.total_capacity() as f64;
            self.pb_board.set(g, d, occupancy > threshold * capacity);
        }
        #[cfg(debug_assertions)]
        self.assert_pb_board_matches_full_scan();
    }

    // ------------------------------------------------------------------
    // Sharding support (see `dragonfly_shard`).
    // ------------------------------------------------------------------
    //
    // A sharded run partitions the groups across several full `Network`
    // replicas.  Each replica restricts injection to its owned node range and
    // steps `advance_hooks` / `step_phases` / `apply_watchdog` / `finish_cycle`
    // under an external per-cycle barrier; global links whose two ends live in
    // different shards exchange their phits and credits (with their absolute
    // delivery stamps) through the methods below.

    /// Restrict packet generation, injection and burst preloading to `nodes`
    /// (a shard's owned contiguous node range).  The default is every node.
    pub fn set_owned_nodes(&mut self, nodes: Range<usize>) {
        assert!(nodes.end <= self.params.num_nodes());
        self.owned_nodes = nodes;
    }

    /// The node range this network instance generates packets for.
    pub fn owned_nodes(&self) -> Range<usize> {
        self.owned_nodes.clone()
    }

    /// Number of links (every router's output ports, flat-indexed as
    /// `router * ports_per_router + port`).
    pub fn num_links(&self) -> usize {
        self.fabric.len()
    }

    /// Where the link `li` ends (the receiving router/port or ejection node).
    pub fn link_end(&self, li: usize) -> LinkEnd {
        self.fabric.end(li)
    }

    /// Phits currently queued on link `li`'s forward pipeline.  A single
    /// packed-metadata read (the `len` field of the ring word) — the watchdog
    /// and idle checks never walk the pipeline pools.
    pub fn link_phits_in_flight(&self, li: usize) -> usize {
        self.fabric.phits_in_flight(li)
    }

    /// Credits currently queued on link `li`'s return pipeline (one packed
    /// `len`-field read, like [`Network::link_phits_in_flight`]).
    pub fn link_credits_in_flight(&self, li: usize) -> usize {
        self.fabric.credits_in_flight(li)
    }

    /// Drain every phit queued on link `li` into `out` (a transmit-side
    /// boundary link: the phits travel to another shard at the cycle barrier).
    pub fn take_link_phits(&mut self, li: usize, out: &mut Vec<PhitInFlight>) {
        while let Some(phit) = self.fabric.take_phit(li) {
            out.push(phit);
        }
    }

    /// Drain every credit queued on link `li` into `out` (a receive-side
    /// boundary link: the credits travel back to the transmitting shard).
    pub fn take_link_credits(&mut self, li: usize, out: &mut Vec<CreditInFlight>) {
        while let Some(credit) = self.fabric.take_credit(li) {
            out.push(credit);
        }
    }

    /// Deliver a phit from the transmitting shard into this shard's copy of
    /// link `li`, keeping its original arrival stamp.
    pub fn import_link_phit(&mut self, li: usize, phit: PhitInFlight) {
        self.fabric.push_arriving_phit(li, phit);
        self.mark_link_active(li);
    }

    /// Deliver a credit from the receiving shard into this shard's copy of
    /// link `li`, keeping its original arrival stamp.
    pub fn import_link_credit(&mut self, li: usize, credit: CreditInFlight) {
        self.fabric.push_arriving_credit(li, credit);
        self.mark_link_active(li);
    }

    /// Clone the full state of a live packet (shipped alongside the head phit
    /// when a packet crosses a shard boundary).
    pub fn export_packet(&self, id: PacketId) -> Packet {
        self.packets.get(id).clone()
    }

    /// Free a packet whose tail phit has left this shard (the receiving shard
    /// owns the authoritative copy from its head-phit import on).
    pub fn release_exported_packet(&mut self, id: PacketId) {
        self.packets.free(id);
    }

    /// Adopt a packet arriving from another shard into the local arena and
    /// return its local id.
    pub fn adopt_packet(&mut self, packet: &Packet) -> PacketId {
        self.packets.adopt(packet)
    }

    /// Start logging delivery feedback so a sharded run can broadcast it (see
    /// [`Network::take_sched_deliveries`]).
    pub fn enable_sched_delivery_log(&mut self) {
        self.sched_delivery_log = Some(Vec::new());
    }

    /// Take the job ids delivered on this shard since the last call (delivery
    /// feedback broadcast to the other shards' schedule replicas).
    pub fn take_sched_deliveries(&mut self) -> Vec<u16> {
        match self.sched_delivery_log.as_mut() {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Apply delivery feedback observed on *another* shard to this shard's
    /// schedule replica, keeping every replica's volume counters in lockstep.
    pub fn apply_remote_deliveries(&mut self, jobs: &[u16]) {
        if let Some(sched) = self.sched.as_mut() {
            for &job in jobs {
                sched.note_delivered(job);
            }
        }
    }

    /// Phits currently stored across all input buffers of this network
    /// instance (the per-shard summand of the memory-footprint telemetry).
    pub fn buffered_phits_total(&self) -> u64 {
        self.buffered_total
    }

    /// Times the packet arena grew beyond its preallocation (engine-local
    /// diagnostic; deliberately *not* part of `SimReport`, because each shard
    /// of a sharded run grows its own arena and the value would break the
    /// byte-identity of sequential and sharded reports).
    pub fn arena_grows(&self) -> u64 {
        self.packets.grows()
    }

    /// Update the run-wide memory-footprint peaks for the current cycle.  The
    /// sequential [`Network::step`] feeds its own counters; a sharded run feeds
    /// the global sums so every shard records identical peaks.
    pub fn note_cycle_peaks(&mut self, in_flight_packets: u64, buffered_phits: u64) {
        self.stats
            .note_cycle_peaks(in_flight_packets, buffered_phits);
    }

    // ------------------------------------------------------------------
    // Observability probes (see `dragonfly_probe`).
    // ------------------------------------------------------------------

    /// Install the observability probes: a recorder sized for this network,
    /// sampled every `cfg.stride` cycles at the tail of [`Network::step_phases`]
    /// (so the sequential and sharded engines sample at the identical point).
    ///
    /// Probes are read-only: they consume no RNG draws and change no report
    /// field, and all their storage is preallocated here, so the zero-alloc
    /// guarantee of the cycle loop holds with probes enabled.
    pub fn install_probes(&mut self, cfg: ProbeConfig) {
        let ports = self.params.ports_per_router();
        let h = self.params.h();
        let link_class = (0..self.fabric.len())
            .map(|li| match Port::from_flat(li % ports, h).kind() {
                PortKind::Local => CLASS_LOCAL,
                PortKind::Global => CLASS_GLOBAL,
                PortKind::Terminal => CLASS_TERMINAL,
            })
            .collect();
        let vcs = (0..ports)
            .map(|p| self.config.vcs_for(Port::from_flat(p, h).kind()))
            .max()
            .unwrap_or(1);
        let dims = ProbeDims {
            routers: self.routers.len(),
            ports,
            vcs,
            link_class,
        };
        self.probe = Some(Box::new(ProbeRecorder::new(cfg, dims)));
    }

    /// The installed probe recorder, if any.
    pub fn probe(&self) -> Option<&ProbeRecorder> {
        self.probe.as_deref()
    }

    /// Mutable access to the installed probe recorder (the sharded engine
    /// uses this to defer detector stepping on its replicas).
    pub fn probe_mut(&mut self) -> Option<&mut ProbeRecorder> {
        self.probe.as_deref_mut()
    }

    /// Remove and return the installed probe recorder (emission happens on
    /// the extracted recorder, outside the cycle loop).
    pub fn take_probe(&mut self) -> Option<Box<ProbeRecorder>> {
        self.probe.take()
    }

    /// Accumulated per-phase wall-clock timers (`--features profile`).
    #[cfg(feature = "profile")]
    pub fn phase_profile(&self) -> &PhaseProfile {
        &self.profile
    }

    /// Probe bookkeeping at the tail of [`Network::step_phases`]: on stride
    /// cycles, scan the receive-side VC occupancies into the heatmap and push
    /// one time-series sample.  A no-op without an installed probe.
    fn probe_sample(&mut self, cycle: u64) {
        let (stride, heatmap) = match self.probe.as_deref() {
            Some(p) => (p.stride(), p.heatmap_enabled()),
            None => return,
        };
        if !cycle.is_multiple_of(stride) {
            return;
        }
        let ports = self.params.ports_per_router();
        if heatmap {
            // Occupancy is attributed to the link *feeding* each input VC.
            // Non-owned replica routers of a sharded run never buffer phits,
            // so every cell is accumulated by exactly one shard.
            let probe = self.probe.as_deref_mut().unwrap();
            for (r, router) in self.routers.iter().enumerate() {
                if self.buffered_phits[r] == 0 {
                    continue;
                }
                for (p, input) in router.inputs.iter().enumerate() {
                    let li = self.incoming_link[r * ports + p];
                    if li == usize::MAX {
                        continue;
                    }
                    for (vc, ivc) in input.vcs.iter().enumerate() {
                        probe.add_occupancy(cycle, li, vc, ivc.buffer.occupancy() as u32);
                    }
                }
            }
        }
        // The high-water scan reads only the fabric's packed metadata words
        // (two cache lines per 8 links), never the pipeline pools themselves.
        let (phit_hw, credit_hw) = self.fabric.max_high_waters();
        let snap = SampleSnapshot {
            buffered_phits: self.buffered_total,
            pb_congested: self.pb_board.congested_count(),
            arena_grows: self.packets.grows(),
            phit_ring_high_water: phit_hw as u64,
            credit_ring_high_water: credit_hw as u64,
            active_links: self.active_links.len() as u64,
            active_routers: self.active_routers.len() as u64,
        };
        let probe = self.probe.as_deref_mut().unwrap();
        probe.sample(cycle, &self.link_phits, snap);
    }

    /// Debug-build equivalence check of the event-driven board against the full scan
    /// it replaced.
    #[cfg(debug_assertions)]
    fn assert_pb_board_matches_full_scan(&self) {
        let channels = self.params.global_channels_per_group();
        let per_group_routers = self.params.routers_per_group();
        let h = self.params.h();
        let threshold = self.config.pb_congestion_threshold;
        for g in 0..self.params.groups() {
            for d in 0..channels {
                let (ridx, gport) = self.params.global_channel_owner(d);
                let router = g * per_group_routers + ridx;
                let out = &self.routers[router].outputs[Port::Global(gport).flat(h)];
                let expected =
                    out.total_occupancy() as f64 > threshold * out.total_capacity() as f64;
                assert_eq!(
                    self.pb_board.group(g)[d],
                    expected,
                    "PB board diverged from the full scan at group {g} channel {d} \
                     (cycle {})",
                    self.cycle
                );
            }
        }
    }
}

impl crate::router::OutputVc {
    /// Release ownership when the tail phit has been sent.
    #[inline]
    fn rr_owner_advance(&mut self, is_tail: bool) {
        if is_tail {
            self.owner = None;
        }
    }
}

/// Apply a granted routing decision to the packet state.
fn apply_grant(
    packet: &mut crate::packet::Packet,
    choice: &RouteChoice,
    params: &DragonflyParams,
    current_router: RouterId,
) {
    let up = &choice.update;
    if let Some(g) = up.set_intermediate_group {
        packet.route.intermediate_group = Some(g);
    }
    if up.mark_global_misroute {
        packet.route.global_misrouted = true;
    }
    if up.mark_source_decision {
        packet.route.source_decision_taken = true;
    }
    match choice.port {
        Port::Local(_) => {
            packet.route.local_hops_in_group += 1;
            packet.route.total_hops = packet.route.total_hops.saturating_add(1);
            if up.mark_local_misroute {
                packet.route.local_misrouted_in_group = true;
                packet.route.local_misrouted_ever = true;
            }
            packet.route.last_local_class = up.local_link_class;
            packet.route.vc = choice.vc;
        }
        Port::Global(p) => {
            packet.route.global_hops += 1;
            packet.route.total_hops = packet.route.total_hops.saturating_add(1);
            packet.route.enter_new_group();
            packet.route.vc = choice.vc;
            let (remote, _) = params.global_neighbor(current_router, p);
            if Some(params.group_of_router(remote)) == packet.route.intermediate_group {
                packet.route.reached_intermediate = true;
            }
        }
        Port::Terminal(_) => {}
    }
}

/// True while a packet is travelling away from its minimal path: globally
/// misrouted but not yet at the intermediate group, or locally misrouted
/// inside the current group.  Waits and transits incurred in this state are
/// booked to the `detour` delay component; everything after the detour
/// rejoins the minimal components, so Minimal routing has an identically
/// zero detour column.
#[inline]
fn on_detour(route: &RouteState) -> bool {
    (route.global_misrouted && !route.reached_intermediate) || route.local_misrouted_in_group
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing_iface::BaselineMinimal;
    use dragonfly_traffic::Uniform;

    fn tiny_network() -> Network {
        let config = SimConfig::paper_vct(2).with_seed(7);
        Network::new(
            config,
            Box::new(BaselineMinimal::new()),
            Box::new(Uniform::new()),
        )
    }

    #[test]
    fn construction_counts() {
        let net = tiny_network();
        assert_eq!(net.routers.len(), 36);
        assert_eq!(net.sources.len(), 72);
        assert_eq!(net.num_links(), 36 * 7);
        assert_eq!(net.routing_name(), "Minimal");
        assert_eq!(net.traffic_name(), "UN");
        assert!(net.is_drained());
    }

    #[test]
    fn incoming_link_map_is_consistent() {
        let net = tiny_network();
        let ports = net.params.ports_per_router();
        for r in 0..net.routers.len() {
            for p in 0..ports {
                let port = Port::from_flat(p, net.params.h());
                let li = net.incoming_link[r * ports + p];
                match port.kind() {
                    PortKind::Terminal => assert_eq!(li, usize::MAX),
                    _ => {
                        assert_ne!(li, usize::MAX, "network port without an incoming link");
                        match net.link_end(li) {
                            LinkEnd::Router { router, port } => {
                                assert_eq!(router, r);
                                assert_eq!(port, p);
                            }
                            _ => panic!("incoming link of a network port ends at a node"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn idle_network_steps_without_activity() {
        let mut net = tiny_network();
        net.run(100);
        assert_eq!(net.cycle, 100);
        assert!(net.is_drained());
        assert!(!net.deadlock_detected);
        assert_eq!(net.stats.total_generated, 0);
    }

    #[test]
    fn single_packet_is_delivered_minimally() {
        let mut net = tiny_network();
        // Send one packet from node 0 to a node in another group.
        let src = NodeId(0);
        let dst = NodeId((net.params.num_nodes() - 1) as u32);
        let id = net.packets.alloc(src, dst, 8, 0);
        net.packets.get_mut(id).measured = true;
        net.stats.begin_measurement(0);
        net.sources[0].pending.push_back(id);
        net.stats.record_generated(8, 0);
        net.run(1_000);
        assert!(net.is_drained(), "packet should be delivered");
        assert_eq!(net.stats.total_delivered, 1);
        assert_eq!(net.stats.measured_delivered, 1);
        // Latency at least the physical path: two local links + one global link plus
        // serialization of 8 phits.
        let latency = net.stats.latency.mean();
        assert!(latency >= 100.0, "latency {latency} too small");
        assert!(
            latency <= 400.0,
            "latency {latency} too large for an idle network"
        );
        let hops = net.stats.hops.mean();
        assert!((1.0..=3.0).contains(&hops), "hops {hops}");
    }

    #[test]
    fn same_router_packet_needs_no_network_hop() {
        let mut net = tiny_network();
        // Nodes 0 and 1 share router 0 when h = 2.
        let id = net.packets.alloc(NodeId(0), NodeId(1), 8, 0);
        net.packets.get_mut(id).measured = true;
        net.stats.begin_measurement(0);
        net.sources[0].pending.push_back(id);
        net.stats.record_generated(8, 0);
        net.run(200);
        assert!(net.is_drained());
        assert_eq!(net.stats.hops.mean(), 0.0);
        assert!(net.stats.latency.mean() < 50.0);
    }

    #[test]
    fn burst_preload_counts() {
        let mut net = tiny_network();
        net.preload_burst(3);
        assert_eq!(
            net.stats.total_generated as usize,
            3 * net.params.num_nodes()
        );
        assert!(!net.is_drained());
    }

    #[test]
    fn uniform_load_conserves_packets() {
        let mut net = tiny_network();
        net.set_injection(Some(BernoulliInjection::new(0.1, 8)));
        net.run(2_000);
        net.set_injection(None);
        net.run(3_000);
        assert!(
            net.is_drained(),
            "all generated packets must eventually be delivered: {} in flight",
            net.stats.in_flight()
        );
        assert_eq!(net.stats.total_generated, net.stats.total_delivered);
        assert!(net.stats.total_delivered > 100);
        assert!(!net.deadlock_detected);
        assert_eq!(net.stored_phits(), 0);
    }

    #[test]
    fn link_phit_accounting_matches_deliveries() {
        let mut net = tiny_network();
        net.set_injection(Some(BernoulliInjection::new(0.1, 8)));
        net.run(1_500);
        net.set_injection(None);
        net.run(3_000);
        assert!(net.is_drained());
        // Every delivered packet crossed exactly one ejection (terminal) link with all
        // of its phits, so the terminal link totals must equal delivered phits.
        let mut terminal_phits = 0u64;
        for r in 0..net.routers.len() {
            for p in 0..net.params.ports_per_router() {
                if Port::from_flat(p, net.params.h()).is_terminal() {
                    terminal_phits += net.link_phits(r, p);
                }
            }
        }
        assert_eq!(terminal_phits, net.stats.total_delivered * 8);
        // Utilization numbers are well-formed.
        let (max_local, mean_local) = net.link_utilization_summary(PortKind::Local);
        assert!(max_local >= mean_local);
        assert!(max_local <= 1.0 + 1e-9);
        let (max_term, _) = net.link_utilization_summary(PortKind::Terminal);
        assert!(max_term > 0.0);
    }

    #[test]
    fn probes_record_without_perturbing_the_run() {
        let mut plain = tiny_network();
        plain.set_injection(Some(BernoulliInjection::new(0.1, 8)));
        plain.run(1_000);

        let mut probed = tiny_network();
        probed.install_probes(ProbeConfig::full(64));
        probed.set_injection(Some(BernoulliInjection::new(0.1, 8)));
        probed.run(1_000);

        // Read-only: the probed run's statistics are identical.
        assert_eq!(plain.stats.total_generated, probed.stats.total_generated);
        assert_eq!(plain.stats.total_delivered, probed.stats.total_delivered);
        assert_eq!(plain.stats.latency.mean(), probed.stats.latency.mean());

        let probe = probed.take_probe().unwrap();
        // Cycles 0, 64, …, 960 at stride 64 over 1 000 cycles: 16 samples.
        assert_eq!(probe.samples(), 16);
        let last = |s: &dragonfly_stats::TimeSeries| s.samples().last().copied().unwrap();
        // The last sample (cycle 960) is a prefix of the full run's counters.
        let inj = last(&probe.series().injected);
        assert!(
            inj > 0.0 && inj <= probed.stats.total_generated as f64,
            "{inj}"
        );
        assert!(last(&probe.series().delivered) <= inj);
        assert!(last(&probe.series().link_terminal_phits) > 0.0);
        assert!(!probe.flight_events().is_empty());
        assert!(probe.heat_windows() > 0);
    }

    #[test]
    fn credits_return_to_full_after_drain() {
        let mut net = tiny_network();
        net.set_injection(Some(BernoulliInjection::new(0.2, 8)));
        net.run(1_000);
        net.set_injection(None);
        net.run(4_000);
        assert!(net.is_drained());
        for router in &net.routers {
            for (flat, out) in router.outputs.iter().enumerate() {
                let port = Port::from_flat(flat, net.params.h());
                if port.is_terminal() {
                    continue;
                }
                for vc in &out.vcs {
                    assert_eq!(
                        vc.credits, vc.downstream_capacity,
                        "credits must return to capacity once the network drains"
                    );
                    assert!(vc.owner.is_none());
                }
            }
        }
    }
}
