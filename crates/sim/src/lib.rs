//! Cycle-accurate, phit-level Dragonfly network simulator.
//!
//! This crate is the reproduction of the paper's "in-house developed single-cycle
//! simulator that models FIFO input-buffered routers with VCT or WH flow-control".
//! It simulates every phit of every packet:
//!
//! * routers are input-buffered with per-port virtual channels ([`router`]),
//! * links are pipelined and carry one phit per cycle, with credit-based backpressure;
//!   per-link state lives in the struct-of-arrays [`fabric::LinkFabric`] and the wire
//!   types in [`link`],
//! * flow control is Virtual Cut-Through or Wormhole ([`config::FlowControl`]),
//! * routing is pluggable through the [`routing_iface::RoutingAlgorithm`] trait and is
//!   re-evaluated every cycle (on-the-fly adaptivity),
//! * statistics follow the paper's methodology: warm-up, measurement window, latency
//!   of packets generated inside the window, accepted load at the ejection ports
//!   ([`stats_collect`], [`engine`]).
//!
//! # Example
//!
//! ```
//! use dragonfly_sim::{Simulation, SimConfig, BaselineMinimal};
//! use dragonfly_traffic::Uniform;
//!
//! let mut sim = Simulation::new(
//!     SimConfig::paper_vct(2),
//!     Box::new(BaselineMinimal::new()),
//!     Box::new(Uniform::new()),
//! );
//! let report = sim.run_steady_state(0.1, 500, 1_000, 1_000);
//! assert!(report.accepted_load > 0.0);
//! ```

pub mod active_set;
pub mod buffer;
pub mod config;
pub mod engine;
pub mod fabric;
pub mod link;
pub mod network;
pub mod packet;
pub mod ring;
pub mod router;
pub mod routing_iface;
pub mod stats_collect;

pub use active_set::ActiveSet;
pub use buffer::{PacketSlot, VcBuffer};
pub use config::{FlowControl, SimConfig};
pub use engine::{
    job_report, phase_report, sim_report, span_overlap, PhaseIdentity, SimRunIdentity, Simulation,
};
pub use fabric::{LinkFabric, LinkSpec};
pub use link::{CreditInFlight, LinkEnd, PhitInFlight};
#[cfg(feature = "profile")]
pub use network::PhaseProfile;
pub use network::{GlobalStatusBoard, Network, SourceQueue};
pub use packet::{Packet, PacketArena, PacketId, RouteState, UNTAGGED};
pub use ring::{FixedRing, RingMeta};
pub use router::{InputPort, InputVc, OutputPort, OutputVc, Router};
pub use routing_iface::{
    BaselineMinimal, RouteChoice, RouteCtx, RouteUpdate, RouterView, RoutingAlgorithm,
};
pub use stats_collect::ScopedCollector;
pub use stats_collect::StatsCollector;
