//! The interface between the simulator engine and routing mechanisms.
//!
//! Routing is evaluated *on the fly*: every cycle, for every input VC whose head
//! packet has no output assignment yet, the engine calls
//! [`RoutingAlgorithm::route`] with a read-only [`RouterView`] of the local credit and
//! occupancy state.  The mechanism returns at most one candidate output; the engine
//! then tries to claim it under the flow-control rules and, on success, applies the
//! returned [`RouteUpdate`] to the packet.  If the claim fails the decision is simply
//! re-evaluated next cycle, which is exactly the paper's in-transit adaptivity.

use crate::config::{FlowControl, SimConfig};
use crate::packet::Packet;
use crate::router::{OutputPort, OutputVc};
use dragonfly_rng::Rng;
use dragonfly_topology::{DragonflyParams, GroupId, Port, RouterId};

/// Read-only view of one router offered to the routing mechanism.
#[derive(Clone, Copy)]
pub struct RouterView<'a> {
    /// The router being routed at.
    pub router: RouterId,
    /// Output ports of the router (flat indexing).
    pub outputs: &'a [OutputPort],
    /// Topology parameters.
    pub params: &'a DragonflyParams,
    /// Simulation configuration (packet size, flow control, VC counts).
    pub config: &'a SimConfig,
    /// Piggybacked per-global-channel congestion flags of this router's group, when
    /// the mechanism uses them (indexed by global channel).
    pub global_congested: Option<&'a [bool]>,
}

impl<'a> RouterView<'a> {
    /// The output VC state behind a typed port/VC pair.
    #[inline]
    pub fn output(&self, port: Port, vc: usize) -> &OutputVc {
        &self.outputs[port.flat(self.params.h())].vcs[vc]
    }

    /// Downstream occupancy (phits) of a specific output VC.
    #[inline]
    pub fn occupancy(&self, port: Port, vc: usize) -> usize {
        self.output(port, vc).occupancy()
    }

    /// Total downstream occupancy of an output port over all VCs.
    #[inline]
    pub fn port_occupancy(&self, port: Port) -> usize {
        self.outputs[port.flat(self.params.h())].total_occupancy()
    }

    /// Number of phits that must be free downstream before a claim succeeds.
    #[inline]
    pub fn claim_phits(&self, packet: &Packet) -> usize {
        self.config.flow_control.claim_phits(packet.size_phits())
    }

    /// Whether `packet` could be granted `port`/`vc` this cycle: the output VC is free
    /// and the downstream buffer satisfies the flow-control condition.
    #[inline]
    pub fn can_claim(&self, port: Port, vc: usize, packet: &Packet) -> bool {
        let out = self.output(port, vc);
        out.is_free() && out.credits >= self.claim_phits(packet)
    }

    /// Whether a whole packet currently fits in the downstream buffer of `port`/`vc`
    /// (the opportunistic condition of OLM, independent of the flow-control mode).
    #[inline]
    pub fn fits_whole_packet(&self, port: Port, vc: usize, packet: &Packet) -> bool {
        let out = self.output(port, vc);
        out.is_free() && out.credits >= packet.size_phits()
    }

    /// The group this router belongs to.
    #[inline]
    pub fn group(&self) -> GroupId {
        self.params.group_of_router(self.router)
    }
}

/// Routing-state changes to apply to the packet if (and only if) the requested output
/// is granted this cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteUpdate {
    /// Commit to a Valiant intermediate group.
    pub set_intermediate_group: Option<GroupId>,
    /// Mark the packet as globally misrouted.
    pub mark_global_misroute: bool,
    /// Mark the packet as locally misrouted (in the current group).
    pub mark_local_misroute: bool,
    /// Record that the source-routed decision (Piggybacking / Valiant at injection)
    /// has been taken.
    pub mark_source_decision: bool,
    /// Parity-sign class of the local hop being taken (RLM bookkeeping).
    pub local_link_class: Option<u8>,
}

/// The output requested by the routing mechanism for the head packet of an input VC.
#[derive(Debug, Clone, Copy)]
pub struct RouteChoice {
    /// Requested output port.
    pub port: Port,
    /// Requested output VC (index within the port's VC set).
    pub vc: u8,
    /// State delta applied when the claim succeeds.
    pub update: RouteUpdate,
}

impl RouteChoice {
    /// A plain choice with no routing-state side effects.
    pub fn plain(port: Port, vc: u8) -> Self {
        Self {
            port,
            vc,
            update: RouteUpdate::default(),
        }
    }
}

/// Context shared by all routing invocations of one cycle.
pub struct RouteCtx<'a> {
    /// Current simulation cycle.
    pub cycle: u64,
    /// Topology parameters.
    pub params: &'a DragonflyParams,
    /// Simulation configuration.
    pub config: &'a SimConfig,
}

/// A deadlock-free routing mechanism.
pub trait RoutingAlgorithm: Send {
    /// Short display name (e.g. `"OLM"`).
    fn name(&self) -> &'static str;

    /// Number of local-port virtual channels the mechanism requires.
    fn required_local_vcs(&self) -> usize;

    /// Number of global-port virtual channels the mechanism requires.
    fn required_global_vcs(&self) -> usize;

    /// Whether the mechanism is safe under the given flow control (OLM requires VCT).
    fn supports_flow_control(&self, fc: FlowControl) -> bool {
        let _ = fc;
        true
    }

    /// Pick the output to request for `packet`, which sits at the head of an input VC
    /// of the router described by `view`.  Returning `None` stalls the packet for this
    /// cycle (the decision is re-evaluated next cycle).
    fn route(
        &self,
        ctx: &RouteCtx<'_>,
        packet: &Packet,
        view: &RouterView<'_>,
        rng: &mut Rng,
    ) -> Option<RouteChoice>;
}

/// Forwarding impl so `Box<dyn RoutingAlgorithm>` (and any boxed concrete mechanism)
/// is itself a [`RoutingAlgorithm`].  This is what lets the monomorphized
/// [`Network<R>`](crate::network::Network) keep a type-erased construction path:
/// `Network<Box<dyn RoutingAlgorithm>>` is the dynamic-dispatch engine, while
/// `Network<ConcreteMechanism>` statically dispatches and inlines the per-cycle
/// `route()` call.
impl<T: RoutingAlgorithm + ?Sized> RoutingAlgorithm for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn required_local_vcs(&self) -> usize {
        (**self).required_local_vcs()
    }

    fn required_global_vcs(&self) -> usize {
        (**self).required_global_vcs()
    }

    fn supports_flow_control(&self, fc: FlowControl) -> bool {
        (**self).supports_flow_control(fc)
    }

    fn route(
        &self,
        ctx: &RouteCtx<'_>,
        packet: &Packet,
        view: &RouterView<'_>,
        rng: &mut Rng,
    ) -> Option<RouteChoice> {
        (**self).route(ctx, packet, view, rng)
    }
}

/// Minimal routing with an ascending VC ladder.
///
/// This is the baseline mechanism of the paper (and doubles as the simulator's
/// built-in self-test routing): always follow the minimal path `l – g – l`, using
/// local VC 0 before the global hop, global VC 0, and local VC 1 in the destination
/// group, which is deadlock-free by Günther's argument.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineMinimal;

impl BaselineMinimal {
    /// Create the baseline minimal routing.
    pub fn new() -> Self {
        Self
    }

    /// The ascending-ladder VC for a minimal hop, shared with other mechanisms.
    pub fn ladder_vc(port: Port, global_hops: u8) -> u8 {
        match port {
            Port::Global(_) => global_hops,
            Port::Local(_) => global_hops,
            Port::Terminal(_) => 0,
        }
    }
}

impl RoutingAlgorithm for BaselineMinimal {
    fn name(&self) -> &'static str {
        "Minimal"
    }

    fn required_local_vcs(&self) -> usize {
        2
    }

    fn required_global_vcs(&self) -> usize {
        1
    }

    fn route(
        &self,
        _ctx: &RouteCtx<'_>,
        packet: &Packet,
        view: &RouterView<'_>,
        _rng: &mut Rng,
    ) -> Option<RouteChoice> {
        let port = view.params.minimal_port(view.router, packet.dst);
        let vc = if port.is_terminal() {
            0
        } else {
            Self::ladder_vc(port, packet.route.global_hops)
        };
        Some(RouteChoice::plain(port, vc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketId};
    use dragonfly_topology::NodeId;

    #[test]
    fn baseline_minimal_metadata() {
        let m = BaselineMinimal::new();
        assert_eq!(m.name(), "Minimal");
        assert!(m.required_local_vcs() <= 3);
        assert!(m.supports_flow_control(FlowControl::Vct));
        assert!(m.supports_flow_control(FlowControl::Wormhole { flit_size: 10 }));
    }

    #[test]
    fn ladder_vc_follows_global_hops() {
        assert_eq!(BaselineMinimal::ladder_vc(Port::Local(0), 0), 0);
        assert_eq!(BaselineMinimal::ladder_vc(Port::Local(0), 1), 1);
        assert_eq!(BaselineMinimal::ladder_vc(Port::Global(0), 0), 0);
        assert_eq!(BaselineMinimal::ladder_vc(Port::Global(0), 1), 1);
        assert_eq!(BaselineMinimal::ladder_vc(Port::Terminal(0), 2), 0);
    }

    #[test]
    fn route_choice_plain_has_no_side_effects() {
        let c = RouteChoice::plain(Port::Local(3), 1);
        assert_eq!(c.port, Port::Local(3));
        assert_eq!(c.vc, 1);
        assert!(c.update.set_intermediate_group.is_none());
        assert!(!c.update.mark_global_misroute);
        assert!(!c.update.mark_local_misroute);
    }

    #[test]
    fn route_update_default_is_neutral() {
        let u = RouteUpdate::default();
        assert!(!u.mark_source_decision);
        assert!(u.local_link_class.is_none());
    }

    #[test]
    fn packet_id_index() {
        assert_eq!(PacketId(7).index(), 7);
        let p = Packet::new(PacketId(1), NodeId(0), NodeId(3), 8, 0);
        assert_eq!(p.id, PacketId(1));
    }
}
