//! Pipelined links carrying phits forward and credits backward.

use crate::packet::PacketId;
use crate::ring::FixedRing;
use dragonfly_topology::NodeId;

/// A phit travelling on a link.
///
/// Kept to 16 bytes — every active link materializes `latency + 1` of these
/// in its pipeline ring, and an h = 8 network has ~64 k links.  Arrival
/// cycles are stored as `u32` (runs beyond `u32::MAX` cycles are unsupported
/// and debug-asserted at launch) and the head/tail markers share one flags
/// byte behind accessors.
#[derive(Debug, Clone, Copy)]
pub struct PhitInFlight {
    /// The packet it belongs to.
    pub packet: PacketId,
    /// Cycle at which the phit reaches the far end.
    pub arrive: u32,
    /// Size of the packet in phits (needed to open the downstream slot).
    pub size: u16,
    /// Virtual channel it will be stored in at the far end.
    pub vc: u8,
    flags: u8,
}

const PHIT_HEAD: u8 = 1;
const PHIT_TAIL: u8 = 2;

impl PhitInFlight {
    /// A phit of `packet` bound for `vc`, with a zero arrival stamp (filled
    /// in by [`Link::send_phit`]).
    #[inline]
    pub fn new(packet: PacketId, vc: u8, is_head: bool, is_tail: bool, size: u16) -> Self {
        Self {
            packet,
            arrive: 0,
            size,
            vc,
            flags: ((is_head as u8) * PHIT_HEAD) | ((is_tail as u8) * PHIT_TAIL),
        }
    }

    /// First phit of the packet.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.flags & PHIT_HEAD != 0
    }

    /// Last phit of the packet.
    #[inline]
    pub fn is_tail(&self) -> bool {
        self.flags & PHIT_TAIL != 0
    }
}

/// A credit travelling back to the transmitter of a link.
///
/// 8 bytes, for the same footprint reason as [`PhitInFlight`].
#[derive(Debug, Clone, Copy)]
pub struct CreditInFlight {
    /// Cycle at which the credit reaches the transmitter.
    pub arrive: u32,
    /// Virtual channel the credit belongs to.
    pub vc: u8,
}

/// The far end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEnd {
    /// Another router: `(router index, flat input port)`.
    Router {
        /// Destination router index.
        router: usize,
        /// Flat input port at the destination router.
        port: usize,
    },
    /// A terminal node (ejection).
    Node {
        /// The consuming node.
        node: NodeId,
    },
}

/// A unidirectional pipelined channel.
///
/// Phits inserted at cycle `t` become available at the far end at `t + latency`.
/// Credits flow in the opposite direction with the same latency, modelling the
/// round-trip time that sizes the buffers in the paper's methodology.
///
/// Both pipelines are [`FixedRing`]s whose capacities are provable at
/// construction time: at most one phit is launched per cycle and arrivals are
/// drained every cycle the link is active, so `latency + 1` phits bound the
/// forward direction; in-flight credits are bounded by the downstream buffer
/// space they stand for (`Σ downstream VC capacities`) and, independently, by
/// `vcs × (latency + 1)` since each downstream VC drains at most one phit per
/// cycle.  The engine passes the tighter of the two.
#[derive(Debug)]
pub struct Link {
    /// Latency in cycles.
    pub latency: u64,
    /// Where the link ends.
    pub to: LinkEnd,
    phits: FixedRing<PhitInFlight>,
    credits: FixedRing<CreditInFlight>,
}

impl Link {
    /// Create an idle link able to carry `phit_cap` in-flight phits and
    /// `credit_cap` in-flight credits.
    pub fn new(latency: u64, to: LinkEnd, phit_cap: usize, credit_cap: usize) -> Self {
        Self {
            latency,
            to,
            phits: FixedRing::new(phit_cap),
            credits: FixedRing::new(credit_cap),
        }
    }

    /// Launch a phit at cycle `now`.
    #[inline]
    pub fn send_phit(&mut self, now: u64, mut phit: PhitInFlight) {
        let arrive = now + self.latency;
        debug_assert!(arrive <= u32::MAX as u64, "cycle count exceeds u32 range");
        phit.arrive = arrive as u32;
        debug_assert!(
            self.phits
                .back()
                .map(|p| p.arrive <= phit.arrive)
                .unwrap_or(true),
            "phits must be launched in non-decreasing time order"
        );
        self.phits.push_back(phit);
    }

    /// Launch a credit back to the transmitter at cycle `now`.
    #[inline]
    pub fn send_credit(&mut self, now: u64, vc: u8) {
        let arrive = now + self.latency;
        debug_assert!(arrive <= u32::MAX as u64, "cycle count exceeds u32 range");
        self.credits.push_back(CreditInFlight {
            arrive: arrive as u32,
            vc,
        });
    }

    /// Pop the next phit that has arrived by cycle `now`, if any.
    #[inline]
    pub fn pop_arrived_phit(&mut self, now: u64) -> Option<PhitInFlight> {
        if self
            .phits
            .front()
            .map(|p| p.arrive as u64 <= now)
            .unwrap_or(false)
        {
            self.phits.pop_front()
        } else {
            None
        }
    }

    /// Pop the next credit that has arrived by cycle `now`, if any.
    #[inline]
    pub fn pop_arrived_credit(&mut self, now: u64) -> Option<CreditInFlight> {
        if self
            .credits
            .front()
            .map(|c| c.arrive as u64 <= now)
            .unwrap_or(false)
        {
            self.credits.pop_front()
        } else {
            None
        }
    }

    /// Pop the next phit regardless of its arrival stamp (boundary-link export:
    /// the phit continues its flight in the receiving shard's link copy).
    #[inline]
    pub fn take_phit(&mut self) -> Option<PhitInFlight> {
        self.phits.pop_front()
    }

    /// Pop the next credit regardless of its arrival stamp (boundary-link
    /// export toward the transmitting shard).
    #[inline]
    pub fn take_credit(&mut self) -> Option<CreditInFlight> {
        self.credits.pop_front()
    }

    /// Enqueue a phit that already carries its absolute arrival stamp
    /// (boundary-link import from the transmitting shard).
    #[inline]
    pub fn push_arriving_phit(&mut self, phit: PhitInFlight) {
        debug_assert!(
            self.phits
                .back()
                .map(|p| p.arrive <= phit.arrive)
                .unwrap_or(true),
            "imported phits must keep non-decreasing arrival order"
        );
        self.phits.push_back(phit);
    }

    /// Enqueue a credit that already carries its absolute arrival stamp
    /// (boundary-link import from the receiving shard).
    #[inline]
    pub fn push_arriving_credit(&mut self, credit: CreditInFlight) {
        debug_assert!(
            self.credits
                .back()
                .map(|c| c.arrive <= credit.arrive)
                .unwrap_or(true),
            "imported credits must keep non-decreasing arrival order"
        );
        self.credits.push_back(credit);
    }

    /// Number of phits currently in flight.
    #[inline]
    pub fn phits_in_flight(&self) -> usize {
        self.phits.len()
    }

    /// Number of credits currently in flight.
    #[inline]
    pub fn credits_in_flight(&self) -> usize {
        self.credits.len()
    }

    /// Highest occupancy the phit pipeline has ever reached (probe
    /// diagnostics: how much of the provable `latency + 1` bound a run used).
    #[inline]
    pub fn phit_ring_high_water(&self) -> usize {
        self.phits.high_water()
    }

    /// Highest occupancy the credit pipeline has ever reached.
    #[inline]
    pub fn credit_ring_high_water(&self) -> usize {
        self.credits.high_water()
    }

    /// True when nothing is travelling on the link in either direction.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.phits.is_empty() && self.credits.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phit(packet: u32) -> PhitInFlight {
        PhitInFlight::new(PacketId(packet as u64), 0, true, false, 8)
    }

    #[test]
    fn pipeline_entries_stay_compact() {
        // ~64k links at h = 8 each materialize latency+1 of these; the
        // footprint argument in the struct docs relies on these sizes.
        assert_eq!(std::mem::size_of::<PhitInFlight>(), 16);
        assert_eq!(std::mem::size_of::<CreditInFlight>(), 8);
    }

    #[test]
    fn phit_flags_roundtrip() {
        let p = PhitInFlight::new(PacketId(9), 2, true, false, 8);
        assert!(p.is_head() && !p.is_tail());
        let t = PhitInFlight::new(PacketId(9), 2, false, true, 8);
        assert!(!t.is_head() && t.is_tail());
        let single = PhitInFlight::new(PacketId(9), 2, true, true, 1);
        assert!(single.is_head() && single.is_tail());
    }

    #[test]
    fn phit_arrives_after_latency() {
        let mut link = Link::new(10, LinkEnd::Node { node: NodeId(0) }, 11, 11);
        link.send_phit(5, phit(1));
        assert!(link.pop_arrived_phit(14).is_none());
        let p = link.pop_arrived_phit(15).expect("phit should have arrived");
        assert_eq!(p.packet, PacketId(1));
        assert_eq!(p.arrive, 15);
        assert!(link.is_idle());
    }

    #[test]
    fn phits_preserve_order() {
        let mut link = Link::new(3, LinkEnd::Router { router: 1, port: 2 }, 4, 4);
        link.send_phit(0, phit(1));
        link.send_phit(1, phit(2));
        link.send_phit(2, phit(3));
        assert_eq!(link.phits_in_flight(), 3);
        assert_eq!(link.pop_arrived_phit(3).unwrap().packet, PacketId(1));
        assert_eq!(link.pop_arrived_phit(4).unwrap().packet, PacketId(2));
        assert!(link.pop_arrived_phit(4).is_none());
        assert_eq!(link.pop_arrived_phit(5).unwrap().packet, PacketId(3));
    }

    #[test]
    fn one_phit_per_cycle_pops_one_at_a_time() {
        let mut link = Link::new(1, LinkEnd::Node { node: NodeId(3) }, 2, 2);
        link.send_phit(0, phit(1));
        link.send_phit(1, phit(2));
        // Both have arrived by cycle 10, but they pop in order, one call each.
        assert!(link.pop_arrived_phit(10).is_some());
        assert!(link.pop_arrived_phit(10).is_some());
        assert!(link.pop_arrived_phit(10).is_none());
    }

    #[test]
    fn credits_travel_with_latency() {
        let mut link = Link::new(7, LinkEnd::Router { router: 0, port: 0 }, 8, 8);
        link.send_credit(100, 2);
        assert!(link.pop_arrived_credit(106).is_none());
        let c = link.pop_arrived_credit(107).unwrap();
        assert_eq!(c.vc, 2);
        assert_eq!(link.credits_in_flight(), 0);
    }

    #[test]
    fn idle_tracks_both_directions() {
        let mut link = Link::new(2, LinkEnd::Node { node: NodeId(1) }, 3, 3);
        assert!(link.is_idle());
        link.send_credit(0, 0);
        assert!(!link.is_idle());
        let _ = link.pop_arrived_credit(2);
        assert!(link.is_idle());
    }
}
