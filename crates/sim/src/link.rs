//! The wire-format types of the link fabric: phits, credits and link ends.
//!
//! The per-link *state* (pipeline rings and their metadata) lives in the
//! struct-of-arrays [`crate::fabric::LinkFabric`]; this module only defines the
//! entry types those pools hold and the addressing of a link's far end.

use crate::packet::PacketId;
use dragonfly_topology::NodeId;

/// A phit travelling on a link.
///
/// Kept to 16 bytes — every link materializes `latency + 1` of these in the
/// fabric's shared phit pool, and an h = 8 network has ~64 k links.  Arrival
/// cycles are stored as `u32` (runs beyond `u32::MAX` cycles are unsupported
/// and debug-asserted at launch) and the head/tail markers share one flags
/// byte behind accessors.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhitInFlight {
    /// The packet it belongs to.
    pub packet: PacketId,
    /// Cycle at which the phit reaches the far end.
    pub arrive: u32,
    /// Size of the packet in phits (needed to open the downstream slot).
    pub size: u16,
    /// Virtual channel it will be stored in at the far end.
    pub vc: u8,
    flags: u8,
}

const PHIT_HEAD: u8 = 1;
const PHIT_TAIL: u8 = 2;

impl PhitInFlight {
    /// A phit of `packet` bound for `vc`, with a zero arrival stamp (filled
    /// in by [`crate::fabric::LinkFabric::send_phit`]).
    #[inline]
    pub fn new(packet: PacketId, vc: u8, is_head: bool, is_tail: bool, size: u16) -> Self {
        Self {
            packet,
            arrive: 0,
            size,
            vc,
            flags: ((is_head as u8) * PHIT_HEAD) | ((is_tail as u8) * PHIT_TAIL),
        }
    }

    /// First phit of the packet.
    #[inline]
    pub fn is_head(&self) -> bool {
        self.flags & PHIT_HEAD != 0
    }

    /// Last phit of the packet.
    #[inline]
    pub fn is_tail(&self) -> bool {
        self.flags & PHIT_TAIL != 0
    }
}

/// A credit travelling back to the transmitter of a link.
///
/// 8 bytes, for the same footprint reason as [`PhitInFlight`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CreditInFlight {
    /// Cycle at which the credit reaches the transmitter.
    pub arrive: u32,
    /// Virtual channel the credit belongs to.
    pub vc: u8,
}

/// The far end of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEnd {
    /// Another router: `(router index, flat input port)`.
    Router {
        /// Destination router index.
        router: usize,
        /// Flat input port at the destination router.
        port: usize,
    },
    /// A terminal node (ejection).
    Node {
        /// The consuming node.
        node: NodeId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_entries_stay_compact() {
        // ~64k links at h = 8 each materialize latency+1 of these in the
        // fabric pools; the footprint argument in the docs relies on these.
        assert_eq!(std::mem::size_of::<PhitInFlight>(), 16);
        assert_eq!(std::mem::size_of::<CreditInFlight>(), 8);
    }

    #[test]
    fn phit_flags_roundtrip() {
        let p = PhitInFlight::new(PacketId(9), 2, true, false, 8);
        assert!(p.is_head() && !p.is_tail());
        let t = PhitInFlight::new(PacketId(9), 2, false, true, 8);
        assert!(!t.is_head() && t.is_tail());
        let single = PhitInFlight::new(PacketId(9), 2, true, true, 1);
        assert!(single.is_head() && single.is_tail());
    }
}
