//! In-simulation statistics collection.

use crate::packet::{Packet, UNTAGGED};
use dragonfly_stats::{ExactStats, Histogram, ScopedStats, ThroughputMeter};

/// Latency-histogram bins of the per-job/per-phase accumulators (smaller than the
/// aggregate histogram; p99 above this many cycles saturates at the bin range).
const SCOPED_LATENCY_BINS: usize = 32 * 1024;

/// Per-job and per-(job, phase) breakdowns, enabled when a workload is installed.
#[derive(Debug, Clone)]
pub struct ScopedCollector {
    /// One accumulator per job, covering the whole run.
    pub per_job: Vec<ScopedStats>,
    /// One accumulator per (job, phase), attributed by generation phase.
    pub per_phase: Vec<Vec<ScopedStats>>,
}

impl ScopedCollector {
    fn new(phase_counts: &[usize]) -> Self {
        Self {
            per_job: phase_counts
                .iter()
                .map(|_| ScopedStats::new(SCOPED_LATENCY_BINS))
                .collect(),
            per_phase: phase_counts
                .iter()
                .map(|&phases| {
                    (0..phases)
                        .map(|_| ScopedStats::new(SCOPED_LATENCY_BINS))
                        .collect()
                })
                .collect(),
        }
    }

    /// Merge another collector with the same job/phase shape into this one.
    fn merge(&mut self, other: &ScopedCollector) {
        assert_eq!(
            self.per_job.len(),
            other.per_job.len(),
            "scoped collectors must cover the same jobs to merge"
        );
        for (a, b) in self.per_job.iter_mut().zip(other.per_job.iter()) {
            a.merge(b);
        }
        for (a, b) in self.per_phase.iter_mut().zip(other.per_phase.iter()) {
            assert_eq!(a.len(), b.len(), "phase counts must match to merge");
            for (x, y) in a.iter_mut().zip(b.iter()) {
                x.merge(y);
            }
        }
    }
}

/// Collects per-packet and per-window statistics during a run.
///
/// Latency, hop and misroute statistics only consider packets *generated inside the
/// measurement window* (standard steady-state methodology); throughput counts every
/// delivery that happens inside the window.
#[derive(Debug, Clone)]
pub struct StatsCollector {
    /// Latency of measured packets, in cycles.
    pub latency: ExactStats,
    /// Latency histogram (1-cycle bins) of measured packets.
    pub latency_hist: Histogram,
    /// Router-to-router hop count of measured packets.
    pub hops: ExactStats,
    /// Measured packets that took a global misroute.
    pub delivered_global_misrouted: u64,
    /// Measured packets that took at least one local misroute.
    pub delivered_local_misrouted: u64,
    /// Measured packets delivered so far.
    pub measured_delivered: u64,
    /// All packets ever generated.
    pub total_generated: u64,
    /// All packets ever delivered.
    pub total_delivered: u64,
    /// Throughput meter over the measurement window.
    pub meter: ThroughputMeter,
    /// Whether the measurement window is currently open.
    pub measuring: bool,
    /// Per-job/per-phase breakdowns (present when a workload is installed).
    pub scoped: Option<ScopedCollector>,
    /// Peak packets simultaneously in flight (generated − delivered), sampled
    /// once per cycle ([`StatsCollector::note_cycle_peaks`]).
    pub peak_in_flight_packets: u64,
    /// Peak phits stored across router input buffers, sampled once per cycle.
    pub peak_buffered_phits: u64,
    /// Peak occupancy (phits) of any single input-VC buffer.
    pub peak_vc_occupancy: u64,
}

impl StatsCollector {
    /// Create an empty collector.
    pub fn new(max_latency_bins: usize) -> Self {
        Self {
            latency: ExactStats::new(),
            latency_hist: Histogram::for_latency(max_latency_bins),
            hops: ExactStats::new(),
            delivered_global_misrouted: 0,
            delivered_local_misrouted: 0,
            measured_delivered: 0,
            total_generated: 0,
            total_delivered: 0,
            meter: ThroughputMeter::new(0),
            measuring: false,
            scoped: None,
            peak_in_flight_packets: 0,
            peak_buffered_phits: 0,
            peak_vc_occupancy: 0,
        }
    }

    /// Enable per-job/per-phase breakdowns for jobs with the given phase counts.
    pub fn enable_scoped(&mut self, phase_counts: &[usize]) {
        self.scoped = Some(ScopedCollector::new(phase_counts));
    }

    /// Open the measurement window at `cycle`.
    pub fn begin_measurement(&mut self, cycle: u64) {
        self.meter = ThroughputMeter::new(cycle);
        self.measuring = true;
    }

    /// Close the measurement window at `cycle`.
    pub fn end_measurement(&mut self, cycle: u64) {
        self.meter.tick(cycle.saturating_sub(1));
        self.measuring = false;
    }

    /// Advance the throughput window (call once per cycle while measuring).
    pub fn tick(&mut self, cycle: u64) {
        if self.measuring {
            self.meter.tick(cycle);
        }
    }

    /// Record the generation of a packet of `size` phits.
    pub fn record_generated(&mut self, size: usize, cycle: u64) {
        self.total_generated += 1;
        if self.measuring {
            self.meter.record_injection(size as u64, cycle);
        }
    }

    /// Record the generation of a workload packet of `size` phits, attributed to
    /// `(job, phase)` (both [`UNTAGGED`] degrades to [`StatsCollector::record_generated`]).
    pub fn record_generated_tagged(&mut self, size: usize, cycle: u64, job: u16, phase: u16) {
        self.record_generated(size, cycle);
        if job == UNTAGGED {
            return;
        }
        let measuring = self.measuring;
        if let Some(scoped) = &mut self.scoped {
            scoped.per_job[job as usize].record_generated(size, measuring);
            scoped.per_phase[job as usize][phase as usize].record_generated(size, measuring);
        }
    }

    /// Record the delivery of `packet` at `cycle`.
    pub fn record_delivery(&mut self, packet: &Packet, cycle: u64) {
        self.total_delivered += 1;
        if self.measuring {
            self.meter.record_delivery(packet.size as u64, cycle);
        }
        if packet.measured {
            self.measured_delivered += 1;
            let latency = cycle - packet.gen_cycle;
            self.latency.push(latency);
            self.latency_hist.record(latency as f64);
            self.hops.push(packet.route.total_hops as u64);
            if packet.route.global_misrouted {
                self.delivered_global_misrouted += 1;
            }
            if packet.route.local_misrouted_ever {
                self.delivered_local_misrouted += 1;
            }
        }
        if packet.job != UNTAGGED {
            let measuring = self.measuring;
            if let Some(scoped) = &mut self.scoped {
                let measured = packet.measured.then(|| {
                    (
                        cycle - packet.gen_cycle,
                        packet.route.total_hops as u64,
                        packet.route.global_misrouted,
                        packet.route.local_misrouted_ever,
                    )
                });
                let size = packet.size as usize;
                scoped.per_job[packet.job as usize].record_delivered(size, measuring, measured);
                scoped.per_phase[packet.job as usize][packet.phase as usize]
                    .record_delivered(size, measuring, measured);
            }
        }
    }

    /// Fraction of measured packets that took a global misroute.
    pub fn global_misroute_fraction(&self) -> f64 {
        if self.measured_delivered == 0 {
            0.0
        } else {
            self.delivered_global_misrouted as f64 / self.measured_delivered as f64
        }
    }

    /// Fraction of measured packets that took a local misroute.
    pub fn local_misroute_fraction(&self) -> f64 {
        if self.measured_delivered == 0 {
            0.0
        } else {
            self.delivered_local_misrouted as f64 / self.measured_delivered as f64
        }
    }

    /// Packets generated but not yet delivered.
    pub fn in_flight(&self) -> u64 {
        self.total_generated - self.total_delivered
    }

    /// Update the per-cycle memory-footprint peaks (called once per cycle by
    /// the engine with the run-wide in-flight packet count and the total phits
    /// stored in router buffers — in a sharded run, with the *global* sums, so
    /// every shard records the same peaks).
    #[inline]
    pub fn note_cycle_peaks(&mut self, in_flight_packets: u64, buffered_phits: u64) {
        if in_flight_packets > self.peak_in_flight_packets {
            self.peak_in_flight_packets = in_flight_packets;
        }
        if buffered_phits > self.peak_buffered_phits {
            self.peak_buffered_phits = buffered_phits;
        }
    }

    /// Track the peak occupancy of a single input-VC buffer (called after a
    /// phit is stored into a buffer).
    #[inline]
    pub fn note_vc_occupancy(&mut self, occupancy: usize) {
        if occupancy as u64 > self.peak_vc_occupancy {
            self.peak_vc_occupancy = occupancy as u64;
        }
    }

    /// Merge another collector into this one.
    ///
    /// Used by the sharded engine to combine per-shard collectors into the
    /// run-wide collector the reports are built from.  Every merged quantity is
    /// either an exact integer sum ([`ExactStats`], [`Histogram`], the packet
    /// and phit counters), a maximum (the peaks), or asserted equal (the
    /// measurement-window state), so the merged collector is byte-identical to
    /// the one a sequential run over the same events would have produced.
    pub fn merge(&mut self, other: &StatsCollector) {
        self.latency.merge(&other.latency);
        self.latency_hist.merge(&other.latency_hist);
        self.hops.merge(&other.hops);
        self.delivered_global_misrouted += other.delivered_global_misrouted;
        self.delivered_local_misrouted += other.delivered_local_misrouted;
        self.measured_delivered += other.measured_delivered;
        self.total_generated += other.total_generated;
        self.total_delivered += other.total_delivered;
        self.meter.merge(&other.meter);
        assert_eq!(
            self.measuring, other.measuring,
            "collectors must agree on the measurement state to merge"
        );
        match (&mut self.scoped, &other.scoped) {
            (Some(a), Some(b)) => a.merge(b),
            (None, None) => {}
            _ => panic!("collectors must agree on scoped breakdowns to merge"),
        }
        self.peak_in_flight_packets = self
            .peak_in_flight_packets
            .max(other.peak_in_flight_packets);
        self.peak_buffered_phits = self.peak_buffered_phits.max(other.peak_buffered_phits);
        self.peak_vc_occupancy = self.peak_vc_occupancy.max(other.peak_vc_occupancy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketId};
    use dragonfly_topology::NodeId;

    fn delivered_packet(measured: bool, gen: u64, hops: u8, global: bool, local: bool) -> Packet {
        let mut p = Packet::new(PacketId(0), NodeId(0), NodeId(9), 8, gen);
        p.measured = measured;
        p.route.total_hops = hops;
        p.route.global_misrouted = global;
        p.route.local_misrouted_ever = local;
        p
    }

    #[test]
    fn measurement_window_controls_throughput() {
        let mut s = StatsCollector::new(1000);
        // Before the window: counted as totals only.
        s.record_generated(8, 10);
        s.record_delivery(&delivered_packet(false, 0, 3, false, false), 50);
        assert_eq!(s.meter.phits_delivered, 0);
        s.begin_measurement(100);
        s.record_generated(8, 120);
        s.record_delivery(&delivered_packet(false, 10, 3, false, false), 150);
        s.end_measurement(200);
        assert_eq!(s.meter.phits_delivered, 8);
        assert_eq!(s.meter.phits_injected, 8);
        assert_eq!(s.total_generated, 2);
        assert_eq!(s.total_delivered, 2);
        assert_eq!(s.in_flight(), 0);
        // Window length covers [100, 200).
        assert_eq!(s.meter.window_cycles(), 100);
    }

    #[test]
    fn measured_packets_feed_latency_and_misroute_stats() {
        let mut s = StatsCollector::new(1000);
        s.begin_measurement(0);
        s.record_delivery(&delivered_packet(true, 100, 3, true, false), 250);
        s.record_delivery(&delivered_packet(true, 100, 5, false, true), 300);
        s.record_delivery(&delivered_packet(false, 100, 8, true, true), 400);
        assert_eq!(s.measured_delivered, 2);
        assert!((s.latency.mean() - 175.0).abs() < 1e-9);
        assert!((s.hops.mean() - 4.0).abs() < 1e-9);
        assert!((s.global_misroute_fraction() - 0.5).abs() < 1e-9);
        assert!((s.local_misroute_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(s.latency_hist.total(), 2);
    }

    #[test]
    fn tagged_records_feed_scoped_breakdowns() {
        let mut s = StatsCollector::new(1000);
        s.enable_scoped(&[2, 1]); // job 0 has 2 phases, job 1 has 1
        s.begin_measurement(0);
        s.record_generated_tagged(8, 10, 0, 0);
        s.record_generated_tagged(8, 20, 0, 1);
        s.record_generated_tagged(8, 30, 1, 0);
        // Untagged generation leaves the scoped accumulators alone.
        s.record_generated_tagged(8, 40, UNTAGGED, UNTAGGED);
        let mut p = delivered_packet(true, 10, 3, true, false);
        p.job = 0;
        p.phase = 1;
        s.record_delivery(&p, 150);
        let scoped = s.scoped.as_ref().unwrap();
        assert_eq!(scoped.per_job[0].total_generated, 2);
        assert_eq!(scoped.per_job[1].total_generated, 1);
        assert_eq!(scoped.per_phase[0][0].total_generated, 1);
        assert_eq!(scoped.per_phase[0][1].total_generated, 1);
        assert_eq!(scoped.per_job[0].total_delivered, 1);
        assert_eq!(scoped.per_phase[0][1].measured_delivered, 1);
        assert_eq!(scoped.per_phase[0][0].measured_delivered, 0);
        assert!((scoped.per_phase[0][1].latency.mean() - 140.0).abs() < 1e-9);
        assert_eq!(scoped.per_job[0].phits_delivered_in_window, 8);
        // Aggregate totals include everything.
        assert_eq!(s.total_generated, 4);
        assert_eq!(s.total_delivered, 1);
    }

    #[test]
    fn fractions_zero_when_nothing_measured() {
        let s = StatsCollector::new(10);
        assert_eq!(s.global_misroute_fraction(), 0.0);
        assert_eq!(s.local_misroute_fraction(), 0.0);
        assert_eq!(s.in_flight(), 0);
    }
}
