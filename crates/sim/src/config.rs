//! Simulator configuration: flow control, buffer geometry, latencies and seeds.

use dragonfly_topology::{DragonflyParams, Port, PortKind};
use serde::{Deserialize, Serialize};

/// Link-level flow control discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlowControl {
    /// Virtual Cut-Through: a packet only starts moving to the next buffer when the
    /// whole packet fits there.
    Vct,
    /// Wormhole: packets are divided into flits of `flit_size` phits; a flit advances
    /// when there is space for one flit downstream, so blocked packets can span
    /// several routers.
    Wormhole {
        /// Flit size in phits.
        flit_size: usize,
    },
}

impl FlowControl {
    /// The number of free downstream phits required before a packet (VCT) or its next
    /// flit (WH) may start crossing the switch.
    #[inline]
    pub fn claim_phits(&self, packet_size: usize) -> usize {
        match self {
            FlowControl::Vct => packet_size,
            FlowControl::Wormhole { flit_size } => (*flit_size).min(packet_size),
        }
    }

    /// Phits required at a flit boundary during transmission.
    #[inline]
    pub fn flit_phits(&self, packet_size: usize) -> usize {
        match self {
            FlowControl::Vct => 1,
            FlowControl::Wormhole { flit_size } => (*flit_size).min(packet_size),
        }
    }

    /// True for Virtual Cut-Through.
    #[inline]
    pub fn is_vct(&self) -> bool {
        matches!(self, FlowControl::Vct)
    }
}

/// Full configuration of a simulation run.
///
/// Defaults follow the paper's methodology section: local links of 10 cycles, global
/// links of 100 cycles, 32-phit local FIFOs, 256-phit global FIFOs, 3 local / 2 global
/// VCs, 8-phit packets under VCT and 80-phit packets (8 flits of 10 phits) under WH.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Topology parameters.
    pub params: DragonflyParams,
    /// Flow-control discipline.
    pub flow_control: FlowControl,
    /// Packet size in phits.
    pub packet_size: usize,
    /// Local link latency in cycles.
    pub local_latency: u64,
    /// Global link latency in cycles.
    pub global_latency: u64,
    /// Injection/ejection link latency in cycles.
    pub terminal_latency: u64,
    /// Capacity of each local-port input VC, in phits.
    pub local_buffer: usize,
    /// Capacity of each global-port input VC, in phits.
    pub global_buffer: usize,
    /// Capacity of each injection-queue VC, in phits.
    pub injection_buffer: usize,
    /// Virtual channels per local port (and per injection port).
    pub local_vcs: usize,
    /// Virtual channels per global port.
    pub global_vcs: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Cycles without any phit movement (while packets are in flight) after which the
    /// deadlock watchdog fires.
    pub deadlock_threshold: u64,
    /// Occupancy fraction above which a global channel is advertised as congested to
    /// the Piggybacking mechanism.
    pub pb_congestion_threshold: f64,
    /// Explicit packet-arena preallocation in slots (`None` applies the
    /// [`SimConfig::arena_prealloc_for`] heuristic).  `Some(0)` forces a cold
    /// arena, which is useful for testing that preallocation never changes
    /// results.
    pub arena_prealloc: Option<usize>,
}

impl SimConfig {
    /// Paper configuration for Virtual Cut-Through (8-phit packets).
    pub fn paper_vct(h: usize) -> Self {
        Self {
            params: DragonflyParams::new(h),
            flow_control: FlowControl::Vct,
            packet_size: 8,
            local_latency: 10,
            global_latency: 100,
            terminal_latency: 1,
            local_buffer: 32,
            global_buffer: 256,
            injection_buffer: 32,
            local_vcs: 3,
            global_vcs: 2,
            seed: 1,
            deadlock_threshold: 50_000,
            pb_congestion_threshold: 0.3,
            arena_prealloc: None,
        }
    }

    /// Paper configuration for Wormhole (80-phit packets, 10-phit flits).
    pub fn paper_wormhole(h: usize) -> Self {
        Self {
            flow_control: FlowControl::Wormhole { flit_size: 10 },
            packet_size: 80,
            ..Self::paper_vct(h)
        }
    }

    /// Override the number of local VCs (e.g. 6 for PAR-6/2).
    pub fn with_local_vcs(mut self, vcs: usize) -> Self {
        assert!(vcs >= 1);
        self.local_vcs = vcs;
        self
    }

    /// Override the number of global VCs (e.g. 3 or 4 for head-of-line studies
    /// beyond the paper's 2).
    pub fn with_global_vcs(mut self, vcs: usize) -> Self {
        assert!(vcs >= 1);
        self.global_vcs = vcs;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the packet size.
    pub fn with_packet_size(mut self, phits: usize) -> Self {
        assert!(phits >= 1);
        self.packet_size = phits;
        self
    }

    /// Override the packet-arena preallocation (slots).  `0` forces a cold
    /// arena that grows on demand, exactly like the pre-preallocation engine.
    pub fn with_arena_prealloc(mut self, slots: usize) -> Self {
        self.arena_prealloc = Some(slots);
        self
    }

    /// Packet-arena slots to preallocate for an engine owning `nodes`
    /// terminal nodes.
    ///
    /// The heuristic is 8 packets per owned node (clamped to at least 1024
    /// slots): in-flight packets are bounded by network buffering plus the
    /// source queues, and 8/node comfortably covers every steady-state load
    /// below saturation in the paper's configurations.  Overflowing the
    /// preallocation is *not* an error — the slab grows and counts the event
    /// in [`crate::PacketArena::grows`].
    #[inline]
    pub fn arena_prealloc_for(&self, nodes: usize) -> usize {
        self.arena_prealloc.unwrap_or_else(|| (nodes * 8).max(1024))
    }

    /// Number of virtual channels of an *input or output* port of the given kind.
    #[inline]
    pub fn vcs_for(&self, kind: PortKind) -> usize {
        match kind {
            PortKind::Local => self.local_vcs,
            PortKind::Global => self.global_vcs,
            PortKind::Terminal => self.local_vcs,
        }
    }

    /// Capacity in phits of one input VC on a port of the given kind.
    #[inline]
    pub fn buffer_for(&self, kind: PortKind) -> usize {
        match kind {
            PortKind::Local => self.local_buffer,
            PortKind::Global => self.global_buffer,
            PortKind::Terminal => self.injection_buffer,
        }
    }

    /// Link latency of a port of the given kind.
    #[inline]
    pub fn latency_for(&self, kind: PortKind) -> u64 {
        match kind {
            PortKind::Local => self.local_latency,
            PortKind::Global => self.global_latency,
            PortKind::Terminal => self.terminal_latency,
        }
    }

    /// Latency of the link reached through `port`.
    #[inline]
    pub fn latency_for_port(&self, port: Port) -> u64 {
        self.latency_for(port.kind())
    }

    /// Sanity-check the configuration, panicking with a descriptive message if it is
    /// inconsistent (e.g. VCT with buffers smaller than a packet).
    pub fn validate(&self) {
        assert!(self.packet_size >= 1, "packet size must be positive");
        assert!(
            self.local_vcs >= 1 && self.global_vcs >= 1,
            "need at least one VC"
        );
        if self.flow_control.is_vct() {
            assert!(
                self.local_buffer >= self.packet_size,
                "VCT requires local buffers ({} phits) to hold a whole packet ({} phits)",
                self.local_buffer,
                self.packet_size
            );
            assert!(
                self.global_buffer >= self.packet_size,
                "VCT requires global buffers to hold a whole packet"
            );
            assert!(
                self.injection_buffer >= self.packet_size,
                "VCT requires injection buffers to hold a whole packet"
            );
        } else if let FlowControl::Wormhole { flit_size } = self.flow_control {
            assert!(flit_size >= 1, "flit size must be positive");
            assert!(
                self.local_buffer >= flit_size,
                "WH requires local buffers to hold at least one flit"
            );
            assert!(
                self.packet_size.is_multiple_of(flit_size),
                "packet size must be a whole number of flits"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_vct_defaults() {
        let c = SimConfig::paper_vct(8);
        assert_eq!(c.params.h(), 8);
        assert_eq!(c.packet_size, 8);
        assert_eq!(c.local_latency, 10);
        assert_eq!(c.global_latency, 100);
        assert_eq!(c.local_buffer, 32);
        assert_eq!(c.global_buffer, 256);
        assert_eq!(c.local_vcs, 3);
        assert_eq!(c.global_vcs, 2);
        assert!(c.flow_control.is_vct());
        c.validate();
    }

    #[test]
    fn paper_wormhole_defaults() {
        let c = SimConfig::paper_wormhole(8);
        assert_eq!(c.packet_size, 80);
        assert_eq!(c.flow_control, FlowControl::Wormhole { flit_size: 10 });
        assert!(!c.flow_control.is_vct());
        c.validate();
    }

    #[test]
    fn claim_phits_by_flow_control() {
        assert_eq!(FlowControl::Vct.claim_phits(8), 8);
        assert_eq!(FlowControl::Wormhole { flit_size: 10 }.claim_phits(80), 10);
        assert_eq!(FlowControl::Wormhole { flit_size: 10 }.claim_phits(4), 4);
        assert_eq!(FlowControl::Vct.flit_phits(8), 1);
        assert_eq!(FlowControl::Wormhole { flit_size: 10 }.flit_phits(80), 10);
    }

    #[test]
    fn builders_override_fields() {
        let c = SimConfig::paper_vct(4)
            .with_local_vcs(6)
            .with_seed(99)
            .with_packet_size(16);
        assert_eq!(c.local_vcs, 6);
        assert_eq!(c.seed, 99);
        assert_eq!(c.packet_size, 16);
    }

    #[test]
    fn vcs_and_buffers_per_kind() {
        let c = SimConfig::paper_vct(4);
        assert_eq!(c.vcs_for(PortKind::Local), 3);
        assert_eq!(c.vcs_for(PortKind::Global), 2);
        assert_eq!(c.vcs_for(PortKind::Terminal), 3);
        assert_eq!(c.buffer_for(PortKind::Local), 32);
        assert_eq!(c.buffer_for(PortKind::Global), 256);
        assert_eq!(c.latency_for(PortKind::Global), 100);
        assert_eq!(c.latency_for_port(Port::Local(0)), 10);
        assert_eq!(c.latency_for_port(Port::Terminal(0)), 1);
    }

    #[test]
    #[should_panic(expected = "whole packet")]
    fn vct_small_buffer_rejected() {
        let mut c = SimConfig::paper_vct(2);
        c.local_buffer = 4;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "whole number of flits")]
    fn wormhole_ragged_packet_rejected() {
        let mut c = SimConfig::paper_wormhole(2);
        c.packet_size = 75;
        c.validate();
    }
}
