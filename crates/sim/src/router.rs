//! Input-buffered virtual-channel routers.

use crate::buffer::{PacketSlot, VcBuffer};
use crate::config::SimConfig;
use dragonfly_topology::{Port, RouterId};

/// One input virtual channel: its FIFO plus the output (port, VC) currently granted to
/// the packet at its head, if any.
#[derive(Debug)]
pub struct InputVc {
    /// The phit FIFO (a ring view over the router's shared [`Router::slot_pool`]).
    pub buffer: VcBuffer,
    /// Output assignment of the head packet: `(flat output port, output VC)`.
    pub route: Option<(u16, u8)>,
}

/// An input port: one [`InputVc`] per virtual channel.
#[derive(Debug)]
pub struct InputPort {
    /// Virtual channels of this input port.
    pub vcs: Vec<InputVc>,
}

/// One output virtual channel: the credit count of the downstream buffer and the input
/// VC that currently owns it (a packet in transfer holds the VC from head to tail).
#[derive(Debug, Clone)]
pub struct OutputVc {
    /// Free phits currently available in the downstream input VC buffer.
    pub credits: usize,
    /// Capacity of the downstream buffer in phits.
    pub downstream_capacity: usize,
    /// Input `(flat port, VC)` whose head packet currently owns this output VC.
    pub owner: Option<(u16, u8)>,
}

impl OutputVc {
    /// Occupancy of the downstream buffer as seen through the credit counter.
    #[inline]
    pub fn occupancy(&self) -> usize {
        self.downstream_capacity - self.credits
    }

    /// True when the VC is not currently assigned to a packet.
    #[inline]
    pub fn is_free(&self) -> bool {
        self.owner.is_none()
    }
}

/// An output port: its VCs plus a round-robin pointer for fair link scheduling.
#[derive(Debug)]
pub struct OutputPort {
    /// Virtual channels of this output port.
    pub vcs: Vec<OutputVc>,
    /// Round-robin pointer over VCs for the switch/link allocation stage.
    pub rr_next: usize,
}

impl OutputPort {
    /// Total occupancy of the downstream buffers over all VCs of this port.
    pub fn total_occupancy(&self) -> usize {
        self.vcs.iter().map(|v| v.occupancy()).sum()
    }

    /// Total downstream capacity over all VCs of this port.
    pub fn total_capacity(&self) -> usize {
        self.vcs.iter().map(|v| v.downstream_capacity).sum()
    }
}

/// One router: input units, output units and allocation round-robin state.
#[derive(Debug)]
pub struct Router {
    /// Router identifier.
    pub id: RouterId,
    /// Input ports, indexed by flat port index.
    pub inputs: Vec<InputPort>,
    /// Output ports, indexed by flat port index.
    pub outputs: Vec<OutputPort>,
    /// Packet-slot backing storage shared by every input VC buffer of this
    /// router.  Each [`VcBuffer`] is a ring view over its own contiguous
    /// region of this pool; sizing comes from [`VcBuffer::slot_bound`], so
    /// the pool is one exact allocation per router instead of one `Vec` per
    /// VC.  Buffer methods take it explicitly (`vc.buffer.head(&r.slot_pool)`)
    /// so the borrow checker can see it is disjoint from `inputs`.
    pub slot_pool: Vec<PacketSlot>,
    /// Rotating offset used to vary the order in which input VCs are served.
    pub rr_alloc: usize,
}

impl Router {
    /// Build a router with the buffer geometry dictated by `config`.
    ///
    /// `downstream_capacity` must give, for every flat output port, the per-VC capacity
    /// of the input buffer at the far end of that port's link.
    pub fn new(id: RouterId, config: &SimConfig, downstream_capacity: &[usize]) -> Self {
        let h = config.params.h();
        let ports = config.params.ports_per_router();
        assert_eq!(downstream_capacity.len(), ports);
        let mut inputs = Vec::with_capacity(ports);
        let mut outputs = Vec::with_capacity(ports);
        let mut pool_len = 0usize;
        for (flat, &down) in downstream_capacity.iter().enumerate() {
            let port = Port::from_flat(flat, h);
            let vcs = config.vcs_for(port.kind());
            let in_capacity = config.buffer_for(port.kind());
            inputs.push(InputPort {
                vcs: (0..vcs)
                    .map(|_| {
                        let buffer = VcBuffer::new(in_capacity, config.packet_size, pool_len);
                        pool_len += VcBuffer::slot_bound(in_capacity, config.packet_size);
                        InputVc {
                            buffer,
                            route: None,
                        }
                    })
                    .collect(),
            });
            outputs.push(OutputPort {
                vcs: (0..vcs)
                    .map(|_| OutputVc {
                        credits: down,
                        downstream_capacity: down,
                        owner: None,
                    })
                    .collect(),
                rr_next: 0,
            });
        }
        Self {
            id,
            inputs,
            outputs,
            slot_pool: vec![PacketSlot::default(); pool_len],
            rr_alloc: 0,
        }
    }

    /// Total phits stored across all input buffers (diagnostics / conservation tests).
    pub fn stored_phits(&self) -> usize {
        self.inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|vc| vc.buffer.occupancy())
            .sum()
    }

    /// True when every input buffer is empty and every output VC is free.
    pub fn is_idle(&self) -> bool {
        self.inputs.iter().all(|p| {
            p.vcs
                .iter()
                .all(|vc| vc.buffer.is_empty() && vc.route.is_none())
        }) && self
            .outputs
            .iter()
            .all(|p| p.vcs.iter().all(|vc| vc.owner.is_none()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use dragonfly_topology::PortKind;

    fn test_config() -> SimConfig {
        SimConfig::paper_vct(2)
    }

    fn downstream(config: &SimConfig) -> Vec<usize> {
        let h = config.params.h();
        (0..config.params.ports_per_router())
            .map(|flat| match Port::from_flat(flat, h).kind() {
                PortKind::Local => config.local_buffer,
                PortKind::Global => config.global_buffer,
                PortKind::Terminal => 1024,
            })
            .collect()
    }

    #[test]
    fn router_construction_geometry() {
        let config = test_config();
        let r = Router::new(RouterId(3), &config, &downstream(&config));
        assert_eq!(r.inputs.len(), config.params.ports_per_router());
        assert_eq!(r.outputs.len(), config.params.ports_per_router());
        // Local ports have 3 VCs of 32 phits; global ports 2 VCs of 256 phits.
        let local = &r.inputs[Port::Local(0).flat(2)];
        assert_eq!(local.vcs.len(), 3);
        assert_eq!(local.vcs[0].buffer.capacity(), 32);
        let global = &r.inputs[Port::Global(0).flat(2)];
        assert_eq!(global.vcs.len(), 2);
        assert_eq!(global.vcs[0].buffer.capacity(), 256);
        // Output credits start at the downstream capacity.
        let gout = &r.outputs[Port::Global(1).flat(2)];
        assert_eq!(gout.vcs[0].credits, config.global_buffer);
        assert_eq!(gout.vcs[0].occupancy(), 0);
        assert!(gout.vcs[0].is_free());
    }

    #[test]
    fn slot_pool_covers_every_vc_exactly() {
        let config = test_config();
        let r = Router::new(RouterId(1), &config, &downstream(&config));
        let expected: usize = r
            .inputs
            .iter()
            .flat_map(|p| p.vcs.iter())
            .map(|vc| VcBuffer::slot_bound(vc.buffer.capacity(), config.packet_size))
            .sum();
        assert_eq!(r.slot_pool.len(), expected);
    }

    #[test]
    fn vcs_use_disjoint_pool_regions() {
        // Fill two VCs of the same port through the shared pool and check
        // that neither sees the other's packet.
        let config = test_config();
        let mut r = Router::new(RouterId(0), &config, &downstream(&config));
        let flat = Port::Local(0).flat(2);
        let Router {
            inputs, slot_pool, ..
        } = &mut r;
        let vcs = &mut inputs[flat].vcs;
        vcs[0]
            .buffer
            .receive_phit(slot_pool, PacketId(10), config.packet_size as u16, true, 0);
        vcs[1]
            .buffer
            .receive_phit(slot_pool, PacketId(11), config.packet_size as u16, true, 0);
        assert_eq!(vcs[0].buffer.head(slot_pool).unwrap().packet, PacketId(10));
        assert_eq!(vcs[1].buffer.head(slot_pool).unwrap().packet, PacketId(11));
        assert_eq!(r.stored_phits(), 2);
    }

    #[test]
    fn fresh_router_is_idle() {
        let config = test_config();
        let r = Router::new(RouterId(0), &config, &downstream(&config));
        assert!(r.is_idle());
        assert_eq!(r.stored_phits(), 0);
    }

    #[test]
    fn output_port_aggregates() {
        let config = test_config();
        let mut r = Router::new(RouterId(0), &config, &downstream(&config));
        let flat = Port::Local(1).flat(2);
        r.outputs[flat].vcs[0].credits -= 5;
        r.outputs[flat].vcs[1].credits -= 2;
        assert_eq!(r.outputs[flat].total_occupancy(), 7);
        assert_eq!(r.outputs[flat].total_capacity(), 3 * config.local_buffer);
        assert!(!r.is_idle() || r.stored_phits() == 0);
    }
}
