//! High-level simulation drivers: steady-state and burst-consumption runs.

use crate::config::SimConfig;
use crate::network::Network;
use crate::routing_iface::RoutingAlgorithm;
use dragonfly_probe::{ProbeConfig, ProbeRecorder};
use dragonfly_sched::{ScheduleRuntime, Trace};
use dragonfly_stats::{
    BatchReport, JobLifecycleReport, JobReport, PhaseReport, ScopedStats, SimReport, WorkloadReport,
};
use dragonfly_traffic::{BernoulliInjection, BurstSpec, TrafficPattern};
use dragonfly_workload::WorkloadSpec;

/// A complete simulation: a [`Network`] plus the measurement protocol of the paper.
///
/// Like [`Network`], the simulation is generic over the routing mechanism: a plain
/// `Simulation` is the type-erased `Simulation<Box<dyn RoutingAlgorithm>>`, while
/// [`Simulation::with_routing`] monomorphizes the whole engine over a concrete
/// mechanism for statically dispatched (inlinable) routing.
pub struct Simulation<R: RoutingAlgorithm = Box<dyn RoutingAlgorithm>> {
    net: Network<R>,
}

impl Simulation {
    /// Build a simulation from a configuration, a boxed routing mechanism and a
    /// traffic pattern (dynamic dispatch).
    pub fn new(
        config: SimConfig,
        routing: Box<dyn RoutingAlgorithm>,
        traffic: Box<dyn TrafficPattern>,
    ) -> Self {
        Self::with_routing(config, routing, traffic)
    }
}

impl<R: RoutingAlgorithm> Simulation<R> {
    /// Build a simulation with a statically known routing mechanism.
    pub fn with_routing(config: SimConfig, routing: R, traffic: Box<dyn TrafficPattern>) -> Self {
        Self {
            net: Network::with_routing(config, routing, traffic),
        }
    }

    /// Read access to the underlying network.
    pub fn network(&self) -> &Network<R> {
        &self.net
    }

    /// Mutable access to the underlying network (tests and custom experiments).
    pub fn network_mut(&mut self) -> &mut Network<R> {
        &mut self.net
    }

    /// Install the observability probes on the underlying network (see
    /// [`Network::install_probes`]): read-only, preallocated, sampled every
    /// `cfg.stride` cycles.
    pub fn install_probes(&mut self, cfg: ProbeConfig) {
        self.net.install_probes(cfg);
    }

    /// The installed probe recorder, if any.
    pub fn probe(&self) -> Option<&ProbeRecorder> {
        self.net.probe()
    }

    /// Mutable access to the installed probe recorder.
    pub fn probe_mut(&mut self) -> Option<&mut ProbeRecorder> {
        self.net.probe_mut()
    }

    /// Remove and return the installed probe recorder.
    pub fn take_probe(&mut self) -> Option<Box<ProbeRecorder>> {
        self.net.take_probe()
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        self.net.step();
    }

    /// Advance one cycle, invoking `hook` at every phase boundary (see
    /// [`Network::step_with_phase_hook`]).  Behaviourally identical to
    /// [`Simulation::step`]; the zero-allocation tier uses it to attribute
    /// allocator activity to individual phases.
    pub fn step_with_phase_hook(&mut self, hook: &mut dyn FnMut(&'static str)) {
        self.net.step_with_phase_hook(hook);
    }

    /// Advance `cycles` cycles.
    pub fn run_cycles(&mut self, cycles: u64) {
        self.net.run(cycles);
    }

    /// Run the paper's steady-state protocol.
    ///
    /// The network is warmed up for `warmup` cycles under the given offered load, then
    /// measured for `measure` cycles.  Packets generated inside the measurement window
    /// are latency-tagged; after the window closes the simulation keeps running (with
    /// injection still on, as in an open-loop measurement) for up to `drain` extra
    /// cycles or until every tagged packet has been delivered, so latency statistics
    /// are not truncated.
    pub fn run_steady_state(
        &mut self,
        offered_load: f64,
        warmup: u64,
        measure: u64,
        drain: u64,
    ) -> SimReport {
        let packet_size = self.net.config.packet_size;
        let nodes = self.net.params().num_nodes();
        // With a workload installed the per-job phase schedules own the injection
        // rates; otherwise the single global Bernoulli process drives every node.
        if self.net.workload().is_none() {
            self.net
                .set_injection(Some(BernoulliInjection::new(offered_load, packet_size)));
        }

        // Warm-up.
        self.net.tag_measured = false;
        self.net.run(warmup);

        // Measurement window.
        let start = self.net.cycle;
        self.net.stats.begin_measurement(start);
        self.net.tag_measured = true;
        self.net.run(measure);
        let end = self.net.cycle;
        self.net.stats.end_measurement(end);
        self.net.tag_measured = false;

        // Drain: let tagged packets finish, still under load, without extending the
        // throughput window.
        let measured_goal = self.net.stats.total_generated;
        let mut drained = 0;
        while drained < drain
            && self.net.stats.total_delivered < measured_goal
            && !self.net.deadlock_detected
        {
            self.net.step();
            drained += 1;
        }

        sim_report(
            &self.net.stats,
            SimRunIdentity {
                routing: self.net.routing_name().to_string(),
                traffic: self.net.traffic_name(),
                offered_load,
                nodes,
                warmup_cycles: warmup,
                measure_cycles: measure,
                deadlock_detected: self.net.deadlock_detected,
            },
        )
    }

    /// Install `workload` into the network: compiles the destination-side pattern
    /// and the injection-side runtime against this simulation's topology and packet
    /// size, and enables per-job statistics.
    pub fn install_workload(&mut self, workload: &WorkloadSpec) {
        let params = *self.net.params();
        let (runtime, pattern) = workload.compile(&params, self.net.config.packet_size);
        self.net.install_workload(runtime, Box::new(pattern));
    }

    /// Run the steady-state protocol of an installed workload and break the result
    /// down per job and per phase.
    ///
    /// The aggregate half follows [`Simulation::run_steady_state`] exactly (the
    /// reported `offered_load` is the workload's nominal cycle-0 aggregate).  The
    /// per-job/per-phase breakdowns attribute every packet to the job and phase that
    /// *generated* it; loads are normalized by the job's node count and by each
    /// phase's overlap with the measurement window.
    pub fn run_steady_state_workload(
        &mut self,
        warmup: u64,
        measure: u64,
        drain: u64,
    ) -> WorkloadReport {
        let nodes = self.net.params().num_nodes();
        let nominal = self
            .net
            .workload()
            .expect("run_steady_state_workload requires an installed workload")
            .nominal_offered_load(nodes);
        let aggregate = self.run_steady_state(nominal, warmup, measure, drain);

        let meas_start = self.net.stats.meter.window_start;
        let meas_end = self.net.stats.meter.window_end;
        let meas_cycles = meas_end.saturating_sub(meas_start);
        let runtime = self.net.workload().unwrap();
        let scoped = self
            .net
            .stats
            .scoped
            .as_ref()
            .expect("scoped statistics are enabled when a workload is installed");

        let jobs = (0..runtime.num_jobs())
            .map(|j| {
                let job = runtime.job(j as u16);
                let phases = (0..job.phases())
                    .map(|ph| {
                        let overlap = span_overlap(
                            (job.phase_start(ph), job.phase_end(ph)),
                            (meas_start, meas_end),
                        );
                        phase_report(
                            PhaseIdentity {
                                job: job.name().to_string(),
                                phase: ph,
                                pattern: job.phase_pattern(ph).to_string(),
                                offered_load: job.phase_load(ph),
                                start_cycle: job.phase_start(ph),
                                end_cycle: job.phase_end(ph),
                            },
                            &scoped.per_phase[j][ph],
                            job.nodes(),
                            overlap,
                        )
                    })
                    .collect();
                job_report(
                    job.name().to_string(),
                    &scoped.per_job[j],
                    job.nodes(),
                    meas_cycles,
                    None,
                    phases,
                )
            })
            .collect();
        WorkloadReport { aggregate, jobs }
    }

    /// Install a dynamic job schedule: compiles `trace` into a
    /// [`ScheduleRuntime`] against this simulation's topology and packet size.
    pub fn install_schedule(&mut self, trace: &Trace) {
        let params = *self.net.params();
        let runtime = ScheduleRuntime::new(trace, params, self.net.config.packet_size);
        self.net.install_schedule(runtime);
    }

    /// Run an installed job schedule to completion (or `horizon` cycles, whichever
    /// comes first) and report per-job statistics and lifecycles.
    ///
    /// Churn runs have no steady state, so the whole run is the measurement
    /// window: measurement starts at cycle 0 and ends when every trace job has
    /// completed and the network has drained, or at `horizon`.  After the window
    /// closes, generation and admission halt and the simulation drains for up to
    /// `drain` extra cycles so in-flight latency samples are not truncated.
    ///
    /// In the report, each job carries a single phase spanning its residency
    /// (placement to completion) — loads are normalized by that span — plus a
    /// [`JobLifecycleReport`] with its wait time, completion cycle and slowdown.
    ///
    /// # Panics
    ///
    /// Panics without an installed schedule, or if the simulation has already
    /// stepped (the trace owns absolute cycles from 0).
    pub fn run_trace(&mut self, horizon: u64, drain: u64) -> WorkloadReport {
        assert!(
            self.net.schedule().is_some(),
            "run_trace requires an installed schedule"
        );
        assert_eq!(self.net.cycle, 0, "run_trace requires a fresh simulation");
        let nodes = self.net.params().num_nodes();
        let packet_size = self.net.config.packet_size;

        self.net.stats.begin_measurement(0);
        self.net.tag_measured = true;
        while self.net.cycle < horizon && !self.net.deadlock_detected {
            self.net.step();
            let complete = self
                .net
                .schedule()
                .is_some_and(ScheduleRuntime::all_complete);
            if complete && self.net.is_drained() {
                break;
            }
        }
        let end = self.net.cycle;
        self.net.stats.end_measurement(end);
        self.net.tag_measured = false;

        // Halt generation and admissions, then let in-flight packets finish.
        if let Some(sched) = self.net.schedule_mut() {
            sched.halt();
        }
        let mut drained = 0;
        while drained < drain && !self.net.is_drained() && !self.net.deadlock_detected {
            self.net.step();
            drained += 1;
        }

        let stats = &self.net.stats;
        let runtime = self.net.schedule().unwrap();
        let aggregate = sim_report(
            stats,
            SimRunIdentity {
                routing: self.net.routing_name().to_string(),
                traffic: runtime.label().to_string(),
                offered_load: runtime.nominal_offered_load(nodes),
                nodes,
                warmup_cycles: 0,
                measure_cycles: end,
                deadlock_detected: self.net.deadlock_detected,
            },
        );
        let scoped = stats
            .scoped
            .as_ref()
            .expect("scoped statistics are enabled when a schedule is installed");

        let jobs = (0..runtime.num_jobs() as u16)
            .map(|j| {
                let spec = runtime.job_spec(j);
                let lifetime = runtime.lifetime(j);
                // Residency span: placement to completion, clamped to the window.
                let start = lifetime.placed.unwrap_or(end);
                let stop = lifetime.completed.unwrap_or(end);
                let resident = span_overlap((start, stop), (0, end));
                let slowdown = match (lifetime.wait_cycles(), lifetime.service_cycles()) {
                    (Some(wait), Some(service)) => {
                        let ideal = runtime.ideal_service_cycles(j, packet_size);
                        Some((wait + service) as f64 / ideal.max(1) as f64)
                    }
                    _ => None,
                };
                let phase = phase_report(
                    PhaseIdentity {
                        job: spec.name.clone(),
                        phase: 0,
                        pattern: spec.pattern.name(),
                        offered_load: spec.offered_load,
                        start_cycle: start,
                        end_cycle: stop,
                    },
                    &scoped.per_phase[j as usize][0],
                    spec.size,
                    resident,
                );
                job_report(
                    spec.name.clone(),
                    &scoped.per_job[j as usize],
                    spec.size,
                    resident,
                    Some(JobLifecycleReport {
                        arrival_cycle: lifetime.arrival,
                        placed_cycle: lifetime.placed,
                        completion_cycle: lifetime.completed,
                        wait_cycles: lifetime.wait_cycles(),
                        slowdown,
                    }),
                    vec![phase],
                )
            })
            .collect();
        WorkloadReport { aggregate, jobs }
    }

    /// Run the paper's burst-consumption protocol: every node sends
    /// `burst.packets_per_node()` packets following the traffic pattern, and the
    /// simulation runs until all of them are delivered (or `max_cycles` is reached).
    pub fn run_batch(&mut self, burst: BurstSpec, max_cycles: u64) -> BatchReport {
        assert_eq!(
            burst.packet_size(),
            self.net.config.packet_size,
            "burst packet size must match the configured packet size"
        );
        assert!(
            self.net.schedule().is_none(),
            "burst runs do not support dynamic schedules"
        );
        // Burst mode preloads every packet at once: stop any workload injection but
        // keep its pattern so the burst drains against workload destinations.
        let _ = self.net.take_workload();
        self.net.set_injection(None);
        self.net.stats.begin_measurement(self.net.cycle);
        let start = self.net.cycle;
        self.net.preload_burst(burst.packets_per_node());
        let total = self.net.stats.total_generated;

        while !self.net.is_drained()
            && self.net.cycle - start < max_cycles
            && !self.net.deadlock_detected
        {
            self.net.step();
        }
        let consumption = self.net.cycle - start;
        self.net.stats.end_measurement(self.net.cycle);

        let stats = &self.net.stats;
        BatchReport {
            routing: self.net.routing_name().to_string(),
            traffic: self.net.traffic_name(),
            packets_per_node: burst.packets_per_node(),
            packets_total: total,
            packets_delivered: stats.total_delivered,
            consumption_cycles: consumption,
            avg_latency_cycles: stats.latency.mean(),
            timed_out: !self.net.is_drained() && !self.net.deadlock_detected,
            deadlock_detected: self.net.deadlock_detected,
        }
    }
}

/// Cycles of the half-open span `a` that fall inside the half-open span `b`.
pub fn span_overlap(a: (u64, u64), b: (u64, u64)) -> u64 {
    a.1.min(b.1).saturating_sub(a.0.max(b.0))
}

/// Everything in a [`SimReport`] that is not derived from the run's
/// [`StatsCollector`](crate::StatsCollector) — names, parameters and the
/// watchdog verdict.
pub struct SimRunIdentity {
    /// Routing mechanism display name.
    pub routing: String,
    /// Traffic pattern display name.
    pub traffic: String,
    /// Offered load requested, in phits/(node·cycle).
    pub offered_load: f64,
    /// Number of terminal nodes (load normalization).
    pub nodes: usize,
    /// Warm-up cycles simulated before measurement.
    pub warmup_cycles: u64,
    /// Measured cycles.
    pub measure_cycles: u64,
    /// Whether the deadlock watchdog fired.
    pub deadlock_detected: bool,
}

/// Build a [`SimReport`] from an accumulated collector.  Shared by the
/// sequential protocols here and the sharded engine (`dragonfly_shard`), which
/// feeds the *merged* per-shard collector — keeping the two engines' report
/// construction a single code path is part of the byte-identity argument.
pub fn sim_report(stats: &crate::StatsCollector, id: SimRunIdentity) -> SimReport {
    SimReport {
        routing: id.routing,
        traffic: id.traffic,
        offered_load: id.offered_load,
        injected_load: stats.meter.injected_load(id.nodes),
        accepted_load: stats.meter.accepted_load(id.nodes),
        avg_latency_cycles: stats.latency.mean(),
        p99_latency_cycles: stats.latency_hist.percentile(0.99).unwrap_or(0.0),
        max_latency_cycles: stats.latency.max().unwrap_or(0.0),
        avg_hops: stats.hops.mean(),
        global_misroute_fraction: stats.global_misroute_fraction(),
        local_misroute_fraction: stats.local_misroute_fraction(),
        packets_delivered: stats.meter.packets_delivered,
        packets_measured: stats.measured_delivered,
        warmup_cycles: id.warmup_cycles,
        measure_cycles: id.measure_cycles,
        deadlock_detected: id.deadlock_detected,
        peak_in_flight_packets: stats.peak_in_flight_packets,
        peak_buffered_phits: stats.peak_buffered_phits,
        peak_vc_occupancy: stats.peak_vc_occupancy,
    }
}

/// Identity of one phase row — everything in a [`PhaseReport`] that is not
/// derived from its [`ScopedStats`] entry.
pub struct PhaseIdentity {
    /// Owning job's display name.
    pub job: String,
    /// Phase index within the job.
    pub phase: usize,
    /// Traffic pattern display name of the phase.
    pub pattern: String,
    /// Configured offered load of the phase.
    pub offered_load: f64,
    /// First cycle of the phase (absolute).
    pub start_cycle: u64,
    /// One past the last cycle of the phase (absolute; `u64::MAX` = open).
    pub end_cycle: u64,
}

/// Build a [`PhaseReport`] from a scoped-stats entry: loads normalized over
/// `nodes × cycles`, plus the latency/hops/misroute/packet fields.  Shared by
/// the workload and trace protocols (and their sharded counterparts) so the
/// stats mapping cannot diverge.
pub fn phase_report(id: PhaseIdentity, s: &ScopedStats, nodes: usize, cycles: u64) -> PhaseReport {
    PhaseReport {
        job: id.job,
        phase: id.phase,
        pattern: id.pattern,
        offered_load: id.offered_load,
        start_cycle: id.start_cycle,
        end_cycle: id.end_cycle,
        measured_cycles: cycles,
        injected_load: ScopedStats::load_over(s.phits_injected_in_window, nodes, cycles),
        accepted_load: ScopedStats::load_over(s.phits_delivered_in_window, nodes, cycles),
        avg_latency_cycles: s.latency.mean(),
        p99_latency_cycles: s.latency_hist.percentile(0.99).unwrap_or(0.0),
        max_latency_cycles: s.latency.max().unwrap_or(0.0),
        avg_hops: s.hops.mean(),
        global_misroute_fraction: s.global_misroute_fraction(),
        local_misroute_fraction: s.local_misroute_fraction(),
        packets_generated: s.total_generated,
        packets_delivered: s.total_delivered,
        packets_measured: s.measured_delivered,
    }
}

/// The job-level sibling of [`phase_report`].
pub fn job_report(
    name: String,
    s: &ScopedStats,
    nodes: usize,
    cycles: u64,
    lifecycle: Option<JobLifecycleReport>,
    phases: Vec<PhaseReport>,
) -> JobReport {
    JobReport {
        name,
        nodes,
        injected_load: ScopedStats::load_over(s.phits_injected_in_window, nodes, cycles),
        accepted_load: ScopedStats::load_over(s.phits_delivered_in_window, nodes, cycles),
        avg_latency_cycles: s.latency.mean(),
        p99_latency_cycles: s.latency_hist.percentile(0.99).unwrap_or(0.0),
        max_latency_cycles: s.latency.max().unwrap_or(0.0),
        avg_hops: s.hops.mean(),
        global_misroute_fraction: s.global_misroute_fraction(),
        local_misroute_fraction: s.local_misroute_fraction(),
        packets_generated: s.total_generated,
        packets_delivered: s.total_delivered,
        packets_measured: s.measured_delivered,
        lifecycle,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing_iface::BaselineMinimal;
    use dragonfly_traffic::{AdversarialGlobal, Uniform};

    fn vct_sim(h: usize, seed: u64) -> Simulation {
        Simulation::new(
            SimConfig::paper_vct(h).with_seed(seed),
            Box::new(BaselineMinimal::new()),
            Box::new(Uniform::new()),
        )
    }

    #[test]
    fn steady_state_uniform_low_load() {
        let mut sim = vct_sim(2, 11);
        let report = sim.run_steady_state(0.1, 2_000, 3_000, 4_000);
        assert!(!report.deadlock_detected);
        // Low load: accepted load tracks the offered load closely.
        assert!(
            (report.accepted_load - 0.1).abs() < 0.03,
            "accepted {} vs offered 0.1",
            report.accepted_load
        );
        assert!(report.injected_load > 0.05);
        // Latency is bounded below by the physical path and above by sanity.
        assert!(
            report.avg_latency_cycles > 50.0,
            "{}",
            report.avg_latency_cycles
        );
        assert!(
            report.avg_latency_cycles < 400.0,
            "{}",
            report.avg_latency_cycles
        );
        assert!(report.p99_latency_cycles >= report.avg_latency_cycles);
        assert!(report.packets_measured > 100);
        assert_eq!(report.routing, "Minimal");
        assert_eq!(report.traffic, "UN");
    }

    #[test]
    fn steady_state_latency_grows_with_load() {
        let low = vct_sim(2, 3).run_steady_state(0.05, 1_500, 2_500, 3_000);
        let high = vct_sim(2, 3).run_steady_state(0.45, 1_500, 2_500, 3_000);
        assert!(
            high.avg_latency_cycles > low.avg_latency_cycles,
            "latency should grow with load: {} vs {}",
            high.avg_latency_cycles,
            low.avg_latency_cycles
        );
        assert!(high.accepted_load > low.accepted_load);
    }

    #[test]
    fn adversarial_minimal_saturates_at_group_bound() {
        // Under ADVG+1 with minimal routing the single global channel between
        // consecutive groups caps throughput around 1/(2h^2+1).
        let mut sim = Simulation::new(
            SimConfig::paper_vct(2).with_seed(5),
            Box::new(BaselineMinimal::new()),
            Box::new(AdversarialGlobal::new(1)),
        );
        let report = sim.run_steady_state(0.5, 3_000, 4_000, 2_000);
        let bound = 1.0 / (2.0 * 2.0 * 2.0 + 1.0); // 1/9 ≈ 0.111
        assert!(
            report.accepted_load < bound * 1.6,
            "minimal routing under ADVG+1 should saturate near {bound}, got {}",
            report.accepted_load
        );
        assert!(report.accepted_load > bound * 0.4);
        assert!(!report.deadlock_detected);
    }

    #[test]
    fn batch_run_delivers_everything() {
        let mut sim = vct_sim(2, 21);
        let report = sim.run_batch(BurstSpec::new(5, 8), 200_000);
        assert!(!report.timed_out);
        assert!(!report.deadlock_detected);
        assert_eq!(report.packets_total, report.packets_delivered);
        assert_eq!(report.packets_per_node, 5);
        assert!(report.consumption_cycles > 100);
        assert!(report.avg_latency_cycles > 0.0);
    }

    #[test]
    #[should_panic(expected = "packet size")]
    fn batch_rejects_mismatched_packet_size() {
        let mut sim = vct_sim(2, 1);
        let _ = sim.run_batch(BurstSpec::new(5, 16), 1_000);
    }

    #[test]
    fn workload_run_breaks_stats_down_per_job_and_phase() {
        use dragonfly_workload::{JobPattern, JobSpec, PlacementPolicy, WorkloadSpec};
        let spec = WorkloadSpec::new(vec![
            JobSpec::new(
                "left",
                36,
                PlacementPolicy::Contiguous,
                JobPattern::Uniform,
                0.2,
            )
            .then_at(2_500, JobPattern::Uniform, 0.05),
            JobSpec::new(
                "right",
                36,
                PlacementPolicy::Contiguous,
                JobPattern::Uniform,
                0.1,
            ),
        ]);
        let mut sim = vct_sim(2, 33);
        sim.install_workload(&spec);
        let report = sim.run_steady_state_workload(1_000, 3_000, 4_000);
        assert!(!report.aggregate.deadlock_detected);
        assert_eq!(report.jobs.len(), 2);

        let left = report.job("left").unwrap();
        let right = report.job("right").unwrap();
        assert_eq!(left.nodes, 36);
        assert_eq!(left.phases.len(), 2);
        assert_eq!(right.phases.len(), 1);
        // Phase spans: the switch at 2 500 splits the [1 000, 4 000) window.
        assert_eq!(left.phases[0].measured_cycles, 1_500);
        assert_eq!(left.phases[1].measured_cycles, 1_500);
        assert_eq!(right.phases[0].measured_cycles, 3_000);
        // Loads track each phase's configured rate.
        assert!(
            (left.phases[0].injected_load - 0.2).abs() < 0.05,
            "{}",
            left.phases[0].injected_load
        );
        assert!(
            (left.phases[1].injected_load - 0.05).abs() < 0.03,
            "{}",
            left.phases[1].injected_load
        );
        assert!(
            (right.injected_load - 0.1).abs() < 0.04,
            "{}",
            right.injected_load
        );
        // Per-job packet counts sum to the machine totals.
        let net = sim.network();
        let per_job_generated: u64 = report.jobs.iter().map(|j| j.packets_generated).sum();
        assert_eq!(per_job_generated, net.stats.total_generated);
        let per_job_delivered: u64 = report.jobs.iter().map(|j| j.packets_delivered).sum();
        assert_eq!(per_job_delivered, net.stats.total_delivered);
        let per_phase_measured: u64 = report
            .jobs
            .iter()
            .flat_map(|j| j.phases.iter().map(|p| p.packets_measured))
            .sum();
        assert_eq!(per_phase_measured, net.stats.measured_delivered);
        assert!(left.avg_latency_cycles > 50.0);
        assert!(left.p99_latency_cycles >= left.avg_latency_cycles);
    }

    #[test]
    fn trace_run_reports_lifecycles_and_per_job_loads() {
        use dragonfly_sched::{Completion, Trace, TraceJob};
        use dragonfly_workload::{JobPattern, PlacementPolicy};
        let job = |name: &str, arrival, size, pattern, completion| TraceJob {
            name: name.into(),
            arrival,
            size,
            placement: PlacementPolicy::Contiguous,
            pattern,
            offered_load: 0.2,
            completion,
        };
        let trace = Trace::new(
            "t",
            vec![
                // `first` holds 68 of the 72 nodes; `second` must wait for it.
                job(
                    "first",
                    0,
                    68,
                    JobPattern::Uniform,
                    Completion::Duration(2_000),
                ),
                job(
                    "second",
                    500,
                    16,
                    JobPattern::RingExchange,
                    Completion::Volume(400),
                ),
            ],
        );
        let mut sim = vct_sim(2, 77);
        sim.install_schedule(&trace);
        let report = sim.run_trace(40_000, 5_000);
        assert!(!report.aggregate.deadlock_detected);
        assert_eq!(report.aggregate.traffic, "CHURN[t:2jobs]");
        assert_eq!(report.jobs.len(), 2);

        let first = report.job("first").unwrap();
        let lc = first.lifecycle.unwrap();
        assert_eq!(lc.placed_cycle, Some(0));
        assert_eq!(lc.completion_cycle, Some(2_000));
        assert_eq!(lc.wait_cycles, Some(0));
        assert!((lc.slowdown.unwrap() - 1.0).abs() < 1e-9);
        // Injected load over the residency tracks the configured rate.
        assert!(
            (first.injected_load - 0.2).abs() < 0.05,
            "{}",
            first.injected_load
        );
        assert_eq!(first.phases[0].start_cycle, 0);
        assert_eq!(first.phases[0].end_cycle, 2_000);

        let second = report.job("second").unwrap();
        let lc = second.lifecycle.unwrap();
        // Placed only when `first` freed its nodes, despite arriving at 500.
        assert_eq!(lc.placed_cycle, Some(2_000));
        assert_eq!(lc.wait_cycles, Some(1_500));
        let completed = lc.completion_cycle.expect("volume job must finish");
        assert!(completed > 2_000);
        // Volume-bound completion delivered exactly the requested packets (plus
        // whatever was still in flight when the threshold was crossed).
        assert!(
            second.packets_delivered >= 400,
            "{}",
            second.packets_delivered
        );
        // Slowdown folds the wait into the ideal-service ratio: ideal is
        // 400 packets × 8 phits / (16 nodes × 0.2) = 1 000 cycles, wait alone
        // adds 1.5× of that.
        assert!(lc.slowdown.unwrap() > 2.0, "{}", lc.slowdown.unwrap());

        // Per-job totals still sum to the machine totals.
        let generated: u64 = report.jobs.iter().map(|j| j.packets_generated).sum();
        assert_eq!(generated, sim.network().stats.total_generated);
        // The run ended when everything completed and drained, before the horizon.
        assert!(report.aggregate.measure_cycles < 40_000);
        assert!(sim.network().is_drained());
    }

    #[test]
    #[should_panic(expected = "requires an installed schedule")]
    fn run_trace_requires_schedule() {
        let mut sim = vct_sim(2, 1);
        let _ = sim.run_trace(1_000, 100);
    }

    #[test]
    fn install_workload_clears_a_previous_schedule() {
        use dragonfly_sched::{Completion, Trace, TraceJob};
        use dragonfly_workload::{JobPattern, PlacementPolicy, WorkloadSpec};
        let trace = Trace::new(
            "t",
            vec![TraceJob {
                name: "a".into(),
                arrival: 0,
                size: 4,
                placement: PlacementPolicy::Contiguous,
                pattern: JobPattern::Uniform,
                offered_load: 0.1,
                completion: Completion::Duration(100),
            }],
        );
        let mut sim = vct_sim(2, 1);
        sim.install_schedule(&trace);
        assert!(sim.network().schedule().is_some());
        sim.install_workload(&WorkloadSpec::transient(72, 0.1, 1_000, 2));
        assert!(sim.network().schedule().is_none());
        assert!(sim.network().workload().is_some());
    }

    #[test]
    fn horizon_truncated_jobs_stay_incomplete_regardless_of_drain() {
        use dragonfly_sched::{Completion, Trace, TraceJob};
        use dragonfly_workload::{JobPattern, PlacementPolicy};
        // The job's duration extends past the horizon: the lifecycle freezes at
        // halt(), so no drain budget can make it report a completion.
        let trace = Trace::new(
            "long",
            vec![TraceJob {
                name: "spans".into(),
                arrival: 0,
                size: 8,
                placement: PlacementPolicy::Contiguous,
                pattern: JobPattern::Uniform,
                offered_load: 0.1,
                completion: Completion::Duration(5_000),
            }],
        );
        for drain in [100, 20_000] {
            let mut sim = vct_sim(2, 7);
            sim.install_schedule(&trace);
            let report = sim.run_trace(2_000, drain);
            let lc = report.job("spans").unwrap().lifecycle.unwrap();
            assert_eq!(lc.placed_cycle, Some(0));
            assert_eq!(lc.completion_cycle, None, "drain = {drain}");
            assert_eq!(lc.slowdown, None);
        }
    }

    #[test]
    fn wormhole_uniform_delivers() {
        let mut sim = Simulation::new(
            SimConfig::paper_wormhole(2).with_seed(13),
            Box::new(BaselineMinimal::new()),
            Box::new(Uniform::new()),
        );
        let report = sim.run_steady_state(0.1, 2_000, 3_000, 6_000);
        assert!(!report.deadlock_detected);
        assert!(report.packets_measured > 20);
        assert!(
            (report.accepted_load - 0.1).abs() < 0.04,
            "{}",
            report.accepted_load
        );
        // 80-phit packets over a ~120-cycle path: latency well above the VCT case.
        assert!(report.avg_latency_cycles > 150.0);
    }
}
