//! Fixed-capacity ring buffers for the hot-path pipelines.
//!
//! Every queue the cycle loop touches — VC buffer slots, link phit pipelines,
//! link credit pipelines — has a capacity that is *provable at construction
//! time* from the simulation configuration (buffer depth, link latency, VC
//! count).  Two layers exploit that:
//!
//! * [`RingMeta`] is the metadata of one ring — head, length, high-water mark
//!   and capacity — packed into a single `u64` word (16 bits each).  It owns
//!   no storage: the ring's elements live in a caller-provided slice, which is
//!   what lets the [`crate::fabric::LinkFabric`] keep *every* pipeline of the
//!   network in two contiguous pools and every ring's metadata in one parallel
//!   array, and lets all of a router's VC slot queues share one backing pool.
//!   All four fields provably fit 16 bits: phit pipelines hold at most
//!   `latency + 1 ≤ 101` entries, credit pipelines at most
//!   `vcs × (latency + 1)`, and VC slot rings at most `capacity + 1 ≤ 257`.
//! * [`FixedRing`] is the owning convenience wrapper — a `RingMeta` plus its
//!   own `Vec` backing — for rings that do not share a pool.
//!
//! The backing storage is allocated *eagerly* at construction.  Lazy
//! (first-push) allocation was tried and rejected: rarely-used VCs get their
//! first packet at unbounded, load-dependent times, so "zero allocations
//! after warm-up" would never actually converge.  Eager reservation makes the
//! whole-network footprint `Σ capacities` up front — and because the pooled
//! layout packs rings back to back at their *exact* capacities (no
//! power-of-two rounding), that footprint is the tight sum of the provable
//! bounds.

/// Packed metadata of one bounded FIFO ring: `head | len | high_water | cap`,
/// 16 bits each, in one `u64` word.
///
/// The word is the only per-ring state; the elements live in a caller-provided
/// slice of exactly `cap` elements.  Pushing beyond the capacity panics: the
/// capacities are sized from conservation arguments (see `ARCHITECTURE.md`,
/// "Memory layout of the hot path"), so an overflow is a simulator bug, not a
/// load condition.
///
/// Wrap-around is a compare-and-subtract rather than a power-of-two mask:
/// exact-capacity slices pack tightly into the shared pools, which is worth
/// more than the mask (the branch is perfectly predicted in the steady state).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingMeta(u64);

const SHIFT_HEAD: u32 = 0;
const SHIFT_LEN: u32 = 16;
const SHIFT_HW: u32 = 32;
const SHIFT_CAP: u32 = 48;
const FIELD: u64 = 0xFFFF;

impl RingMeta {
    /// Metadata of an empty ring of `cap` elements (at most `u16::MAX`).
    pub fn new(cap: usize) -> Self {
        assert!(
            cap <= u16::MAX as usize,
            "ring capacity {cap} exceeds the 16-bit packed field"
        );
        Self((cap as u64) << SHIFT_CAP)
    }

    /// Physical index of the oldest element.
    #[inline]
    pub fn head(self) -> usize {
        ((self.0 >> SHIFT_HEAD) & FIELD) as usize
    }

    /// Number of elements currently held.
    #[inline]
    pub fn len(self) -> usize {
        ((self.0 >> SHIFT_LEN) & FIELD) as usize
    }

    /// Highest occupancy the ring has ever reached.
    #[inline]
    pub fn high_water(self) -> usize {
        ((self.0 >> SHIFT_HW) & FIELD) as usize
    }

    /// The fixed capacity the ring was built with.
    #[inline]
    pub fn capacity(self) -> usize {
        ((self.0 >> SHIFT_CAP) & FIELD) as usize
    }

    /// True when the ring holds no elements.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Raw packed word (diagnostics and the metadata round-trip tests).
    #[inline]
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Rebuild from a raw packed word produced by [`RingMeta::to_bits`].
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        Self(bits)
    }

    #[inline]
    fn set_head(&mut self, head: usize) {
        self.0 = (self.0 & !(FIELD << SHIFT_HEAD)) | ((head as u64) << SHIFT_HEAD);
    }

    #[inline]
    fn set_len(&mut self, len: usize) {
        self.0 = (self.0 & !(FIELD << SHIFT_LEN)) | ((len as u64) << SHIFT_LEN);
    }

    #[inline]
    fn set_high_water(&mut self, hw: usize) {
        self.0 = (self.0 & !(FIELD << SHIFT_HW)) | ((hw as u64) << SHIFT_HW);
    }

    /// Physical index of logical position `i` (caller guarantees `i < len`).
    #[inline]
    fn phys(self, i: usize) -> usize {
        let cap = self.capacity();
        let p = self.head() + i;
        if p >= cap {
            p - cap
        } else {
            p
        }
    }

    /// Reserve the next tail slot: asserts the ring is not full, bumps `len`
    /// (and the high-water mark), and returns the physical index the new
    /// element must be written to.  Storage-agnostic core of every push.
    #[inline]
    pub fn push_slot(&mut self) -> usize {
        let len = self.len();
        assert!(
            len < self.capacity(),
            "ring overflow: capacity {} exceeded",
            self.capacity()
        );
        let pos = self.phys(len);
        self.set_len(len + 1);
        if len + 1 > self.high_water() {
            self.set_high_water(len + 1);
        }
        pos
    }

    /// Release the head slot: returns its physical index and advances `head`,
    /// or `None` when the ring is empty.  Storage-agnostic core of every pop.
    #[inline]
    pub fn pop_slot(&mut self) -> Option<usize> {
        let len = self.len();
        if len == 0 {
            return None;
        }
        let pos = self.head();
        let next = pos + 1;
        self.set_head(if next == self.capacity() { 0 } else { next });
        self.set_len(len - 1);
        Some(pos)
    }

    // --- Slice-backed ring view -------------------------------------------
    //
    // The methods below treat `buf` (a slice of exactly `capacity` elements,
    // typically a sub-slice of a shared pool) as the ring's storage.

    /// Append an element; panics if the ring is full.
    #[inline]
    pub fn push_back<T: Copy>(&mut self, buf: &mut [T], value: T) {
        debug_assert_eq!(buf.len(), self.capacity());
        let pos = self.push_slot();
        buf[pos] = value;
    }

    /// Remove and return the oldest element.
    #[inline]
    pub fn pop_front<T: Copy>(&mut self, buf: &[T]) -> Option<T> {
        debug_assert_eq!(buf.len(), self.capacity());
        self.pop_slot().map(|pos| buf[pos])
    }

    /// The oldest element, if any.
    #[inline]
    pub fn front<'a, T>(&self, buf: &'a [T]) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&buf[self.head()])
        }
    }

    /// Mutable access to the oldest element, if any.
    #[inline]
    pub fn front_mut<'a, T>(&self, buf: &'a mut [T]) -> Option<&'a mut T> {
        if self.is_empty() {
            None
        } else {
            Some(&mut buf[self.head()])
        }
    }

    /// The newest element, if any.
    #[inline]
    pub fn back<'a, T>(&self, buf: &'a [T]) -> Option<&'a T> {
        let len = self.len();
        if len == 0 {
            None
        } else {
            Some(&buf[self.phys(len - 1)])
        }
    }

    /// Mutable access to the newest element, if any.
    #[inline]
    pub fn back_mut<'a, T>(&self, buf: &'a mut [T]) -> Option<&'a mut T> {
        let len = self.len();
        if len == 0 {
            None
        } else {
            Some(&mut buf[self.phys(len - 1)])
        }
    }

    /// Iterate the elements oldest-first.
    pub fn iter<'a, T>(&self, buf: &'a [T]) -> impl Iterator<Item = &'a T> + 'a {
        let meta = *self;
        (0..meta.len()).map(move |i| &buf[meta.phys(i)])
    }
}

/// A bounded FIFO ring over `Copy` elements that owns its backing storage: a
/// [`RingMeta`] word plus a private `Vec`.
///
/// The index math and overflow policy are exactly the shared-pool ring view's
/// (`RingMeta`); only the storage ownership differs.  Rings that belong to a
/// family with a common element type should share a pool through `RingMeta`
/// directly instead — that is what the link fabric and the router slot pools
/// do.
#[derive(Debug, Clone)]
pub struct FixedRing<T: Copy> {
    buf: Vec<T>,
    meta: RingMeta,
}

impl<T: Copy> FixedRing<T> {
    /// An empty ring that will never hold more than `cap` elements.  The
    /// backing store is reserved here, up front — see the module docs.
    pub fn new(cap: usize) -> Self {
        let mut buf = Vec::new();
        buf.reserve_exact(cap);
        Self {
            buf,
            meta: RingMeta::new(cap),
        }
    }

    /// Append an element; panics if the ring is full.
    #[inline]
    pub fn push_back(&mut self, value: T) {
        let pos = self.meta.push_slot();
        // The backing is materialized on first touch of each physical slot
        // (the reservation is exact, so this never reallocates).
        if pos == self.buf.len() {
            self.buf.push(value);
        } else {
            self.buf[pos] = value;
        }
    }

    /// Remove and return the oldest element.
    #[inline]
    pub fn pop_front(&mut self) -> Option<T> {
        self.meta.pop_slot().map(|pos| self.buf[pos])
    }

    /// The oldest element, if any.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        self.meta.front(&self.buf)
    }

    /// Mutable access to the oldest element, if any.
    #[inline]
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.meta.front_mut(&mut self.buf)
    }

    /// The newest element, if any.
    #[inline]
    pub fn back(&self) -> Option<&T> {
        self.meta.back(&self.buf)
    }

    /// Mutable access to the newest element, if any.
    #[inline]
    pub fn back_mut(&mut self) -> Option<&mut T> {
        self.meta.back_mut(&mut self.buf)
    }

    /// Number of elements currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// True when the ring holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// The fixed capacity the ring was built with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.meta.capacity()
    }

    /// Highest occupancy the ring has ever reached.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.meta.high_water()
    }

    /// Iterate the elements oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.meta.iter(&self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = FixedRing::new(4);
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.front(), Some(&1));
        assert_eq!(r.back(), Some(&3));
        assert_eq!(r.pop_front(), Some(1));
        assert_eq!(r.pop_front(), Some(2));
        assert_eq!(r.pop_front(), Some(3));
        assert_eq!(r.pop_front(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn wraparound_at_exactly_capacity() {
        // Fill to capacity, drain, and refill repeatedly so head sweeps the
        // whole physical buffer and every push after the first lap lands on a
        // wrapped index.
        let mut r = FixedRing::new(3);
        for lap in 0..5u32 {
            for i in 0..3 {
                r.push_back(lap * 10 + i);
            }
            assert_eq!(r.len(), r.capacity());
            for i in 0..3 {
                assert_eq!(r.pop_front(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn interleaved_push_pop_wraps() {
        let mut r = FixedRing::new(2);
        r.push_back(0);
        for i in 1..100 {
            r.push_back(i);
            assert_eq!(r.pop_front(), Some(i - 1));
        }
        assert_eq!(r.pop_front(), Some(99));
    }

    #[test]
    #[should_panic(expected = "ring overflow")]
    fn overflow_panics() {
        let mut r = FixedRing::new(2);
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
    }

    #[test]
    fn backing_is_allocated_once_and_exactly() {
        let mut r = FixedRing::new(8);
        assert_eq!(r.buf.capacity(), 8, "backing is reserved at construction");
        for i in 1u64..=8 {
            r.push_back(i);
        }
        assert_eq!(r.buf.capacity(), 8, "pushes never grow the backing");
    }

    #[test]
    fn iter_is_oldest_first_across_the_seam() {
        let mut r = FixedRing::new(3);
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
        r.pop_front();
        r.pop_front();
        r.push_back(4);
        r.push_back(5); // physically wrapped
        let v: Vec<i32> = r.iter().copied().collect();
        assert_eq!(v, vec![3, 4, 5]);
    }

    #[test]
    fn front_back_mut() {
        let mut r = FixedRing::new(2);
        r.push_back(10);
        r.push_back(20);
        *r.front_mut().unwrap() += 1;
        *r.back_mut().unwrap() += 2;
        assert_eq!(r.pop_front(), Some(11));
        assert_eq!(r.pop_front(), Some(22));
    }

    #[test]
    fn high_water_tracks_peak_occupancy_not_current() {
        let mut r = FixedRing::new(4);
        assert_eq!(r.high_water(), 0);
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
        assert_eq!(r.high_water(), 3);
        r.pop_front();
        r.pop_front();
        assert_eq!(r.len(), 1);
        assert_eq!(r.high_water(), 3, "draining must not lower the mark");
        r.push_back(4);
        assert_eq!(r.high_water(), 3, "refilling below the peak keeps it");
        r.push_back(5);
        r.push_back(6);
        assert_eq!(r.high_water(), 4);
    }

    #[test]
    fn zero_capacity_ring_is_empty_forever() {
        let r: FixedRing<u8> = FixedRing::new(0);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 0);
        assert_eq!(r.front(), None);
    }

    // --- RingMeta slice-backed view ---------------------------------------

    #[test]
    fn meta_view_fifo_over_a_shared_pool() {
        // Two rings sharing one pool, back to back at exact capacities.
        let mut pool = [0u32; 5];
        let (mut a, mut b) = (RingMeta::new(2), RingMeta::new(3));
        let (pa, pb) = pool.split_at_mut(2);
        a.push_back(pa, 10);
        b.push_back(pb, 20);
        a.push_back(pa, 11);
        b.push_back(pb, 21);
        assert_eq!(a.pop_front(pa), Some(10));
        assert_eq!(b.front(pb), Some(&20));
        assert_eq!(a.pop_front(pa), Some(11));
        assert_eq!(b.pop_front(pb), Some(20));
        assert_eq!(b.pop_front(pb), Some(21));
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(a.high_water(), 2);
        assert_eq!(b.high_water(), 2);
    }

    #[test]
    fn meta_packed_word_roundtrip() {
        let mut pool = [0u8; 3];
        let mut m = RingMeta::new(3);
        m.push_back(&mut pool, 1);
        m.push_back(&mut pool, 2);
        m.pop_front(&pool);
        let bits = m.to_bits();
        let back = RingMeta::from_bits(bits);
        assert_eq!(back, m);
        assert_eq!(back.head(), 1);
        assert_eq!(back.len(), 1);
        assert_eq!(back.high_water(), 2);
        assert_eq!(back.capacity(), 3);
        assert_eq!(std::mem::size_of::<RingMeta>(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds the 16-bit packed field")]
    fn meta_rejects_oversized_capacity() {
        RingMeta::new(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn meta_wraparound_is_branch_not_mask() {
        // Capacity 3 (not a power of two): the wrap must land on index 0.
        let mut pool = [0i32; 3];
        let mut m = RingMeta::new(3);
        for i in 0..3 {
            m.push_back(&mut pool, i);
        }
        m.pop_front(&pool);
        m.push_back(&mut pool, 3); // physically wraps to index 0
        assert_eq!(pool[0], 3);
        let v: Vec<i32> = m.iter(&pool).copied().collect();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
