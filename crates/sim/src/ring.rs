//! Fixed-capacity ring buffers for the hot-path pipelines.
//!
//! Every queue the cycle loop touches — VC buffer slots, link phit pipelines,
//! link credit pipelines — has a capacity that is *provable at construction
//! time* from the simulation configuration (buffer depth, link latency, VC
//! count).  [`FixedRing`] exploits that: it never grows past the capacity it
//! was built with, so after its one-time backing allocation the steady-state
//! loop performs no heap allocation at all (the invariant pinned by
//! `tests/zero_alloc.rs`).
//!
//! The backing storage is allocated *eagerly* at construction, in a single
//! `reserve_exact`.  Lazy (first-push) allocation was tried and rejected:
//! rarely-used VCs get their first packet at unbounded, load-dependent times,
//! so "zero allocations after warm-up" would never actually converge.  Eager
//! reservation makes the whole-network footprint `Σ capacities` up front —
//! the allocator packs these small buffers into resident heap pages, so the
//! reservations are *not* free the way untouched `mmap` pages would be.
//! That cost is kept small by sizing, not by laziness: every ring capacity is
//! a tight per-ring bound (slot rings count whole packets, pipelines count
//! `latency + 1` entries) and the pipeline entry types are packed to 16/8
//! bytes, which keeps an h = 8 network (~64 k links) within tens of
//! megabytes of ring backing.

/// A bounded FIFO ring over `Copy` elements.
///
/// Pushing beyond the fixed capacity panics: the capacities are sized from
/// conservation arguments (see `ARCHITECTURE.md`, "Memory layout of the hot
/// path"), so an overflow is a simulator bug, not a load condition.
#[derive(Debug, Clone)]
pub struct FixedRing<T: Copy> {
    buf: Vec<T>,
    cap: usize,
    /// Physical-size-minus-one of the backing store, which is `cap` rounded up
    /// to a power of two: wrap-around is a mask, not a branch (the same trick
    /// `VecDeque` uses).  The padding costs address space, not resident
    /// memory — untouched slots are never written.
    mask: usize,
    head: usize,
    len: usize,
    /// Highest `len` ever reached — how much of the provable capacity bound a
    /// run actually used (probe diagnostics; see `dragonfly_probe`).
    high_water: usize,
}

impl<T: Copy> FixedRing<T> {
    /// An empty ring that will never hold more than `cap` elements.  The
    /// backing store is reserved here, up front — see the module docs.
    pub fn new(cap: usize) -> Self {
        let phys = cap.next_power_of_two();
        let mut buf = Vec::new();
        buf.reserve_exact(phys);
        Self {
            buf,
            cap,
            mask: phys - 1,
            head: 0,
            len: 0,
            high_water: 0,
        }
    }

    /// Physical index of logical position `i` (caller guarantees `i < len`).
    #[inline]
    fn phys(&self, i: usize) -> usize {
        (self.head + i) & self.mask
    }

    /// Append an element; panics if the ring is full.
    #[inline]
    pub fn push_back(&mut self, value: T) {
        assert!(
            self.len < self.cap,
            "FixedRing overflow: capacity {} exceeded",
            self.cap
        );
        let pos = self.phys(self.len);
        if pos == self.buf.len() {
            self.buf.push(value);
        } else {
            self.buf[pos] = value;
        }
        self.len += 1;
        if self.len > self.high_water {
            self.high_water = self.len;
        }
    }

    /// Remove and return the oldest element.
    #[inline]
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let value = self.buf[self.head];
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
        Some(value)
    }

    /// The oldest element, if any.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            Some(&self.buf[self.head])
        }
    }

    /// Mutable access to the oldest element, if any.
    #[inline]
    pub fn front_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 {
            None
        } else {
            Some(&mut self.buf[self.head])
        }
    }

    /// The newest element, if any.
    #[inline]
    pub fn back(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            Some(&self.buf[self.phys(self.len - 1)])
        }
    }

    /// Mutable access to the newest element, if any.
    #[inline]
    pub fn back_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 {
            None
        } else {
            let p = self.phys(self.len - 1);
            Some(&mut self.buf[p])
        }
    }

    /// Number of elements currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the ring holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity the ring was built with.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Highest occupancy the ring has ever reached.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Iterate the elements oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        (0..self.len).map(move |i| &self.buf[self.phys(i)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut r = FixedRing::new(4);
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
        assert_eq!(r.len(), 3);
        assert_eq!(r.front(), Some(&1));
        assert_eq!(r.back(), Some(&3));
        assert_eq!(r.pop_front(), Some(1));
        assert_eq!(r.pop_front(), Some(2));
        assert_eq!(r.pop_front(), Some(3));
        assert_eq!(r.pop_front(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn wraparound_at_exactly_capacity() {
        // Fill to capacity, drain, and refill repeatedly so head sweeps the
        // whole physical buffer and every push after the first lap lands on a
        // wrapped index.
        let mut r = FixedRing::new(3);
        for lap in 0..5u32 {
            for i in 0..3 {
                r.push_back(lap * 10 + i);
            }
            assert_eq!(r.len(), r.capacity());
            for i in 0..3 {
                assert_eq!(r.pop_front(), Some(lap * 10 + i));
            }
        }
    }

    #[test]
    fn interleaved_push_pop_wraps() {
        let mut r = FixedRing::new(2);
        r.push_back(0);
        for i in 1..100 {
            r.push_back(i);
            assert_eq!(r.pop_front(), Some(i - 1));
        }
        assert_eq!(r.pop_front(), Some(99));
    }

    #[test]
    #[should_panic(expected = "FixedRing overflow")]
    fn overflow_panics() {
        let mut r = FixedRing::new(2);
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
    }

    #[test]
    fn backing_is_allocated_once_and_exactly() {
        let mut r = FixedRing::new(8);
        assert_eq!(r.buf.capacity(), 8, "backing is reserved at construction");
        for i in 1u64..=8 {
            r.push_back(i);
        }
        assert_eq!(r.buf.capacity(), 8, "pushes never grow the backing");
    }

    #[test]
    fn iter_is_oldest_first_across_the_seam() {
        let mut r = FixedRing::new(3);
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
        r.pop_front();
        r.pop_front();
        r.push_back(4);
        r.push_back(5); // physically wrapped
        let v: Vec<i32> = r.iter().copied().collect();
        assert_eq!(v, vec![3, 4, 5]);
    }

    #[test]
    fn front_back_mut() {
        let mut r = FixedRing::new(2);
        r.push_back(10);
        r.push_back(20);
        *r.front_mut().unwrap() += 1;
        *r.back_mut().unwrap() += 2;
        assert_eq!(r.pop_front(), Some(11));
        assert_eq!(r.pop_front(), Some(22));
    }

    #[test]
    fn high_water_tracks_peak_occupancy_not_current() {
        let mut r = FixedRing::new(4);
        assert_eq!(r.high_water(), 0);
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
        assert_eq!(r.high_water(), 3);
        r.pop_front();
        r.pop_front();
        assert_eq!(r.len(), 1);
        assert_eq!(r.high_water(), 3, "draining must not lower the mark");
        r.push_back(4);
        assert_eq!(r.high_water(), 3, "refilling below the peak keeps it");
        r.push_back(5);
        r.push_back(6);
        assert_eq!(r.high_water(), 4);
    }

    #[test]
    fn zero_capacity_ring_is_empty_forever() {
        let r: FixedRing<u8> = FixedRing::new(0);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 0);
        assert_eq!(r.front(), None);
    }
}
