//! Sorted, deduplicated active sets for the per-cycle phases.
//!
//! The cycle loop only visits links and routers with work pending.  The
//! original representation — an insertion-ordered `Vec` plus a `Vec<bool>`
//! membership array — visited members in *activation* order, which is
//! effectively random with respect to memory: consecutive iterations touched
//! pipeline rings scattered across the whole link array.  [`ActiveSet`] is a
//! two-level bitmap instead: iteration is in strictly increasing index order,
//! so a sweep over the active links walks the struct-of-arrays
//! [`crate::fabric::LinkFabric`] pools front to back — traversal order matches
//! memory order, which is what the layout work is for.
//!
//! Membership is one bit per element plus one summary bit per 64-bit word, so
//! a sparse sweep skips 4096 idle elements per summary word probed.  Insert,
//! remove and the next-member probe are O(1) (plus a word scan bounded by the
//! gap to the next member); all storage is allocated at construction, keeping
//! the cycle loop allocation-free.

/// A set over `0..n` supporting O(1) insert/remove and ascending iteration.
#[derive(Debug, Clone)]
pub struct ActiveSet {
    /// Membership bits, one per element.
    bits: Vec<u64>,
    /// Bit `j` of `summary[k]` is set iff `bits[k * 64 + j] != 0`.
    summary: Vec<u64>,
    /// Number of members (diagnostics / emptiness checks).
    len: usize,
}

impl ActiveSet {
    /// An empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        let words = n.div_ceil(64);
        Self {
            bits: vec![0; words],
            summary: vec![0; words.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of members currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `i` is a member.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Insert `i` (idempotent).
    #[inline]
    pub fn insert(&mut self, i: usize) {
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        if self.bits[w] & mask == 0 {
            self.bits[w] |= mask;
            self.summary[w / 64] |= 1u64 << (w % 64);
            self.len += 1;
        }
    }

    /// Remove `i` (idempotent).
    #[inline]
    pub fn remove(&mut self, i: usize) {
        let w = i / 64;
        let mask = 1u64 << (i % 64);
        if self.bits[w] & mask != 0 {
            self.bits[w] &= !mask;
            if self.bits[w] == 0 {
                self.summary[w / 64] &= !(1u64 << (w % 64));
            }
            self.len -= 1;
        }
    }

    /// Smallest member `>= i`, or `None`.  The ascending sweep the phases use:
    ///
    /// ```text
    /// let mut cursor = 0;
    /// while let Some(i) = set.next_at_or_after(cursor) {
    ///     cursor = i + 1;
    ///     /* process i; `set.remove(i)` and inserts of other ids are fine */
    /// }
    /// ```
    #[inline]
    pub fn next_at_or_after(&self, i: usize) -> Option<usize> {
        let mut w = i / 64;
        if w >= self.bits.len() {
            return None;
        }
        // Tail of the word `i` falls in.
        let tail = self.bits[w] & (!0u64 << (i % 64));
        if tail != 0 {
            return Some(w * 64 + tail.trailing_zeros() as usize);
        }
        // Climb to the summary level to find the next non-empty word.
        w += 1;
        let mut s = w / 64;
        if s >= self.summary.len() {
            return None;
        }
        let stail = self.summary[s] & (!0u64 << (w % 64));
        let word = if stail != 0 {
            s * 64 + stail.trailing_zeros() as usize
        } else {
            loop {
                s += 1;
                if s >= self.summary.len() {
                    return None;
                }
                if self.summary[s] != 0 {
                    break s * 64 + self.summary[s].trailing_zeros() as usize;
                }
            }
        };
        Some(word * 64 + self.bits[word].trailing_zeros() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(set: &ActiveSet) -> Vec<usize> {
        let mut out = Vec::new();
        let mut cursor = 0;
        while let Some(i) = set.next_at_or_after(cursor) {
            out.push(i);
            cursor = i + 1;
        }
        out
    }

    #[test]
    fn insert_remove_iterate_sorted() {
        let mut s = ActiveSet::new(10_000);
        for &i in &[9_999usize, 3, 4_096, 64, 63, 3] {
            s.insert(i);
        }
        assert_eq!(s.len(), 5, "inserts are deduplicated");
        assert_eq!(members(&s), vec![3, 63, 64, 4_096, 9_999]);
        s.remove(64);
        s.remove(64);
        assert_eq!(s.len(), 4);
        assert!(!s.contains(64));
        assert_eq!(members(&s), vec![3, 63, 4_096, 9_999]);
    }

    #[test]
    fn sweep_with_mid_iteration_removal() {
        let mut s = ActiveSet::new(300);
        for i in (0..300).step_by(7) {
            s.insert(i);
        }
        let mut seen = Vec::new();
        let mut cursor = 0;
        while let Some(i) = s.next_at_or_after(cursor) {
            cursor = i + 1;
            seen.push(i);
            if i % 14 == 0 {
                s.remove(i);
            }
        }
        assert_eq!(seen, (0..300).step_by(7).collect::<Vec<_>>());
        assert_eq!(members(&s), (7..300).step_by(14).collect::<Vec<_>>());
    }

    #[test]
    fn summary_level_skips_empty_words() {
        // Members more than 64*64 apart force the summary-word loop.
        let mut s = ActiveSet::new(64 * 64 * 3 + 1);
        s.insert(0);
        s.insert(64 * 64 * 3);
        assert_eq!(members(&s), vec![0, 64 * 64 * 3]);
        assert_eq!(s.next_at_or_after(1), Some(64 * 64 * 3));
        s.remove(64 * 64 * 3);
        assert_eq!(s.next_at_or_after(1), None);
    }

    #[test]
    fn empty_and_boundary() {
        let s = ActiveSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.next_at_or_after(0), None);
        let mut s = ActiveSet::new(65);
        s.insert(64);
        assert_eq!(s.next_at_or_after(0), Some(64));
        assert_eq!(s.next_at_or_after(64), Some(64));
        assert_eq!(s.next_at_or_after(65), None);
    }

    #[test]
    fn matches_a_model_under_random_churn() {
        use dragonfly_rng::Rng;
        let mut rng = Rng::seed_from(0xAC71);
        let n = 2_000;
        let mut s = ActiveSet::new(n);
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..20_000 {
            let i = rng.gen_index(n);
            if rng.bernoulli(0.5) {
                s.insert(i);
                model.insert(i);
            } else {
                s.remove(i);
                model.remove(&i);
            }
        }
        assert_eq!(s.len(), model.len());
        assert_eq!(members(&s), model.into_iter().collect::<Vec<_>>());
    }
}
