//! Criterion benchmark: per-mechanism routing cost.
//!
//! Runs the same loaded network for a fixed number of cycles under every routing
//! mechanism, so the relative cost of the routing decisions (parity-sign checks for
//! RLM, escape-ladder checks for OLM, the 6-VC ladder of PAR-6/2, ...) can be
//! compared.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dragonfly_core::{ExperimentSpec, RoutingKind, TrafficKind};
use std::time::Duration;

fn bench_routing_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_mechanism_cycles");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for kind in RoutingKind::ALL {
        let mut spec = ExperimentSpec::new(2);
        spec.routing = kind;
        spec.traffic = TrafficKind::AdversarialGlobal(1);
        spec.offered_load = 0.4;
        let mut sim = spec.build_simulation();
        sim.network_mut()
            .set_injection(Some(dragonfly_traffic::BernoulliInjection::new(
                0.4,
                spec.flow_control.packet_size(),
            )));
        sim.run_cycles(1_500);
        group.bench_with_input(
            BenchmarkId::new("run_100_cycles", kind.name()),
            &(),
            |b, _| {
                b.iter(|| sim.run_cycles(100));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_routing_mechanisms);
criterion_main!(benches);
