//! Criterion ablation benchmark: misrouting-threshold sensitivity.
//!
//! The misrouting threshold is the one free parameter of RLM and OLM (Figures 10/11
//! of the paper).  This ablation measures the wall-clock time needed to consume a
//! small adversarial burst under different thresholds: a threshold that misroutes too
//! little leaves the burst serialized on the saturated minimal links and takes longer
//! to drain, which shows up directly in the measured time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dragonfly_core::{ExperimentSpec, RoutingKind, TrafficKind};
use std::time::Duration;

fn bench_threshold_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_ablation_burst_drain");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(4));
    for &(kind, label) in &[(RoutingKind::Rlm, "rlm"), (RoutingKind::Olm, "olm")] {
        for &threshold in &[0.30, 0.45, 0.60] {
            let id = format!("{label}_th{}", (threshold * 100.0) as u32);
            group.bench_with_input(BenchmarkId::new("burst", id), &(), |b, _| {
                b.iter(|| {
                    let mut spec = ExperimentSpec::new(2);
                    spec.routing = kind;
                    spec.threshold = threshold;
                    spec.traffic = TrafficKind::Mixed {
                        global_fraction: 0.5,
                        global_offset: 2,
                        local_offset: 1,
                    };
                    spec.seed = 11;
                    spec.run_batch(3, 500_000)
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_threshold_ablation);
criterion_main!(benches);
