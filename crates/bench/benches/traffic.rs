//! Criterion benchmark: traffic-pattern generation cost.
//!
//! Destination selection runs once per generated packet (tens of thousands per
//! simulated millisecond at full load), so the patterns must be allocation-free and
//! cheap.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dragonfly_rng::Rng;
use dragonfly_topology::{DragonflyParams, NodeId};
use dragonfly_traffic::{
    AdversarialGlobal, AdversarialLocal, MixedGlobalLocal, TrafficPattern, Uniform,
};
use std::time::Duration;

fn bench_patterns(c: &mut Criterion) {
    let params = DragonflyParams::new(8);
    let patterns: Vec<(&str, Box<dyn TrafficPattern>)> = vec![
        ("uniform", Box::new(Uniform::new())),
        ("advg+8", Box::new(AdversarialGlobal::new(8))),
        ("advl+1", Box::new(AdversarialLocal::new(1))),
        ("mix50", Box::new(MixedGlobalLocal::new(0.5, 8, 1))),
    ];
    let mut group = c.benchmark_group("traffic_destination");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (name, pattern) in &patterns {
        group.bench_with_input(BenchmarkId::new("destinations_1k", *name), &(), |b, _| {
            let mut rng = Rng::seed_from(7);
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..1_000u32 {
                    let src = NodeId(i % params.num_nodes() as u32);
                    acc += pattern.destination(black_box(src), &params, &mut rng).0 as u64;
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_patterns);
criterion_main!(benches);
