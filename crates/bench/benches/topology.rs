//! Criterion benchmark: topology query cost.
//!
//! The routing mechanisms call `minimal_port`, `port_toward_group` and
//! `global_neighbor` on every hop of every packet, so these must stay in the
//! nanosecond range.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dragonfly_topology::{DragonflyParams, NodeId, RouterId};
use std::time::Duration;

fn bench_topology_queries(c: &mut Criterion) {
    let params = DragonflyParams::new(8);
    let nodes = params.num_nodes() as u32;
    let routers = params.num_routers() as u32;

    let mut group = c.benchmark_group("topology_queries");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("minimal_port_sweep", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1_000u32 {
                let router = RouterId((i * 7919) % routers);
                let dest = NodeId((i * 104729) % nodes);
                acc += params
                    .minimal_port(black_box(router), black_box(dest))
                    .class_index();
            }
            acc
        });
    });

    group.bench_function("global_neighbor_sweep", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..1_000u32 {
                let router = RouterId((i * 7919) % routers);
                let port = (i % params.global_ports() as u32) as usize;
                let (nbr, back) = params.global_neighbor(black_box(router), black_box(port));
                acc += nbr.index() + back;
            }
            acc
        });
    });

    group.bench_function("minimal_route_enumeration", |b| {
        b.iter(|| {
            let mut total_hops = 0usize;
            for i in 0..200u32 {
                let src = NodeId((i * 7919) % nodes);
                let dst = NodeId((i * 104729 + 13) % nodes);
                total_hops += params.minimal_route(black_box(src), black_box(dst)).len();
            }
            total_hops
        });
    });

    group.finish();
}

criterion_group!(benches, bench_topology_queries);
criterion_main!(benches);
