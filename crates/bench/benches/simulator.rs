//! Criterion benchmark: raw simulator cycle rate.
//!
//! Measures how fast the phit-level engine advances a loaded network, in simulated
//! cycles per second, for both flow-control disciplines.  This is the figure of merit
//! that determines how long the paper's figures take to regenerate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dragonfly_core::{ExperimentSpec, FlowControlKind, RoutingKind, TrafficKind};
use dragonfly_routing::{AdaptiveParams, Olm};
use dragonfly_sim::Simulation;
use std::time::Duration;

fn prepared_simulation(flow: FlowControlKind, load: f64) -> dragonfly_sim::Simulation {
    let mut spec = ExperimentSpec::new(2);
    spec.flow_control = flow;
    spec.routing = RoutingKind::Olm;
    if flow == FlowControlKind::Wormhole {
        // OLM needs VCT; use RLM for the wormhole variant.
        spec.routing = RoutingKind::Rlm;
    }
    spec.traffic = TrafficKind::Uniform;
    spec.offered_load = load;
    let mut sim = spec.build_simulation();
    // Warm the network up so the benchmark measures loaded steady-state cycles.
    sim.network_mut()
        .set_injection(Some(dragonfly_traffic::BernoulliInjection::new(
            load,
            spec.flow_control.packet_size(),
        )));
    sim.run_cycles(2_000);
    sim
}

fn bench_cycle_rate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_cycle_rate");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    for (name, flow, load) in [
        ("vct_load0.2", FlowControlKind::Vct, 0.2),
        ("vct_load0.6", FlowControlKind::Vct, 0.6),
        // Near saturation: source queues back up and almost every router and
        // link is busy every cycle — the regime where arena reuse and the
        // fixed-capacity rings carry the most traffic per cycle.
        ("vct_load0.9", FlowControlKind::Vct, 0.9),
        ("wormhole_load0.2", FlowControlKind::Wormhole, 0.2),
    ] {
        let mut sim = prepared_simulation(flow, load);
        group.bench_with_input(BenchmarkId::new("run_100_cycles", name), &(), |b, _| {
            b.iter(|| sim.run_cycles(100));
        });
    }
    // The same loaded VCT point with every probe instrument enabled at the
    // default stride — paired with `vct_load0.2` above, this pins the probe
    // overhead in BENCH_history.jsonl (the hooks are branch-on-None when off
    // and preallocated-index writes when on, so the gap should stay small).
    let mut sim = prepared_simulation(FlowControlKind::Vct, 0.2);
    sim.install_probes(dragonfly_core::ProbeConfig::full(64));
    group.bench_with_input(
        BenchmarkId::new("run_100_cycles", "vct_load0.2_probed"),
        &(),
        |b, _| {
            b.iter(|| sim.run_cycles(100));
        },
    );
    // And the same point with the online anomaly detectors armed on top of the
    // full instrument set — the third leg of the probe-overhead pair, pinning
    // the detector stepping cost (integer window math once per sample).
    let mut sim = prepared_simulation(FlowControlKind::Vct, 0.2);
    sim.install_probes(dragonfly_core::ProbeConfig::full_active(64));
    group.bench_with_input(
        BenchmarkId::new("run_100_cycles", "vct_load0.2_detectors"),
        &(),
        |b, _| {
            b.iter(|| sim.run_cycles(100));
        },
    );
    // And the full instrument set plus the delay-attribution ledger — paired
    // with `vct_load0.2_probed`, this pins the ledger's fold cost (six
    // histogram increments per delivered packet; the engine-side stamps are
    // unconditional and already inside every point above).
    let mut sim = prepared_simulation(FlowControlKind::Vct, 0.2);
    sim.install_probes(dragonfly_core::ProbeConfig {
        delay: true,
        ..dragonfly_core::ProbeConfig::full(64)
    });
    group.bench_with_input(
        BenchmarkId::new("run_100_cycles", "vct_load0.2_delay"),
        &(),
        |b, _| {
            b.iter(|| sim.run_cycles(100));
        },
    );
    group.finish();
}

/// Burst-drain cycle rate: the paper's burst-consumption protocol preloads
/// every source queue at once, so the network runs at maximum occupancy while
/// the backlog drains — peak pressure on the packet arena (allocation at the
/// injectors, frees at the ejectors, every cycle) and on the VC rings.  The
/// burst is topped up whenever the backlog runs low so every iteration
/// measures the loaded regime.
fn bench_burst_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("burst_drain_cycle_rate");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::Uniform;
    let mut sim = spec.build_simulation();
    sim.network_mut().preload_burst(50);
    // Let the initial injection transient pass so iterations see the steady
    // drain, not the first-cycle stampede.
    sim.run_cycles(500);
    group.bench_with_input(
        BenchmarkId::new("run_100_cycles", "preload_burst50"),
        &(),
        |b, _| {
            b.iter(|| {
                let net = sim.network();
                if net.stats.total_generated - net.stats.total_delivered < 500 {
                    sim.network_mut().preload_burst(50);
                }
                sim.run_cycles(100)
            });
        },
    );
    group.finish();
}

/// The h = 8 residual: the paper-scale machine (16 512 nodes, ~64 k links)
/// where the struct-of-arrays link fabric earns its keep — the active-set
/// sweep walks the fabric's parallel arrays in index order instead of chasing
/// per-link heap objects.  Construction and warm-up happen once, outside the
/// measured closure, so the point tracks steady-state cycle cost only; it
/// feeds BENCH_history.jsonl and the bench_gate regression check like every
/// other point.  Iterations are short (10 cycles) because one h = 8 cycle is
/// ~4 orders of magnitude more work than one h = 2 cycle.
fn bench_fabric_soa(c: &mut Criterion) {
    let mut group = c.benchmark_group("fabric_soa");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let mut spec = ExperimentSpec::new(8);
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::Uniform;
    spec.offered_load = 0.2;
    let mut sim = spec.build_simulation();
    sim.network_mut()
        .set_injection(Some(dragonfly_traffic::BernoulliInjection::new(
            spec.offered_load,
            spec.flow_control.packet_size(),
        )));
    // Same warm-up as the recorded phase profile (results/
    // fabric_soa_phase_profile.md): enough for traffic to reach every group.
    sim.run_cycles(300);
    group.bench_with_input(
        BenchmarkId::new("run_10_cycles", "h8_olm_load0.2"),
        &(),
        |b, _| b.iter(|| sim.run_cycles(10)),
    );
    group.finish();
}

/// Head-to-head of the monomorphized engine (`Simulation<Olm>`) against the
/// type-erased engine (`Simulation<Box<dyn RoutingAlgorithm>>`) on the same OLM
/// low-load configuration — the case where active-set scheduling and static
/// dispatch matter most, since almost every router and link is idle each cycle.
fn bench_dispatch_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_path_cycle_rate");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));

    let low_load_spec = || {
        let mut spec = ExperimentSpec::new(2);
        spec.routing = RoutingKind::Olm;
        spec.traffic = TrafficKind::Uniform;
        spec.offered_load = 0.05;
        spec
    };
    fn warm<R: dragonfly_sim::RoutingAlgorithm>(
        sim: &mut Simulation<R>,
        load: f64,
        packet_size: usize,
    ) {
        sim.network_mut()
            .set_injection(Some(dragonfly_traffic::BernoulliInjection::new(
                load,
                packet_size,
            )));
        sim.run_cycles(2_000);
    }

    let spec = low_load_spec();
    let mut static_sim = Simulation::with_routing(
        spec.sim_config(),
        Olm::new(AdaptiveParams::with_threshold(spec.threshold)),
        spec.traffic.build(&spec.sim_config().params),
    );
    warm(
        &mut static_sim,
        spec.offered_load,
        spec.flow_control.packet_size(),
    );
    group.bench_with_input(
        BenchmarkId::new("run_100_cycles", "static_olm_load0.05"),
        &(),
        |b, _| b.iter(|| static_sim.run_cycles(100)),
    );

    let spec = low_load_spec();
    let mut dyn_sim = spec.build_simulation();
    warm(
        &mut dyn_sim,
        spec.offered_load,
        spec.flow_control.packet_size(),
    );
    group.bench_with_input(
        BenchmarkId::new("run_100_cycles", "dyn_olm_load0.05"),
        &(),
        |b, _| b.iter(|| dyn_sim.run_cycles(100)),
    );

    group.finish();
}

criterion_group!(
    benches,
    bench_cycle_rate,
    bench_burst_drain,
    bench_fabric_soa,
    bench_dispatch_paths
);
criterion_main!(benches);
