//! CI validation of the active-layer emitters (json feature only): a forced
//! anomaly run must produce a Perfetto trace that a real JSON parser would
//! accept and a run manifest that round-trips through its own reader.

#![cfg(feature = "json")]

use dragonfly_core::{ExperimentSpec, ProbeConfig, RoutingKind, RunManifest, TrafficKind};
use dragonfly_stats::validate_json;

/// Minimal routing under saturating ADVG+1 with a 100 % collapse threshold:
/// any delivered deficit at all trips the collapse detector.
fn forced_trip_run() -> (ExperimentSpec, ProbeConfig) {
    let mut spec = ExperimentSpec::new(2);
    spec.routing = RoutingKind::Minimal;
    spec.traffic = TrafficKind::AdversarialGlobal(1);
    spec.offered_load = 0.8;
    spec.seed = 23;
    spec.warmup = 300;
    spec.measure = 600;
    spec.drain = 900;
    let mut probes = ProbeConfig::full_active(64);
    probes.detect.window = 4;
    probes.detect.collapse_pct = 100;
    probes.detect.min_window_injected = 16;
    (spec, probes)
}

#[test]
fn trace_and_manifest_survive_a_real_json_parser() {
    let (spec, probes) = forced_trip_run();
    let (report, probe) = spec.run_probed(probes);
    assert!(
        !probe.trips().is_empty(),
        "the forced-anomaly run must trip, or the validation below is vacuous"
    );

    // The Perfetto trace is syntactically valid JSON.
    let trace = probe.trace().render();
    validate_json(&trace).expect("trace.json must parse as JSON");
    assert!(trace.contains("\"throughput_collapse\""));

    // The manifest is valid JSON and round-trips through its narrow reader.
    let manifest = spec.manifest_with_report("forced_trip", &report);
    let files = vec!["forced_trip_trigger.jsonl".to_string()];
    let text = manifest.to_json(probe.config(), &files);
    validate_json(&text).expect("manifest.json must parse as JSON");
    let (m2, p2, f2) = RunManifest::from_json(&text).expect("manifest must round-trip");
    assert_eq!(m2, manifest);
    assert_eq!(&p2, probe.config());
    assert_eq!(f2, files);

    // Every line of the trigger log is itself a JSON object.
    let mut jsonl = Vec::new();
    probe.write_trigger_jsonl(&mut jsonl).unwrap();
    let jsonl = String::from_utf8(jsonl).unwrap();
    assert!(jsonl.lines().count() >= 2, "trips plus the trailer line");
    for line in jsonl.lines() {
        validate_json(line).expect("every trigger line must parse as JSON");
    }
}
