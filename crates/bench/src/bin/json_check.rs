//! Validate emitted JSON artifacts (json feature only): each file argument
//! must pass the full RFC 8259 syntax check, `*_manifest.json` files must
//! additionally round-trip through [`RunManifest::from_json`], and `*.jsonl`
//! files are validated line by line.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --features json --bin json_check -- \
//!     results/run_trace.json results/run_manifest.json results/run_trigger.jsonl
//! ```
//!
//! Exit status 0 when every file validates; the first failure prints the file
//! and the parse error and exits 1.  CI runs this over the detector smoke
//! run's trace/manifest/trigger output.

use dragonfly_core::RunManifest;
use dragonfly_stats::validate_json;

fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    if path.ends_with(".jsonl") {
        for (i, line) in text.lines().enumerate() {
            validate_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        }
    } else {
        validate_json(&text)?;
    }
    if path.ends_with("_manifest.json") {
        let (manifest, probe, files) =
            RunManifest::from_json(&text).ok_or("manifest does not round-trip")?;
        // The reader parses what the writer emits: re-emission is an identity.
        let reemitted = manifest.to_json(&probe, &files);
        if reemitted != text {
            return Err("manifest re-emission differs from the original".to_string());
        }
    }
    Ok(())
}

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: json_check <file.json|file.jsonl> ...");
        std::process::exit(2);
    }
    for path in &files {
        match check(path) {
            Ok(()) => println!("ok {path}"),
            Err(e) => {
                eprintln!("json_check: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
