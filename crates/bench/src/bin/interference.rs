//! Workload interference study at configurable scale: an ADVG+1 aggressor job and a
//! uniform victim job interleaved over every router, compared across routing
//! mechanisms with per-job latency/throughput breakdowns.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin interference -- --h 4
//! ```
//!
//! The aggressor drives each group's +1 global channel at ~96 % of its saturation
//! point, so minimal routing starves the victim while the adaptive mechanisms
//! divert around the hot channels.  The per-mechanism points are independent and run
//! in parallel through the sweep runner (`--jobs N`, `--sequential`).  One CSV row
//! per (mechanism, job, phase).
//!
//! With `--probe` each mechanism's point additionally writes its probe output
//! set (`interference_<mechanism>_{series,flight,heatmap,...}`) — the link/VC
//! heatmap localizes exactly which global channels the aggressor saturates.

use dragonfly_bench::{file_slug, write_workload_phase_csv, HarnessArgs};
use dragonfly_core::{ExperimentSpec, FlowControlKind, RoutingKind, TrafficKind, WorkloadSpec};
use dragonfly_topology::DragonflyParams;

fn main() {
    let args = HarnessArgs::from_env();
    args.reject_json("interference");
    let params = DragonflyParams::new(args.h);
    // Saturation of the +1 channel: nodes_per_group/2 aggressor nodes share one
    // global link, so load ≈ 0.96 · 2/nodes_per_group saturates it.
    let aggressor_load = 0.96 * 2.0 / params.nodes_per_group() as f64;
    let victim_load = 0.1;
    let workload = WorkloadSpec::interference(params.num_nodes(), 1, aggressor_load, victim_load);
    eprintln!(
        "interference study: {} on {} nodes (h = {})",
        workload.label(),
        params.num_nodes(),
        args.h
    );

    let mechanisms = [
        RoutingKind::Minimal,
        RoutingKind::Piggybacking,
        RoutingKind::Par62,
        RoutingKind::Rlm,
        RoutingKind::Olm,
    ];
    let specs: Vec<ExperimentSpec> = mechanisms
        .iter()
        .map(|&routing| {
            let mut spec = args.base_spec(FlowControlKind::Vct);
            spec.routing = routing;
            spec.traffic = TrafficKind::Workload(workload.clone());
            spec
        })
        .collect();
    let runner = args.runner("interference");
    let reports = match &args.probe {
        Some(probes) => {
            let pairs = runner.run_workloads_probed(&specs, probes);
            pairs
                .into_iter()
                .zip(&specs)
                .map(|((report, probe), spec)| {
                    let prefix = format!("interference_{}", file_slug(spec.routing.name()));
                    args.write_probe(
                        &probe,
                        &prefix,
                        &spec.manifest_with_report(&prefix, &report.aggregate),
                    );
                    report
                })
                .collect()
        }
        None => runner.run_workloads(&specs),
    };

    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "routing", "job", "avg_lat", "p99_lat", "acc_load", "inj_load"
    );
    for report in &reports {
        assert!(
            !report.aggregate.deadlock_detected,
            "{} deadlocked",
            report.aggregate.routing
        );
        for job in &report.jobs {
            println!(
                "{:<12} {:>12} {:>14.1} {:>14.1} {:>12.4} {:>12.4}",
                report.aggregate.routing,
                job.name,
                job.avg_latency_cycles,
                job.p99_latency_cycles,
                job.accepted_load,
                job.injected_load
            );
        }
    }

    let path = args.csv_path("interference.csv");
    let entries: Vec<(String, &dragonfly_core::WorkloadReport)> = reports
        .iter()
        .map(|r| (r.aggregate.routing.clone(), r))
        .collect();
    write_workload_phase_csv(&path, "routing", &entries).expect("cannot write CSV");
    println!("wrote {}", path.display());
}
