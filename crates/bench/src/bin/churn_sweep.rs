//! Churn sweep: mechanism × fragmentation variant × aggressor load, each point a
//! full dynamic-schedule run (jobs arriving, waiting, departing, re-placed).
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin churn_sweep -- --h 2
//! ```
//!
//! Every point runs the `fragmentation_trace` scenario: fillers pack the machine,
//! churn at one quarter of the run frees nodes, and an aggressor/victim pair is
//! placed into the free set — contiguously on an emptied machine (`fresh`) or
//! seeded-randomly into churn-made holes (`frag`).  `--loads` gives the aggressor
//! loads in phits/(node·cycle) (the scattered job-scoped ADVG+1 pattern puts
//! roughly `2 × load` phits/cycle on each +1 global channel, so loads around 0.5
//! straddle saturation).  One CSV row per (mechanism, trace, aggressor load, job)
//! with the lifecycle columns; `--json FILE` additionally emits one structured
//! JSON object per point when built with `--features json`.

use dragonfly_bench::{file_slug, write_workload_job_csv, HarnessArgs};
use dragonfly_core::{churn_sweep, ChurnSweep, FlowControlKind, RoutingKind, WorkloadReport};
use dragonfly_sched::scenarios::fragmentation_trace;
use dragonfly_topology::DragonflyParams;

fn main() {
    let mut args = HarnessArgs::from_env();
    // A `--json` on a feature-less build is a hard error before paying for the sweep.
    #[cfg(not(feature = "json"))]
    if args.json_out.is_some() {
        eprintln!(
            "--json requires the structured-emission feature; rebuild with \
             `cargo run -p dragonfly_bench --features json --bin churn_sweep`"
        );
        std::process::exit(2);
    }
    if !args.loads_explicit {
        // Churn points are whole-trace runs; default to a compact load set that
        // straddles the scattered aggressor's saturation point.
        args.loads = if args.quick {
            vec![0.75]
        } else {
            vec![0.3, 0.5, 0.75, 0.9]
        };
    }
    let params = DragonflyParams::new(args.h);
    let run_cycles = args.measure;
    let churn_cycle = run_cycles / 4;
    let victim_load = 0.1;

    let mut base = args.base_spec(FlowControlKind::Vct);
    base.measure = run_cycles + (run_cycles / 4).max(1_000); // horizon past departure
    base.drain = args.drain;

    let mut traces = Vec::with_capacity(2 * args.loads.len());
    for &load in &args.loads {
        for fragmented in [false, true] {
            let mut trace = fragmentation_trace(
                &params,
                fragmented,
                load,
                victim_load,
                churn_cycle,
                run_cycles,
                args.seed,
            );
            trace.name = format!("{}@{load:.2}", trace.name);
            traces.push(trace);
        }
    }
    let sweep = ChurnSweep {
        base,
        mechanisms: vec![
            RoutingKind::Minimal,
            RoutingKind::Piggybacking,
            RoutingKind::Olm,
        ],
        traces,
    };
    let specs = churn_sweep(&sweep);
    eprintln!(
        "churn sweep: {} mechanisms x {} traces = {} schedule runs (h = {}, {} nodes, \
         churn at {churn_cycle}, horizon {})",
        sweep.mechanisms.len(),
        sweep.traces.len(),
        specs.len(),
        args.h,
        params.num_nodes(),
        sweep.base.measure,
    );
    let runner = args.runner("churn sweep");
    let reports = match &args.probe {
        Some(probes) => runner
            .run_workloads_probed(&specs, probes)
            .into_iter()
            .zip(&specs)
            .map(|((report, probe), spec)| {
                let trace = spec.traffic.churn().expect("churn traffic");
                let prefix = format!(
                    "churn_{}_{}",
                    file_slug(spec.routing.name()),
                    file_slug(&trace.name)
                );
                args.write_probe(
                    &probe,
                    &prefix,
                    &spec.manifest_with_report(&prefix, &report.aggregate),
                );
                report
            })
            .collect(),
        None => runner.run_workloads(&specs),
    };

    println!(
        "{:<12} {:<12} {:>11} {:>11} {:>12} {:>10} {:>9}",
        "routing", "trace", "victim avg", "victim p99", "victim load", "aggr load", "slowdown"
    );
    let mut entries: Vec<(String, &WorkloadReport)> = Vec::with_capacity(reports.len());
    for (spec, report) in specs.iter().zip(reports.iter()) {
        assert!(
            !report.aggregate.deadlock_detected,
            "{} deadlocked",
            report.aggregate.routing
        );
        let trace = spec.traffic.churn().expect("churn traffic");
        let victim = report.job("victim").expect("victim job");
        let aggressor = report.job("aggressor").expect("aggressor job");
        println!(
            "{:<12} {:<12} {:>11.1} {:>11.1} {:>12.4} {:>10.4} {:>9.3}",
            report.aggregate.routing,
            trace.name,
            victim.avg_latency_cycles,
            victim.p99_latency_cycles,
            victim.accepted_load,
            aggressor.accepted_load,
            victim
                .lifecycle
                .and_then(|l| l.slowdown)
                .unwrap_or(f64::NAN),
        );
        entries.push((
            format!("{},{}", report.aggregate.routing, trace.name),
            report,
        ));
    }

    let path = args.csv_path("churn_sweep.csv");
    write_workload_job_csv(&path, "routing,trace", &entries).expect("cannot write CSV");
    println!("wrote {}", path.display());

    #[cfg(feature = "json")]
    if let Some(json_path) = &args.json_out {
        write_json(json_path, &entries);
    }
}

/// Emit one structured JSON object per sweep point (jsonl), via the report types'
/// `ToJson` impls.
#[cfg(feature = "json")]
fn write_json(path: &std::path::Path, entries: &[(String, &WorkloadReport)]) {
    use serde_json::{ToJson, Value};
    let mut out = String::new();
    for (prefix, report) in entries {
        let (routing, trace) = prefix.split_once(',').expect("prefix is routing,trace");
        let line = Value::object([
            ("routing", Value::Str(routing.to_string())),
            ("trace", Value::Str(trace.to_string())),
            ("report", report.to_json()),
        ]);
        out.push_str(&line.dump());
        out.push('\n');
    }
    std::fs::write(path, out).expect("cannot write JSON");
    println!("wrote {}", path.display());
}
