//! Regenerates Figure 6 of the paper (Virtual Cut-Through):
//!
//! * **6a** — maximum accepted load at an offered load of 1 phit/(node·cycle) as the
//!   percentage of ADVG+h traffic in an ADVG+h / ADVL+1 mix varies from 0 to 100 %,
//! * **6b** — burst consumption time: every node sends a fixed number of packets with
//!   the same traffic mix and the harness reports the cycles needed to drain the
//!   network.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin fig6
//! ```

use dragonfly_bench::{file_slug, HarnessArgs};
use dragonfly_core::{
    mix_sweep, sweep::paper_mix_percentages, CsvWriter, ExperimentSpec, FlowControlKind, MixSweep,
    RoutingKind,
};

/// The mix point's ADVG percentage (every fig6 spec carries mixed traffic).
fn global_pct(spec: &ExperimentSpec) -> u32 {
    match spec.traffic {
        dragonfly_core::TrafficKind::Mixed {
            global_fraction, ..
        } => (global_fraction * 100.0).round() as u32,
        _ => unreachable!("mix sweep produces mixed traffic only"),
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    args.reject_json("fig6");
    let mechanisms = vec![
        RoutingKind::Par62,
        RoutingKind::Olm,
        RoutingKind::Rlm,
        RoutingKind::Piggybacking,
    ];
    let mut base = args.base_spec(FlowControlKind::Vct);
    base.offered_load = 1.0;
    let sweep = MixSweep {
        base,
        mechanisms,
        global_percentages: if args.quick {
            vec![0, 50, 100]
        } else {
            paper_mix_percentages()
        },
        global_offset: args.h,
        local_offset: 1,
    };
    let specs = mix_sweep(&sweep);

    // Figure 6a: steady-state throughput of the mix.
    eprintln!(
        "figure 6a: {} simulations (h = {}, VCT)",
        specs.len(),
        args.h
    );
    let reports = match &args.probe {
        Some(probes) => args
            .runner("figure 6a")
            .run_steady_probed(&specs, probes)
            .into_iter()
            .zip(&specs)
            .map(|((report, probe), spec)| {
                let prefix = format!(
                    "fig6a_{}_mix{}",
                    file_slug(spec.routing.name()),
                    global_pct(spec)
                );
                args.write_probe(
                    &probe,
                    &prefix,
                    &spec.manifest_with_report(&prefix, &report),
                );
                report
            })
            .collect(),
        None => args.runner("figure 6a").run_steady(&specs),
    };
    println!("\n== Figure 6a: throughput vs. % of global traffic (VCT) ==");
    println!("{:<10} {:>10} {:>12}", "routing", "global%", "accepted");
    let path = args.csv_path("fig6a_mix_throughput.csv");
    let mut csv = CsvWriter::create(&path, "routing,global_pct,accepted_load,avg_latency")
        .expect("cannot create CSV");
    for (spec, report) in specs.iter().zip(reports.iter()) {
        let pct = global_pct(spec);
        println!(
            "{:<10} {:>10} {:>12.4}",
            report.routing, pct, report.accepted_load
        );
        csv.fields([
            report.routing.clone(),
            pct.to_string(),
            format!("{:.4}", report.accepted_load),
            format!("{:.2}", report.avg_latency_cycles),
        ])
        .expect("cannot write CSV row");
    }
    csv.flush().expect("cannot flush CSV");
    println!("wrote {}", path.display());

    // Figure 6b: burst consumption time.  The paper sends 1000 packets per node at
    // h = 8; scale the burst with the network size so smaller models stay comparable.
    let packets_per_node: u64 = if args.quick {
        20
    } else {
        1000 / (8 / args.h.min(8)) as u64
    };
    let max_cycles = 4_000_000;
    eprintln!(
        "figure 6b: burst of {packets_per_node} packets/node, {} simulations",
        specs.len()
    );
    let batch_reports = match &args.probe {
        Some(probes) => args
            .runner("figure 6b")
            .run_batches_probed(&specs, packets_per_node, max_cycles, probes)
            .into_iter()
            .zip(&specs)
            .map(|((report, probe), spec)| {
                let prefix = format!(
                    "fig6b_{}_mix{}",
                    file_slug(spec.routing.name()),
                    global_pct(spec)
                );
                // Batch reports carry no peak telemetry; the manifest peaks stay 0.
                args.write_probe(&probe, &prefix, &spec.manifest(&prefix));
                report
            })
            .collect(),
        None => args
            .runner("figure 6b")
            .run_batches(&specs, packets_per_node, max_cycles),
    };
    println!("\n== Figure 6b: burst consumption time (VCT) ==");
    println!("{:<10} {:>10} {:>16}", "routing", "global%", "cycles");
    let path = args.csv_path("fig6b_burst_consumption.csv");
    let mut csv = CsvWriter::create(&path, "routing,global_pct,consumption_cycles,timed_out")
        .expect("cannot create CSV");
    for (spec, report) in specs.iter().zip(batch_reports.iter()) {
        let pct = global_pct(spec);
        println!(
            "{:<10} {:>10} {:>16}",
            report.routing, pct, report.consumption_cycles
        );
        csv.fields([
            report.routing.clone(),
            pct.to_string(),
            report.consumption_cycles.to_string(),
            report.timed_out.to_string(),
        ])
        .expect("cannot write CSV row");
    }
    csv.flush().expect("cannot flush CSV");
    println!("wrote {}", path.display());
}
