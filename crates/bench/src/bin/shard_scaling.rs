//! Strong-scaling study of the sharded single-simulation engine.
//!
//! One steady-state point is run on the sequential engine and then on the
//! sharded engine (`dragonfly_shard`) with shards ∈ {1, 2, 4, 8}, at
//! h ∈ {4, 6, 8} by default.  For every combination the binary
//!
//! * verifies the sharded report is **byte-identical** to the sequential one
//!   (the engine's cardinal invariant — a mismatch aborts the run), and
//! * records the wall-clock time and the speedup over the sequential engine.
//!
//! Output: `results/shard_scaling.csv` (`h,shards,wall_ms,speedup,identical`;
//! the `shards = 0` row is the sequential-engine baseline) and, with
//! `--json FILE`, one `{"name": "shard_scaling/h4/shards2", "ns_per_iter": …}`
//! object per point in the same shape the bench-trend tooling
//! (`parse_bench_entries`, `bench_gate`, `BENCH_history.jsonl`) consumes.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin shard_scaling
//! cargo run --release -p dragonfly_bench --bin shard_scaling -- --quick
//! cargo run --release -p dragonfly_bench --bin shard_scaling -- --json shard.jsonl
//! ```
//!
//! `--quick` shrinks to h ∈ {2, 4} with short windows for CI smoke runs.
//! Points are timed one at a time (`--jobs` does not apply here: the shards
//! themselves are the parallelism being measured).

use dragonfly_bench::HarnessArgs;
use dragonfly_core::{CsvWriter, ExperimentSpec, FlowControlKind, RoutingKind, TrafficKind};
use std::io::Write;
use std::time::Instant;

/// Shard counts swept at every scale (clamped to cores and groups below).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn point_spec(args: &HarnessArgs, h: usize) -> ExperimentSpec {
    let mut spec = args.base_spec(FlowControlKind::Vct);
    spec.h = h;
    spec.routing = RoutingKind::Olm;
    spec.traffic = TrafficKind::Uniform;
    spec.offered_load = 0.2;
    // Fixed, deliberately modest windows: the study measures engine scaling,
    // not steady-state convergence.  --warmup/--measure override as usual.
    if args.warmup == HarnessArgs::default().warmup {
        spec.warmup = 300;
    }
    if args.measure == HarnessArgs::default().measure {
        spec.measure = 600;
        spec.drain = 600;
    }
    spec
}

fn main() {
    let args = HarnessArgs::from_env();
    let scales: Vec<usize> = if args.quick {
        vec![2, 4]
    } else {
        vec![4, 6, 8]
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let path = args.csv_path("shard_scaling.csv");
    let mut csv =
        CsvWriter::create(&path, "h,shards,wall_ms,speedup,identical").expect("cannot create CSV");
    let mut json_entries: Vec<(String, f64)> = Vec::new();

    println!("== Sharded-engine strong scaling (OLM, UN, load 0.2) ==");
    println!(
        "{:>3} {:>7} {:>10} {:>9} {:>10}",
        "h", "shards", "wall_ms", "speedup", "identical"
    );
    for &h in &scales {
        let spec = point_spec(&args, h);
        let groups = 2 * h * h + 1;

        // Sequential-engine baseline (the `shards = 0` CSV row).
        let t0 = Instant::now();
        let baseline = spec.run();
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(
            !baseline.deadlock_detected,
            "baseline deadlocked at h = {h}"
        );
        println!(
            "{h:>3} {:>7} {seq_ms:>10.1} {:>9} {:>10}",
            "seq", "1.00", "-"
        );
        csv.row(&format!("{h},0,{seq_ms:.3},1.0,true"))
            .expect("CSV write failed");
        json_entries.push((format!("shard_scaling/h{h}/seq"), seq_ms * 1e6));

        // With --probe*, one extra sequential run outside the timed region
        // carries the probes, so the scaling numbers stay untouched while the
        // probe output (and its report-identity guarantee) is still exercised.
        if let Some(probes) = &args.probe {
            let (report, probe) = spec.run_probed(probes.clone());
            assert!(
                report == baseline,
                "probed report diverged from the unprobed baseline at h = {h} — probes \
                 must be passive"
            );
            let prefix = format!("shard_scaling_h{h}");
            args.write_probe(
                &probe,
                &prefix,
                &spec.manifest_with_report(&prefix, &report),
            );
        }

        for &shards in &SHARD_COUNTS {
            if shards > groups || shards > cores {
                continue;
            }
            let t0 = Instant::now();
            let report = spec.run_sharded(shards);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let identical = report == baseline;
            let speedup = seq_ms / ms;
            println!("{h:>3} {shards:>7} {ms:>10.1} {speedup:>9.2} {identical:>10}");
            csv.row(&format!("{h},{shards},{ms:.3},{speedup:.4},{identical}"))
                .expect("CSV write failed");
            json_entries.push((format!("shard_scaling/h{h}/shards{shards}"), ms * 1e6));
            assert!(
                identical,
                "sharded report diverged from the sequential engine at h = {h}, \
                 {shards} shards — this is an engine bug"
            );
        }
    }
    csv.flush().expect("CSV flush failed");
    println!("\nwrote {path:?} ({} rows)", csv.rows_written());

    // Bench-trend JSON: one object per line, the shape `parse_bench_entries`
    // and the BENCH_history.jsonl tooling read.
    if let Some(json_path) = &args.json_out {
        let mut file = std::fs::File::create(json_path).expect("cannot create JSON output");
        for (name, ns) in &json_entries {
            writeln!(
                file,
                "{{\"name\":\"{name}\",\"ns_per_iter\":{ns:.0},\"iters\":1}}"
            )
            .expect("JSON write failed");
        }
        println!("wrote {json_path:?} ({} entries)", json_entries.len());
    }
}
