//! Workload-interference sweep: placement policy × aggressor load, the first
//! grid-shaped workload consumer of the sweep runner (in the style of caminos-rs
//! experiment launchers).
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin interference_sweep -- --h 2
//! ```
//!
//! Each grid point is an aggressor/victim workload: the aggressor job drives
//! ADVG+1 at a fraction of the +1 global channel's saturation load (taken from
//! `--loads`, default 0.05 … 1.0), the victim job drives job-uniform traffic at a
//! fixed low load, and both jobs use the point's placement policy.  Contiguous
//! placement packs each job into its own groups; round-robin interleaves them over
//! every router; random scatters them.  The victim columns quantify how much
//! protection each (mechanism, placement) combination buys as aggressor pressure
//! rises.  One CSV row per (mechanism, placement, aggressor load, job, phase).

use dragonfly_bench::{file_slug, write_workload_phase_csv, HarnessArgs};
use dragonfly_core::{
    interference_sweep, FlowControlKind, InterferenceSweep, PlacementPolicy, RoutingKind,
    WorkloadReport,
};
use dragonfly_topology::DragonflyParams;

fn main() {
    let args = HarnessArgs::from_env();
    args.reject_json("interference_sweep");
    let params = DragonflyParams::new(args.h);
    // The +1 global channel saturates at 2/nodes_per_group phits/(node·cycle)
    // under ADVG+1 from half of the machine; --loads scales relative to that.
    let saturation = 2.0 / params.nodes_per_group() as f64;
    let sweep = InterferenceSweep {
        base: args.base_spec(FlowControlKind::Vct),
        mechanisms: vec![
            RoutingKind::Minimal,
            RoutingKind::Piggybacking,
            RoutingKind::Olm,
        ],
        placements: vec![
            PlacementPolicy::Contiguous,
            PlacementPolicy::RoundRobinRouters,
            PlacementPolicy::Random { seed: args.seed },
        ],
        aggressor_loads: args.loads.iter().map(|f| f * saturation).collect(),
        aggressor_offset: 1,
        victim_load: 0.1,
    };
    let specs = interference_sweep(&sweep);
    eprintln!(
        "interference sweep: {} mechanisms x {} placements x {} loads = {} workload points \
         (h = {}, {} nodes)",
        sweep.mechanisms.len(),
        sweep.placements.len(),
        sweep.aggressor_loads.len(),
        specs.len(),
        args.h,
        params.num_nodes()
    );
    let runner = args.runner("interference sweep");
    let reports = match &args.probe {
        Some(probes) => runner
            .run_workloads_probed(&specs, probes)
            .into_iter()
            .zip(&specs)
            .map(|((report, probe), spec)| {
                let workload = spec.traffic.workload().expect("workload traffic");
                let prefix = format!(
                    "intsweep_{}_{}_{}",
                    file_slug(spec.routing.name()),
                    file_slug(workload.jobs[0].placement.name()),
                    file_slug(&format!("{:.4}", workload.jobs[0].phases[0].offered_load)),
                );
                args.write_probe(
                    &probe,
                    &prefix,
                    &spec.manifest_with_report(&prefix, &report.aggregate),
                );
                report
            })
            .collect(),
        None => runner.run_workloads(&specs),
    };

    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>12} {:>12}",
        "routing", "place", "aggr_load", "victim_avg", "victim_p99", "victim_load"
    );
    let mut entries: Vec<(String, &WorkloadReport)> = Vec::with_capacity(reports.len());
    for (spec, report) in specs.iter().zip(reports.iter()) {
        assert!(
            !report.aggregate.deadlock_detected,
            "{} deadlocked",
            report.aggregate.routing
        );
        // Recover the grid coordinates from the spec's own workload, so the CSV
        // cannot drift from the sweep construction order.
        let workload = spec.traffic.workload().expect("workload traffic");
        let placement = workload.jobs[0].placement.name();
        let aggressor_load = workload.jobs[0].phases[0].offered_load;
        let victim = report.job("victim").expect("victim job");
        println!(
            "{:<12} {:>6} {:>10.4} {:>12.1} {:>12.1} {:>12.4}",
            report.aggregate.routing,
            placement,
            aggressor_load,
            victim.avg_latency_cycles,
            victim.p99_latency_cycles,
            victim.accepted_load
        );
        entries.push((
            format!(
                "{},{},{:.4}",
                report.aggregate.routing, placement, aggressor_load
            ),
            report,
        ));
    }

    let path = args.csv_path("interference_sweep.csv");
    write_workload_phase_csv(&path, "routing,placement,aggressor_load", &entries)
        .expect("cannot write CSV");
    println!("wrote {}", path.display());
}
