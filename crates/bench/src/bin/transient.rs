//! Transient pattern-switch study at configurable scale: one machine-wide job flips
//! from uniform traffic to ADVG+h halfway through the measurement window, and the
//! per-phase breakdown exposes each mechanism's adaptation.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin transient -- --h 4
//! ```
//!
//! The per-mechanism points are independent and run in parallel through the sweep
//! runner (`--jobs N`, `--sequential`).  One CSV row per (mechanism, phase);
//! phase 0 is UN, phase 1 is ADVG+h.

use dragonfly_bench::{file_slug, write_workload_phase_csv, HarnessArgs};
use dragonfly_core::{ExperimentSpec, FlowControlKind, RoutingKind, TrafficKind, WorkloadSpec};
use dragonfly_topology::DragonflyParams;

fn main() {
    let args = HarnessArgs::from_env();
    args.reject_json("transient");
    let params = DragonflyParams::new(args.h);
    let load = 0.25;
    let switch_cycle = args.warmup + args.measure / 2;
    let workload = WorkloadSpec::transient(params.num_nodes(), load, switch_cycle, args.h);
    eprintln!(
        "transient study: {} on {} nodes (switch at cycle {switch_cycle})",
        workload.label(),
        params.num_nodes()
    );

    let mechanisms = [
        RoutingKind::Minimal,
        RoutingKind::Piggybacking,
        RoutingKind::Par62,
        RoutingKind::Rlm,
        RoutingKind::Olm,
    ];
    let specs: Vec<ExperimentSpec> = mechanisms
        .iter()
        .map(|&routing| {
            let mut spec = args.base_spec(FlowControlKind::Vct);
            spec.routing = routing;
            spec.traffic = TrafficKind::Workload(workload.clone());
            spec
        })
        .collect();
    let runner = args.runner("transient");
    let reports = match &args.probe {
        Some(probes) => runner
            .run_workloads_probed(&specs, probes)
            .into_iter()
            .zip(&specs)
            .map(|((report, probe), spec)| {
                let prefix = format!("transient_{}", file_slug(spec.routing.name()));
                args.write_probe(
                    &probe,
                    &prefix,
                    &spec.manifest_with_report(&prefix, &report.aggregate),
                );
                report
            })
            .collect(),
        None => runner.run_workloads(&specs),
    };

    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "routing", "phase", "pattern", "inj_load", "acc_load", "avg_lat", "p99"
    );
    for report in &reports {
        assert!(
            !report.aggregate.deadlock_detected,
            "{} deadlocked",
            report.aggregate.routing
        );
        for phase in &report.jobs[0].phases {
            println!(
                "{:<12} {:>6} {:>10} {:>12.4} {:>12.4} {:>12.1} {:>10.1}",
                report.aggregate.routing,
                phase.phase,
                phase.pattern,
                phase.injected_load,
                phase.accepted_load,
                phase.avg_latency_cycles,
                phase.p99_latency_cycles
            );
        }
    }

    let path = args.csv_path("transient.csv");
    let entries: Vec<(String, &dragonfly_core::WorkloadReport)> = reports
        .iter()
        .map(|r| (r.aggregate.routing.clone(), r))
        .collect();
    write_workload_phase_csv(&path, "routing", &entries).expect("cannot write CSV");
    println!("wrote {}", path.display());
}
