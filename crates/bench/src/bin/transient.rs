//! Transient pattern-switch study at configurable scale: one machine-wide job flips
//! from uniform traffic to ADVG+h halfway through the measurement window, and the
//! per-phase breakdown exposes each mechanism's adaptation.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin transient -- --h 4
//! ```
//!
//! One CSV row per (mechanism, phase); phase 0 is UN, phase 1 is ADVG+h.

use dragonfly_bench::HarnessArgs;
use dragonfly_core::{
    CsvWriter, FlowControlKind, PhaseReport, RoutingKind, TrafficKind, WorkloadSpec,
};
use dragonfly_topology::DragonflyParams;

fn main() {
    let args = HarnessArgs::from_env();
    let params = DragonflyParams::new(args.h);
    let load = 0.25;
    let switch_cycle = args.warmup + args.measure / 2;
    let workload = WorkloadSpec::transient(params.num_nodes(), load, switch_cycle, args.h);
    eprintln!(
        "transient study: {} on {} nodes (switch at cycle {switch_cycle})",
        workload.label(),
        params.num_nodes()
    );

    let mechanisms = [
        RoutingKind::Minimal,
        RoutingKind::Piggybacking,
        RoutingKind::Par62,
        RoutingKind::Rlm,
        RoutingKind::Olm,
    ];
    let path = args.csv_path("transient.csv");
    let header = format!("routing,{}", PhaseReport::csv_header());
    let mut csv = CsvWriter::create(&path, &header).expect("cannot create CSV");

    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>12} {:>12} {:>10}",
        "routing", "phase", "pattern", "inj_load", "acc_load", "avg_lat", "p99"
    );
    for routing in mechanisms {
        let mut spec = args.base_spec(FlowControlKind::Vct);
        spec.routing = routing;
        spec.traffic = TrafficKind::Workload(workload.clone());
        let report = spec.run_workload();
        assert!(
            !report.aggregate.deadlock_detected,
            "{routing:?} deadlocked"
        );
        for phase in &report.jobs[0].phases {
            println!(
                "{:<12} {:>6} {:>10} {:>12.4} {:>12.4} {:>12.1} {:>10.1}",
                report.aggregate.routing,
                phase.phase,
                phase.pattern,
                phase.injected_load,
                phase.accepted_load,
                phase.avg_latency_cycles,
                phase.p99_latency_cycles
            );
            csv.row(&format!("{},{}", report.aggregate.routing, phase.csv_row()))
                .expect("cannot write CSV row");
        }
    }
    csv.flush().expect("cannot flush CSV");
    println!("wrote {}", path.display());
}
