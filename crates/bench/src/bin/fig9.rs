//! Regenerates Figure 9 of the paper (Wormhole): throughput (9a) and burst
//! consumption time (9b) of the ADVG+h / ADVL+1 traffic mix.  The paper uses 89
//! packets of 80 phits per node so that the payload matches the VCT experiment of
//! Figure 6b; the burst size here is scaled the same way.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin fig9
//! ```

use dragonfly_bench::{file_slug, HarnessArgs};
use dragonfly_core::{
    mix_sweep, sweep::paper_mix_percentages, CsvWriter, ExperimentSpec, FlowControlKind, MixSweep,
    RoutingKind,
};

/// The mix point's ADVG percentage (every fig9 spec carries mixed traffic).
fn global_pct(spec: &ExperimentSpec) -> u32 {
    match spec.traffic {
        dragonfly_core::TrafficKind::Mixed {
            global_fraction, ..
        } => (global_fraction * 100.0).round() as u32,
        _ => unreachable!("mix sweep produces mixed traffic only"),
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    args.reject_json("fig9");
    // OLM is omitted: it requires VCT (the sweep would drop it anyway).
    let mechanisms = vec![
        RoutingKind::Par62,
        RoutingKind::Rlm,
        RoutingKind::Piggybacking,
    ];
    let mut base = args.base_spec(FlowControlKind::Wormhole);
    base.offered_load = 1.0;
    let sweep = MixSweep {
        base,
        mechanisms,
        global_percentages: if args.quick {
            vec![0, 50, 100]
        } else {
            paper_mix_percentages()
        },
        global_offset: args.h,
        local_offset: 1,
    };
    let specs = mix_sweep(&sweep);

    // Figure 9a.
    eprintln!(
        "figure 9a: {} simulations (h = {}, Wormhole)",
        specs.len(),
        args.h
    );
    let reports = match &args.probe {
        Some(probes) => args
            .runner("figure 9a")
            .run_steady_probed(&specs, probes)
            .into_iter()
            .zip(&specs)
            .map(|((report, probe), spec)| {
                let prefix = format!(
                    "fig9a_{}_mix{}",
                    file_slug(spec.routing.name()),
                    global_pct(spec)
                );
                args.write_probe(
                    &probe,
                    &prefix,
                    &spec.manifest_with_report(&prefix, &report),
                );
                report
            })
            .collect(),
        None => args.runner("figure 9a").run_steady(&specs),
    };
    println!("\n== Figure 9a: throughput vs. % of global traffic (Wormhole) ==");
    println!("{:<10} {:>10} {:>12}", "routing", "global%", "accepted");
    let path = args.csv_path("fig9a_mix_throughput_wh.csv");
    let mut csv = CsvWriter::create(&path, "routing,global_pct,accepted_load,avg_latency")
        .expect("cannot create CSV");
    for (spec, report) in specs.iter().zip(reports.iter()) {
        let pct = global_pct(spec);
        println!(
            "{:<10} {:>10} {:>12.4}",
            report.routing, pct, report.accepted_load
        );
        csv.fields([
            report.routing.clone(),
            pct.to_string(),
            format!("{:.4}", report.accepted_load),
            format!("{:.2}", report.avg_latency_cycles),
        ])
        .expect("cannot write CSV row");
    }
    csv.flush().expect("cannot flush CSV");
    println!("wrote {}", path.display());

    // Figure 9b: equivalent payload to the VCT burst (1000 × 8 phits → ~100 × 80
    // phits at paper scale), scaled down with h.
    let vct_packets: u64 = if args.quick {
        20
    } else {
        1000 / (8 / args.h.min(8)) as u64
    };
    let packets_per_node = ((vct_packets * 8) as f64 / 80.0).round().max(1.0) as u64;
    let max_cycles = 4_000_000;
    eprintln!(
        "figure 9b: burst of {packets_per_node} packets/node (80 phits each), {} simulations",
        specs.len()
    );
    let batch_reports = match &args.probe {
        Some(probes) => args
            .runner("figure 9b")
            .run_batches_probed(&specs, packets_per_node, max_cycles, probes)
            .into_iter()
            .zip(&specs)
            .map(|((report, probe), spec)| {
                let prefix = format!(
                    "fig9b_{}_mix{}",
                    file_slug(spec.routing.name()),
                    global_pct(spec)
                );
                // Batch reports carry no peak telemetry; the manifest peaks stay 0.
                args.write_probe(&probe, &prefix, &spec.manifest(&prefix));
                report
            })
            .collect(),
        None => args
            .runner("figure 9b")
            .run_batches(&specs, packets_per_node, max_cycles),
    };
    println!("\n== Figure 9b: burst consumption time (Wormhole) ==");
    println!("{:<10} {:>10} {:>16}", "routing", "global%", "cycles");
    let path = args.csv_path("fig9b_burst_consumption_wh.csv");
    let mut csv = CsvWriter::create(&path, "routing,global_pct,consumption_cycles,timed_out")
        .expect("cannot create CSV");
    for (spec, report) in specs.iter().zip(batch_reports.iter()) {
        let pct = global_pct(spec);
        println!(
            "{:<10} {:>10} {:>16}",
            report.routing, pct, report.consumption_cycles
        );
        csv.fields([
            report.routing.clone(),
            pct.to_string(),
            report.consumption_cycles.to_string(),
            report.timed_out.to_string(),
        ])
        .expect("cannot write CSV row");
    }
    csv.flush().expect("cannot flush CSV");
    println!("wrote {}", path.display());
}
