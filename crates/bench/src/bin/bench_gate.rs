//! CI bench regression gate: compare a fresh `CRITERION_SHIM_JSON` run against a
//! recorded baseline and fail when any benchmark slowed down by more than the
//! allowed fraction.
//!
//! ```text
//! CRITERION_SHIM_JSON=bench_run.jsonl cargo bench -p dragonfly_bench --bench simulator
//! cargo run --release -p dragonfly_bench --bin bench_gate -- \
//!     --baseline BENCH_baseline.json --current bench_run.jsonl --max-regression 0.20
//! ```
//!
//! Absolute ns/iter numbers only compare meaningfully on the same machine class,
//! so `--history BENCH_history.jsonl` switches the baseline to the *last entry of
//! the run history* (in CI: the previous run on the same runner class, since the
//! gate runs before the current run is appended).  While the history holds fewer
//! than two entries — only the checked-in seed, recorded on a developer machine —
//! the comparison is printed informationally and the gate passes, so the first CI
//! run cannot go permanently red against foreign hardware's numbers.
//!
//! Benchmarks present in the baseline but missing from the current run are reported
//! as a warning; the gate fails when a regression exceeds the limit or when *no*
//! baseline benchmark matched at all (which would make the gate vacuous).

use dragonfly_bench::parse_bench_entries;
use std::process::ExitCode;

struct GateArgs {
    baseline: String,
    history: Option<String>,
    current: String,
    max_regression: f64,
}

fn parse_args() -> Result<GateArgs, String> {
    let mut baseline = "BENCH_baseline.json".to_string();
    let mut history = None;
    let mut current = "bench_run.jsonl".to_string();
    let mut max_regression = 0.20;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--baseline" => baseline = value(&mut i)?,
            "--history" => history = Some(value(&mut i)?),
            "--current" => current = value(&mut i)?,
            "--max-regression" => {
                max_regression = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--max-regression: {e}"))?
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`\nusage: bench_gate [--baseline FILE] \
                     [--history FILE] [--current FILE] [--max-regression FRAC]"
                ))
            }
        }
        i += 1;
    }
    Ok(GateArgs {
        baseline,
        history,
        current,
        max_regression,
    })
}

/// Pick the baseline entries: the last history entry when `--history` is given and
/// holds at least two runs (same-machine comparison), otherwise the `--baseline`
/// file.  The boolean is true when the result may come from a different machine
/// class and the gate should only inform, not fail.
fn select_baseline(args: &GateArgs) -> (String, Vec<(String, f64)>, bool) {
    if let Some(path) = &args.history {
        let lines: Vec<String> = std::fs::read_to_string(path)
            .unwrap_or_default()
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(str::to_string)
            .collect();
        if lines.len() >= 2 {
            let entries = parse_bench_entries(lines.last().expect("non-empty"));
            if !entries.is_empty() {
                return (format!("{path} (last entry)"), entries, false);
            }
        }
        eprintln!(
            "bench_gate: {path} has fewer than two usable runs; comparing informationally \
             against {} (recorded on a different machine class)",
            args.baseline
        );
        let text = std::fs::read_to_string(&args.baseline).unwrap_or_default();
        return (args.baseline.clone(), parse_bench_entries(&text), true);
    }
    let text = std::fs::read_to_string(&args.baseline).unwrap_or_default();
    (args.baseline.clone(), parse_bench_entries(&text), false)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let current_text = match std::fs::read_to_string(&args.current) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_gate: cannot read {}: {e}", args.current);
            return ExitCode::from(2);
        }
    };
    let current = parse_bench_entries(&current_text);
    let (baseline_name, baseline, informational) = select_baseline(&args);
    if baseline.is_empty() {
        eprintln!("bench_gate: no benchmarks found in {baseline_name}");
        return ExitCode::from(2);
    }

    println!(
        "bench_gate: limit +{:.0}% vs {baseline_name} ({} baseline benchmarks{})",
        args.max_regression * 100.0,
        baseline.len(),
        if informational {
            ", informational only"
        } else {
            ""
        }
    );
    println!(
        "{:<62} {:>12} {:>12} {:>8}  verdict",
        "benchmark", "baseline", "current", "ratio"
    );
    let mut matched = 0usize;
    let mut failures = 0usize;
    for (name, base_ns) in &baseline {
        let Some((_, cur_ns)) = current.iter().find(|(n, _)| n == name) else {
            println!(
                "{name:<62} {base_ns:>12.0} {:>12} {:>8}  MISSING (warning)",
                "-", "-"
            );
            continue;
        };
        matched += 1;
        let ratio = cur_ns / base_ns;
        let verdict = if ratio > 1.0 + args.max_regression {
            failures += 1;
            "FAIL"
        } else {
            "ok"
        };
        println!("{name:<62} {base_ns:>12.0} {cur_ns:>12.0} {ratio:>8.3}  {verdict}");
    }

    if informational {
        println!(
            "bench_gate: informational comparison only ({matched} matched, \
             {failures} over the limit) — gate passes until same-machine history exists"
        );
        return ExitCode::SUCCESS;
    }
    if matched == 0 {
        eprintln!("bench_gate: no baseline benchmark matched the current run");
        return ExitCode::FAILURE;
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} benchmark(s) regressed beyond +{:.0}%",
            args.max_regression * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all {matched} matched benchmarks within the limit");
    ExitCode::SUCCESS
}
