//! Regenerates Table I of the paper: the allowed/forbidden 2-hop combinations of the
//! parity-sign restriction used by RLM.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin table1
//! ```
//!
//! The table is a closed-form property of the parity-sign rule, not a sweep, so this
//! is the one harness binary with no simulation points; it accepts the common flags
//! (`--out DIR`) and writes `table1_parity_sign.csv` next to the figure CSVs.

use dragonfly_bench::HarnessArgs;
use dragonfly_core::CsvWriter;
use dragonfly_routing::{LinkClass, ParitySignTable};
use dragonfly_topology::DragonflyParams;

fn main() {
    let args = HarnessArgs::from_env();
    args.reject_json("table1");
    if args.probe.is_some() {
        // Every other binary honors --probe*; Table I is a closed-form property
        // of the parity-sign rule, so there is no simulation to attach probes to.
        eprintln!("note: table1 is closed-form (no simulation), --probe* flags have no effect");
    }
    let table = ParitySignTable::new();
    println!("Table I: possible hop combinations for local misrouting within supernodes");
    println!("{:<12} {:<12} {:<10}", "first hop", "second hop", "allowed");
    println!("{}", "-".repeat(36));
    let path = args.csv_path("table1_parity_sign.csv");
    let mut csv =
        CsvWriter::create(&path, "first_hop,second_hop,allowed").expect("cannot create CSV");
    for (first, second, allowed) in table.rows() {
        println!(
            "{:<12} {:<12} {:<10}",
            first.label(),
            second.label(),
            if allowed { "YES" } else { "NO" }
        );
        csv.fields([
            first.label(),
            second.label(),
            if allowed { "yes" } else { "no" },
        ])
        .expect("cannot write CSV row");
    }
    csv.flush().expect("cannot flush CSV");

    // The capacity argument of the paper: at least h-1 two-hop detours for any pair.
    println!();
    for h in [2usize, 4, 8] {
        let params = DragonflyParams::new(h);
        println!(
            "h = {h}: minimum number of allowed 2-hop detours between any router pair = {} \
             (paper guarantees at least h-1 = {})",
            table.min_detours(&params),
            h - 1
        );
    }

    // The worked example of Figure 2 (h = 4): detours from router 5 to router 0.
    let detours = table.allowed_intermediates(5, 0, 8);
    println!(
        "\nFigure 2 example (h = 4): allowed intermediate routers from 5 to 0: {detours:?} \
         (the detour through router 1 is forbidden: {} -> {})",
        LinkClass::of_hop(5, 1).label(),
        LinkClass::of_hop(1, 0).label()
    );
    println!("wrote {}", path.display());
}
