//! Regenerates Figures 10 and 11 of the paper: the misrouting-threshold selection
//! study for RLM under Virtual Cut-Through.  Figure 10 sweeps the threshold under
//! uniform traffic, Figure 11 under ADVG+1; the paper picks 45 % as the trade-off.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin fig10_11
//! ```

use dragonfly_bench::{file_slug, HarnessArgs};
use dragonfly_core::{
    sweep::paper_thresholds, threshold_sweep, CsvWriter, FlowControlKind, RoutingKind,
    ThresholdSweep, TrafficKind,
};

fn run_figure(args: &HarnessArgs, traffic: TrafficKind, figure: &str, csv_name: &str) {
    let mut base = args.base_spec(FlowControlKind::Vct);
    base.routing = RoutingKind::Rlm;
    base.traffic = traffic;
    let sweep = ThresholdSweep {
        base,
        thresholds: if args.quick {
            vec![0.30, 0.45, 0.60]
        } else {
            paper_thresholds()
        },
        loads: args.loads.clone(),
    };
    let specs = threshold_sweep(&sweep);
    eprintln!(
        "figure {figure}: {} simulations (RLM, VCT, h = {})",
        specs.len(),
        args.h
    );
    let runner = args.runner(format!("figure {figure}"));
    let reports = match &args.probe {
        Some(probes) => runner
            .run_steady_probed(&specs, probes)
            .into_iter()
            .zip(&specs)
            .map(|((report, probe), spec)| {
                let prefix = format!(
                    "fig{figure}_th{}_{}",
                    file_slug(&format!("{:.2}", spec.threshold)),
                    file_slug(&format!("{:.2}", spec.offered_load)),
                );
                args.write_probe(
                    &probe,
                    &prefix,
                    &spec.manifest_with_report(&prefix, &report),
                );
                report
            })
            .collect(),
        None => runner.run_steady(&specs),
    };

    println!(
        "\n== Figure {figure}: RLM threshold sweep ({}) ==",
        specs[0].traffic.name()
    );
    println!(
        "{:<10} {:>8} {:>10} {:>12}",
        "threshold", "offered", "accepted", "avg_lat"
    );
    let path = args.csv_path(csv_name);
    let mut csv = CsvWriter::create(
        &path,
        "threshold,offered_load,accepted_load,avg_latency,p99_latency",
    )
    .expect("cannot create CSV");
    for (spec, report) in specs.iter().zip(reports.iter()) {
        println!(
            "{:<10.2} {:>8.3} {:>10.4} {:>12.1}",
            spec.threshold, report.offered_load, report.accepted_load, report.avg_latency_cycles
        );
        csv.fields([
            format!("{:.2}", spec.threshold),
            format!("{:.3}", report.offered_load),
            format!("{:.4}", report.accepted_load),
            format!("{:.2}", report.avg_latency_cycles),
            format!("{:.2}", report.p99_latency_cycles),
        ])
        .expect("cannot write CSV row");
    }
    csv.flush().expect("cannot flush CSV");
    println!("wrote {}", path.display());
}

fn main() {
    let args = HarnessArgs::from_env();
    args.reject_json("fig10_11");
    run_figure(
        &args,
        TrafficKind::Uniform,
        "10",
        "fig10_rlm_threshold_un.csv",
    );
    run_figure(
        &args,
        TrafficKind::AdversarialGlobal(1),
        "11",
        "fig11_rlm_threshold_advg1.csv",
    );
}
