//! Regenerates Figures 7 and 8 of the paper: average latency (Fig. 7) and accepted
//! load (Fig. 8) versus offered load under Wormhole flow control (80-phit packets, 8
//! flits of 10 phits), for UN, ADVG+1 and ADVG+h traffic.  OLM is excluded because it
//! requires Virtual Cut-Through.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin fig7_8 -- --pattern all
//! ```

use dragonfly_bench::{file_slug, print_series, HarnessArgs};
use dragonfly_core::{
    load_sweep, CsvWriter, FlowControlKind, LoadSweep, RoutingKind, SimReport, TrafficKind,
};

fn mechanisms_for(pattern: &str) -> Vec<RoutingKind> {
    let baseline = if pattern == "un" {
        RoutingKind::Minimal
    } else {
        RoutingKind::Valiant
    };
    vec![
        RoutingKind::Par62,
        RoutingKind::Rlm,
        baseline,
        RoutingKind::Piggybacking,
    ]
}

fn traffic_for(pattern: &str, h: usize) -> TrafficKind {
    match pattern {
        "un" => TrafficKind::Uniform,
        "advg1" => TrafficKind::AdversarialGlobal(1),
        "advgh" => TrafficKind::AdversarialGlobal(h),
        other => panic!("unknown pattern `{other}` (expected un, advg1, advgh)"),
    }
}

fn run_pattern(args: &HarnessArgs, pattern: &str) -> Vec<SimReport> {
    let mut base = args.base_spec(FlowControlKind::Wormhole);
    base.traffic = traffic_for(pattern, args.h);
    let sweep = LoadSweep {
        base,
        mechanisms: mechanisms_for(pattern),
        loads: args.loads.clone(),
    };
    let specs = load_sweep(&sweep);
    eprintln!(
        "figure 7/8 [{}]: {} simulations (h = {}, Wormhole)",
        pattern,
        specs.len(),
        args.h
    );
    let runner = args.runner(format!("figure 7/8 [{pattern}]"));
    match &args.probe {
        Some(probes) => runner
            .run_steady_probed(&specs, probes)
            .into_iter()
            .zip(&specs)
            .map(|((report, probe), spec)| {
                let prefix = format!(
                    "fig7_8_{pattern}_{}_{}",
                    file_slug(spec.routing.name()),
                    file_slug(&format!("{:.2}", spec.offered_load)),
                );
                args.write_probe(
                    &probe,
                    &prefix,
                    &spec.manifest_with_report(&prefix, &report),
                );
                report
            })
            .collect(),
        None => runner.run_steady(&specs),
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    args.reject_json("fig7_8");
    let patterns: Vec<&str> = match args.pattern.as_str() {
        "all" => vec!["un", "advg1", "advgh"],
        p => vec![p],
    };
    for pattern in patterns {
        let reports = run_pattern(&args, pattern);
        print_series(&format!("Figure 7/8 ({pattern}, Wormhole)"), &reports);
        let path = args.csv_path(&format!("fig7_8_{pattern}.csv"));
        let mut csv = CsvWriter::create(&path, SimReport::csv_header())
            .expect("cannot create the CSV output");
        for r in &reports {
            csv.row(&r.csv_row()).expect("cannot write a CSV row");
        }
        csv.flush().expect("cannot flush the CSV output");
        println!("wrote {}", path.display());
    }
}
