//! Regenerates Figures 4 and 5 of the paper: average latency (Fig. 4) and accepted
//! load (Fig. 5) versus offered load under Virtual Cut-Through flow control, for
//! uniform (UN), ADVG+1 and ADVG+h traffic.
//!
//! ```text
//! cargo run --release -p dragonfly_bench --bin fig4_5 -- --pattern all
//! ```
//!
//! One CSV per traffic pattern is written to the output directory
//! (`fig4_5_<pattern>.csv`), with one row per (mechanism, offered load) point.
//! With `--probe` each point additionally writes its probe output set
//! (`fig4_5_<pattern>_<mechanism>_<load>_{series,flight,heatmap,...}`) next to
//! the CSVs; the reports are byte-identical to the unprobed run.

use dragonfly_bench::{file_slug, print_series, HarnessArgs};
use dragonfly_core::{
    load_sweep, CsvWriter, FlowControlKind, LoadSweep, RoutingKind, SimReport, TrafficKind,
};

fn mechanisms_for(pattern: &str) -> Vec<RoutingKind> {
    // The paper plots Minimal only for UN and Valiant only for the adversarial
    // patterns; PB and the three in-transit adaptive mechanisms appear everywhere.
    let baseline = if pattern == "un" {
        RoutingKind::Minimal
    } else {
        RoutingKind::Valiant
    };
    vec![
        RoutingKind::Par62,
        RoutingKind::Olm,
        RoutingKind::Rlm,
        baseline,
        RoutingKind::Piggybacking,
    ]
}

fn traffic_for(pattern: &str, h: usize) -> TrafficKind {
    match pattern {
        "un" => TrafficKind::Uniform,
        "advg1" => TrafficKind::AdversarialGlobal(1),
        "advgh" => TrafficKind::AdversarialGlobal(h),
        other => panic!("unknown pattern `{other}` (expected un, advg1, advgh)"),
    }
}

fn run_pattern(args: &HarnessArgs, pattern: &str) -> Vec<SimReport> {
    let mut base = args.base_spec(FlowControlKind::Vct);
    base.traffic = traffic_for(pattern, args.h);
    let sweep = LoadSweep {
        base,
        mechanisms: mechanisms_for(pattern),
        loads: args.loads.clone(),
    };
    let specs = load_sweep(&sweep);
    eprintln!(
        "figure 4/5 [{}]: {} simulations (h = {}, VCT)",
        pattern,
        specs.len(),
        args.h
    );
    let runner = args.runner(format!("figure 4/5 [{pattern}]"));
    match &args.probe {
        Some(probes) => {
            let pairs = runner.run_steady_probed(&specs, probes);
            pairs
                .into_iter()
                .zip(&specs)
                .map(|((report, probe), spec)| {
                    let prefix = format!(
                        "fig4_5_{pattern}_{}_{}",
                        file_slug(spec.routing.name()),
                        file_slug(&format!("{:.2}", spec.offered_load)),
                    );
                    args.write_probe(
                        &probe,
                        &prefix,
                        &spec.manifest_with_report(&prefix, &report),
                    );
                    report
                })
                .collect()
        }
        None => runner.run_steady(&specs),
    }
}

fn main() {
    let args = HarnessArgs::from_env();
    args.reject_json("fig4_5");
    let patterns: Vec<&str> = match args.pattern.as_str() {
        "all" => vec!["un", "advg1", "advgh"],
        p => vec![p],
    };
    for pattern in patterns {
        let reports = run_pattern(&args, pattern);
        print_series(&format!("Figure 4/5 ({pattern}, VCT)"), &reports);
        let path = args.csv_path(&format!("fig4_5_{pattern}.csv"));
        let mut csv = CsvWriter::create(&path, SimReport::csv_header())
            .expect("cannot create the CSV output");
        for r in &reports {
            csv.row(&r.csv_row()).expect("cannot write a CSV row");
        }
        csv.flush().expect("cannot flush the CSV output");
        println!("wrote {}", path.display());
    }
}
