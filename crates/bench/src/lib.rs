//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the paper.  They
//! all accept the same command-line switches, parsed by [`HarnessArgs`]:
//!
//! ```text
//! --h <N>          Dragonfly parameter h (default 4; the paper uses 8)
//! --full           paper scale: h = 8 and the paper's cycle counts
//! --quick          reduced scale for smoke runs (h = 2, short windows, fewer points)
//! --warmup <N>     warm-up cycles
//! --measure <N>    measurement cycles
//! --seed <N>       base random seed
//! --jobs <N>       worker threads for the sweep (default: all cores; --threads is
//!                  an alias)
//! --shards <N>     shard every simulation point across N threads (byte-identical
//!                  reports; sweep workers are capped so workers × shards ≤ cores)
//! --sequential     run the sweep points in order on one thread (same results)
//! --out <DIR>      directory for CSV output (default: results/)
//! --loads a,b,c    explicit offered-load points
//! --pattern <P>    traffic pattern selector where applicable (un, advg1, advgh, all)
//! --json <FILE>    structured JSON output (churn_sweep and shard_scaling only,
//!                  needs the `json` feature for churn_sweep)
//! --probe          install observability probes and write their output files
//!                  next to the CSVs (all simulation binaries; table1 is
//!                  closed-form and has nothing to probe)
//! --probe-stride N   time-series sampling stride in cycles (default 64; implies
//!                    --probe)
//! --probe-flight N   sample ~1/N packets into the flight recorder (0 = off;
//!                    implies --probe)
//! --probe-heatmap N  per-(link, VC) heatmap window in cycles (0 = off; implies
//!                    --probe)
//! --probe-top N      routers in the per-router time-series cut (implies --probe)
//! --probe-detect     arm the online anomaly detectors (implies --probe); trips
//!                    land in <prefix>_trigger.jsonl plus a black-box bundle
//!                    around the first trip
//! --probe-detect-window N    detector evaluation window in samples (implies
//!                            --probe-detect)
//! --probe-detect-collapse P  throughput-collapse threshold: trip when delivered
//!                            < P% of injected over a window (implies
//!                            --probe-detect)
//! --probe-detect-stall N     credit-stall run length in samples (implies
//!                            --probe-detect)
//! --probe-trace    export detector trips as Chrome trace_event / Perfetto JSON
//!                  (<prefix>_trace.json; implies --probe)
//! --probe-delay    fold every delivered packet's delay decomposition into the
//!                  per-component ledger and emit <prefix>_delay.csv/.jsonl
//!                  (implies --probe)
//! ```
//!
//! Every sweep executes through [`dragonfly_core::SweepRunner`] (built by
//! [`HarnessArgs::runner`]): the points run on a worker pool with deterministic
//! result ordering and a progress/ETA line on stderr; `--sequential` falls back to
//! a plain in-order loop that produces byte-identical CSVs.

use dragonfly_core::{
    DetectorConfig, ExperimentSpec, FlowControlKind, ProbeConfig, RunManifest, SimReport,
    SweepRunner, WorkloadReport,
};
use std::path::{Path, PathBuf};

/// Parsed command-line arguments shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dragonfly parameter `h`.
    pub h: usize,
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Drain cycles.
    pub drain: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (`None` = all cores).
    pub threads: Option<usize>,
    /// Shards per simulation point (1 = the sequential engine).
    pub shards: usize,
    /// Run sweep points sequentially on the calling thread.
    pub sequential: bool,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Offered-load points (figures 4/5/7/8/10/11).
    pub loads: Vec<f64>,
    /// Whether `--loads` was passed explicitly (presets must not clobber it).
    pub loads_explicit: bool,
    /// Traffic-pattern selector (figures 4/5/7/8): `un`, `advg1`, `advgh` or `all`.
    pub pattern: String,
    /// Quick mode (CI smoke runs).
    pub quick: bool,
    /// Structured JSON output file (binaries built with the `json` feature).
    pub json_out: Option<PathBuf>,
    /// Observability probe configuration (`--probe*` flags); `None` = off.
    pub probe: Option<ProbeConfig>,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            h: 4,
            warmup: 6_000,
            measure: 8_000,
            drain: 8_000,
            seed: 1,
            threads: None,
            shards: 1,
            sequential: false,
            out_dir: PathBuf::from("results"),
            loads: dragonfly_core::sweep::default_loads(),
            loads_explicit: false,
            pattern: "all".to_string(),
            quick: false,
            json_out: None,
            probe: None,
        }
    }
}

impl HarnessArgs {
    /// Parse from an explicit argument list (excluding the program name).
    pub fn parse_from<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Self::default();
        let args: Vec<String> = args.into_iter().map(|a| a.as_ref().to_string()).collect();
        let mut i = 0;
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", args[*i - 1]))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--h" => out.h = value(&mut i)?.parse().map_err(|e| format!("--h: {e}"))?,
                "--warmup" => {
                    out.warmup = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--warmup: {e}"))?
                }
                "--measure" => {
                    out.measure = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--measure: {e}"))?;
                    out.drain = out.measure;
                }
                "--drain" => {
                    out.drain = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--drain: {e}"))?
                }
                "--seed" => {
                    out.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?
                }
                "--jobs" | "--threads" => {
                    out.threads = Some(value(&mut i)?.parse().map_err(|e| format!("--jobs: {e}"))?)
                }
                "--shards" => {
                    out.shards = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?;
                    if out.shards == 0 {
                        return Err("--shards must be at least 1".to_string());
                    }
                }
                "--sequential" => out.sequential = true,
                "--probe" => {
                    out.probe.get_or_insert_with(ProbeConfig::default);
                }
                "--probe-stride" => {
                    let stride = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--probe-stride: {e}"))?;
                    if stride == 0 {
                        return Err("--probe-stride must be at least 1 cycle".to_string());
                    }
                    out.probe.get_or_insert_with(ProbeConfig::default).stride = stride;
                }
                "--probe-flight" => {
                    out.probe
                        .get_or_insert_with(ProbeConfig::default)
                        .flight_every = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--probe-flight: {e}"))?;
                }
                "--probe-heatmap" => {
                    out.probe
                        .get_or_insert_with(ProbeConfig::default)
                        .heatmap_window = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--probe-heatmap: {e}"))?;
                }
                "--probe-top" => {
                    out.probe.get_or_insert_with(ProbeConfig::default).top_k = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--probe-top: {e}"))?;
                }
                "--probe-detect" => {
                    armed_detect(&mut out.probe);
                }
                "--probe-detect-window" => {
                    let window = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--probe-detect-window: {e}"))?;
                    if window == 0 {
                        return Err("--probe-detect-window must be at least 1 sample".to_string());
                    }
                    armed_detect(&mut out.probe).window = window;
                }
                "--probe-detect-collapse" => {
                    armed_detect(&mut out.probe).collapse_pct = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--probe-detect-collapse: {e}"))?;
                }
                "--probe-detect-stall" => {
                    armed_detect(&mut out.probe).stall_samples = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--probe-detect-stall: {e}"))?;
                }
                "--probe-trace" => {
                    out.probe.get_or_insert_with(ProbeConfig::default).trace = true;
                }
                "--probe-delay" => {
                    out.probe.get_or_insert_with(ProbeConfig::default).delay = true;
                }
                "--out" => out.out_dir = PathBuf::from(value(&mut i)?),
                "--json" => out.json_out = Some(PathBuf::from(value(&mut i)?)),
                "--pattern" => out.pattern = value(&mut i)?,
                "--loads" => {
                    out.loads = value(&mut i)?
                        .split(',')
                        .map(|s| s.trim().parse::<f64>().map_err(|e| format!("--loads: {e}")))
                        .collect::<Result<Vec<_>, _>>()?;
                    out.loads_explicit = true;
                }
                "--full" => {
                    out.h = 8;
                    out.warmup = 20_000;
                    out.measure = 30_000;
                    out.drain = 30_000;
                }
                "--quick" => {
                    out.quick = true;
                    out.h = 2;
                    out.warmup = 1_000;
                    out.measure = 2_000;
                    out.drain = 2_000;
                    if !out.loads_explicit {
                        out.loads = vec![0.1, 0.3, 0.5, 0.8];
                    }
                }
                "--help" | "-h" => return Err(usage()),
                other => return Err(format!("unknown argument `{other}`\n{}", usage())),
            }
            i += 1;
        }
        Ok(out)
    }

    /// Parse from the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The base experiment specification implied by these arguments.
    pub fn base_spec(&self, flow_control: FlowControlKind) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(self.h);
        spec.flow_control = flow_control;
        spec.warmup = self.warmup;
        spec.measure = self.measure;
        spec.drain = self.drain;
        spec.seed = self.seed;
        spec
    }

    /// Ensure the output directory exists and return the path of a CSV file inside it.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("cannot create the output directory");
        self.out_dir.join(name)
    }

    /// The sweep runner implied by these arguments: `--jobs` workers (all cores by
    /// default) or the `--sequential` in-order loop, with progress/ETA on stderr.
    /// `--shards N` shards every point across N threads (byte-identical reports)
    /// under the runner's workers × shards ≤ cores budget.
    pub fn runner(&self, label: impl Into<String>) -> SweepRunner {
        SweepRunner::new(label)
            .jobs(self.threads)
            .shards(self.shards)
            .sequential(self.sequential)
    }

    /// Exit with usage status when `--json` was passed: binaries with no
    /// structured output call this right after parsing, so the flag fails fast
    /// instead of being silently ignored.
    pub fn reject_json(&self, binary: &str) {
        if self.json_out.is_some() {
            eprintln!(
                "--json is not supported by {binary} (only churn_sweep and shard_scaling \
                 emit JSON)"
            );
            std::process::exit(2);
        }
    }

    /// Write a probe recorder's full output set into the output directory with
    /// the given file-name prefix — including the self-describing
    /// `<prefix>_manifest.json` — printing what was written.
    pub fn write_probe(
        &self,
        probe: &dragonfly_core::ProbeRecorder,
        prefix: &str,
        manifest: &RunManifest,
    ) {
        std::fs::create_dir_all(&self.out_dir).expect("cannot create the output directory");
        let files = probe
            .write_all_with_manifest(&self.out_dir, prefix, manifest)
            .expect("cannot write probe output");
        for file in files {
            println!("wrote {}", file.display());
        }
    }
}

/// `--probe-detect*` helper: ensure probes exist and the detectors are armed
/// (idempotently, so later `--probe-detect-*` knobs refine rather than reset).
fn armed_detect(probe: &mut Option<ProbeConfig>) -> &mut DetectorConfig {
    let cfg = probe.get_or_insert_with(ProbeConfig::default);
    if !cfg.detect.enabled() {
        cfg.detect = DetectorConfig::armed();
    }
    &mut cfg.detect
}

/// Lowercased file-name-safe slug of a display label: alphanumerics survive,
/// any other run of characters collapses to a single `-` (so `PAR-6/2` becomes
/// `par-6-2` and `0.30` becomes `0-30`).  Used to build per-point probe file
/// prefixes from mechanism names and loads.
pub fn file_slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.extend(c.to_lowercase());
        } else if !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_string()
}

fn usage() -> String {
    "usage: <figure-binary> [--h N] [--full] [--quick] [--warmup N] [--measure N] \
     [--drain N] [--seed N] [--jobs N] [--shards N] [--sequential] [--out DIR] \
     [--loads a,b,c] [--pattern P] [--json FILE (churn_sweep, shard_scaling)] \
     [--probe] [--probe-stride N] [--probe-flight N] [--probe-heatmap N] \
     [--probe-top N] [--probe-detect] [--probe-detect-window N] \
     [--probe-detect-collapse PCT] [--probe-detect-stall N] [--probe-trace] \
     [--probe-delay]"
        .to_string()
}

/// Extract `(name, ns_per_iter)` pairs from bench JSON: either the pretty-printed
/// `BENCH_baseline.json` (a `benchmarks` array of objects) or the one-object-per-line
/// `CRITERION_SHIM_JSON` output of the vendored criterion shim.
///
/// The workspace has no JSON dependency (the vendored serde is a no-op), so this is
/// a small scanner over the two known shapes: every `"name"` key is paired with the
/// `"ns_per_iter"` key that follows it before the next `"name"`.
pub fn parse_bench_entries(text: &str) -> Vec<(String, f64)> {
    const NAME_KEY: &str = "\"name\"";
    const NS_KEY: &str = "\"ns_per_iter\"";
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(NAME_KEY) {
        rest = &rest[pos + NAME_KEY.len()..];
        let Some((name, after_name)) = json_string_value(rest) else {
            break;
        };
        rest = after_name;
        let scope_end = rest.find(NAME_KEY).unwrap_or(rest.len());
        let Some(key) = rest[..scope_end].find(NS_KEY) else {
            continue;
        };
        if let Some((value, _)) = json_number_value(&rest[key + NS_KEY.len()..]) {
            out.push((name, value));
        }
        rest = &rest[key + NS_KEY.len()..];
    }
    out
}

/// Parse `: "value"` after a JSON key, returning the value and the remaining text.
fn json_string_value(s: &str) -> Option<(String, &str)> {
    let s = s[s.find(':')? + 1..].trim_start();
    let s = s.strip_prefix('"')?;
    let end = s.find('"')?;
    Some((s[..end].to_string(), &s[end + 1..]))
}

/// Parse `: number` after a JSON key, returning the value and the remaining text.
fn json_number_value(s: &str) -> Option<(f64, &str)> {
    let s = s[s.find(':')? + 1..].trim_start();
    let end = s
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(s.len());
    let value = s[..end].parse().ok()?;
    Some((value, &s[end..]))
}

/// Pretty-print a set of steady-state reports as the latency/throughput series of a
/// figure, grouped by mechanism.
pub fn print_series(title: &str, reports: &[SimReport]) {
    println!("\n== {title} ==");
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>12} {:>10} {:>9} {:>9}",
        "routing", "offered", "accepted", "avg_lat", "p99_lat", "hops", "gmis%", "lmis%"
    );
    for r in reports {
        println!(
            "{:<10} {:>8.3} {:>10.4} {:>12.1} {:>12.1} {:>10.2} {:>8.1}% {:>8.1}%",
            r.routing,
            r.offered_load,
            r.accepted_load,
            r.avg_latency_cycles,
            r.p99_latency_cycles,
            r.avg_hops,
            r.global_misroute_fraction * 100.0,
            r.local_misroute_fraction * 100.0
        );
    }
}

/// Write the per-phase CSV shared by the workload binaries: one row per
/// (entry, job, phase), each prefixed with the entry's own columns (at least the
/// routing name; sweep grids add placement/load columns).
///
/// `prefix_header` names the prefix columns (e.g. `"routing"` or
/// `"routing,placement,aggressor_load"`); each entry pairs the matching prefix
/// values with its report.  Returns the number of data rows written.
pub fn write_workload_phase_csv(
    path: &Path,
    prefix_header: &str,
    entries: &[(String, &WorkloadReport)],
) -> std::io::Result<usize> {
    write_prefixed_csv(
        path,
        prefix_header,
        dragonfly_core::PhaseReport::csv_header(),
        entries,
        WorkloadReport::phase_csv_rows,
    )
}

/// Write the per-job CSV of the churn binaries: one row per (entry, job), each
/// prefixed with the entry's own columns and carrying the lifecycle columns
/// (arrival/placed/completion/wait/slowdown).  The job-level sibling of
/// [`write_workload_phase_csv`]; returns the number of data rows written.
pub fn write_workload_job_csv(
    path: &Path,
    prefix_header: &str,
    entries: &[(String, &WorkloadReport)],
) -> std::io::Result<usize> {
    write_prefixed_csv(
        path,
        prefix_header,
        dragonfly_core::JobReport::csv_header(),
        entries,
        WorkloadReport::job_csv_rows,
    )
}

/// Shared body of the workload CSV writers: each entry's rows, prefixed with the
/// entry's own columns.
fn write_prefixed_csv(
    path: &Path,
    prefix_header: &str,
    row_header: &str,
    entries: &[(String, &WorkloadReport)],
    rows: impl Fn(&WorkloadReport) -> Vec<String>,
) -> std::io::Result<usize> {
    use dragonfly_core::CsvWriter;
    let mut csv = CsvWriter::create(path, &format!("{prefix_header},{row_header}"))?;
    for (prefix, report) in entries {
        for row in rows(report) {
            csv.row(&format!("{prefix},{row}"))?;
        }
    }
    csv.flush()?;
    Ok(csv.rows_written())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let args = HarnessArgs::default();
        assert_eq!(args.h, 4);
        assert!(!args.loads.is_empty());
        assert_eq!(args.pattern, "all");
    }

    #[test]
    fn parse_overrides() {
        let args = HarnessArgs::parse_from([
            "--h",
            "3",
            "--warmup",
            "100",
            "--measure",
            "200",
            "--seed",
            "9",
            "--threads",
            "2",
            "--out",
            "/tmp/x",
            "--loads",
            "0.1,0.2",
            "--pattern",
            "advg1",
        ])
        .unwrap();
        assert_eq!(args.h, 3);
        assert_eq!(args.warmup, 100);
        assert_eq!(args.measure, 200);
        assert_eq!(args.drain, 200);
        assert_eq!(args.seed, 9);
        assert_eq!(args.threads, Some(2));
        assert_eq!(args.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(args.loads, vec![0.1, 0.2]);
        assert_eq!(args.pattern, "advg1");
    }

    #[test]
    fn parse_full_and_quick_presets() {
        let full = HarnessArgs::parse_from(["--full"]).unwrap();
        assert_eq!(full.h, 8);
        assert_eq!(full.warmup, 20_000);
        let quick = HarnessArgs::parse_from(["--quick"]).unwrap();
        assert_eq!(quick.h, 2);
        assert!(quick.quick);
        assert!(quick.loads.len() <= 5);
        assert!(!quick.loads_explicit);
        // An explicit --loads survives the --quick preset, in either order.
        for argv in [
            ["--quick", "--loads", "0.3,0.9"],
            ["--loads", "0.3,0.9", "--quick"],
        ] {
            let args = HarnessArgs::parse_from(argv).unwrap();
            assert_eq!(args.loads, vec![0.3, 0.9]);
            assert!(args.loads_explicit);
        }
    }

    #[test]
    fn parse_jobs_and_sequential() {
        let args = HarnessArgs::parse_from(["--jobs", "3", "--sequential"]).unwrap();
        assert_eq!(args.threads, Some(3));
        assert!(args.sequential);
        // --threads stays as an alias for scripts written against the old flag.
        let args = HarnessArgs::parse_from(["--threads", "5"]).unwrap();
        assert_eq!(args.threads, Some(5));
        assert!(!args.sequential);
    }

    #[test]
    fn workload_phase_csv_prefixes_rows() {
        use dragonfly_core::{RoutingKind, TrafficKind, WorkloadSpec};
        let mut spec = ExperimentSpec::new(2);
        spec.routing = RoutingKind::Olm;
        spec.traffic = TrafficKind::Workload(WorkloadSpec::interference(72, 1, 0.3, 0.1));
        spec.warmup = 300;
        spec.measure = 600;
        spec.drain = 600;
        let report = spec.run_workload();
        let dir = std::env::temp_dir().join("dragonfly_bench_phase_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("phases.csv");
        let rows = write_workload_phase_csv(
            &path,
            "routing",
            &[(report.aggregate.routing.clone(), &report)],
        )
        .unwrap();
        assert_eq!(rows, 2, "one row per (job, phase)");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("routing,job,phase,"));
        assert!(content.lines().skip(1).all(|l| l.starts_with("OLM,")));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parse_probe_flags() {
        // No probe flag: probes stay off.
        assert!(HarnessArgs::parse_from(["--h", "2"])
            .unwrap()
            .probe
            .is_none());
        // --probe alone enables the defaults.
        let args = HarnessArgs::parse_from(["--probe"]).unwrap();
        assert_eq!(args.probe, Some(ProbeConfig::default()));
        // Any --probe-* knob implies --probe and composes with the others.
        let args = HarnessArgs::parse_from([
            "--probe-stride",
            "128",
            "--probe-heatmap",
            "256",
            "--probe-flight",
            "0",
            "--probe-top",
            "8",
        ])
        .unwrap();
        let cfg = args.probe.unwrap();
        assert_eq!(cfg.stride, 128);
        assert_eq!(cfg.heatmap_window, 256);
        assert_eq!(cfg.flight_every, 0);
        assert_eq!(cfg.top_k, 8);
        assert!(cfg.heatmap_enabled());
        assert!(!cfg.flight_enabled());
        // A zero stride is rejected at parse time.
        assert!(HarnessArgs::parse_from(["--probe-stride", "0"]).is_err());
    }

    #[test]
    fn parse_detect_and_trace_flags() {
        // --probe alone leaves the detectors off and the trace export off.
        let plain = HarnessArgs::parse_from(["--probe"]).unwrap().probe.unwrap();
        assert!(!plain.detect.enabled());
        assert!(!plain.trace);
        // --probe-detect implies --probe and arms the default detector set.
        let armed = HarnessArgs::parse_from(["--probe-detect"])
            .unwrap()
            .probe
            .unwrap();
        assert_eq!(armed.detect, dragonfly_core::DetectorConfig::armed());
        assert!(!armed.trace);
        // The detect knobs refine the armed defaults instead of resetting them,
        // in any order, and --probe-trace composes.
        let tuned = HarnessArgs::parse_from([
            "--probe-detect-collapse",
            "95",
            "--probe-detect-window",
            "4",
            "--probe-detect-stall",
            "3",
            "--probe-trace",
        ])
        .unwrap()
        .probe
        .unwrap();
        assert_eq!(tuned.detect.collapse_pct, 95);
        assert_eq!(tuned.detect.window, 4);
        assert_eq!(tuned.detect.stall_samples, 3);
        assert_eq!(
            tuned.detect.misroute_pct,
            dragonfly_core::DetectorConfig::armed().misroute_pct
        );
        assert!(tuned.trace);
        assert!(tuned.detect_enabled());
        // A zero window is rejected at parse time.
        assert!(HarnessArgs::parse_from(["--probe-detect-window", "0"]).is_err());
    }

    #[test]
    fn parse_delay_flag() {
        // --probe alone leaves the delay ledger off.
        let plain = HarnessArgs::parse_from(["--probe"]).unwrap().probe.unwrap();
        assert!(!plain.delay_enabled());
        // --probe-delay implies --probe and composes with other knobs.
        let delayed = HarnessArgs::parse_from(["--probe-delay", "--probe-stride", "32"])
            .unwrap()
            .probe
            .unwrap();
        assert!(delayed.delay_enabled());
        assert_eq!(delayed.stride, 32);
    }

    #[test]
    fn file_slug_flattens_display_labels() {
        assert_eq!(file_slug("PAR-6/2"), "par-6-2");
        assert_eq!(file_slug("OLM"), "olm");
        assert_eq!(file_slug("0.30"), "0-30");
        assert_eq!(file_slug("  Minimal  "), "minimal");
    }

    #[test]
    fn parse_rejects_unknown_and_missing() {
        assert!(HarnessArgs::parse_from(["--nope"]).is_err());
        assert!(HarnessArgs::parse_from(["--h"]).is_err());
        assert!(HarnessArgs::parse_from(["--h", "abc"]).is_err());
    }

    #[test]
    fn parse_bench_entries_reads_both_shapes() {
        // One-object-per-line shim output.
        let jsonl = "{\"name\":\"a/b\",\"ns_per_iter\":1500.0,\"iters\":10}\n\
                     {\"name\":\"c/d\",\"ns_per_iter\":2e3,\"iters\":20}\n";
        let entries = parse_bench_entries(jsonl);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a/b");
        assert!((entries[0].1 - 1500.0).abs() < 1e-9);
        assert!((entries[1].1 - 2000.0).abs() < 1e-9);

        // Pretty-printed baseline with unrelated top-level keys.
        let baseline = r#"{
          "recorded": "2026-01-01",
          "notes": "name dropping in prose is fine",
          "benchmarks": [
            { "name": "x/y", "ns_per_iter": 42, "iters": 7 }
          ]
        }"#;
        let entries = parse_bench_entries(baseline);
        assert_eq!(entries, vec![("x/y".to_string(), 42.0)]);

        // An entry without ns_per_iter is skipped, later entries still parse.
        let partial = r#"{"name":"no_ns"} {"name":"ok","ns_per_iter":5}"#;
        assert_eq!(parse_bench_entries(partial), vec![("ok".to_string(), 5.0)]);
    }

    #[test]
    fn base_spec_reflects_args() {
        let args =
            HarnessArgs::parse_from(["--h", "2", "--warmup", "10", "--measure", "20"]).unwrap();
        let spec = args.base_spec(FlowControlKind::Wormhole);
        assert_eq!(spec.h, 2);
        assert_eq!(spec.warmup, 10);
        assert_eq!(spec.measure, 20);
        assert_eq!(spec.flow_control, FlowControlKind::Wormhole);
    }
}
