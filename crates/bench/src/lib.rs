//! Shared harness utilities for the figure-regeneration binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the paper.  They
//! all accept the same command-line switches, parsed by [`HarnessArgs`]:
//!
//! ```text
//! --h <N>          Dragonfly parameter h (default 4; the paper uses 8)
//! --full           paper scale: h = 8 and the paper's cycle counts
//! --quick          reduced scale for smoke runs (h = 2, short windows, fewer points)
//! --warmup <N>     warm-up cycles
//! --measure <N>    measurement cycles
//! --seed <N>       base random seed
//! --threads <N>    worker threads for the sweep (default: all cores)
//! --out <DIR>      directory for CSV output (default: results/)
//! --loads a,b,c    explicit offered-load points
//! --pattern <P>    traffic pattern selector where applicable (un, advg1, advgh, all)
//! ```

use dragonfly_core::{ExperimentSpec, FlowControlKind, SimReport};
use std::path::PathBuf;

/// Parsed command-line arguments shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dragonfly parameter `h`.
    pub h: usize,
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Drain cycles.
    pub drain: u64,
    /// Base seed.
    pub seed: u64,
    /// Worker threads (`None` = all cores).
    pub threads: Option<usize>,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Offered-load points (figures 4/5/7/8/10/11).
    pub loads: Vec<f64>,
    /// Traffic-pattern selector (figures 4/5/7/8): `un`, `advg1`, `advgh` or `all`.
    pub pattern: String,
    /// Quick mode (CI smoke runs).
    pub quick: bool,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            h: 4,
            warmup: 6_000,
            measure: 8_000,
            drain: 8_000,
            seed: 1,
            threads: None,
            out_dir: PathBuf::from("results"),
            loads: dragonfly_core::sweep::default_loads(),
            pattern: "all".to_string(),
            quick: false,
        }
    }
}

impl HarnessArgs {
    /// Parse from an explicit argument list (excluding the program name).
    pub fn parse_from<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out = Self::default();
        let args: Vec<String> = args.into_iter().map(|a| a.as_ref().to_string()).collect();
        let mut i = 0;
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value for {}", args[*i - 1]))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--h" => out.h = value(&mut i)?.parse().map_err(|e| format!("--h: {e}"))?,
                "--warmup" => {
                    out.warmup = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--warmup: {e}"))?
                }
                "--measure" => {
                    out.measure = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--measure: {e}"))?;
                    out.drain = out.measure;
                }
                "--drain" => {
                    out.drain = value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--drain: {e}"))?
                }
                "--seed" => {
                    out.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?
                }
                "--threads" => {
                    out.threads = Some(
                        value(&mut i)?
                            .parse()
                            .map_err(|e| format!("--threads: {e}"))?,
                    )
                }
                "--out" => out.out_dir = PathBuf::from(value(&mut i)?),
                "--pattern" => out.pattern = value(&mut i)?,
                "--loads" => {
                    out.loads = value(&mut i)?
                        .split(',')
                        .map(|s| s.trim().parse::<f64>().map_err(|e| format!("--loads: {e}")))
                        .collect::<Result<Vec<_>, _>>()?
                }
                "--full" => {
                    out.h = 8;
                    out.warmup = 20_000;
                    out.measure = 30_000;
                    out.drain = 30_000;
                }
                "--quick" => {
                    out.quick = true;
                    out.h = 2;
                    out.warmup = 1_000;
                    out.measure = 2_000;
                    out.drain = 2_000;
                    out.loads = vec![0.1, 0.3, 0.5, 0.8];
                }
                "--help" | "-h" => return Err(usage()),
                other => return Err(format!("unknown argument `{other}`\n{}", usage())),
            }
            i += 1;
        }
        Ok(out)
    }

    /// Parse from the process arguments, exiting with a message on error.
    pub fn from_env() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The base experiment specification implied by these arguments.
    pub fn base_spec(&self, flow_control: FlowControlKind) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(self.h);
        spec.flow_control = flow_control;
        spec.warmup = self.warmup;
        spec.measure = self.measure;
        spec.drain = self.drain;
        spec.seed = self.seed;
        spec
    }

    /// Ensure the output directory exists and return the path of a CSV file inside it.
    pub fn csv_path(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out_dir).expect("cannot create the output directory");
        self.out_dir.join(name)
    }
}

fn usage() -> String {
    "usage: <figure-binary> [--h N] [--full] [--quick] [--warmup N] [--measure N] \
     [--drain N] [--seed N] [--threads N] [--out DIR] [--loads a,b,c] [--pattern P]"
        .to_string()
}

/// Pretty-print a set of steady-state reports as the latency/throughput series of a
/// figure, grouped by mechanism.
pub fn print_series(title: &str, reports: &[SimReport]) {
    println!("\n== {title} ==");
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>12} {:>10} {:>9} {:>9}",
        "routing", "offered", "accepted", "avg_lat", "p99_lat", "hops", "gmis%", "lmis%"
    );
    for r in reports {
        println!(
            "{:<10} {:>8.3} {:>10.4} {:>12.1} {:>12.1} {:>10.2} {:>8.1}% {:>8.1}%",
            r.routing,
            r.offered_load,
            r.accepted_load,
            r.avg_latency_cycles,
            r.p99_latency_cycles,
            r.avg_hops,
            r.global_misroute_fraction * 100.0,
            r.local_misroute_fraction * 100.0
        );
    }
}

/// Simple progress callback printing to stderr.
pub fn progress(done: usize, total: usize) {
    eprint!("\r  [{done}/{total}] simulations finished");
    if done == total {
        eprintln!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let args = HarnessArgs::default();
        assert_eq!(args.h, 4);
        assert!(!args.loads.is_empty());
        assert_eq!(args.pattern, "all");
    }

    #[test]
    fn parse_overrides() {
        let args = HarnessArgs::parse_from([
            "--h",
            "3",
            "--warmup",
            "100",
            "--measure",
            "200",
            "--seed",
            "9",
            "--threads",
            "2",
            "--out",
            "/tmp/x",
            "--loads",
            "0.1,0.2",
            "--pattern",
            "advg1",
        ])
        .unwrap();
        assert_eq!(args.h, 3);
        assert_eq!(args.warmup, 100);
        assert_eq!(args.measure, 200);
        assert_eq!(args.drain, 200);
        assert_eq!(args.seed, 9);
        assert_eq!(args.threads, Some(2));
        assert_eq!(args.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(args.loads, vec![0.1, 0.2]);
        assert_eq!(args.pattern, "advg1");
    }

    #[test]
    fn parse_full_and_quick_presets() {
        let full = HarnessArgs::parse_from(["--full"]).unwrap();
        assert_eq!(full.h, 8);
        assert_eq!(full.warmup, 20_000);
        let quick = HarnessArgs::parse_from(["--quick"]).unwrap();
        assert_eq!(quick.h, 2);
        assert!(quick.quick);
        assert!(quick.loads.len() <= 5);
    }

    #[test]
    fn parse_rejects_unknown_and_missing() {
        assert!(HarnessArgs::parse_from(["--nope"]).is_err());
        assert!(HarnessArgs::parse_from(["--h"]).is_err());
        assert!(HarnessArgs::parse_from(["--h", "abc"]).is_err());
    }

    #[test]
    fn base_spec_reflects_args() {
        let args =
            HarnessArgs::parse_from(["--h", "2", "--warmup", "10", "--measure", "20"]).unwrap();
        let spec = args.base_spec(FlowControlKind::Wormhole);
        assert_eq!(spec.h, 2);
        assert_eq!(spec.warmup, 10);
        assert_eq!(spec.measure, 20);
        assert_eq!(spec.flow_control, FlowControlKind::Wormhole);
    }
}
