//! Workload specifications: jobs, placements, phases and job-scoped patterns.

use crate::job_patterns::build_job_pattern;
use crate::placement::Placement;
use crate::runtime::{JobRuntime, WorkloadRuntime};
use dragonfly_topology::DragonflyParams;
use dragonfly_traffic::{BoxedPattern, WorkloadPattern, UNASSIGNED_SLOT};
use serde::{Deserialize, Serialize};

/// How a job's nodes are chosen from the machine's free nodes.
///
/// Jobs are placed in specification order; every policy draws only from nodes not
/// taken by earlier jobs, so the per-job node sets are disjoint by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Lowest-indexed free nodes first: fills routers, then groups, contiguously —
    /// the classic "contiguous groups" allocation of batch schedulers.
    Contiguous,
    /// One free node per router per sweep, cycling over all routers — spreads the
    /// job across every router (and therefore every group) of the machine.
    RoundRobinRouters,
    /// A seeded random subset of the free nodes (deterministic for a fixed seed).
    Random {
        /// Seed of the placement shuffle.
        seed: u64,
    },
}

impl PlacementPolicy {
    /// Short display name used in workload labels.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::Contiguous => "cont",
            PlacementPolicy::RoundRobinRouters => "rr",
            PlacementPolicy::Random { .. } => "rand",
        }
    }
}

/// The communication pattern of one job phase, scoped to the job's own nodes.
///
/// The adversarial variants mirror the paper's patterns but restricted to the job:
/// a packet targets the job's nodes in the group (router) at the configured offset
/// from the source's group (router); if the job has no nodes there, the packet falls
/// back to a uniform draw over the job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum JobPattern {
    /// Uniform over the job's nodes (excluding the source).
    Uniform,
    /// Adversarial-global with the given group offset, restricted to the job.
    AdversarialGlobal(usize),
    /// Adversarial-local with the given router offset, restricted to the job.
    AdversarialLocal(usize),
    /// Per-packet Bernoulli mix of a job-scoped ADVG and ADVL component.
    Mixed {
        /// Fraction of packets following the adversarial-global component.
        global_fraction: f64,
        /// Group offset of the global component.
        global_offset: usize,
        /// Router offset of the local component.
        local_offset: usize,
    },
    /// Staged all-to-all collective: every node walks round-robin through all of
    /// its job peers, so over any window of `size - 1` packets each peer is hit
    /// exactly once (the personalized-exchange schedule of MPI_Alltoall).
    AllToAll,
    /// Ring / nearest-neighbour exchange: each packet goes to the previous or the
    /// next node in the job's rank order (halo exchanges, stencil codes).
    RingExchange,
    /// A seeded fixed-point-free permutation of the job's nodes: every node sends
    /// all of its traffic to one fixed peer (static transpose-style collectives).
    Permutation {
        /// Seed of the permutation shuffle.
        seed: u64,
    },
}

impl JobPattern {
    /// Display name matching the paper's labels.
    pub fn name(self) -> String {
        match self {
            JobPattern::Uniform => "UN".to_string(),
            JobPattern::AdversarialGlobal(n) => format!("ADVG+{n}"),
            JobPattern::AdversarialLocal(n) => format!("ADVL+{n}"),
            JobPattern::Mixed {
                global_fraction,
                global_offset,
                local_offset,
            } => format!(
                "MIX{}%(ADVG+{global_offset}/ADVL+{local_offset})",
                (global_fraction * 100.0).round() as u32
            ),
            JobPattern::AllToAll => "A2A".to_string(),
            JobPattern::RingExchange => "RING".to_string(),
            JobPattern::Permutation { seed } => format!("PERM#{seed}"),
        }
    }

    /// Parse a pattern from its [`JobPattern::name`] form (used by the scheduler's
    /// trace files): `UN`, `ADVG+n`, `ADVL+n`, `A2A`, `RING`, `PERM#seed` and
    /// `MIXp%(ADVG+g/ADVL+l)`.  Case-insensitive; `parse(x.name())` round-trips for
    /// every pattern whose mix fraction is a whole percentage.
    pub fn parse(text: &str) -> Result<Self, String> {
        let t = text.trim().to_ascii_uppercase();
        let offset = |s: &str, what: &str| {
            s.parse::<usize>()
                .map_err(|e| format!("bad {what} offset in `{text}`: {e}"))
        };
        if t == "UN" {
            Ok(JobPattern::Uniform)
        } else if t == "A2A" {
            Ok(JobPattern::AllToAll)
        } else if t == "RING" {
            Ok(JobPattern::RingExchange)
        } else if let Some(n) = t.strip_prefix("ADVG+") {
            Ok(JobPattern::AdversarialGlobal(offset(n, "group")?))
        } else if let Some(n) = t.strip_prefix("ADVL+") {
            Ok(JobPattern::AdversarialLocal(offset(n, "router")?))
        } else if let Some(s) = t.strip_prefix("PERM#") {
            Ok(JobPattern::Permutation {
                seed: s
                    .parse()
                    .map_err(|e| format!("bad permutation seed in `{text}`: {e}"))?,
            })
        } else if let Some(rest) = t.strip_prefix("MIX") {
            // MIXp%(ADVG+g/ADVL+l)
            let (pct, rest) = rest
                .split_once("%(")
                .ok_or_else(|| format!("bad mix pattern `{text}` (expected MIXp%(...))"))?;
            let pct: f64 = pct
                .parse()
                .map_err(|e| format!("bad mix percentage in `{text}`: {e}"))?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(format!(
                    "mix percentage in `{text}` must be between 0 and 100"
                ));
            }
            let body = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("bad mix pattern `{text}` (missing `)`)"))?;
            let (g, l) = body
                .split_once('/')
                .ok_or_else(|| format!("bad mix pattern `{text}` (expected ADVG+g/ADVL+l)"))?;
            let g = g
                .strip_prefix("ADVG+")
                .ok_or_else(|| format!("bad mix global component in `{text}`"))?;
            let l = l
                .strip_prefix("ADVL+")
                .ok_or_else(|| format!("bad mix local component in `{text}`"))?;
            Ok(JobPattern::Mixed {
                global_fraction: pct / 100.0,
                global_offset: offset(g, "group")?,
                local_offset: offset(l, "router")?,
            })
        } else {
            Err(format!("unknown job pattern `{text}`"))
        }
    }
}

/// One phase of a job: a pattern and an offered load, active from `start_cycle`
/// (an absolute simulation cycle) until the next phase starts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Absolute cycle at which the phase becomes active (the first phase must use 0).
    pub start_cycle: u64,
    /// Traffic pattern of the phase.
    pub pattern: JobPattern,
    /// Offered load of the phase in phits/(node·cycle).
    pub offered_load: f64,
}

impl PhaseSpec {
    /// A phase starting at `start_cycle`.
    pub fn new(start_cycle: u64, pattern: JobPattern, offered_load: f64) -> Self {
        assert!(offered_load >= 0.0, "offered load must be non-negative");
        Self {
            start_cycle,
            pattern,
            offered_load,
        }
    }
}

/// One job: a name, a node count, a placement policy and a phase schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Display name (used in per-job reports).
    pub name: String,
    /// Number of nodes the job occupies (at least 2, so it can communicate).
    pub size: usize,
    /// How the job's nodes are chosen.
    pub placement: PlacementPolicy,
    /// Phase schedule: non-empty, strictly increasing start cycles, first at 0.
    pub phases: Vec<PhaseSpec>,
}

impl JobSpec {
    /// A single-phase job.
    pub fn new(
        name: impl Into<String>,
        size: usize,
        placement: PlacementPolicy,
        pattern: JobPattern,
        offered_load: f64,
    ) -> Self {
        Self {
            name: name.into(),
            size,
            placement,
            phases: vec![PhaseSpec::new(0, pattern, offered_load)],
        }
    }

    /// Append a phase switching to `pattern`/`offered_load` at `start_cycle`.
    pub fn then_at(mut self, start_cycle: u64, pattern: JobPattern, offered_load: f64) -> Self {
        self.phases
            .push(PhaseSpec::new(start_cycle, pattern, offered_load));
        self
    }

    fn validate(&self) {
        assert!(self.size >= 2, "job '{}' needs at least 2 nodes", self.name);
        assert!(
            !self.phases.is_empty(),
            "job '{}' needs at least one phase",
            self.name
        );
        assert_eq!(
            self.phases[0].start_cycle, 0,
            "job '{}': the first phase must start at cycle 0",
            self.name
        );
        assert!(
            self.phases
                .windows(2)
                .all(|w| w[0].start_cycle < w[1].start_cycle),
            "job '{}': phase start cycles must be strictly increasing",
            self.name
        );
    }

    /// Compact label: `name(size,placement)=PH0→PH1…` with per-phase loads.
    fn label(&self) -> String {
        let phases = self
            .phases
            .iter()
            .map(|p| format!("{}@{:.2}", p.pattern.name(), p.offered_load))
            .collect::<Vec<_>>()
            .join("→");
        format!("{}:{}", self.name, phases)
    }
}

/// A complete workload: a list of jobs placed on the machine in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The jobs, in placement order.
    pub jobs: Vec<JobSpec>,
}

impl WorkloadSpec {
    /// A workload from an explicit job list.
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        assert!(!jobs.is_empty(), "a workload needs at least one job");
        assert!(
            jobs.len() < UNASSIGNED_SLOT as usize,
            "too many jobs for the u16 job tag"
        );
        let spec = Self { jobs };
        for job in &spec.jobs {
            job.validate();
        }
        spec
    }

    /// The headline interference scenario: an adversarial *aggressor* job and a
    /// uniform *victim* job, each on half of the machine, interleaved over every
    /// router (round-robin placement) so they share local and global channels.
    ///
    /// The aggressor drives ADVG+`aggressor_offset` at `aggressor_load`; the victim
    /// drives job-uniform traffic at `victim_load`.  Under minimal routing the
    /// aggressor saturates one global channel per group and the victim's packets
    /// queue behind it; adaptive mechanisms (OLM, PB, PAR) divert around the hot
    /// channels and shield the victim.
    pub fn interference(
        num_nodes: usize,
        aggressor_offset: usize,
        aggressor_load: f64,
        victim_load: f64,
    ) -> Self {
        Self::interference_placed(
            num_nodes,
            aggressor_offset,
            aggressor_load,
            victim_load,
            PlacementPolicy::RoundRobinRouters,
        )
    }

    /// The interference scenario with an explicit placement policy for both jobs —
    /// the knob behind placement × aggressor-load interference sweeps.  Contiguous
    /// placement isolates the jobs into separate groups (victim traffic rarely
    /// crosses the aggressor's hot channels); round-robin placement interleaves
    /// them over every router, maximizing the shared channels.
    pub fn interference_placed(
        num_nodes: usize,
        aggressor_offset: usize,
        aggressor_load: f64,
        victim_load: f64,
        placement: PlacementPolicy,
    ) -> Self {
        let half = num_nodes / 2;
        Self::new(vec![
            JobSpec::new(
                "aggressor",
                half,
                placement,
                JobPattern::AdversarialGlobal(aggressor_offset),
                aggressor_load,
            ),
            JobSpec::new(
                "victim",
                num_nodes - half,
                placement,
                JobPattern::Uniform,
                victim_load,
            ),
        ])
    }

    /// The headline transient scenario: one job covering the whole machine that
    /// switches from uniform traffic to ADVG+`advg_offset` at `switch_cycle`,
    /// exposing the reaction time of adaptive routing in the per-phase breakdown.
    pub fn transient(
        num_nodes: usize,
        offered_load: f64,
        switch_cycle: u64,
        advg_offset: usize,
    ) -> Self {
        Self::new(vec![JobSpec::new(
            "app",
            num_nodes,
            PlacementPolicy::Contiguous,
            JobPattern::Uniform,
            offered_load,
        )
        .then_at(
            switch_cycle,
            JobPattern::AdversarialGlobal(advg_offset),
            offered_load,
        )])
    }

    /// Compact display label, e.g. `WL[aggressor:ADVG+1@0.60,victim:UN@0.10]`.
    pub fn label(&self) -> String {
        let jobs = self
            .jobs
            .iter()
            .map(JobSpec::label)
            .collect::<Vec<_>>()
            .join(",");
        format!("WL[{jobs}]")
    }

    /// Compute the node placement of every job (deterministic).
    pub fn place(&self, params: &DragonflyParams) -> Placement {
        Placement::compute(self, params)
    }

    /// Compile the destination side: a node-indexed, time-aware
    /// [`WorkloadPattern`] ready to drive the simulation engine.
    pub fn build_pattern(&self, params: &DragonflyParams) -> WorkloadPattern {
        self.build_pattern_with(&self.place(params), params)
    }

    /// Compile the injection side: per-job phase rates, phase tracking and tags.
    ///
    /// `packet_size` (phits) converts each phase's offered load into a per-cycle
    /// Bernoulli packet probability, exactly like
    /// [`dragonfly_traffic::BernoulliInjection`].
    pub fn runtime(&self, params: &DragonflyParams, packet_size: usize) -> WorkloadRuntime {
        self.runtime_with(&self.place(params), packet_size)
    }

    /// Compile both sides at once, computing the placement a single time — the
    /// path the simulation engine uses when installing a workload.
    pub fn compile(
        &self,
        params: &DragonflyParams,
        packet_size: usize,
    ) -> (WorkloadRuntime, WorkloadPattern) {
        let placement = self.place(params);
        (
            self.runtime_with(&placement, packet_size),
            self.build_pattern_with(&placement, params),
        )
    }

    fn build_pattern_with(
        &self,
        placement: &Placement,
        params: &DragonflyParams,
    ) -> WorkloadPattern {
        let schedules = self
            .jobs
            .iter()
            .enumerate()
            .map(|(j, job)| {
                job.phases
                    .iter()
                    .map(|phase| {
                        let pattern: BoxedPattern =
                            build_job_pattern(phase.pattern, &placement.jobs[j], params);
                        (phase.start_cycle, pattern)
                    })
                    .collect()
            })
            .collect();
        WorkloadPattern::new(self.label(), placement.job_of_node.clone(), schedules)
    }

    fn runtime_with(&self, placement: &Placement, packet_size: usize) -> WorkloadRuntime {
        assert!(packet_size >= 1, "packet size must be at least one phit");
        let jobs = self
            .jobs
            .iter()
            .enumerate()
            .map(|(j, job)| JobRuntime::new(job, placement.jobs[j].len(), packet_size))
            .collect();
        WorkloadRuntime::new(self.label(), placement.job_of_node.clone(), jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_pattern_names() {
        assert_eq!(JobPattern::Uniform.name(), "UN");
        assert_eq!(JobPattern::AdversarialGlobal(3).name(), "ADVG+3");
        assert_eq!(JobPattern::AdversarialLocal(1).name(), "ADVL+1");
        let mix = JobPattern::Mixed {
            global_fraction: 0.4,
            global_offset: 2,
            local_offset: 1,
        };
        assert_eq!(mix.name(), "MIX40%(ADVG+2/ADVL+1)");
        assert_eq!(JobPattern::AllToAll.name(), "A2A");
        assert_eq!(JobPattern::RingExchange.name(), "RING");
        assert_eq!(JobPattern::Permutation { seed: 9 }.name(), "PERM#9");
    }

    #[test]
    fn job_pattern_parse_round_trips() {
        let patterns = [
            JobPattern::Uniform,
            JobPattern::AdversarialGlobal(3),
            JobPattern::AdversarialLocal(1),
            JobPattern::AllToAll,
            JobPattern::RingExchange,
            JobPattern::Permutation { seed: 42 },
            JobPattern::Mixed {
                global_fraction: 0.4,
                global_offset: 2,
                local_offset: 1,
            },
        ];
        for p in patterns {
            assert_eq!(JobPattern::parse(&p.name()), Ok(p), "{}", p.name());
        }
        // Case-insensitive and whitespace-tolerant.
        assert_eq!(
            JobPattern::parse(" advg+2 "),
            Ok(JobPattern::AdversarialGlobal(2))
        );
        assert!(JobPattern::parse("nope").is_err());
        assert!(JobPattern::parse("ADVG+x").is_err());
        assert!(JobPattern::parse("MIX40%(ADVG+2)").is_err());
        // Out-of-range mix percentages must error rather than silently clamp.
        assert!(JobPattern::parse("MIX250%(ADVG+1/ADVL+1)")
            .unwrap_err()
            .contains("between 0 and 100"));
        assert!(JobPattern::parse("MIX-5%(ADVG+1/ADVL+1)").is_err());
    }

    #[test]
    fn workload_label_mentions_jobs_and_phases() {
        let spec = WorkloadSpec::transient(72, 0.15, 10_000, 2);
        let label = spec.label();
        assert!(label.starts_with("WL[app:UN@0.15"), "{label}");
        assert!(label.contains("ADVG+2@0.15"), "{label}");
    }

    #[test]
    fn interference_splits_the_machine() {
        let spec = WorkloadSpec::interference(72, 1, 0.6, 0.1);
        assert_eq!(spec.jobs.len(), 2);
        assert_eq!(spec.jobs[0].size + spec.jobs[1].size, 72);
        assert_eq!(spec.jobs[0].phases.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn tiny_job_rejected() {
        WorkloadSpec::new(vec![JobSpec::new(
            "solo",
            1,
            PlacementPolicy::Contiguous,
            JobPattern::Uniform,
            0.1,
        )]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_phases_rejected() {
        WorkloadSpec::new(vec![JobSpec::new(
            "bad",
            4,
            PlacementPolicy::Contiguous,
            JobPattern::Uniform,
            0.1,
        )
        .then_at(100, JobPattern::Uniform, 0.2)
        .then_at(100, JobPattern::Uniform, 0.3)]);
    }

    #[test]
    #[should_panic(expected = "start at cycle 0")]
    fn late_first_phase_rejected() {
        WorkloadSpec::new(vec![JobSpec {
            name: "bad".into(),
            size: 4,
            placement: PlacementPolicy::Contiguous,
            phases: vec![PhaseSpec::new(10, JobPattern::Uniform, 0.1)],
        }]);
    }
}
