//! Job-scoped traffic patterns: the paper's patterns restricted to a job's nodes.

use crate::spec::JobPattern;
use dragonfly_rng::Rng;
use dragonfly_topology::{DragonflyParams, NodeId};
use dragonfly_traffic::{BoxedPattern, TrafficPattern};
use std::cell::Cell;

/// Build the boxed pattern for one job phase over the job's (sorted) node set.
pub fn build_job_pattern(
    pattern: JobPattern,
    members: &[NodeId],
    params: &DragonflyParams,
) -> BoxedPattern {
    let members = members.to_vec();
    debug_assert!(members.windows(2).all(|w| w[0] < w[1]));
    match pattern {
        JobPattern::Uniform => Box::new(JobUniform { members }),
        JobPattern::AdversarialGlobal(offset) => {
            let by_group = bucket(&members, params.groups(), |n| {
                params.group_of_node(*n).index()
            });
            Box::new(JobAdversarialGlobal {
                offset,
                members,
                by_group,
            })
        }
        JobPattern::AdversarialLocal(offset) => {
            let by_router = bucket(&members, params.num_routers(), |n| {
                params.router_of_node(*n).index()
            });
            Box::new(JobAdversarialLocal {
                offset,
                members,
                by_router,
            })
        }
        JobPattern::Mixed {
            global_fraction,
            global_offset,
            local_offset,
        } => Box::new(JobMixed {
            global_fraction: global_fraction.clamp(0.0, 1.0),
            global: build_job_pattern(
                JobPattern::AdversarialGlobal(global_offset),
                &members,
                params,
            ),
            local: build_job_pattern(JobPattern::AdversarialLocal(local_offset), &members, params),
        }),
        JobPattern::AllToAll => {
            let cursors = members.iter().map(|_| Cell::new(1)).collect();
            Box::new(JobAllToAll { members, cursors })
        }
        JobPattern::RingExchange => Box::new(JobRingExchange { members }),
        JobPattern::Permutation { seed } => {
            let target = derangement(members.len(), seed);
            Box::new(JobPermutation { members, target })
        }
    }
}

/// A seeded fixed-point-free permutation of `0..n` (n ≥ 2): Fisher–Yates shuffle,
/// then any fixed point is swapped with its successor (deterministic repair that
/// keeps the map a permutation).
fn derangement(n: usize, seed: u64) -> Vec<u32> {
    debug_assert!(n >= 2);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut rng = Rng::seed_from(seed);
    rng.shuffle(&mut perm);
    for i in 0..n {
        if perm[i] == i as u32 {
            let j = (i + 1) % n;
            perm.swap(i, j);
        }
    }
    debug_assert!(perm.iter().enumerate().all(|(i, &p)| p != i as u32));
    perm
}

/// Group the members into `buckets` lists by a key function.
fn bucket(members: &[NodeId], buckets: usize, key: impl Fn(&NodeId) -> usize) -> Vec<Vec<NodeId>> {
    let mut out = vec![Vec::new(); buckets];
    for &node in members {
        out[key(&node)].push(node);
    }
    out
}

/// Uniform draw over `members` excluding `src` (unbiased via the skip trick).
fn uniform_in_job(members: &[NodeId], src: NodeId, rng: &mut Rng) -> NodeId {
    debug_assert!(members.len() >= 2);
    let rank = members
        .binary_search(&src)
        .expect("source node must belong to the job");
    let raw = rng.gen_index(members.len() - 1);
    members[if raw >= rank { raw + 1 } else { raw }]
}

/// Uniform over the job's nodes.
struct JobUniform {
    members: Vec<NodeId>,
}

impl TrafficPattern for JobUniform {
    fn name(&self) -> String {
        "UN".to_string()
    }

    fn destination(&self, src: NodeId, _params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        uniform_in_job(&self.members, src, rng)
    }
}

/// ADVG+N restricted to the job: target the job's nodes in group `src_group + N`.
struct JobAdversarialGlobal {
    offset: usize,
    members: Vec<NodeId>,
    by_group: Vec<Vec<NodeId>>,
}

impl TrafficPattern for JobAdversarialGlobal {
    fn name(&self) -> String {
        format!("ADVG+{}", self.offset)
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        let groups = params.groups();
        let src_group = params.group_of_node(src).index();
        let dst_group = (src_group + self.offset) % groups;
        let candidates = &self.by_group[dst_group];
        if dst_group == src_group || candidates.is_empty() {
            // Degenerate offset or no job presence in the target group.
            return uniform_in_job(&self.members, src, rng);
        }
        candidates[rng.gen_index(candidates.len())]
    }
}

/// ADVL+N restricted to the job: target the job's nodes on router `src_idx + N` of
/// the same group.
struct JobAdversarialLocal {
    offset: usize,
    members: Vec<NodeId>,
    by_router: Vec<Vec<NodeId>>,
}

impl TrafficPattern for JobAdversarialLocal {
    fn name(&self) -> String {
        format!("ADVL+{}", self.offset)
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        let src_router = params.router_of_node(src);
        let routers = params.routers_per_group();
        let src_idx = params.router_index_in_group(src_router);
        let dst_idx = (src_idx + self.offset) % routers;
        let group = params.group_of_router(src_router);
        let dst_router = params.router_in_group(group, dst_idx).index();
        let candidates = &self.by_router[dst_router];
        if dst_idx == src_idx || candidates.is_empty() {
            return uniform_in_job(&self.members, src, rng);
        }
        candidates[rng.gen_index(candidates.len())]
    }
}

/// Per-packet Bernoulli mix of the job-scoped ADVG and ADVL components.
struct JobMixed {
    global_fraction: f64,
    global: BoxedPattern,
    local: BoxedPattern,
}

impl TrafficPattern for JobMixed {
    fn name(&self) -> String {
        format!(
            "MIX{}%({}/{})",
            (self.global_fraction * 100.0).round() as u32,
            self.global.name(),
            self.local.name()
        )
    }

    fn destination(&self, src: NodeId, params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        if rng.bernoulli(self.global_fraction) {
            self.global.destination(src, params, rng)
        } else {
            self.local.destination(src, params, rng)
        }
    }
}

/// Rank of `src` within the job's sorted node list.
fn rank_in_job(members: &[NodeId], src: NodeId) -> usize {
    members
        .binary_search(&src)
        .expect("source node must belong to the job")
}

/// Staged all-to-all: each source walks round-robin through every peer offset, so a
/// window of `n - 1` consecutive packets from one source hits each peer once.  The
/// per-source cursors make the schedule deterministic without consuming RNG draws.
struct JobAllToAll {
    members: Vec<NodeId>,
    /// Next peer offset (1 ..= n-1) of each source rank.
    cursors: Vec<Cell<u32>>,
}

impl TrafficPattern for JobAllToAll {
    fn name(&self) -> String {
        "A2A".to_string()
    }

    fn destination(&self, src: NodeId, _params: &DragonflyParams, _rng: &mut Rng) -> NodeId {
        let n = self.members.len();
        let rank = rank_in_job(&self.members, src);
        let k = self.cursors[rank].get() as usize;
        // Advance through 1 ..= n-1 cyclically.
        self.cursors[rank].set((k % (n - 1) + 1) as u32);
        self.members[(rank + k) % n]
    }
}

/// Ring / nearest-neighbour exchange: previous or next rank, a fair coin per packet.
struct JobRingExchange {
    members: Vec<NodeId>,
}

impl TrafficPattern for JobRingExchange {
    fn name(&self) -> String {
        "RING".to_string()
    }

    fn destination(&self, src: NodeId, _params: &DragonflyParams, rng: &mut Rng) -> NodeId {
        let n = self.members.len();
        let rank = rank_in_job(&self.members, src);
        let dst = if rng.bernoulli(0.5) {
            (rank + 1) % n
        } else {
            (rank + n - 1) % n
        };
        self.members[dst]
    }
}

/// Seeded fixed-point-free permutation: rank `r` always sends to `target[r]`.
struct JobPermutation {
    members: Vec<NodeId>,
    target: Vec<u32>,
}

impl TrafficPattern for JobPermutation {
    fn name(&self) -> String {
        "PERM".to_string()
    }

    fn destination(&self, src: NodeId, _params: &DragonflyParams, _rng: &mut Rng) -> NodeId {
        let rank = rank_in_job(&self.members, src);
        self.members[self.target[rank] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DragonflyParams {
        DragonflyParams::new(2)
    }

    /// Every other node: a job covering half the machine, one node per router.
    fn spread_members(p: &DragonflyParams) -> Vec<NodeId> {
        (0..p.num_nodes())
            .step_by(2)
            .map(|n| NodeId(n as u32))
            .collect()
    }

    #[test]
    fn job_uniform_stays_in_job_and_skips_source() {
        let p = params();
        let members = spread_members(&p);
        let pattern = build_job_pattern(JobPattern::Uniform, &members, &p);
        let mut rng = Rng::seed_from(3);
        let src = members[5];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let d = pattern.destination(src, &p, &mut rng);
            assert_ne!(d, src);
            assert!(members.binary_search(&d).is_ok(), "{d:?} not in job");
            seen.insert(d);
        }
        assert_eq!(seen.len(), members.len() - 1, "all peers should be hit");
    }

    #[test]
    fn job_advg_targets_offset_group_members() {
        let p = params();
        let members = spread_members(&p);
        let pattern = build_job_pattern(JobPattern::AdversarialGlobal(1), &members, &p);
        let mut rng = Rng::seed_from(5);
        for &src in &members[..8] {
            let want = (p.group_of_node(src).index() + 1) % p.groups();
            for _ in 0..20 {
                let d = pattern.destination(src, &p, &mut rng);
                assert_eq!(p.group_of_node(d).index(), want);
                assert!(members.binary_search(&d).is_ok());
            }
        }
    }

    #[test]
    fn job_advg_falls_back_when_target_group_is_empty() {
        let p = params();
        // Job confined to group 0 (8 nodes): ADVG+1 has no members in group 1.
        let members: Vec<NodeId> = (0..8).map(NodeId).collect();
        let pattern = build_job_pattern(JobPattern::AdversarialGlobal(1), &members, &p);
        let mut rng = Rng::seed_from(7);
        for _ in 0..100 {
            let d = pattern.destination(NodeId(0), &p, &mut rng);
            assert_ne!(d, NodeId(0));
            assert!(members.binary_search(&d).is_ok());
        }
    }

    #[test]
    fn job_advl_targets_offset_router_in_group() {
        let p = params();
        let members = spread_members(&p);
        let pattern = build_job_pattern(JobPattern::AdversarialLocal(1), &members, &p);
        let mut rng = Rng::seed_from(9);
        let src = members[0]; // node 0, router 0, group 0
        for _ in 0..50 {
            let d = pattern.destination(src, &p, &mut rng);
            let dst_router = p.router_of_node(d);
            assert_eq!(p.group_of_router(dst_router), p.group_of_node(src));
            assert_eq!(p.router_index_in_group(dst_router), 1);
        }
    }

    #[test]
    fn job_mixed_uses_both_components() {
        let p = params();
        let members = spread_members(&p);
        let pattern = build_job_pattern(
            JobPattern::Mixed {
                global_fraction: 0.5,
                global_offset: 1,
                local_offset: 1,
            },
            &members,
            &p,
        );
        let mut rng = Rng::seed_from(11);
        let src = members[0];
        let src_group = p.group_of_node(src);
        let (mut global, mut local) = (0, 0);
        for _ in 0..2_000 {
            let d = pattern.destination(src, &p, &mut rng);
            if p.group_of_node(d) == src_group {
                local += 1;
            } else {
                global += 1;
            }
        }
        assert!(
            global > 700 && local > 700,
            "global {global}, local {local}"
        );
        assert!(pattern.name().starts_with("MIX50%"));
    }

    #[test]
    fn all_to_all_sweeps_every_peer_each_round() {
        let p = params();
        let members = spread_members(&p);
        let n = members.len();
        let pattern = build_job_pattern(JobPattern::AllToAll, &members, &p);
        let mut rng = Rng::seed_from(1);
        let src = members[7];
        for round in 0..3 {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..n - 1 {
                let d = pattern.destination(src, &p, &mut rng);
                assert_ne!(d, src);
                assert!(members.binary_search(&d).is_ok());
                assert!(seen.insert(d), "round {round}: peer {d:?} hit twice");
            }
            assert_eq!(seen.len(), n - 1, "round {round} must cover every peer");
        }
        // Cursors are per source: another source starts its own sweep at offset 1.
        let other = members[0];
        let d = pattern.destination(other, &p, &mut rng);
        assert_eq!(d, members[1]);
    }

    #[test]
    fn ring_exchange_targets_rank_neighbours() {
        let p = params();
        let members = spread_members(&p);
        let pattern = build_job_pattern(JobPattern::RingExchange, &members, &p);
        let mut rng = Rng::seed_from(2);
        let rank = 5;
        let (mut prev, mut next) = (0, 0);
        for _ in 0..1_000 {
            let d = pattern.destination(members[rank], &p, &mut rng);
            if d == members[rank + 1] {
                next += 1;
            } else if d == members[rank - 1] {
                prev += 1;
            } else {
                panic!("ring destination {d:?} is not a rank neighbour");
            }
        }
        assert!(prev > 350 && next > 350, "prev {prev}, next {next}");
        // Ranks wrap at the ends of the job.
        let d = pattern.destination(members[0], &p, &mut rng);
        assert!(d == members[1] || d == *members.last().unwrap());
    }

    #[test]
    fn permutation_is_fixed_per_seed_and_fixed_point_free() {
        let p = params();
        let members = spread_members(&p);
        let pattern = build_job_pattern(JobPattern::Permutation { seed: 11 }, &members, &p);
        let mut rng = Rng::seed_from(3);
        let mut targets = std::collections::HashMap::new();
        for &src in &members {
            let d = pattern.destination(src, &p, &mut rng);
            assert_ne!(d, src, "permutation must have no fixed points");
            // Every packet from the same source goes to the same peer.
            assert_eq!(pattern.destination(src, &p, &mut rng), d);
            // ... and no two sources share a target (it is a permutation).
            assert!(targets.insert(src, d).is_none());
        }
        let unique: std::collections::HashSet<_> = targets.values().collect();
        assert_eq!(unique.len(), members.len());
        // A different seed yields a different permutation.
        let other = build_job_pattern(JobPattern::Permutation { seed: 12 }, &members, &p);
        let diff = members
            .iter()
            .filter(|&&s| other.destination(s, &p, &mut rng) != targets[&s])
            .count();
        assert!(diff > 0, "seed must matter");
    }

    #[test]
    fn derangement_repairs_fixed_points_for_tiny_jobs() {
        for seed in 0..50 {
            for n in 2..6 {
                let d = derangement(n, seed);
                let mut sorted = d.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
                assert!(d.iter().enumerate().all(|(i, &p)| p != i as u32), "{d:?}");
            }
        }
    }
}
