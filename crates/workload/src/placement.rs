//! Deterministic node placement of a workload's jobs, over an explicit free-node
//! pool.
//!
//! [`FreePool`] is the allocation substrate shared by static workloads and the
//! dynamic job scheduler (`dragonfly_sched`): every [`PlacementPolicy`] draws from
//! whatever nodes are currently free — a virgin machine, or an arbitrarily
//! fragmented set left behind by earlier arrivals and departures — and departing
//! jobs return their nodes with [`FreePool::release`].  [`Placement`] keeps the
//! one-shot "place every job of a spec" view used by [`WorkloadSpec`].

use crate::spec::{PlacementPolicy, WorkloadSpec};
use dragonfly_rng::{derive_seed, Rng};
use dragonfly_topology::{DragonflyParams, NodeId};
use dragonfly_traffic::UNASSIGNED_SLOT;

/// The machine's free-node pool: the mutable substrate every placement policy
/// allocates from.
///
/// Allocation never assumes anything about the shape of the free set; a policy that
/// cannot find enough free nodes returns `None` and leaves the pool untouched, so a
/// scheduler can keep the job waiting and retry after the next departure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreePool {
    free: Vec<bool>,
    free_count: usize,
}

impl FreePool {
    /// A pool with every node of the machine free.
    pub fn all_free(num_nodes: usize) -> Self {
        Self {
            free: vec![true; num_nodes],
            free_count: num_nodes,
        }
    }

    /// Number of currently free nodes.
    pub fn free_count(&self) -> usize {
        self.free_count
    }

    /// Number of nodes of the machine (free or taken).
    pub fn num_nodes(&self) -> usize {
        self.free.len()
    }

    /// Whether a node is currently free.
    pub fn is_free(&self, node: NodeId) -> bool {
        self.free[node.index()]
    }

    /// Allocate `size` nodes with `policy`, or `None` (pool unchanged) when the
    /// free set cannot satisfy the request.
    ///
    /// `stream` decorrelates the seeded [`PlacementPolicy::Random`] draws of
    /// different jobs sharing one policy seed (static workloads pass the job index;
    /// the scheduler passes the trace index).  The returned nodes are sorted
    /// ascending and marked taken.
    pub fn allocate(
        &mut self,
        policy: PlacementPolicy,
        size: usize,
        params: &DragonflyParams,
        stream: u64,
    ) -> Option<Vec<NodeId>> {
        if size > self.free_count {
            return None;
        }
        let mut nodes = match policy {
            PlacementPolicy::Contiguous => take_contiguous(&self.free, size),
            PlacementPolicy::RoundRobinRouters => take_round_robin(&self.free, size, params),
            PlacementPolicy::Random { seed } => {
                take_random(&self.free, size, derive_seed(seed, stream))
            }
        }?;
        debug_assert_eq!(nodes.len(), size);
        nodes.sort_unstable();
        for &node in &nodes {
            debug_assert!(self.free[node.index()]);
            self.free[node.index()] = false;
        }
        self.free_count -= size;
        Some(nodes)
    }

    /// Return a departed job's nodes to the pool.
    ///
    /// # Panics
    ///
    /// Panics when any node is already free (double release).
    pub fn release(&mut self, nodes: &[NodeId]) {
        for &node in nodes {
            assert!(
                !self.free[node.index()],
                "released node {node:?} was already free"
            );
            self.free[node.index()] = true;
        }
        self.free_count += nodes.len();
    }
}

/// The result of placing every job of a workload: disjoint per-job node sets and the
/// inverse node→job map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// For every node: the index of its job, or [`UNASSIGNED_SLOT`] if idle.
    pub job_of_node: Vec<u16>,
    /// For every job: its nodes in ascending order.
    pub jobs: Vec<Vec<NodeId>>,
}

impl Placement {
    /// Place every job of `spec` in order, each drawing from the still-free nodes.
    pub fn compute(spec: &WorkloadSpec, params: &DragonflyParams) -> Self {
        let num_nodes = params.num_nodes();
        let total: usize = spec.jobs.iter().map(|j| j.size).sum();
        assert!(
            total <= num_nodes,
            "workload needs {total} nodes but the machine has {num_nodes}"
        );
        let mut pool = FreePool::all_free(num_nodes);
        let mut job_of_node = vec![UNASSIGNED_SLOT; num_nodes];
        let mut jobs = Vec::with_capacity(spec.jobs.len());
        for (j, job) in spec.jobs.iter().enumerate() {
            let nodes = pool
                .allocate(job.placement, job.size, params, j as u64)
                .unwrap_or_else(|| {
                    panic!(
                        "job '{}' ({} nodes, {}) does not fit the free set",
                        job.name,
                        job.size,
                        job.placement.name()
                    )
                });
            for &node in &nodes {
                job_of_node[node.index()] = j as u16;
            }
            jobs.push(nodes);
        }
        Self { job_of_node, jobs }
    }

    /// Total nodes assigned to any job.
    pub fn assigned_nodes(&self) -> usize {
        self.jobs.iter().map(Vec::len).sum()
    }
}

/// Lowest-indexed free nodes first.
fn take_contiguous(free: &[bool], size: usize) -> Option<Vec<NodeId>> {
    let nodes: Vec<NodeId> = free
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f)
        .take(size)
        .map(|(n, _)| NodeId(n as u32))
        .collect();
    (nodes.len() == size).then_some(nodes)
}

/// One free node per router per sweep, cycling over all routers.
fn take_round_robin(free: &[bool], size: usize, params: &DragonflyParams) -> Option<Vec<NodeId>> {
    let routers = params.num_routers();
    let per_router = params.nodes_per_router();
    let mut nodes = Vec::with_capacity(size);
    // `cursor[r]` is the next terminal index of router `r` to consider, so each sweep
    // takes at most one node per router.
    let mut cursor = vec![0usize; routers];
    while nodes.len() < size {
        let mut progressed = false;
        for (r, cur) in cursor.iter_mut().enumerate() {
            if nodes.len() == size {
                break;
            }
            // The cursor only moves forward, so every node is considered once.
            while *cur < per_router {
                let node = r * per_router + *cur;
                *cur += 1;
                if free[node] {
                    nodes.push(NodeId(node as u32));
                    progressed = true;
                    break;
                }
            }
        }
        if !progressed {
            return None;
        }
    }
    Some(nodes)
}

/// A seeded random subset of the free nodes.
fn take_random(free: &[bool], size: usize, seed: u64) -> Option<Vec<NodeId>> {
    let mut candidates: Vec<u32> = free
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f)
        .map(|(n, _)| n as u32)
        .collect();
    if candidates.len() < size {
        return None;
    }
    let mut rng = Rng::seed_from(seed);
    rng.shuffle(&mut candidates);
    candidates.truncate(size);
    Some(candidates.into_iter().map(NodeId).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobPattern, JobSpec};

    fn params() -> DragonflyParams {
        DragonflyParams::new(2)
    }

    fn job(name: &str, size: usize, placement: PlacementPolicy) -> JobSpec {
        JobSpec::new(name, size, placement, JobPattern::Uniform, 0.1)
    }

    #[test]
    fn contiguous_takes_lowest_nodes() {
        let p = params();
        let spec = WorkloadSpec::new(vec![
            job("a", 8, PlacementPolicy::Contiguous),
            job("b", 8, PlacementPolicy::Contiguous),
        ]);
        let placement = spec.place(&p);
        assert_eq!(placement.jobs[0], (0..8).map(NodeId).collect::<Vec<_>>());
        assert_eq!(placement.jobs[1], (8..16).map(NodeId).collect::<Vec<_>>());
        assert_eq!(placement.assigned_nodes(), 16);
    }

    #[test]
    fn round_robin_spreads_over_routers() {
        let p = params(); // 36 routers × 2 nodes
        let spec = WorkloadSpec::new(vec![
            job("a", 36, PlacementPolicy::RoundRobinRouters),
            job("b", 36, PlacementPolicy::RoundRobinRouters),
        ]);
        let placement = spec.place(&p);
        // First sweep: node 0 of every router.
        for (i, node) in placement.jobs[0].iter().enumerate() {
            assert_eq!(node.index(), i * 2, "job a node {i}");
        }
        // Second job gets node 1 of every router.
        for (i, node) in placement.jobs[1].iter().enumerate() {
            assert_eq!(node.index(), i * 2 + 1, "job b node {i}");
        }
    }

    #[test]
    fn round_robin_wraps_to_second_terminal() {
        let p = params();
        let spec = WorkloadSpec::new(vec![job("a", 40, PlacementPolicy::RoundRobinRouters)]);
        let placement = spec.place(&p);
        // 36 routers: the first 36 nodes are one per router, then it wraps.
        let per_router_counts: Vec<usize> = (0..p.num_routers())
            .map(|r| {
                placement.jobs[0]
                    .iter()
                    .filter(|n| n.index() / p.nodes_per_router() == r)
                    .count()
            })
            .collect();
        assert_eq!(per_router_counts.iter().filter(|&&c| c == 2).count(), 4);
        assert_eq!(per_router_counts.iter().filter(|&&c| c == 1).count(), 32);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let p = params();
        let spec = WorkloadSpec::new(vec![job("a", 20, PlacementPolicy::Random { seed: 7 })]);
        let one = spec.place(&p);
        let two = spec.place(&p);
        assert_eq!(one, two);
        let other = WorkloadSpec::new(vec![job("a", 20, PlacementPolicy::Random { seed: 8 })]);
        assert_ne!(one.jobs[0], other.place(&p).jobs[0]);
    }

    #[test]
    fn jobs_are_disjoint_and_inverse_map_agrees() {
        let p = params();
        let spec = WorkloadSpec::new(vec![
            job("a", 10, PlacementPolicy::Random { seed: 1 }),
            job("b", 20, PlacementPolicy::RoundRobinRouters),
            job("c", 30, PlacementPolicy::Contiguous),
        ]);
        let placement = spec.place(&p);
        let mut seen = vec![false; p.num_nodes()];
        for (j, nodes) in placement.jobs.iter().enumerate() {
            for node in nodes {
                assert!(!seen[node.index()], "node {node:?} assigned twice");
                seen[node.index()] = true;
                assert_eq!(placement.job_of_node[node.index()], j as u16);
            }
        }
        for (n, &taken) in seen.iter().enumerate() {
            if !taken {
                assert_eq!(placement.job_of_node[n], UNASSIGNED_SLOT);
            }
        }
    }

    #[test]
    #[should_panic(expected = "machine has")]
    fn oversubscription_rejected() {
        let p = params();
        let spec = WorkloadSpec::new(vec![job("a", 100, PlacementPolicy::Contiguous)]);
        let _ = spec.place(&p);
    }

    #[test]
    fn pool_allocates_from_fragmented_free_sets() {
        let p = params();
        let mut pool = FreePool::all_free(p.num_nodes());
        // Take the whole machine as three blocks, free the middle one.
        let a = pool
            .allocate(PlacementPolicy::Contiguous, 24, &p, 0)
            .unwrap();
        let b = pool
            .allocate(PlacementPolicy::Contiguous, 24, &p, 1)
            .unwrap();
        let c = pool
            .allocate(PlacementPolicy::Contiguous, 24, &p, 2)
            .unwrap();
        assert_eq!(pool.free_count(), 0);
        assert!(pool
            .allocate(PlacementPolicy::Contiguous, 1, &p, 3)
            .is_none());
        pool.release(&b);
        assert_eq!(pool.free_count(), 24);
        // A contiguous allocation on the fragmented pool lands exactly in the hole.
        let d = pool
            .allocate(PlacementPolicy::Contiguous, 24, &p, 4)
            .unwrap();
        assert_eq!(d, b);
        pool.release(&a);
        pool.release(&c);
        pool.release(&d);
        assert_eq!(pool.free_count(), p.num_nodes());
    }

    #[test]
    fn pool_failed_allocation_leaves_pool_untouched() {
        let p = params();
        let mut pool = FreePool::all_free(p.num_nodes());
        let taken = pool
            .allocate(PlacementPolicy::Random { seed: 3 }, 70, &p, 0)
            .unwrap();
        let before = pool.clone();
        for policy in [
            PlacementPolicy::Contiguous,
            PlacementPolicy::RoundRobinRouters,
            PlacementPolicy::Random { seed: 9 },
        ] {
            assert!(pool.allocate(policy, 3, &p, 1).is_none());
            assert_eq!(pool, before, "{policy:?} mutated the pool on failure");
        }
        // The remaining two nodes are still allocatable.
        let rest = pool
            .allocate(PlacementPolicy::RoundRobinRouters, 2, &p, 2)
            .unwrap();
        assert_eq!(taken.len() + rest.len(), p.num_nodes());
    }

    #[test]
    #[should_panic(expected = "already free")]
    fn double_release_panics() {
        let p = params();
        let mut pool = FreePool::all_free(p.num_nodes());
        let a = pool
            .allocate(PlacementPolicy::Contiguous, 4, &p, 0)
            .unwrap();
        pool.release(&a);
        pool.release(&a);
    }
}
