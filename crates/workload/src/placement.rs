//! Deterministic node placement of a workload's jobs.

use crate::spec::{PlacementPolicy, WorkloadSpec};
use dragonfly_rng::{derive_seed, Rng};
use dragonfly_topology::{DragonflyParams, NodeId};
use dragonfly_traffic::UNASSIGNED_SLOT;

/// The result of placing every job of a workload: disjoint per-job node sets and the
/// inverse node→job map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// For every node: the index of its job, or [`UNASSIGNED_SLOT`] if idle.
    pub job_of_node: Vec<u16>,
    /// For every job: its nodes in ascending order.
    pub jobs: Vec<Vec<NodeId>>,
}

impl Placement {
    /// Place every job of `spec` in order, each drawing from the still-free nodes.
    pub fn compute(spec: &WorkloadSpec, params: &DragonflyParams) -> Self {
        let num_nodes = params.num_nodes();
        let total: usize = spec.jobs.iter().map(|j| j.size).sum();
        assert!(
            total <= num_nodes,
            "workload needs {total} nodes but the machine has {num_nodes}"
        );
        let mut job_of_node = vec![UNASSIGNED_SLOT; num_nodes];
        let mut free = vec![true; num_nodes];
        let mut jobs = Vec::with_capacity(spec.jobs.len());
        for (j, job) in spec.jobs.iter().enumerate() {
            let mut nodes = match job.placement {
                PlacementPolicy::Contiguous => take_contiguous(&free, job.size),
                PlacementPolicy::RoundRobinRouters => take_round_robin(&free, job.size, params),
                PlacementPolicy::Random { seed } => {
                    take_random(&free, job.size, derive_seed(seed, j as u64))
                }
            };
            debug_assert_eq!(nodes.len(), job.size);
            nodes.sort_unstable();
            for &node in &nodes {
                debug_assert!(free[node.index()]);
                free[node.index()] = false;
                job_of_node[node.index()] = j as u16;
            }
            jobs.push(nodes);
        }
        Self { job_of_node, jobs }
    }

    /// Total nodes assigned to any job.
    pub fn assigned_nodes(&self) -> usize {
        self.jobs.iter().map(Vec::len).sum()
    }
}

/// Lowest-indexed free nodes first.
fn take_contiguous(free: &[bool], size: usize) -> Vec<NodeId> {
    free.iter()
        .enumerate()
        .filter(|&(_, &f)| f)
        .take(size)
        .map(|(n, _)| NodeId(n as u32))
        .collect()
}

/// One free node per router per sweep, cycling over all routers.
fn take_round_robin(free: &[bool], size: usize, params: &DragonflyParams) -> Vec<NodeId> {
    let routers = params.num_routers();
    let per_router = params.nodes_per_router();
    let mut nodes = Vec::with_capacity(size);
    // `cursor[r]` is the next terminal index of router `r` to consider, so each sweep
    // takes at most one node per router.
    let mut cursor = vec![0usize; routers];
    while nodes.len() < size {
        let mut progressed = false;
        for (r, cur) in cursor.iter_mut().enumerate() {
            if nodes.len() == size {
                break;
            }
            // The cursor only moves forward, so every node is considered once.
            while *cur < per_router {
                let node = r * per_router + *cur;
                *cur += 1;
                if free[node] {
                    nodes.push(NodeId(node as u32));
                    progressed = true;
                    break;
                }
            }
        }
        assert!(
            progressed,
            "not enough free nodes for round-robin placement"
        );
    }
    nodes
}

/// A seeded random subset of the free nodes.
fn take_random(free: &[bool], size: usize, seed: u64) -> Vec<NodeId> {
    let mut candidates: Vec<u32> = free
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f)
        .map(|(n, _)| n as u32)
        .collect();
    assert!(
        candidates.len() >= size,
        "not enough free nodes for random placement"
    );
    let mut rng = Rng::seed_from(seed);
    rng.shuffle(&mut candidates);
    candidates.truncate(size);
    candidates.into_iter().map(NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobPattern, JobSpec};

    fn params() -> DragonflyParams {
        DragonflyParams::new(2)
    }

    fn job(name: &str, size: usize, placement: PlacementPolicy) -> JobSpec {
        JobSpec::new(name, size, placement, JobPattern::Uniform, 0.1)
    }

    #[test]
    fn contiguous_takes_lowest_nodes() {
        let p = params();
        let spec = WorkloadSpec::new(vec![
            job("a", 8, PlacementPolicy::Contiguous),
            job("b", 8, PlacementPolicy::Contiguous),
        ]);
        let placement = spec.place(&p);
        assert_eq!(placement.jobs[0], (0..8).map(NodeId).collect::<Vec<_>>());
        assert_eq!(placement.jobs[1], (8..16).map(NodeId).collect::<Vec<_>>());
        assert_eq!(placement.assigned_nodes(), 16);
    }

    #[test]
    fn round_robin_spreads_over_routers() {
        let p = params(); // 36 routers × 2 nodes
        let spec = WorkloadSpec::new(vec![
            job("a", 36, PlacementPolicy::RoundRobinRouters),
            job("b", 36, PlacementPolicy::RoundRobinRouters),
        ]);
        let placement = spec.place(&p);
        // First sweep: node 0 of every router.
        for (i, node) in placement.jobs[0].iter().enumerate() {
            assert_eq!(node.index(), i * 2, "job a node {i}");
        }
        // Second job gets node 1 of every router.
        for (i, node) in placement.jobs[1].iter().enumerate() {
            assert_eq!(node.index(), i * 2 + 1, "job b node {i}");
        }
    }

    #[test]
    fn round_robin_wraps_to_second_terminal() {
        let p = params();
        let spec = WorkloadSpec::new(vec![job("a", 40, PlacementPolicy::RoundRobinRouters)]);
        let placement = spec.place(&p);
        // 36 routers: the first 36 nodes are one per router, then it wraps.
        let per_router_counts: Vec<usize> = (0..p.num_routers())
            .map(|r| {
                placement.jobs[0]
                    .iter()
                    .filter(|n| n.index() / p.nodes_per_router() == r)
                    .count()
            })
            .collect();
        assert_eq!(per_router_counts.iter().filter(|&&c| c == 2).count(), 4);
        assert_eq!(per_router_counts.iter().filter(|&&c| c == 1).count(), 32);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let p = params();
        let spec = WorkloadSpec::new(vec![job("a", 20, PlacementPolicy::Random { seed: 7 })]);
        let one = spec.place(&p);
        let two = spec.place(&p);
        assert_eq!(one, two);
        let other = WorkloadSpec::new(vec![job("a", 20, PlacementPolicy::Random { seed: 8 })]);
        assert_ne!(one.jobs[0], other.place(&p).jobs[0]);
    }

    #[test]
    fn jobs_are_disjoint_and_inverse_map_agrees() {
        let p = params();
        let spec = WorkloadSpec::new(vec![
            job("a", 10, PlacementPolicy::Random { seed: 1 }),
            job("b", 20, PlacementPolicy::RoundRobinRouters),
            job("c", 30, PlacementPolicy::Contiguous),
        ]);
        let placement = spec.place(&p);
        let mut seen = vec![false; p.num_nodes()];
        for (j, nodes) in placement.jobs.iter().enumerate() {
            for node in nodes {
                assert!(!seen[node.index()], "node {node:?} assigned twice");
                seen[node.index()] = true;
                assert_eq!(placement.job_of_node[node.index()], j as u16);
            }
        }
        for (n, &taken) in seen.iter().enumerate() {
            if !taken {
                assert_eq!(placement.job_of_node[n], UNASSIGNED_SLOT);
            }
        }
    }

    #[test]
    #[should_panic(expected = "machine has")]
    fn oversubscription_rejected() {
        let p = params();
        let spec = WorkloadSpec::new(vec![job("a", 100, PlacementPolicy::Contiguous)]);
        let _ = spec.place(&p);
    }
}
