//! Multi-job workload scenarios for the Dragonfly simulator.
//!
//! The paper evaluates its routing mechanisms under single, static synthetic
//! patterns.  Real systems run several *jobs* at once, each placed on a subset of
//! the nodes and each going through *phases* of different communication behaviour —
//! the regime where adaptive routing matters most (workload interference, transient
//! adaptation).  This crate models that:
//!
//! * a [`WorkloadSpec`] is a list of [`JobSpec`]s, placed on the machine in order by
//!   a [`PlacementPolicy`] (contiguous nodes, round-robin over routers, or seeded
//!   random),
//! * each job runs a schedule of [`PhaseSpec`]s, switching its [`JobPattern`] and
//!   offered load at absolute cycle boundaries,
//! * job traffic stays inside the job: the job-scoped patterns (uniform,
//!   adversarial-global, adversarial-local, mixes) pick destinations among the
//!   job's own nodes, using the physical topology to preserve the adversarial
//!   structure of the paper's patterns,
//! * [`WorkloadSpec::build_pattern`] compiles the destination side into a
//!   [`dragonfly_traffic::WorkloadPattern`] (a plain `TrafficPattern` the engine
//!   drives unchanged), and [`WorkloadSpec::runtime`] compiles the injection side
//!   into a [`WorkloadRuntime`] (per-job Bernoulli rates, phase tracking and the
//!   job/phase tags the statistics layer groups by).
//!
//! Two headline scenarios ship as constructors: [`WorkloadSpec::interference`]
//! (an adversarial aggressor job against a uniform victim job) and
//! [`WorkloadSpec::transient`] (a single job switching pattern mid-run).

#![warn(missing_docs)]

mod job_patterns;
mod placement;
mod runtime;
mod spec;

pub use job_patterns::build_job_pattern;
pub use placement::{FreePool, Placement};
pub use runtime::{JobRuntime, WorkloadRuntime};
pub use spec::{JobPattern, JobSpec, PhaseSpec, PlacementPolicy, WorkloadSpec};
