//! The injection-side runtime of a compiled workload.
//!
//! The simulation engine owns a [`WorkloadRuntime`] next to its traffic pattern: it
//! answers, for every node and cycle, *whether* a packet is generated (per-job,
//! per-phase Bernoulli rates) and *which job/phase tags* the packet carries, and it
//! exposes the phase-boundary hook ([`WorkloadRuntime::advance_to`]) plus the
//! metadata the statistics layer needs to assemble per-job reports.

use crate::spec::JobSpec;
use dragonfly_rng::Rng;
use dragonfly_traffic::UNASSIGNED_SLOT;

/// Per-job injection state: the phase table and the cached current phase.
#[derive(Debug, Clone)]
pub struct JobRuntime {
    name: String,
    nodes: usize,
    /// Phase start cycles (strictly increasing, first 0).
    starts: Vec<u64>,
    /// Per-phase packet-generation probability per node per cycle.
    probs: Vec<f64>,
    /// Per-phase offered load in phits/(node·cycle).
    loads: Vec<f64>,
    /// Per-phase pattern display names.
    pattern_names: Vec<String>,
    /// Phase active at the cycle last passed to `advance_to`.
    current: usize,
}

impl JobRuntime {
    /// Compile one job's phase table.
    pub(crate) fn new(job: &JobSpec, nodes: usize, packet_size: usize) -> Self {
        Self {
            name: job.name.clone(),
            nodes,
            starts: job.phases.iter().map(|p| p.start_cycle).collect(),
            probs: job
                .phases
                .iter()
                .map(|p| (p.offered_load / packet_size as f64).min(1.0))
                .collect(),
            loads: job.phases.iter().map(|p| p.offered_load).collect(),
            pattern_names: job.phases.iter().map(|p| p.pattern.name()).collect(),
            current: 0,
        }
    }

    /// Job display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes the job occupies.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.starts.len()
    }

    /// Start cycle of a phase.
    pub fn phase_start(&self, phase: usize) -> u64 {
        self.starts[phase]
    }

    /// End cycle of a phase (start of the next phase, or `u64::MAX` for the last).
    pub fn phase_end(&self, phase: usize) -> u64 {
        self.starts.get(phase + 1).copied().unwrap_or(u64::MAX)
    }

    /// Offered load of a phase in phits/(node·cycle).
    pub fn phase_load(&self, phase: usize) -> f64 {
        self.loads[phase]
    }

    /// Display name of a phase's pattern.
    pub fn phase_pattern(&self, phase: usize) -> &str {
        &self.pattern_names[phase]
    }
}

/// The compiled injection side of a workload (see module docs).
#[derive(Debug, Clone)]
pub struct WorkloadRuntime {
    label: String,
    job_of_node: Vec<u16>,
    jobs: Vec<JobRuntime>,
}

impl WorkloadRuntime {
    pub(crate) fn new(label: String, job_of_node: Vec<u16>, jobs: Vec<JobRuntime>) -> Self {
        debug_assert!(
            job_of_node
                .iter()
                .all(|&j| j == UNASSIGNED_SLOT || (j as usize) < jobs.len()),
            "node assigned to a job index outside the job table"
        );
        Self {
            label,
            job_of_node,
            jobs,
        }
    }

    /// Workload display label (matches the paired `WorkloadPattern`'s name).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of jobs.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Per-job runtime state and metadata.
    pub fn job(&self, job: u16) -> &JobRuntime {
        &self.jobs[job as usize]
    }

    /// Phase counts of every job, in job order (used to size the scoped stats).
    pub fn phase_counts(&self) -> Vec<usize> {
        self.jobs.iter().map(JobRuntime::phases).collect()
    }

    /// The phase-boundary hook: cache the phase of every job that is active at
    /// `cycle`.  Returns `true` when any job crossed a boundary.  Must be called
    /// with non-decreasing cycles (the engine calls it once per cycle).
    pub fn advance_to(&mut self, cycle: u64) -> bool {
        let mut crossed = false;
        for job in &mut self.jobs {
            while job.current + 1 < job.starts.len() && job.starts[job.current + 1] <= cycle {
                job.current += 1;
                crossed = true;
            }
        }
        crossed
    }

    /// The job of a node and the job's current phase, or `None` for idle nodes.
    #[inline]
    pub fn source(&self, node: usize) -> Option<(u16, u16)> {
        match self.job_of_node[node] {
            UNASSIGNED_SLOT => None,
            job => Some((job, self.jobs[job as usize].current as u16)),
        }
    }

    /// Bernoulli trial: does a node of `job` generate a packet this cycle?
    #[inline]
    pub fn generate(&self, job: u16, rng: &mut Rng) -> bool {
        let j = &self.jobs[job as usize];
        rng.bernoulli(j.probs[j.current])
    }

    /// Aggregate nominal offered load at cycle 0 in phits/(node·cycle), over all
    /// `num_nodes` nodes of the machine (idle nodes count with load 0).
    pub fn nominal_offered_load(&self, num_nodes: usize) -> f64 {
        if num_nodes == 0 {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|j| j.loads[0] * j.nodes as f64)
            .sum::<f64>()
            / num_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{JobPattern, JobSpec, PlacementPolicy, WorkloadSpec};
    use dragonfly_topology::DragonflyParams;

    fn two_phase_runtime() -> WorkloadRuntime {
        let p = DragonflyParams::new(2);
        let spec = WorkloadSpec::new(vec![
            JobSpec::new(
                "a",
                8,
                PlacementPolicy::Contiguous,
                JobPattern::Uniform,
                0.4,
            )
            .then_at(1_000, JobPattern::AdversarialGlobal(1), 0.2),
            JobSpec::new(
                "b",
                8,
                PlacementPolicy::Contiguous,
                JobPattern::Uniform,
                0.1,
            ),
        ]);
        spec.runtime(&p, 8)
    }

    #[test]
    fn phase_metadata_round_trip() {
        let rt = two_phase_runtime();
        assert_eq!(rt.num_jobs(), 2);
        assert_eq!(rt.phase_counts(), vec![2, 1]);
        let a = rt.job(0);
        assert_eq!(a.name(), "a");
        assert_eq!(a.nodes(), 8);
        assert_eq!(a.phase_start(0), 0);
        assert_eq!(a.phase_end(0), 1_000);
        assert_eq!(a.phase_end(1), u64::MAX);
        assert_eq!(a.phase_pattern(1), "ADVG+1");
        assert!((a.phase_load(0) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn advance_to_switches_phases_at_boundaries() {
        let mut rt = two_phase_runtime();
        assert_eq!(rt.source(0), Some((0, 0)));
        assert!(!rt.advance_to(999));
        assert_eq!(rt.source(0), Some((0, 0)));
        assert!(rt.advance_to(1_000));
        assert_eq!(rt.source(0), Some((0, 1)));
        assert!(!rt.advance_to(5_000));
        // Job b has one phase and never switches.
        assert_eq!(rt.source(8), Some((1, 0)));
        // Unassigned nodes are idle.
        assert_eq!(rt.source(70), None);
    }

    #[test]
    fn generation_rate_follows_current_phase() {
        let mut rt = two_phase_runtime();
        let mut rng = Rng::seed_from(3);
        let n = 100_000;
        let before = (0..n).filter(|_| rt.generate(0, &mut rng)).count();
        rt.advance_to(1_000);
        let after = (0..n).filter(|_| rt.generate(0, &mut rng)).count();
        // 0.4/8 = 5% vs 0.2/8 = 2.5%.
        assert!((before as f64 / n as f64 - 0.05).abs() < 0.005, "{before}");
        assert!((after as f64 / n as f64 - 0.025).abs() < 0.004, "{after}");
    }

    #[test]
    fn nominal_load_weighs_job_sizes() {
        let rt = two_phase_runtime();
        // (8·0.4 + 8·0.1) / 72
        let want = (8.0 * 0.4 + 8.0 * 0.1) / 72.0;
        assert!((rt.nominal_offered_load(72) - want).abs() < 1e-12);
        assert_eq!(rt.nominal_offered_load(0), 0.0);
    }
}
