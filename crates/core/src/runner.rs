//! Sweep orchestration: one entry point for every figure/workload sweep.
//!
//! A [`SweepRunner`] takes any list of [`ExperimentSpec`] points — a load sweep, a
//! mechanism × pattern grid, a placement × aggressor-load workload grid — and
//! executes them through the scoped-thread executor of [`crate::parallel`] with
//!
//! * a configurable worker count ([`SweepRunner::jobs`], `None` = all cores),
//! * a `--sequential` escape hatch that runs the same points in a plain in-order
//!   loop on the calling thread ([`SweepRunner::sequential`]),
//! * deterministic result ordering (results always come back in spec order,
//!   regardless of which worker finished first), and
//! * a progress/ETA line (points done, points/sec, estimated time remaining and
//!   the label of the currently running point) printed to stderr from a
//!   dedicated collector thread fed by a channel, so reporting never contends
//!   with the workers beyond two `send`s per point.
//!
//! Every simulation point is single-threaded and deterministic, so the parallel
//! and sequential paths produce byte-identical reports for the same specs (pinned
//! by `tests/sweep_equivalence.rs`).
//!
//! ```
//! use dragonfly_core::{ExperimentSpec, SweepRunner};
//!
//! let mut spec = ExperimentSpec::new(2);
//! spec.warmup = 200;
//! spec.measure = 400;
//! spec.drain = 400;
//! let specs = vec![spec.clone(), spec];
//! let reports = SweepRunner::new("doc sweep").quiet().run_steady(&specs);
//! assert_eq!(reports.len(), 2);
//! assert_eq!(reports[0], reports[1]);
//! ```

use crate::experiment::ExperimentSpec;
use crate::parallel;
use dragonfly_probe::{ProbeConfig, ProbeRecorder};
use dragonfly_stats::{BatchReport, SimReport, WorkloadReport};
use std::sync::mpsc;
use std::time::Instant;

/// Orchestrates a set of independent simulation points (see the module docs).
#[derive(Debug, Clone)]
pub struct SweepRunner {
    /// Label prefixed to progress lines (e.g. `"figure 4/5 [un]"`).
    label: String,
    /// Worker-thread count; `None` uses every hardware thread.
    jobs: Option<usize>,
    /// Shards per simulation point (1 = the sequential engine).
    shards: usize,
    /// Run the points in a plain in-order loop on the calling thread.
    sequential: bool,
    /// Emit the progress/ETA line on stderr.
    progress: bool,
}

/// The worker count a sweep actually uses: the requested count (or all
/// `cores`), capped so that `workers × shards ≤ cores` when each point is
/// itself sharded across threads — the nested-parallelism budget that keeps a
/// `--jobs N --shards M` sweep from oversubscribing the machine.
pub fn effective_jobs(requested: Option<usize>, shards: usize, cores: usize) -> usize {
    let cores = cores.max(1);
    let requested = requested.unwrap_or(cores).max(1);
    if shards <= 1 {
        requested
    } else {
        requested.min((cores / shards).max(1))
    }
}

impl SweepRunner {
    /// A runner with the default configuration: all cores, progress enabled.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            jobs: None,
            shards: 1,
            sequential: false,
            progress: true,
        }
    }

    /// Set the worker-thread count (`None` = all hardware threads).
    pub fn jobs(mut self, jobs: Option<usize>) -> Self {
        self.jobs = jobs;
        self
    }

    /// Shard every simulation point across `shards` threads (the sharded
    /// engine, see `dragonfly_shard`).  Reports are byte-identical to the
    /// unsharded run; with `shards > 1` the sweep's worker count is capped so
    /// that `workers × shards` never exceeds the available cores (a note is
    /// printed when the cap bites).
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "a sweep point needs at least one shard");
        self.shards = shards;
        self
    }

    /// Run sequentially on the calling thread (the `--sequential` escape hatch).
    /// Results are identical to the parallel path, just slower.
    pub fn sequential(mut self, sequential: bool) -> Self {
        self.sequential = sequential;
        self
    }

    /// Disable the progress/ETA line (tests, machine-read output).
    pub fn quiet(mut self) -> Self {
        self.progress = false;
        self
    }

    /// Run every steady-state point (see [`ExperimentSpec::run`]), in spec order.
    /// With [`SweepRunner::shards`] > 1 each point runs on the sharded engine
    /// ([`ExperimentSpec::run_sharded`]) with byte-identical reports.
    pub fn run_steady(&self, specs: &[ExperimentSpec]) -> Vec<SimReport> {
        let label = |i: usize| specs[i].label();
        if self.shards > 1 {
            self.execute(specs.len(), label, |i| specs[i].run_sharded(self.shards))
        } else {
            self.execute(specs.len(), label, |i| specs[i].run())
        }
    }

    /// Run every workload or churn point (see [`ExperimentSpec::run_workload`]),
    /// in spec order, returning the per-job breakdowns.
    ///
    /// # Panics
    ///
    /// Panics when any spec's traffic is neither [`crate::TrafficKind::Workload`]
    /// nor [`crate::TrafficKind::Churn`].
    pub fn run_workloads(&self, specs: &[ExperimentSpec]) -> Vec<WorkloadReport> {
        assert!(
            specs.iter().all(|s| s.traffic.has_jobs()),
            "run_workloads requires TrafficKind::Workload or TrafficKind::Churn \
             traffic on every spec"
        );
        let label = |i: usize| specs[i].label();
        if self.shards > 1 {
            self.execute(specs.len(), label, |i| {
                specs[i].run_workload_sharded(self.shards)
            })
        } else {
            self.execute(specs.len(), label, |i| specs[i].run_workload())
        }
    }

    /// Run every steady-state point with observability probes installed (see
    /// [`ExperimentSpec::run_probed`]), in spec order, returning each point's
    /// recorder alongside its report.  Probes are read-only: the reports are
    /// byte-identical to [`SweepRunner::run_steady`].
    pub fn run_steady_probed(
        &self,
        specs: &[ExperimentSpec],
        probes: &ProbeConfig,
    ) -> Vec<(SimReport, ProbeRecorder)> {
        let label = |i: usize| specs[i].label();
        if self.shards > 1 {
            self.execute(specs.len(), label, |i| {
                specs[i].run_probed_sharded(probes.clone(), self.shards)
            })
        } else {
            self.execute(specs.len(), label, |i| specs[i].run_probed(probes.clone()))
        }
    }

    /// Run every workload or churn point with probes installed (see
    /// [`ExperimentSpec::run_workload_probed`]), in spec order.
    ///
    /// # Panics
    ///
    /// Panics when any spec's traffic is neither [`crate::TrafficKind::Workload`]
    /// nor [`crate::TrafficKind::Churn`].
    pub fn run_workloads_probed(
        &self,
        specs: &[ExperimentSpec],
        probes: &ProbeConfig,
    ) -> Vec<(WorkloadReport, ProbeRecorder)> {
        assert!(
            specs.iter().all(|s| s.traffic.has_jobs()),
            "run_workloads_probed requires TrafficKind::Workload or TrafficKind::Churn \
             traffic on every spec"
        );
        let label = |i: usize| specs[i].label();
        if self.shards > 1 {
            self.execute(specs.len(), label, |i| {
                specs[i].run_workload_probed_sharded(probes.clone(), self.shards)
            })
        } else {
            self.execute(specs.len(), label, |i| {
                specs[i].run_workload_probed(probes.clone())
            })
        }
    }

    /// Run every point in burst-consumption mode (see [`ExperimentSpec::run_batch`]),
    /// in spec order.
    pub fn run_batches(
        &self,
        specs: &[ExperimentSpec],
        packets_per_node: u64,
        max_cycles: u64,
    ) -> Vec<BatchReport> {
        let label = |i: usize| specs[i].label();
        if self.shards > 1 {
            self.execute(specs.len(), label, |i| {
                specs[i].run_batch_sharded(packets_per_node, max_cycles, self.shards)
            })
        } else {
            self.execute(specs.len(), label, |i| {
                specs[i].run_batch(packets_per_node, max_cycles)
            })
        }
    }

    /// Run every point in burst-consumption mode with probes installed (see
    /// [`ExperimentSpec::run_batch_probed`]), in spec order.  Probes are
    /// read-only: the reports are byte-identical to
    /// [`SweepRunner::run_batches`].
    pub fn run_batches_probed(
        &self,
        specs: &[ExperimentSpec],
        packets_per_node: u64,
        max_cycles: u64,
        probes: &ProbeConfig,
    ) -> Vec<(BatchReport, ProbeRecorder)> {
        let label = |i: usize| specs[i].label();
        if self.shards > 1 {
            self.execute(specs.len(), label, |i| {
                specs[i].run_batch_probed_sharded(
                    packets_per_node,
                    max_cycles,
                    probes.clone(),
                    self.shards,
                )
            })
        } else {
            self.execute(specs.len(), label, |i| {
                specs[i].run_batch_probed(packets_per_node, max_cycles, probes.clone())
            })
        }
    }

    /// Execute `total` independent points, preserving index order.
    ///
    /// The collector thread owns the progress state; workers (or the sequential
    /// loop) send one message when a point starts (carrying its label, so the
    /// line can show what is currently running) and one when it finishes.
    fn execute<T, L, F>(&self, total: usize, point_label: L, work: F) -> Vec<T>
    where
        T: Send,
        L: Fn(usize) -> String + Sync,
        F: Fn(usize) -> T + Sync,
    {
        let (sender, collector) = if self.progress && total > 0 {
            let (tx, rx) = mpsc::channel::<Progress>();
            let label = self.label.clone();
            let handle = std::thread::spawn(move || collect_progress(&label, total, &rx));
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };

        // The collector may already have exited; failed sends are harmless.
        let notify_start = |i: usize| {
            if let Some(tx) = &sender {
                let _ = tx.send(Progress::Started(point_label(i)));
            }
        };
        let notify = || {
            if let Some(tx) = &sender {
                let _ = tx.send(Progress::Finished);
            }
        };

        let results: Vec<T> = if self.sequential {
            (0..total)
                .map(|i| {
                    notify_start(i);
                    let value = work(i);
                    notify();
                    value
                })
                .collect()
        } else {
            // Nested-parallelism budget: with sharded points, cap the worker
            // count so workers × shards never exceeds the available cores.
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4);
            let workers = effective_jobs(self.jobs, self.shards, cores);
            if self.progress && self.shards > 1 && workers < self.jobs.unwrap_or(cores).max(1) {
                eprintln!(
                    "  {}: capping sweep workers to {workers} ({} shards/point on \
                     {cores} cores)",
                    self.label, self.shards
                );
            }
            parallel::run_indexed(total, Some(workers), |i| {
                notify_start(i);
                let value = work(i);
                notify();
                value
            })
        };

        drop(sender);
        if let Some(handle) = collector {
            let _ = handle.join();
        }
        results
    }
}

/// One progress message from a worker to the collector thread.
enum Progress {
    /// A point started running; the payload is its spec label.
    Started(String),
    /// A point finished.
    Finished,
}

/// Progress loop of the dedicated collector thread: points done, points/sec,
/// the estimated time remaining, and the label of the most recently started
/// (i.e. currently running) point.
fn collect_progress(label: &str, total: usize, rx: &mpsc::Receiver<Progress>) {
    let start = Instant::now();
    let mut done = 0usize;
    let mut current = String::new();
    // Previous line width (in chars), so a shorter line overprints the rest.
    let mut width = 0usize;
    while let Ok(msg) = rx.recv() {
        match msg {
            Progress::Started(point) => current = point,
            Progress::Finished => done += 1,
        }
        let elapsed = start.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let eta = if rate > 0.0 {
            format_eta((total - done) as f64 / rate)
        } else {
            "?".to_string()
        };
        let line = if done == total || current.is_empty() {
            format!("  {label}: {done}/{total} points \u{b7} {rate:.1} pts/s \u{b7} ETA {eta}")
        } else {
            format!(
                "  {label}: {done}/{total} points \u{b7} {rate:.1} pts/s \u{b7} ETA {eta} \
                 \u{b7} running {current}"
            )
        };
        eprint!("\r{line:<width$}");
        width = line.chars().count();
        if done == total {
            break;
        }
    }
    eprintln!();
}

/// Format a duration in seconds as `Ns` / `MmSSs` / `HhMMm` for the ETA column.
fn format_eta(seconds: f64) -> String {
    let s = seconds.round().max(0.0) as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3600, (s % 3600) / 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::TrafficKind;
    use dragonfly_routing::RoutingKind;
    use dragonfly_workload::WorkloadSpec;

    fn quick_spec(routing: RoutingKind, load: f64, seed: u64) -> ExperimentSpec {
        let mut spec = ExperimentSpec::new(2);
        spec.routing = routing;
        spec.offered_load = load;
        spec.warmup = 300;
        spec.measure = 600;
        spec.drain = 600;
        spec.seed = seed;
        spec
    }

    #[test]
    fn parallel_and_sequential_steady_agree() {
        let specs = vec![
            quick_spec(RoutingKind::Minimal, 0.1, 1),
            quick_spec(RoutingKind::Olm, 0.2, 2),
            quick_spec(RoutingKind::Piggybacking, 0.3, 3),
        ];
        let par = SweepRunner::new("t")
            .quiet()
            .jobs(Some(3))
            .run_steady(&specs);
        let seq = SweepRunner::new("t")
            .quiet()
            .sequential(true)
            .run_steady(&specs);
        assert_eq!(par, seq);
        assert_eq!(par[1].routing, "OLM");
    }

    #[test]
    fn workload_points_return_breakdowns_in_order() {
        let workload = WorkloadSpec::interference(72, 1, 0.3, 0.1);
        let specs: Vec<ExperimentSpec> = [RoutingKind::Minimal, RoutingKind::Olm]
            .into_iter()
            .map(|routing| {
                let mut spec = quick_spec(routing, 0.0, 5);
                spec.traffic = TrafficKind::Workload(workload.clone());
                spec
            })
            .collect();
        let reports = SweepRunner::new("t").quiet().run_workloads(&specs);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].aggregate.routing, "Minimal");
        assert_eq!(reports[1].aggregate.routing, "OLM");
        assert_eq!(reports[0].jobs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "requires TrafficKind::Workload")]
    fn run_workloads_rejects_plain_traffic() {
        let specs = vec![quick_spec(RoutingKind::Minimal, 0.1, 1)];
        let _ = SweepRunner::new("t").quiet().run_workloads(&specs);
    }

    #[test]
    fn batches_run_through_the_runner() {
        let specs = vec![
            quick_spec(RoutingKind::Olm, 1.0, 7),
            quick_spec(RoutingKind::Rlm, 1.0, 8),
        ];
        let par = SweepRunner::new("t")
            .quiet()
            .run_batches(&specs, 2, 100_000);
        let seq = SweepRunner::new("t")
            .quiet()
            .sequential(true)
            .run_batches(&specs, 2, 100_000);
        assert_eq!(par, seq);
        assert!(par.iter().all(|r| !r.timed_out));
    }

    #[test]
    fn empty_sweep_is_fine() {
        let reports = SweepRunner::new("t").run_steady(&[]);
        assert!(reports.is_empty());
    }

    #[test]
    fn nested_parallelism_budget_caps_workers() {
        // shards = 1: the requested count (or all cores) passes through.
        assert_eq!(effective_jobs(None, 1, 8), 8);
        assert_eq!(effective_jobs(Some(3), 1, 8), 3);
        assert_eq!(effective_jobs(Some(12), 1, 8), 12);
        // shards > 1: workers × shards never exceeds the cores.
        assert_eq!(effective_jobs(None, 2, 8), 4);
        assert_eq!(effective_jobs(None, 4, 8), 2);
        assert_eq!(effective_jobs(Some(8), 4, 8), 2);
        // An explicit request below the cap is honoured as-is.
        assert_eq!(effective_jobs(Some(1), 4, 8), 1);
        // The cap never starves the sweep: at least one worker survives.
        assert_eq!(effective_jobs(None, 8, 4), 1);
        assert_eq!(effective_jobs(Some(2), 16, 4), 1);
        // Degenerate core counts stay sane.
        assert_eq!(effective_jobs(None, 2, 0), 1);
    }

    #[test]
    fn sharded_sweep_points_match_unsharded() {
        let specs = vec![
            quick_spec(RoutingKind::Minimal, 0.1, 1),
            quick_spec(RoutingKind::Olm, 0.2, 2),
        ];
        let plain = SweepRunner::new("t").quiet().run_steady(&specs);
        let sharded = SweepRunner::new("t").quiet().shards(3).run_steady(&specs);
        assert_eq!(plain, sharded);
    }

    #[test]
    fn eta_formatting() {
        assert_eq!(format_eta(0.2), "0s");
        assert_eq!(format_eta(59.4), "59s");
        assert_eq!(format_eta(61.0), "1m01s");
        assert_eq!(format_eta(3_720.0), "1h02m");
    }
}
