//! High-level experiment API for the Dragonfly routing reproduction.
//!
//! This crate glues the topology, simulator, routing mechanisms and traffic patterns
//! into the experiment protocols of the paper:
//!
//! * [`ExperimentSpec`] / [`ExperimentBuilder`] — one steady-state or burst run,
//! * [`sweep`] — the load, threshold, traffic-mix and workload-interference sweeps
//!   behind each figure,
//! * [`runner`] — [`SweepRunner`], the orchestration layer every figure/workload
//!   binary routes its sweep through: worker pool, deterministic ordering,
//!   progress/ETA reporting and a sequential escape hatch,
//! * [`parallel`] — the underlying work-stealing executor that runs independent
//!   simulations on scoped threads (each simulation itself stays single-threaded and
//!   deterministic),
//! * [`csv`] — small CSV emission helpers used by the figure binaries.
//!
//! ```
//! use dragonfly_core::{ExperimentBuilder, RoutingKind, TrafficKind};
//!
//! let report = ExperimentBuilder::new(2)
//!     .routing(RoutingKind::Rlm)
//!     .traffic(TrafficKind::AdversarialGlobal(1))
//!     .offered_load(0.3)
//!     .warmup_cycles(1_000)
//!     .measure_cycles(2_000)
//!     .run();
//! assert!(report.accepted_load > 0.0);
//! ```

#![warn(missing_docs)]

pub mod csv;
pub mod experiment;
pub mod parallel;
pub mod runner;
pub mod sweep;

pub use csv::CsvWriter;
pub use experiment::{ExperimentBuilder, ExperimentSpec, FlowControlKind, TrafficKind};
pub use parallel::{run_batches_parallel, run_parallel, run_workloads_parallel};
pub use runner::{effective_jobs, SweepRunner};
pub use sweep::{
    churn_sweep, interference_sweep, load_sweep, mix_sweep, threshold_sweep, ChurnSweep,
    InterferenceSweep, LoadSweep, MixSweep, ThresholdSweep,
};

pub use dragonfly_probe::{
    detector_name, DelayLedger, DelaySample, DetectorConfig, ProbeConfig, ProbeRecorder,
    RunManifest, TraceBuilder, TripRecord, DELAY_COMPONENT_NAMES,
};
pub use dragonfly_routing::{AdaptiveParams, RoutingKind};
pub use dragonfly_sched::{Completion, SyntheticTrace, Trace, TraceJob};
pub use dragonfly_shard::{ShardPlan, ShardedSimulation};
pub use dragonfly_stats::{
    BatchReport, JobLifecycleReport, JobReport, PhaseReport, SimReport, WorkloadReport,
};
pub use dragonfly_workload::{JobPattern, JobSpec, PhaseSpec, PlacementPolicy, WorkloadSpec};
