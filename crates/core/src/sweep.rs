//! Parameter sweeps: the experiment lists behind every figure of the paper.

use crate::experiment::{ExperimentSpec, FlowControlKind, TrafficKind};
use dragonfly_routing::RoutingKind;
use dragonfly_sched::Trace;
use dragonfly_topology::DragonflyParams;
use dragonfly_workload::{PlacementPolicy, WorkloadSpec};

/// A sweep over offered load for a fixed set of mechanisms (Figures 4, 5, 7, 8).
#[derive(Debug, Clone)]
pub struct LoadSweep {
    /// Base specification (h, flow control, traffic, cycles, seed).
    pub base: ExperimentSpec,
    /// Mechanisms to compare.
    pub mechanisms: Vec<RoutingKind>,
    /// Offered-load points.
    pub loads: Vec<f64>,
}

/// A sweep over the misrouting threshold for one mechanism (Figures 10 and 11).
#[derive(Debug, Clone)]
pub struct ThresholdSweep {
    /// Base specification.
    pub base: ExperimentSpec,
    /// Thresholds to evaluate (fractions, e.g. 0.30 … 0.60).
    pub thresholds: Vec<f64>,
    /// Offered-load points.
    pub loads: Vec<f64>,
}

/// A sweep over the ADVG/ADVL traffic mix (Figures 6 and 9).
#[derive(Debug, Clone)]
pub struct MixSweep {
    /// Base specification.
    pub base: ExperimentSpec,
    /// Mechanisms to compare.
    pub mechanisms: Vec<RoutingKind>,
    /// Global-traffic percentages (0 ..= 100).
    pub global_percentages: Vec<u32>,
    /// Group offset of the ADVG component (the paper uses `h`).
    pub global_offset: usize,
    /// Router offset of the ADVL component (the paper uses 1).
    pub local_offset: usize,
}

/// Build the load-sweep specification list; one spec per (mechanism, load) pair, in
/// row-major order (mechanism outer, load inner).
pub fn load_sweep(sweep: &LoadSweep) -> Vec<ExperimentSpec> {
    let mut specs = Vec::with_capacity(sweep.mechanisms.len() * sweep.loads.len());
    for &mechanism in &sweep.mechanisms {
        for &load in &sweep.loads {
            let mut spec = sweep.base.clone();
            spec.routing = mechanism;
            spec.offered_load = load;
            if spec.flow_control == FlowControlKind::Wormhole && !mechanism.supports_wormhole() {
                continue;
            }
            specs.push(spec);
        }
    }
    specs
}

/// Build the threshold-sweep specification list (mechanism fixed in `base.routing`).
pub fn threshold_sweep(sweep: &ThresholdSweep) -> Vec<ExperimentSpec> {
    let mut specs = Vec::with_capacity(sweep.thresholds.len() * sweep.loads.len());
    for &threshold in &sweep.thresholds {
        for &load in &sweep.loads {
            let mut spec = sweep.base.clone();
            spec.threshold = threshold;
            spec.offered_load = load;
            specs.push(spec);
        }
    }
    specs
}

/// Build the mix-sweep specification list; offered load is taken from the base spec
/// (the paper uses 1 phit/(node·cycle)).
pub fn mix_sweep(sweep: &MixSweep) -> Vec<ExperimentSpec> {
    let mut specs = Vec::new();
    for &mechanism in &sweep.mechanisms {
        if sweep.base.flow_control == FlowControlKind::Wormhole && !mechanism.supports_wormhole() {
            continue;
        }
        for &pct in &sweep.global_percentages {
            let mut spec = sweep.base.clone();
            spec.routing = mechanism;
            spec.traffic = TrafficKind::Mixed {
                global_fraction: pct as f64 / 100.0,
                global_offset: sweep.global_offset,
                local_offset: sweep.local_offset,
            };
            specs.push(spec);
        }
    }
    specs
}

/// A caminos-style workload-interference grid: mechanism × placement policy ×
/// aggressor load, each point an aggressor/victim workload (see
/// [`WorkloadSpec::interference_placed`]).
#[derive(Debug, Clone)]
pub struct InterferenceSweep {
    /// Base specification (h, flow control, cycles, seed).
    pub base: ExperimentSpec,
    /// Mechanisms to compare.
    pub mechanisms: Vec<RoutingKind>,
    /// Placement policies applied to both jobs.
    pub placements: Vec<PlacementPolicy>,
    /// Aggressor offered loads in phits/(node·cycle).
    pub aggressor_loads: Vec<f64>,
    /// Group offset of the aggressor's ADVG pattern.
    pub aggressor_offset: usize,
    /// Victim offered load in phits/(node·cycle).
    pub victim_load: f64,
}

/// Build the interference-grid specification list, row-major (mechanism outer,
/// placement middle, aggressor load inner).  Every spec carries
/// [`TrafficKind::Workload`] traffic, so the points run through
/// [`crate::SweepRunner::run_workloads`].
pub fn interference_sweep(sweep: &InterferenceSweep) -> Vec<ExperimentSpec> {
    let num_nodes = DragonflyParams::new(sweep.base.h).num_nodes();
    let mut specs = Vec::with_capacity(
        sweep.mechanisms.len() * sweep.placements.len() * sweep.aggressor_loads.len(),
    );
    for &mechanism in &sweep.mechanisms {
        for &placement in &sweep.placements {
            for &load in &sweep.aggressor_loads {
                let mut spec = sweep.base.clone();
                spec.routing = mechanism;
                spec.traffic = TrafficKind::Workload(WorkloadSpec::interference_placed(
                    num_nodes,
                    sweep.aggressor_offset,
                    load,
                    sweep.victim_load,
                    placement,
                ));
                specs.push(spec);
            }
        }
    }
    specs
}

/// A churn grid: mechanism × job-arrival trace, each point a full dynamic-schedule
/// run through `Simulation::run_trace`.  The traces are typically scenario
/// variants (e.g. [`dragonfly_sched::scenarios::fragmentation_trace`] at several
/// aggressor loads, fragmented and fresh), so a row compares how each routing
/// mechanism copes with the same churn history.
#[derive(Debug, Clone)]
pub struct ChurnSweep {
    /// Base specification (h, flow control, seed; `measure` is the run horizon and
    /// `drain` the post-horizon drain budget).
    pub base: ExperimentSpec,
    /// Mechanisms to compare.
    pub mechanisms: Vec<RoutingKind>,
    /// Job-arrival traces (scenario variants), labelled by [`Trace::name`].
    pub traces: Vec<Trace>,
}

/// Build the churn-grid specification list, row-major (mechanism outer, trace
/// inner).  Every spec carries [`TrafficKind::Churn`] traffic, so the points run
/// through [`crate::SweepRunner::run_workloads`].
pub fn churn_sweep(sweep: &ChurnSweep) -> Vec<ExperimentSpec> {
    let mut specs = Vec::with_capacity(sweep.mechanisms.len() * sweep.traces.len());
    for &mechanism in &sweep.mechanisms {
        for trace in &sweep.traces {
            let mut spec = sweep.base.clone();
            spec.routing = mechanism;
            spec.traffic = TrafficKind::Churn(trace.clone());
            specs.push(spec);
        }
    }
    specs
}

/// The offered-load points used by the figure binaries when none are given.
pub fn default_loads() -> Vec<f64> {
    vec![0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
}

/// The threshold points of Figures 10 and 11.
pub fn paper_thresholds() -> Vec<f64> {
    vec![0.30, 0.40, 0.45, 0.50, 0.60]
}

/// The global-traffic percentages of Figures 6 and 9.
pub fn paper_mix_percentages() -> Vec<u32> {
    vec![0, 20, 40, 60, 80, 100]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ExperimentSpec {
        ExperimentSpec::new(2)
    }

    #[test]
    fn load_sweep_cartesian_product() {
        let sweep = LoadSweep {
            base: base(),
            mechanisms: vec![RoutingKind::Olm, RoutingKind::Rlm, RoutingKind::Minimal],
            loads: vec![0.1, 0.2],
        };
        let specs = load_sweep(&sweep);
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].routing, RoutingKind::Olm);
        assert_eq!(specs[0].offered_load, 0.1);
        assert_eq!(specs[1].offered_load, 0.2);
        assert_eq!(specs[2].routing, RoutingKind::Rlm);
    }

    #[test]
    fn load_sweep_drops_olm_under_wormhole() {
        let mut b = base();
        b.flow_control = FlowControlKind::Wormhole;
        let sweep = LoadSweep {
            base: b,
            mechanisms: vec![RoutingKind::Olm, RoutingKind::Rlm],
            loads: vec![0.1],
        };
        let specs = load_sweep(&sweep);
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].routing, RoutingKind::Rlm);
    }

    #[test]
    fn threshold_sweep_sets_threshold() {
        let sweep = ThresholdSweep {
            base: base(),
            thresholds: vec![0.3, 0.45],
            loads: vec![0.1, 0.5],
        };
        let specs = threshold_sweep(&sweep);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].threshold, 0.3);
        assert_eq!(specs[3].threshold, 0.45);
        assert_eq!(specs[3].offered_load, 0.5);
    }

    #[test]
    fn mix_sweep_builds_mixed_traffic() {
        let sweep = MixSweep {
            base: base(),
            mechanisms: vec![RoutingKind::Olm, RoutingKind::Piggybacking],
            global_percentages: vec![0, 50, 100],
            global_offset: 2,
            local_offset: 1,
        };
        let specs = mix_sweep(&sweep);
        assert_eq!(specs.len(), 6);
        match specs[1].traffic {
            TrafficKind::Mixed {
                global_fraction,
                global_offset,
                local_offset,
            } => {
                assert!((global_fraction - 0.5).abs() < 1e-12);
                assert_eq!(global_offset, 2);
                assert_eq!(local_offset, 1);
            }
            _ => panic!("expected mixed traffic"),
        }
    }

    #[test]
    fn interference_sweep_builds_workload_grid() {
        let sweep = InterferenceSweep {
            base: base(),
            mechanisms: vec![RoutingKind::Minimal, RoutingKind::Olm],
            placements: vec![
                PlacementPolicy::Contiguous,
                PlacementPolicy::RoundRobinRouters,
            ],
            aggressor_loads: vec![0.1, 0.3, 0.5],
            aggressor_offset: 1,
            victim_load: 0.1,
        };
        let specs = interference_sweep(&sweep);
        assert_eq!(specs.len(), 12);
        assert_eq!(specs[0].routing, RoutingKind::Minimal);
        assert_eq!(specs[11].routing, RoutingKind::Olm);
        let workload = specs[3].traffic.workload().expect("workload traffic");
        assert_eq!(
            workload.jobs[0].placement,
            PlacementPolicy::RoundRobinRouters
        );
        assert!((workload.jobs[0].phases[0].offered_load - 0.1).abs() < 1e-12);
        let last = specs[11].traffic.workload().expect("workload traffic");
        assert!((last.jobs[0].phases[0].offered_load - 0.5).abs() < 1e-12);
    }

    #[test]
    fn churn_sweep_builds_trace_grid() {
        use dragonfly_sched::scenarios::fragmentation_trace;
        let p = DragonflyParams::new(2);
        let traces = vec![
            fragmentation_trace(&p, false, 0.5, 0.1, 1_000, 4_000, 1),
            fragmentation_trace(&p, true, 0.5, 0.1, 1_000, 4_000, 1),
        ];
        let sweep = ChurnSweep {
            base: base(),
            mechanisms: vec![RoutingKind::Minimal, RoutingKind::Olm],
            traces,
        };
        let specs = churn_sweep(&sweep);
        assert_eq!(specs.len(), 4);
        assert_eq!(specs[0].routing, RoutingKind::Minimal);
        assert_eq!(specs[0].traffic.churn().unwrap().name, "fresh");
        assert_eq!(specs[1].traffic.churn().unwrap().name, "frag");
        assert_eq!(specs[3].routing, RoutingKind::Olm);
        assert!(specs.iter().all(|s| s.traffic.has_jobs()));
    }

    #[test]
    fn default_points_are_sensible() {
        assert!(default_loads().iter().all(|&l| l > 0.0 && l <= 1.0));
        assert_eq!(paper_thresholds().len(), 5);
        assert_eq!(*paper_mix_percentages().last().unwrap(), 100);
    }
}
